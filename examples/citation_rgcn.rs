//! The paper's running example (Fig. 1 / Fig. 6a): an RGCN layer on a
//! small citation graph with papers and authors, and `writes` / `cites`
//! relations. Builds the graph by hand, runs the compiled layer, and
//! walks through what each node receives — including the virtual
//! self-loop.

use hector::prelude::*;

fn main() {
    // Papers 0,1,2,a(=3),b(=4); author alpha(=5).
    let mut b = HeteroGraphBuilder::new();
    let (paper0, _) = b.add_node_type(5);
    let (alpha, _) = b.add_node_type(1);
    let writes = 0u32;
    let cites = 1u32;
    b.add_edge(alpha, 3, writes); // alpha writes a
    b.add_edge(alpha, 4, writes); // alpha writes b
    b.add_edge(1, 0, cites);
    b.add_edge(2, 0, cites);
    b.add_edge(3, 0, cites); // a cites paper 0
    b.add_edge(4, 1, cites);
    b.add_edge(4, 2, cites);
    let graph = GraphData::new(b.build());
    println!(
        "citation graph: {} nodes, {} edges, {} relations",
        graph.graph().num_nodes(),
        graph.graph().num_edges(),
        graph.graph().num_edge_types()
    );
    println!(
        "paper node z(=0) has in-degree {} — messages from 1, 2 and a",
        graph.graph().in_degree()[paper0 as usize]
    );

    let dim = 8;
    let mut engine = EngineBuilder::new(ModelKind::Rgcn)
        .dims(dim, dim)
        .options(CompileOptions::unopt())
        .seed(1)
        .build()
        .unwrap();
    let mut bound = engine.bind(&graph).unwrap();
    bound.forward().expect("tiny graph");
    let h = bound.output();

    println!("\nRGCN layer output (h' = relu(h W0 + sum_r sum_u 1/c h_u W_r)):");
    for v in 0..graph.graph().num_nodes() {
        let deg = graph.graph().in_degree()[v];
        println!(
            "  node {v} (in-degree {deg}): [{:+.3} {:+.3} {:+.3} ...]",
            h.at2(v, 0),
            h.at2(v, 1),
            h.at2(v, 2)
        );
    }
    println!(
        "\nNote: node 5 (author alpha) has no incoming edges, so its output is\n\
         exactly relu(h_alpha W0) — the virtual self-loop of Eq. 1."
    );
}
