//! Compact materialization close up (paper §3.2.2, Fig. 7): shows the
//! unique (source node, edge type) index on the paper's own example
//! graph, then demonstrates the out-of-memory rescue on a larger graph —
//! "with compaction enabled, Hector incurs no OOM error for all the
//! datasets tested".

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;

fn main() {
    // Paper Fig. 6(a): papers 0,1,2,a(3),b(4); author alpha(5).
    let mut b = HeteroGraphBuilder::new();
    b.add_node_type(6);
    b.add_edge(5, 3, 0); // alpha writes a
    b.add_edge(5, 4, 0); // alpha writes b
    b.add_edge(1, 0, 1); // 1 cites 0
    b.add_edge(2, 0, 1); // 2 cites 0
    b.add_edge(3, 0, 1); // a cites 0
    b.add_edge(4, 1, 1); // b cites 1
    b.add_edge(4, 2, 1); // b cites 2
    let graph = GraphData::new(b.build());
    let c = graph.compact();
    println!("Paper Fig. 7 example:");
    println!(
        "  {} edges but only {} unique (src, etype) pairs (ratio {:.2})",
        graph.graph().num_edges(),
        c.num_unique(),
        c.ratio()
    );
    println!(
        "  unique_row_idx   = {:?}   (gather list)",
        c.unique_row_idx()
    );
    println!(
        "  unique_etype_ptr = {:?}          (scatter segments)",
        c.unique_etype_ptr()
    );
    println!(
        "  edge_to_unique   = {:?} (per-edge indirection)",
        c.edge_to_unique()
    );
    println!(
        "  e.g. edges 0 and 1 (alpha->a, alpha->b) share compact row {}\n",
        c.edge_to_unique()[0]
    );

    // OOM rescue: a graph whose vanilla edgewise tensors exceed a small
    // device, but whose compact ones fit.
    let spec = DatasetSpec {
        name: "oom-demo".into(),
        num_nodes: 30_000,
        num_node_types: 3,
        num_edges: 600_000,
        num_edge_types: 16,
        compaction_ratio: 0.15,
        type_skew: 1.0,
        seed: 3,
    };
    let big = GraphData::new(hector::generate(&spec));
    let capacity = 256 << 20; // a 256 MB device
    let cfg = DeviceConfig::rtx3090().with_capacity(capacity);
    println!(
        "OOM rescue on {} edges (ratio {:.2}), device capacity {} MB:",
        big.graph().num_edges(),
        big.compact().ratio(),
        capacity >> 20
    );
    for (label, opts) in [
        ("vanilla (U)", CompileOptions::unopt()),
        ("compact (C)", CompileOptions::compact_only()),
    ] {
        let module = hector::compile_model(ModelKind::Rgat, 64, 64, &opts);
        let mut rng = seeded_rng(9);
        let mut params = ParamStore::init(&module.forward, &big, &mut rng);
        let mut session = Session::new(cfg.clone(), Mode::Modeled);
        match session.run_inference(&module, &big, &mut params, &Bindings::new()) {
            Ok((_, r)) => println!(
                "  {label}: OK, peak {:.0} MB, {:.2} ms simulated",
                r.peak_bytes as f64 / (1 << 20) as f64,
                r.elapsed_us / 1e3
            ),
            Err(e) => println!(
                "  {label}: OUT OF MEMORY allocating '{}' ({:.0} MB requested on top of {:.0} MB)",
                e.label,
                e.requested as f64 / (1 << 20) as f64,
                e.in_use as f64 / (1 << 20) as f64
            ),
        }
    }
}
