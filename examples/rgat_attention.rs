//! RGAT attention under the optimizer's microscope: compiles the same
//! model with all four optimization combinations (U / C / R / C+R) and
//! shows how the kernel plan, the simulated time, and the memory
//! footprint change — the paper's Table 5 / Fig. 9 story in miniature.

use hector::prelude::*;
use hector_ir::KernelSpec;

fn main() {
    // A mid-size graph with a low compaction ratio: many edges share
    // their (source, edge type) pair, so compact materialization pays.
    let spec = DatasetSpec {
        name: "demo".into(),
        num_nodes: 4_000,
        num_node_types: 3,
        num_edges: 80_000,
        num_edge_types: 12,
        compaction_ratio: 0.25,
        type_skew: 1.0,
        seed: 5,
    };
    let graph = GraphData::new(hector::generate(&spec));
    println!(
        "graph: {} edges, {} unique (src, etype) pairs (ratio {:.2})\n",
        graph.graph().num_edges(),
        graph.compact().num_unique(),
        graph.compact().ratio()
    );

    let combos = [
        ("U  (unoptimized)", CompileOptions::unopt()),
        (
            "C  (compact materialization)",
            CompileOptions::compact_only(),
        ),
        (
            "R  (linear operator reordering)",
            CompileOptions::reorder_only(),
        ),
        ("C+R (both)", CompileOptions::best()),
    ];
    for (label, opts) in combos {
        let mut engine = EngineBuilder::new(ModelKind::Rgat)
            .dims(64, 64)
            .options(opts)
            .mode(Mode::Modeled)
            .seed(2)
            .build()
            .unwrap();
        let mut gemms = 0;
        let mut travs = 0;
        let mut fallbacks = 0;
        for k in &engine.module().fw_kernels {
            match k {
                KernelSpec::Gemm(_) => gemms += 1,
                KernelSpec::Traversal(_) => travs += 1,
                KernelSpec::Fallback(_) => fallbacks += 1,
            }
        }
        let report = engine.bind(&graph).unwrap().forward().expect("fits");
        println!("{label}");
        println!("  kernel plan: {gemms} GEMM + {travs} traversal + {fallbacks} weight-prep");
        println!(
            "  simulated:   {:7.1} us  (GEMM {:6.1}, traversal {:6.1}, prep {:5.1})",
            report.elapsed_us, report.gemm_us, report.traversal_us, report.fallback_us
        );
        println!(
            "  peak memory: {:7.1} MB\n",
            report.peak_bytes as f64 / (1 << 20) as f64
        );
    }
    println!("Reordering eliminates the destination-side projection GEMM entirely");
    println!("(the attention dot products collapse onto precomputed W·w vectors),");
    println!("and compaction shrinks the remaining GEMM to unique pairs.");
}
