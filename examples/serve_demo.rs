//! Multi-tenant serving: keep several models resident behind one
//! [`ServeHandle`], submit concurrent single-node requests (coalesced
//! into batched traversals per dispatch tick), hot-swap a tenant's
//! graph under load, and read the per-tenant counters.
//!
//! ```bash
//! cargo run --release --example serve_demo
//! ```

use std::time::Duration;

use hector::prelude::*;
use hector::serve::{ServeConfig, ServeHandle};

fn graph(seed: u64, nodes: usize) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "serve_demo".into(),
        num_nodes: nodes,
        num_node_types: 3,
        num_edges: nodes * 5,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed,
    }))
}

fn builder(kind: ModelKind, dims: usize, seed: u64) -> EngineBuilder {
    EngineBuilder::new(kind)
        .dims(dims, dims)
        .options(CompileOptions::best())
        .mode(Mode::Real)
        .seed(seed)
}

fn main() {
    // 1. Start the server: bounded queue, up to 32 requests coalesced
    //    per traversal, four dispatch workers.
    let srv = ServeHandle::start(
        ServeConfig::default()
            .with_queue_capacity(256)
            .with_max_coalesce(32)
            .with_timeout(Duration::from_secs(5))
            .with_workers(4),
    );

    // 2. Deploy two tenants. Each deployment is an engine kept resident
    //    behind the process-wide module cache — tenants sharing an
    //    architecture share one compiled module.
    let g1 = graph(1, 96);
    let g2 = graph(2, 64);
    srv.deploy("rgcn_products", builder(ModelKind::Rgcn, 16, 7), &g1)
        .expect("rgcn deploys");
    srv.deploy("hgt_reviews", builder(ModelKind::Hgt, 8, 9), &g2)
        .expect("hgt deploys");
    println!("deployments: {:?}", srv.deployments());

    // 3. Fire a burst of single-node requests at both tenants. The
    //    dispatcher coalesces same-deployment requests arriving within
    //    one tick into a single batched traversal.
    let tickets: Vec<_> = (0..24)
        .map(|i| {
            let (name, g) = if i % 3 == 0 {
                ("hgt_reviews", &g2)
            } else {
                ("rgcn_products", &g1)
            };
            let node = (i * 13) % g.graph().num_nodes();
            srv.submit(name, node).expect("queue has room")
        })
        .collect();
    let batch = srv
        .submit_batch("rgcn_products", &[0, 1, 2, 3])
        .expect("queue has room");

    for t in tickets {
        let r = t.wait().expect("request served");
        assert!(!r.rows[0].is_empty());
    }
    let r = batch.wait().expect("batch served");
    println!(
        "batch of 4 served by engine v{} (coalesced with {} single-node requests)",
        r.version,
        r.coalesced - 1
    );

    for name in ["rgcn_products", "hgt_reviews"] {
        let s = srv.stats(name).expect("deployed");
        println!(
            "{name}: {} completed over {} traversals (coalescing {:.1}x), v{}",
            s.completed,
            s.forwards,
            s.coalescing_factor(),
            s.version,
        );
    }

    // 4. Hot swap: rebind the RGCN tenant to a fresh (larger) graph.
    //    The replacement engine is built off to the side; requests
    //    in flight during the swap all complete on one version or the
    //    other — none are dropped.
    let g3 = graph(3, 128);
    let inflight: Vec<_> = (0..8)
        .map(|n| srv.submit("rgcn_products", n).expect("queue has room"))
        .collect();
    let v = srv
        .swap("rgcn_products", builder(ModelKind::Rgcn, 16, 7), &g3)
        .expect("swap succeeds");
    println!(
        "swapped rgcn_products to v{v} ({} nodes)",
        g3.graph().num_nodes()
    );
    for t in inflight {
        t.wait().expect("no request dropped across the swap");
    }

    let s = srv.stats("rgcn_products").expect("deployed");
    println!(
        "rgcn_products after swap: {} completed, {} failed, {} swaps, v{}",
        s.completed, s.failed, s.swaps, s.version
    );

    srv.shutdown();
    println!("server drained and shut down");
}
