//! Sharded execution and streaming graph deltas: an AIFB-like graph
//! partitioned over destination nodes (`HECTOR_SHARDS`, default 4),
//! trained and served through a [`ShardedEngine`] whose merged outputs
//! are **bit-identical** to the unsharded engine, then mutated in place
//! with a [`DeltaBatch`] that re-plans only the affected shards.
//!
//! [`ShardedEngine`]: hector::ShardedEngine
//! [`DeltaBatch`]: hector::DeltaBatch

use hector::prelude::*;
use hector::{BindSharded, DeltaBatch, GreedyEdgeCut, ShardConfig, ShardedGraph};

fn main() {
    let shards: usize = std::env::var("HECTOR_SHARDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let spec = hector::datasets::aifb().scaled(0.05);
    let graph = hector::generate(&spec);
    println!(
        "graph: {} nodes, {} edges, {} relations",
        graph.num_nodes(),
        graph.num_edges(),
        graph.num_edge_types()
    );

    // Partition over destination nodes: each shard owns its output rows
    // and replicates a halo of foreign source nodes those rows read.
    let sharded = ShardedGraph::partition(
        graph.clone(),
        Box::new(GreedyEdgeCut),
        ShardConfig::new(shards),
    );
    println!(
        "partitioned into {} shards ({}): {:.1}% edge cut, {} halo rows ({} halo bytes)",
        sharded.num_shards(),
        sharded.partitioner_name(),
        sharded.edge_cut_fraction() * 100.0,
        sharded.halo_rows(),
        sharded.halo_bytes(),
    );

    let classes = 8;
    let builder = EngineBuilder::new(ModelKind::Rgcn)
        .dims(16, classes)
        .options(CompileOptions::best())
        .training(true)
        .seed(3);
    let mut engine = builder
        .clone()
        .bind_sharded(sharded)
        .expect("sharded engine builds");

    // Training runs on the authoritative full-graph engine (bitwise the
    // unsharded trajectory); forwards fan out across the shards and
    // merge owned rows in fixed shard order.
    let labels: Vec<usize> = (0..graph.num_nodes()).map(|v| v % classes).collect();
    let mut opt = Adam::new(0.02);
    println!("\nstep   loss");
    for step in 0..5 {
        let report = engine.train_step(&labels, &mut opt).expect("fits");
        println!("{step:>4}   {:.4}", report.loss.expect("real mode"));
    }
    engine.forward().expect("sharded forward runs");
    println!(
        "merged output: {} rows x {} cols",
        engine.output().rows(),
        engine.output().cols()
    );

    // Streaming deltas: splice edges in and out of the compacted CSRs.
    // Only shards whose interiors saw a touched destination re-plan.
    let batch = DeltaBatch::new()
        .add_edge(0, 1, 0)
        .add_edge(2, 3, 1)
        .remove_edge(graph.src()[0], graph.dst()[0], graph.etype()[0]);
    let outcome = engine.apply_delta(&batch).expect("delta applies");
    println!(
        "\ndelta v{}: {} ops, {} of {} shard plans invalidated{}",
        outcome.version,
        outcome.ops,
        outcome.affected.len(),
        engine.num_shards(),
        if outcome.repartitioned {
            " (full repartition)"
        } else {
            ""
        },
    );

    // Profile a post-delta forward: the report carries per-shard spans
    // plus a ShardSummary snapshot of the process-wide shard probe.
    let (_, report) = engine.profile(|e| e.forward().expect("fits"));
    println!("\n{report}");
    println!(
        "Rerun with HECTOR_SHARDS={} (or any count): every merged output\n\
         above is bit-identical — sharding changes where rows are\n\
         computed, never what they contain.",
        shards * 2
    );
}
