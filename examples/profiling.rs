//! Profiling walkthrough: compile a model, train a few steps under
//! [`Trainer::profile`], print the per-kernel/per-relation
//! [`ProfileReport`], and export the recorded spans as chrome-trace
//! JSON for Perfetto / `chrome://tracing`.
//!
//! ```bash
//! cargo run --release --example profiling [out.json]
//! ```
//!
//! The trace is written to `trace.json` (or the path given as the first
//! argument). The same export works without any code: set
//! `HECTOR_TRACE=out.json` and every engine writes its trace on drop.

use hector::prelude::*;

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());

    // 1. A scaled-down AIFB graph and an RGCN trainer with both paper
    //    optimizations.
    let spec = hector::datasets::aifb().scaled(0.05);
    let graph = GraphData::new(hector::generate(&spec));
    let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
        .dims(16, 16)
        .options(CompileOptions::best())
        .seed(0)
        .build_trainer(Adam::new(0.01))
        .unwrap();
    trainer.bind(&graph).unwrap();

    // 2. One warm-up step (first-run allocations would otherwise skew
    //    the profile), then three profiled steps.
    trainer.step().expect("fits in 24 GB");
    let (result, report) = trainer.profile(|t| t.epoch(3));
    let epoch = result.expect("fits in 24 GB");
    println!(
        "trained 3 steps, loss {:.4} -> {:.4}",
        epoch.losses.first().unwrap(),
        epoch.losses.last().unwrap()
    );

    // 3. The aggregated report: per-kernel-kind and per-relation time,
    //    compiler passes (empty here — the module was already cached),
    //    and the fraction of wall time the spans attribute.
    println!("\n{report}");

    // 4. Export the same spans for the Perfetto timeline view.
    trainer
        .engine_mut()
        .write_trace(&out)
        .expect("trace export");
    println!("chrome trace written to {out} (open in https://ui.perfetto.dev)");
}
