//! Quickstart: build an [`Engine`] for a built-in model, bind a
//! synthetic heterogeneous graph, run inference, and inspect the run
//! report — the whole lifecycle in three calls.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hector::prelude::*;

fn main() {
    // 1. A heterogeneous graph: a scaled-down copy of the paper's AIFB
    //    dataset (7 node types, 104 edge types).
    let spec = hector::datasets::aifb().scaled(0.1);
    let graph = GraphData::new(hector::generate(&spec));
    println!(
        "graph: {} nodes ({} types), {} edges ({} types), compaction ratio {:.2}",
        graph.graph().num_nodes(),
        graph.graph().num_node_types(),
        graph.graph().num_edges(),
        graph.graph().num_edge_types(),
        graph.compact().ratio(),
    );

    // 2. Build the engine: RGAT with both paper optimizations (compact
    //    materialization + linear operator reordering), compiled through
    //    the process-wide module cache, on the simulated RTX 3090.
    let mut engine = EngineBuilder::new(ModelKind::Rgat)
        .dims(32, 32)
        .options(CompileOptions::best())
        .seed(7)
        .build()
        .unwrap();
    let module = engine.module();
    println!(
        "compiled '{}': {} model lines -> {} kernels, {} generated lines (cache {})",
        module.name,
        module.source_lines,
        module.fw_kernels.len(),
        module.code.total_lines(),
        if engine.was_cache_hit() {
            "hit"
        } else {
            "miss"
        },
    );

    // 3. Bind the graph (parameters + inputs derive from the engine
    //    seed) and run. Warm reruns through the same engine reuse every
    //    buffer — zero heap allocations.
    let mut bound = engine.bind(&graph).unwrap();
    let report = bound.forward().expect("fits comfortably in 24 GB");

    let h_out = bound.output();
    println!(
        "output: [{} x {}] features; first row starts with {:.4}",
        h_out.rows(),
        h_out.cols(),
        h_out.at2(0, 0)
    );
    println!(
        "simulated GPU: {:.1} us total ({} launches; GEMM {:.1} us, traversal {:.1} us), peak {:.1} MB",
        report.elapsed_us,
        report.launches,
        report.gemm_us,
        report.traversal_us,
        report.peak_bytes as f64 / (1 << 20) as f64,
    );

    // A second identical engine (a sweep, a worker, a test) compiles
    // nothing: the module comes from the cache.
    let twin = EngineBuilder::new(ModelKind::Rgat)
        .dims(32, 32)
        .options(CompileOptions::best())
        .build()
        .unwrap();
    let stats = twin.device().counters().module_cache();
    println!(
        "module cache: {} hits / {} misses over {} entries ({} KB)",
        stats.hits,
        stats.misses,
        stats.entries,
        stats.bytes / 1024,
    );
}
