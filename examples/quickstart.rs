//! Quickstart: compile a built-in model, run inference on a synthetic
//! heterogeneous graph, and inspect the run report.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hector::prelude::*;

fn main() {
    // 1. A heterogeneous graph: a scaled-down copy of the paper's AIFB
    //    dataset (7 node types, 104 edge types).
    let spec = hector::datasets::aifb().scaled(0.1);
    let graph = GraphData::new(hector::generate(&spec));
    println!(
        "graph: {} nodes ({} types), {} edges ({} types), compaction ratio {:.2}",
        graph.graph().num_nodes(),
        graph.graph().num_node_types(),
        graph.graph().num_edges(),
        graph.graph().num_edge_types(),
        graph.compact().ratio(),
    );

    // 2. Compile RGAT with both paper optimizations (compact
    //    materialization + linear operator reordering).
    let module = hector::compile_model(ModelKind::Rgat, 32, 32, &CompileOptions::best());
    println!(
        "compiled '{}': {} model lines -> {} kernels, {} generated lines",
        module.name,
        module.source_lines,
        module.fw_kernels.len(),
        module.code.total_lines(),
    );

    // 3. Initialise parameters and inputs, then run on the simulated
    //    RTX 3090 with real (CPU) numerics.
    let mut rng = seeded_rng(7);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (outputs, report) = session
        .run_inference(&module, &graph, &mut params, &bindings)
        .expect("fits comfortably in 24 GB");

    let h_out = outputs.tensor(module.forward.outputs[0]);
    println!(
        "output: [{} x {}] features; first row starts with {:.4}",
        h_out.rows(),
        h_out.cols(),
        h_out.at2(0, 0)
    );
    println!(
        "simulated GPU: {:.1} us total ({} launches; GEMM {:.1} us, traversal {:.1} us), peak {:.1} MB",
        report.elapsed_us,
        report.launches,
        report.gemm_us,
        report.traversal_us,
        report.peak_bytes as f64 / (1 << 20) as f64,
    );
}
