//! Sampled mini-batch training: RGCN on a synthetic AM-like graph,
//! trained one seeded neighbor-sampled subgraph at a time (the
//! PIGEON-style pipeline), with batch `k+1` sampled on a background
//! thread while batch `k` trains.
//!
//! The batch sequence is a pure function of `(engine seed, epoch, batch
//! index)` — rerunning this example reproduces every subgraph, loss, and
//! weight bit for bit, regardless of `HECTOR_THREADS` or the pipeline
//! toggle.

use hector::prelude::*;

fn main() {
    let spec = hector::datasets::am().scaled(0.002);
    let graph = GraphData::new(hector::generate(&spec));
    println!(
        "mini-batch RGCN on an AM-like graph: {} nodes, {} edges, {} relations",
        graph.graph().num_nodes(),
        graph.graph().num_edges(),
        graph.graph().num_edge_types()
    );

    let classes = 8;
    let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
        .dims(16, classes)
        .options(CompileOptions::best())
        .seed(13)
        .build_trainer(Adam::new(0.02))
        .unwrap();
    trainer.bind(&graph).unwrap();

    // 64 seed nodes per batch, 2-hop fanout [10, 5], background producer.
    let cfg = SamplerConfig::new(64).fanouts(&[10, 5]).pipeline(true);

    println!("\nepoch   batches   mean loss   final loss");
    for epoch in 0..4u64 {
        // Each epoch reshuffles the seed order deterministically.
        let report = trainer
            .minibatch_epoch(&cfg.clone().epoch(epoch))
            .expect("batches fit comfortably");
        println!(
            "{epoch:>5}   {:>7}   {:>9.4}   {:>10.4}",
            report.steps,
            report.mean_loss().expect("real mode reports losses"),
            report.final_loss().expect("real mode reports losses"),
        );
    }

    // The device kept epoch-scoped books on the sampler: batch sizes,
    // production time, and how much of it the pipeline hid.
    let stats = trainer.engine().device().counters().sampler();
    println!(
        "\nsampler: {} batches, {} nodes, {} edges sampled",
        stats.batches, stats.nodes, stats.edges
    );
    println!(
        "sampling time {:.1} ms, consumer wait {:.1} ms (overlap {:.0}%)",
        stats.sample_wall_us / 1e3,
        stats.wait_wall_us / 1e3,
        stats.overlap_fraction() * 100.0
    );
    println!(
        "\nEvery batch is bit-reproducible from (seed, epoch, batch index):\n\
         rerun this example and the losses match exactly, at any\n\
         HECTOR_THREADS and with the pipeline on or off."
    );
}
