//! Full training loop: HGT on a synthetic MAG-like graph, trained with
//! Adam against random labels (the paper's §4.1 recipe), reporting the
//! loss curve and the forward/backward time split — including the
//! paper's observation that backward is dominated by atomic updates and
//! outer products.

use hector::prelude::*;
use hector_runtime::cnorm_tensor;

fn main() {
    let spec = hector::datasets::mag().scaled(0.002); // ~42K edges
    let graph = GraphData::new(hector::generate(&spec));
    println!(
        "training HGT on a MAG-like graph: {} nodes, {} edges, {} node types, {} relations",
        graph.graph().num_nodes(),
        graph.graph().num_edges(),
        graph.graph().num_node_types(),
        graph.graph().num_edge_types()
    );
    let _ = cnorm_tensor(&graph); // (RGCN-style norms, unused by HGT; shown for the API)

    let dim = 16;
    let classes = 8;
    let mut trainer = EngineBuilder::new(ModelKind::Hgt)
        .dims(dim, classes)
        .options(CompileOptions::best())
        .seed(11)
        .build_trainer(Adam::new(0.05))
        .unwrap();
    {
        let module = trainer.engine().module();
        println!(
            "compiled with C+R: {} forward kernels, {} backward kernels",
            module.fw_kernels.len(),
            module.bw_kernels.len()
        );
    }

    // Bind derives parameters, inputs, and random labels from the seed;
    // override the labels with a fixed pattern for a reproducible demo.
    trainer.bind(&graph).unwrap();
    let labels: Vec<usize> = (0..graph.graph().num_nodes())
        .map(|i| (i * 7 + 3) % classes)
        .collect();
    trainer.set_labels(labels);

    println!("\nepoch   loss      fw(us)    bw(us)");
    let mut first_report = None;
    for epoch in 0..15 {
        let report = trainer.step().expect("fits");
        if epoch % 2 == 0 || epoch == 14 {
            println!(
                "{epoch:>5}   {:.4}   {:>8.1}  {:>8.1}",
                report.loss.unwrap(),
                report.forward_us,
                report.backward_us
            );
        }
        if first_report.is_none() {
            first_report = Some(report);
        }
    }
    let r = first_report.unwrap();
    println!(
        "\nbackward / forward simulated time: {:.2}x — the backward pass pays for\n\
         atomic gradient scatters and the outer-product weight-gradient GEMMs\n\
         the paper profiles in sec 4.4.",
        r.backward_us / r.forward_us
    );
}
