//! Inspect the generated artifacts: define a custom model in the builder
//! DSL (not one of the built-ins), compile it, and print the inter-op
//! program, the kernel plan, and an excerpt of the generated CUDA-like
//! source — the paper's Fig. 5 workflow end to end.
//!
//! Note the CUDA-like source is a **text-only emission target**: it is
//! never compiled or executed (no CUDA toolchain exists here). Runs
//! execute the kernel *specs* on the CPU through an execution backend —
//! the reference interpreter or the specialized compiled-closure
//! backend — selected with `HECTOR_BACKEND` or
//! `EngineBuilder::backend`.

use hector::prelude::*;
use hector_ir::{AggNorm, KernelSpec};

fn main() {
    // A custom model: typed-linear messages gated by a per-relation
    // learned source score (a mini RGAT without the target term).
    let mut m = ModelBuilder::new("gated_rgcn", 32);
    let h = m.node_input("h", 32);
    let w = m.weight_per_etype("W", 32, 32);
    let gate_vec = m.weight_vec_per_etype("g", 32);
    let msg = m.typed_linear("msg", m.src(h), w);
    let score = m.dot("score", m.edge(msg), m.wvec(gate_vec));
    let gate = m.edge_softmax("gate", score);
    let out = m.aggregate("h_out", m.edge(msg), Some(m.edge(gate)), AggNorm::None);
    m.output(out);
    let source = m.finish();
    println!("model defined in {} DSL lines\n", source.lines);

    // Custom sources go through the same cached pipeline as the built-in
    // models (an `EngineBuilder::from_source(source)` engine would share
    // this exact module).
    let module = hector::compile_cached(&source, &CompileOptions::best().with_training(true));

    println!("=== optimized inter-operator program ===");
    println!("{}\n", module.forward);

    println!("=== kernel plan ===");
    for k in module.all_kernels() {
        match k {
            KernelSpec::Gemm(g) => println!(
                "  {} [GEMM]      rows={:?} gather={:?} scatter={:?}",
                g.name, g.rows, g.gather, g.scatter
            ),
            KernelSpec::Traversal(t) => println!(
                "  {} [traversal] domain={:?} ops={} locals={} atomic={}",
                t.name,
                t.domain,
                t.ops.len(),
                t.local_vars.len(),
                t.atomic
            ),
            KernelSpec::Fallback(f) => println!("  {} [fallback/BMM prep]", f.name),
        }
    }

    println!(
        "\nexecution: specs run on the '{}' backend (HECTOR_BACKEND also honoured); \
         the CUDA text below is emission-only and never executes",
        BackendKind::from_env().name()
    );

    println!(
        "\n=== first generated kernel ({} CUDA lines total) ===",
        module.code.cuda_lines()
    );
    let (name, src) = &module.code.kernels[0];
    println!("--- {name} ---");
    for line in src.lines().take(30) {
        println!("{line}");
    }
    println!(
        "... ({} more lines)",
        src.lines().count().saturating_sub(30)
    );

    println!("\n=== host registration excerpt ===");
    for line in module
        .code
        .host
        .lines()
        .rev()
        .take(8)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        println!("{line}");
    }
}
