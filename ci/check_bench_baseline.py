#!/usr/bin/env python3
"""Gate the perf-regression CI lane on deterministic allocation counts.

Usage: check_bench_baseline.py BENCH_PR4.json ci/alloc_baseline.json

Reads the merged bench artifact (interp_alloc + simd_gemm fragments) and
fails (exit 1) when any measured allocation count exceeds its committed
ceiling. Only allocation counts gate the lane: they are deterministic
per (code, HECTOR_SCALE) pair, so a breach is always a real regression.
Wall-clock and GFLOP/s fields ride along in the artifact for humans but
never fail the job.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        bench = json.load(f)
    with open(sys.argv[2]) as f:
        base = json.load(f)

    rows = bench.get("interp_alloc", {})
    failed = False

    for row, ceiling in base["max_allocs_per_pass"].items():
        got = rows.get(row, {}).get("allocs_per_pass")
        if got is None:
            print(f"FAIL {row}: missing from bench artifact")
            failed = True
        elif got > ceiling:
            print(f"FAIL {row}: {got} allocs/pass exceeds baseline {ceiling}")
            failed = True
        else:
            print(f"  ok {row}: {got} <= {ceiling} allocs/pass")

    for field, ceiling in (
        ("scratch_grows", base["max_scratch_grows"]),
        ("plan_grows", base["max_plan_grows"]),
    ):
        for row, metrics in sorted(rows.items()):
            got = metrics.get(field, 0)
            if got > ceiling:
                print(f"FAIL {row}: {field}={got} exceeds baseline {ceiling}")
                failed = True

    # Informational: surface the microkernel speedups in the job log.
    for row, metrics in sorted(bench.get("simd_gemm", {}).items()):
        print(f"info {row}: speedup {metrics.get('speedup', 'n/a')}")

    # Informational: engine/module-cache reuse wins (wall clock never
    # gates; the bench itself asserts the deterministic hit/miss shape).
    for row, metrics in sorted(bench.get("engine_reuse", {}).items()):
        print(
            f"info engine_reuse {row}: cold {metrics.get('cold_build_us', 'n/a')}us"
            f" -> cached {metrics.get('cached_build_us', 'n/a')}us"
            f" (hits {metrics.get('cache_hits', 'n/a')})"
        )

    # Informational: mini-batch pipeline throughput and overlap (batch
    # *contents* are gated by tests/minibatch.rs; wall clock never gates,
    # and CI runners rarely spare a core for the producer thread).
    for row, metrics in sorted(bench.get("minibatch", {}).items()):
        print(
            f"info minibatch {row}: {metrics.get('seeds_per_sec', 'n/a')} seeds/s,"
            f" overlap {metrics.get('overlap_fraction', 'n/a')},"
            f" pipeline speedup {metrics.get('speedup', 'n/a')}x"
        )

    # Informational: tracing-subsystem overhead (tests/run_alloc.rs gates
    # the zero-allocation claim; wall-clock deltas never gate — the A/A
    # line shows the noise floor the on/off delta should sit inside).
    for row, metrics in sorted(bench.get("trace_overhead", {}).items()):
        print(
            f"info trace_overhead {row}: span_start"
            f" {metrics.get('span_start_ns', 'n/a')}ns,"
            f" tracing-off A/A delta {metrics.get('off_aa_delta_pct', 'n/a')}%,"
            f" tracing-on overhead {metrics.get('on_overhead_pct', 'n/a')}%"
            f" ({metrics.get('events_recorded', 'n/a')} events)"
        )

    # Informational: interpreter vs specialized-backend speedups (the
    # bench itself asserts cross-backend bit-identity before timing;
    # wall clock never gates).
    for row, metrics in sorted(bench.get("backend_compare", {}).items()):
        print(
            f"info backend_compare {row}:"
            f" interp {metrics.get('interp_ms', 'n/a')}ms"
            f" -> specialized {metrics.get('specialized_ms', 'n/a')}ms"
            f" ({metrics.get('speedup', 'n/a')}x)"
        )

    # Informational: multi-tenant serving throughput (the bench itself
    # asserts the >= 1.5x coalescing contrast and tests/serve.rs gates
    # bit-identity with the sequential oracle; wall clock never gates).
    for row, metrics in sorted(bench.get("serve_throughput", {}).items()):
        print(
            f"info serve_throughput {row}:"
            f" {metrics.get('req_per_s', 'n/a')} req/s,"
            f" p50 {metrics.get('p50_us', 'n/a')}us,"
            f" p99 {metrics.get('p99_us', 'n/a')}us,"
            f" coalescing {metrics.get('coalescing_factor', 'n/a')}x"
        )

    if failed:
        print("perf-regression: allocation baseline exceeded")
        return 1
    print("perf-regression: all allocation counts within baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
