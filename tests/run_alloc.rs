//! Whole runs are allocation-free once warm — the per-*run* extension of
//! the per-*pass* invariant in `tests/interp_alloc.rs`.
//!
//! The same counting global allocator wraps `System` for this binary.
//! `Session::forward` / `Session::train_step` route every run through
//! the session's persistent `RunPlan`: output/gradient tensors, the loss
//! staging buffer, and the scratch arena are materialised on the first
//! call and reused (zero-filled) afterwards, so after step 1 a
//! sequential training loop performs **exactly zero** heap allocation
//! events — not merely row-invariant, zero. The same holds for the
//! threaded executor: per-chunk worker state (scratch blocks,
//! contribution buffers, scatter staging) is pooled on the session's
//! `WorkerArenas`, so a warm 4-thread run is just as allocation-free as
//! the sequential path — pinned here at `num_threads = 4` alongside the
//! sequential pins.
//!
//! This binary also pins the tracing subsystem's zero-overhead-when-off
//! claim: every executor loop calls `hector_trace::span_start()` (one
//! relaxed atomic load when disabled, as here — tracing is never enabled
//! in this binary), so a zero-allocation warm run proves the disabled
//! hot path allocates nothing. The `trace_overhead` bench covers the
//! wall-clock half of the claim.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use std::sync::{Mutex, MutexGuard};

use hector::prelude::*;
use hector_bench::alloc_counter::{alloc_events, CountingAlloc};
use hector_tensor::seeded_rng;

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// The allocation counter is process-global, so concurrently running
/// tests would see each other's warm-up allocations inside their
/// measured windows. Every test serializes on this lock.
static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn graph() -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "run_alloc".into(),
        num_nodes: 120,
        num_node_types: 3,
        num_edges: 960,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 77,
    }))
}

fn sequential_session() -> Session {
    Session::with_parallel(
        DeviceConfig::rtx3090(),
        Mode::Real,
        ParallelConfig::sequential(),
    )
}

fn threaded_session() -> Session {
    // Tiny min_chunk so the 120-node test graph splits into real chunks
    // on every kernel — the pooled-arena path, not the 1-chunk inline
    // shortcut.
    Session::with_parallel(
        DeviceConfig::rtx3090(),
        Mode::Real,
        ParallelConfig::sequential()
            .with_threads(4)
            .with_min_chunk_rows(4),
    )
}

#[test]
fn warm_threaded_train_steps_allocate_nothing() {
    let _g = serialize();
    // The HECTOR_THREADS=4 twin of `warm_train_steps_allocate_nothing`:
    // pooled per-chunk worker arenas make the threaded executor
    // allocation-free once warm, for every model and either backend
    // (`HECTOR_BACKEND` is honoured via `Session::with_parallel`).
    for kind in ModelKind::all() {
        let graph = graph();
        let module =
            hector::compile_model(kind, 16, 16, &CompileOptions::best().with_training(true));
        let mut rng = seeded_rng(5);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();
        let mut opt = Adam::new(0.01);
        let mut session = threaded_session();

        session
            .train_step(&module, &graph, &mut params, &bindings, &labels, &mut opt)
            .expect("first step fits");

        let before = alloc_events();
        for _ in 0..5 {
            session
                .train_step(&module, &graph, &mut params, &bindings, &labels, &mut opt)
                .expect("warm step fits");
        }
        let allocs = alloc_events() - before;
        assert_eq!(
            allocs,
            0,
            "{}: warm 4-thread train_step must perform zero heap allocations, saw {allocs}",
            kind.name()
        );
        let p = session.device().counters().parallel();
        assert!(
            p.parallel_launches > 0,
            "{}: kernels must actually have run on the pool",
            kind.name()
        );
        let s = *session.device().counters().scratch();
        assert_eq!(s.grows, 0, "{}: warm arenas must not grow", kind.name());
    }
}

#[test]
fn warm_threaded_forward_allocates_nothing() {
    let _g = serialize();
    for kind in ModelKind::all() {
        let graph = graph();
        let module = hector::compile_model(kind, 16, 16, &CompileOptions::best());
        let mut rng = seeded_rng(6);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        let mut session = threaded_session();
        session
            .forward(&module, &graph, &mut params, &bindings)
            .expect("warm-up forward fits");
        let before = alloc_events();
        for _ in 0..5 {
            session
                .forward(&module, &graph, &mut params, &bindings)
                .expect("warm forward fits");
        }
        let allocs = alloc_events() - before;
        assert_eq!(
            allocs,
            0,
            "{}: warm 4-thread forward must perform zero heap allocations, saw {allocs}",
            kind.name()
        );
        let p = session.device().counters().parallel();
        assert!(
            p.parallel_launches > 0,
            "{}: kernels must actually have run on the pool",
            kind.name()
        );
    }
}

#[test]
fn warm_train_steps_allocate_nothing() {
    let _g = serialize();
    for kind in ModelKind::all() {
        for use_adam in [false, true] {
            let graph = graph();
            let module =
                hector::compile_model(kind, 16, 16, &CompileOptions::best().with_training(true));
            let mut rng = seeded_rng(5);
            let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
            let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
            let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();
            let mut sgd = Sgd::new(0.01);
            let mut adam = Adam::new(0.01);
            let opt: &mut dyn Optimizer = if use_adam { &mut adam } else { &mut sgd };
            let mut session = sequential_session();

            // Step 1 materialises the plan (and Adam's moments).
            let (_, first) = session
                .train_step(&module, &graph, &mut params, &bindings, &labels, opt)
                .expect("first step fits");
            assert!(first.loss.is_some());

            let before = alloc_events();
            let mut last_loss = f32::INFINITY;
            for _ in 0..5 {
                let (_, report) = session
                    .train_step(&module, &graph, &mut params, &bindings, &labels, opt)
                    .expect("warm step fits");
                last_loss = report.loss.expect("real-mode training reports loss");
            }
            let allocs = alloc_events() - before;
            assert_eq!(
                allocs,
                0,
                "{} ({}): warm train_step must perform zero heap allocations, saw {allocs}",
                kind.name(),
                if use_adam { "adam" } else { "sgd" },
            );
            assert!(
                last_loss.is_finite(),
                "{}: training must stay finite",
                kind.name()
            );

            // The device counters corroborate: no plan growth after warm-up.
            let s = *session.device().counters().scratch();
            assert_eq!(
                s.plan_grows,
                0,
                "{}: warm plan must not grow: {s:?}",
                kind.name()
            );
            assert!(s.plan_bytes > 0, "plan footprint should be visible");
        }
    }
}

#[test]
fn warm_trainer_steps_allocate_nothing() {
    let _g = serialize();
    // The Trainer handle hits the plan path by construction: after the
    // first step, `trainer.step()` — the entire user-facing epoch body —
    // performs exactly zero heap allocations.
    for kind in ModelKind::all() {
        let graph = graph();
        let mut trainer = EngineBuilder::new(kind)
            .dims(16, 16)
            .options(CompileOptions::best())
            .parallel(ParallelConfig::sequential())
            .seed(5)
            .build_trainer(Adam::new(0.01))
            .unwrap();
        trainer.bind(&graph).unwrap();
        trainer.step().expect("first step fits");

        let before = alloc_events();
        for _ in 0..5 {
            trainer.step().expect("warm step fits");
        }
        let allocs = alloc_events() - before;
        assert_eq!(
            allocs,
            0,
            "{}: warm trainer.step() must perform zero heap allocations, saw {allocs}",
            kind.name()
        );
        assert!(
            trainer.loss().expect("real mode reports loss").is_finite(),
            "{}: training must stay finite",
            kind.name()
        );
        let s = *trainer.engine().device().counters().scratch();
        assert_eq!(s.plan_grows, 0, "{}: warm plan must not grow", kind.name());
    }
}

#[test]
fn warm_minibatch_steps_allocate_nothing() {
    let _g = serialize();
    // Batch *production* allocates (subgraph extraction builds fresh
    // tensors — that is the producer thread's job in the pipeline); the
    // training step itself must not. After one warm-up call,
    // `trainer.train_batch` on a same-shape batch goes entirely through
    // the session's persistent run plan: zero heap allocation events.
    for kind in ModelKind::all() {
        let graph = graph();
        let mut trainer = EngineBuilder::new(kind)
            .dims(16, 16)
            .options(CompileOptions::best())
            .parallel(ParallelConfig::sequential())
            .seed(5)
            .build_trainer(Adam::new(0.01))
            .unwrap();
        trainer.bind(&graph).unwrap();
        let batch = trainer
            .minibatch(&SamplerConfig::new(32).fanouts(&[3, 2]).pipeline(false))
            .next()
            .expect("at least one batch");
        trainer.train_batch(&batch).expect("first batch step fits");

        let before = alloc_events();
        for _ in 0..5 {
            trainer.train_batch(&batch).expect("warm batch step fits");
        }
        let allocs = alloc_events() - before;
        assert_eq!(
            allocs,
            0,
            "{}: warm train_batch must perform zero heap allocations, saw {allocs}",
            kind.name()
        );
        assert!(
            trainer.loss().expect("real mode reports loss").is_finite(),
            "{}: batch training must stay finite",
            kind.name()
        );
        let s = *trainer.engine().device().counters().scratch();
        assert_eq!(
            s.plan_grows,
            0,
            "{}: same-shape warm batch must not grow the plan",
            kind.name()
        );
    }
}

#[test]
fn warm_forward_allocates_nothing() {
    let _g = serialize();
    for kind in ModelKind::all() {
        let graph = graph();
        let module = hector::compile_model(kind, 16, 16, &CompileOptions::best());
        let mut rng = seeded_rng(6);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        let mut session = sequential_session();
        session
            .forward(&module, &graph, &mut params, &bindings)
            .expect("warm-up forward fits");
        let before = alloc_events();
        for _ in 0..5 {
            session
                .forward(&module, &graph, &mut params, &bindings)
                .expect("warm forward fits");
        }
        let allocs = alloc_events() - before;
        assert_eq!(
            allocs,
            0,
            "{}: warm forward must perform zero heap allocations, saw {allocs}",
            kind.name()
        );
    }
}

#[test]
fn plan_reuse_is_bit_identical_to_fresh_stores() {
    let _g = serialize();
    for kind in ModelKind::all() {
        let graph = graph();
        let module =
            hector::compile_model(kind, 16, 16, &CompileOptions::best().with_training(true));
        let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();

        // Fresh-store path.
        let mut rng = seeded_rng(9);
        let mut params_a = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        let mut sa = sequential_session();
        let mut opt_a = Adam::new(0.01);
        let mut fresh_losses = Vec::new();
        for _ in 0..4 {
            let (_, r) = sa
                .run_training_step(
                    &module,
                    &graph,
                    &mut params_a,
                    &bindings,
                    &labels,
                    &mut opt_a,
                )
                .unwrap();
            fresh_losses.push(r.loss.unwrap());
        }
        let (fresh_vars, _) = sa
            .run_inference(&module, &graph, &mut params_a, &bindings)
            .unwrap();

        // Plan-reuse path from identical seeds.
        let mut rng = seeded_rng(9);
        let mut params_b = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings_b = Bindings::standard(&module.forward, &graph, &mut rng);
        let mut sb = sequential_session();
        let mut opt_b = Adam::new(0.01);
        let mut plan_losses = Vec::new();
        for _ in 0..4 {
            let (_, r) = sb
                .train_step(
                    &module,
                    &graph,
                    &mut params_b,
                    &bindings_b,
                    &labels,
                    &mut opt_b,
                )
                .unwrap();
            plan_losses.push(r.loss.unwrap());
        }
        assert_eq!(fresh_losses, plan_losses, "{}", kind.name());
        let out = module.forward.outputs[0];
        let (plan_vars, _) = sb
            .forward(&module, &graph, &mut params_b, &bindings_b)
            .unwrap();
        assert_eq!(
            fresh_vars.tensor(out).data(),
            plan_vars.tensor(out).data(),
            "{}: plan-reuse outputs must be bit-identical",
            kind.name()
        );
    }
}
