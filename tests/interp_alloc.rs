//! Zero per-row heap allocations in the interpreter's steady state.
//!
//! A counting global allocator wraps `System` for this whole test
//! binary; the assertions measure allocation *events* across a warm
//! `Session::run_inference`. After warm-up, every per-run allocation is
//! per-*variable* or per-*kernel* (fresh `VarStore`, output tensors,
//! input clones) — never per row: the interpreter reads operands as
//! borrowed views and computes into the session's reusable scratch
//! arena. The proof is scale-invariance: a graph with 8× the edges and
//! 4× the nodes must cost *exactly* the same number of allocation
//! events per forward pass. Any per-row `Vec` in the hot path breaks
//! this by thousands.
//!
//! The sessions are pinned to `num_threads = 1`: the parallel executor
//! intentionally allocates per worker *chunk* (scratch blocks and
//! contribution buffers), which is O(threads), not O(rows), but would
//! make the strict equality below depend on chunk counts.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_bench::alloc_counter::{alloc_events, CountingAlloc};
use hector_tensor::seeded_rng;

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn graph(nodes: usize, edges: usize) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "alloc".into(),
        num_nodes: nodes,
        num_node_types: 3,
        num_edges: edges,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 71,
    }))
}

/// A warmed sequential session plus everything one forward pass needs.
struct Prepared {
    module: hector::CompiledModule,
    graph: GraphData,
    params: ParamStore,
    bindings: Bindings,
    session: Session,
}

fn prepare(kind: ModelKind, nodes: usize, edges: usize) -> Prepared {
    let graph = graph(nodes, edges);
    let module = hector::compile_model(kind, 16, 16, &CompileOptions::best());
    let mut rng = seeded_rng(9);
    let params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let session = Session::with_parallel(
        DeviceConfig::rtx3090(),
        Mode::Real,
        ParallelConfig::sequential(),
    );
    Prepared {
        module,
        graph,
        params,
        bindings,
        session,
    }
}

/// Allocation events across one forward pass on a warmed session.
fn forward_allocs(p: &mut Prepared) -> usize {
    let before = alloc_events();
    p.session
        .run_inference(&p.module, &p.graph, &mut p.params, &p.bindings)
        .expect("inference fits");
    alloc_events() - before
}

#[test]
fn steady_state_forward_pass_allocations_do_not_scale_with_rows() {
    for kind in ModelKind::all() {
        let mut small = prepare(kind, 60, 360);
        let mut large = prepare(kind, 240, 2880);
        // Warm-up: grows the scratch arena, caches graph views, sizes
        // the device bookkeeping.
        forward_allocs(&mut small);
        forward_allocs(&mut large);

        let a_small = forward_allocs(&mut small);
        let a_large = forward_allocs(&mut large);
        assert_eq!(
            a_small,
            a_large,
            "{}: steady-state allocation events must be row-count-invariant \
             (small graph: {a_small}, 8x-edge graph: {a_large})",
            kind.name()
        );
        // And the steady state is itself steady.
        assert_eq!(forward_allocs(&mut large), a_large, "{}", kind.name());
        // Sanity: per-run setup (VarStore, output tensors, bindings
        // clones) still allocates — the counter is actually live.
        assert!(a_small > 0, "counter should observe per-run setup");
    }
}

#[test]
fn scratch_counters_report_zero_growth_once_warm() {
    let mut p = prepare(ModelKind::Rgat, 80, 640);
    forward_allocs(&mut p); // warm-up run grows the arena
    forward_allocs(&mut p);
    let s = p.session.device().counters().scratch();
    assert!(s.kernels > 0, "real-mode kernels must be recorded");
    assert_eq!(s.grows, 0, "warm arena must not grow: {s:?}");
    assert_eq!(s.steady_kernels, s.kernels);
    assert!((s.steady_fraction() - 1.0).abs() < 1e-12);
    assert!(s.bytes > 0, "arena footprint should be visible");
}
