//! Pins the process-wide module cache's counter contract: constructing a
//! second engine with identical `(source, dims, options)` performs zero
//! compilations, and the hit/miss counters surface on every session's
//! `counters().module_cache()`.
//!
//! The cache and its counters are process-global, so this binary keeps
//! every cache-touching assertion inside one `#[test]` — the default
//! harness runs tests of one binary concurrently, and a sibling test
//! hitting the cache would skew exact deltas. (Other test *binaries* are
//! separate processes and cannot interfere.)

use hector::prelude::*;

#[test]
fn second_identical_engine_compiles_nothing() {
    let graph = GraphData::new(hector::generate(&DatasetSpec {
        name: "module_cache".into(),
        num_nodes: 50,
        num_node_types: 2,
        num_edges: 300,
        num_edge_types: 3,
        compaction_ratio: 0.5,
        type_skew: 1.0,
        seed: 31,
    }));

    ModuleCache::clear();
    let base = ModuleCache::stats();
    assert_eq!((base.hits, base.misses, base.entries), (0, 0, 0));

    let build = || {
        EngineBuilder::new(ModelKind::Rgat)
            .dims(16, 16)
            .options(CompileOptions::best())
            .seed(5)
            .build()
            .unwrap()
    };

    // First engine: one miss, one entry, a visible byte estimate.
    let mut first = build();
    assert!(!first.was_cache_hit());
    let after_first = ModuleCache::stats();
    assert_eq!(after_first.misses, 1, "first build compiles exactly once");
    assert_eq!(after_first.hits, 0);
    assert_eq!(after_first.entries, 1);
    assert!(after_first.bytes > 0, "footprint estimate must be visible");

    // Nine more engines: zero additional compilations.
    let mut twins: Vec<Engine> = (0..9).map(|_| build()).collect();
    let after_ten = ModuleCache::stats();
    assert_eq!(after_ten.misses, 1, "nine rebuilds must not compile");
    assert_eq!(after_ten.hits, 9);
    assert_eq!(after_ten.entries, 1);
    assert!(twins.iter().all(Engine::was_cache_hit));

    // The same numbers surface through any session's device counters.
    let via_counters = first.device().counters().module_cache();
    assert_eq!(via_counters, after_ten);
    assert!((via_counters.hit_rate() - 0.9).abs() < 1e-12);

    // Shared module, independent sessions: both engines run and agree.
    first.bind(&graph).unwrap().forward().expect("fits");
    let twin = &mut twins[0];
    twin.bind(&graph).unwrap().forward().expect("fits");
    assert_eq!(
        first.output().data(),
        twin.output().data(),
        "engines sharing a cached module must agree bitwise"
    );

    // Different dims or options are distinct entries (one miss each).
    let _other_dims = EngineBuilder::new(ModelKind::Rgat)
        .dims(8, 8)
        .options(CompileOptions::best())
        .build()
        .unwrap();
    let _other_opts = EngineBuilder::new(ModelKind::Rgat)
        .dims(16, 16)
        .options(CompileOptions::unopt())
        .build()
        .unwrap();
    let end = ModuleCache::stats();
    assert_eq!(end.misses, 3);
    assert_eq!(end.entries, 3);
    assert!(end.bytes > after_first.bytes);

    // Shrinking the byte budget evicts least-recently-used entries and
    // counts them; rebuilding an evicted module is a fresh miss.
    let prev_budget = ModuleCache::set_capacity_bytes(1);
    let squeezed = ModuleCache::stats();
    assert_eq!(squeezed.entries, 0, "a 1-byte budget retains nothing");
    assert_eq!(squeezed.evictions, 3, "every resident entry was evicted");
    ModuleCache::set_capacity_bytes(prev_budget);
    let rebuilt = build();
    assert!(
        !rebuilt.was_cache_hit(),
        "an evicted module must recompile on next use"
    );
    assert_eq!(ModuleCache::stats().misses, 4);
    assert_eq!(
        rebuilt.module().forward,
        first.module().forward,
        "eviction only forgets the cache's copy — recompilation agrees"
    );

    // clear() empties both the cache and the probe.
    ModuleCache::clear();
    let cleared = ModuleCache::stats();
    assert_eq!(
        (cleared.hits, cleared.misses, cleared.entries, cleared.bytes),
        (0, 0, 0, 0)
    );
    assert_eq!(first.device().counters().module_cache(), cleared);
}
