//! Smoke tests mirroring every `examples/*.rs` main path at reduced scale,
//! so the examples cannot silently rot: each test exercises the same API
//! sequence (graph construction, compilation, session run, report fields)
//! the corresponding example prints. `cargo test` also *compiles* the real
//! example binaries, so together the examples stay both buildable and
//! behaviourally covered.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_ir::{AggNorm, KernelSpec};
use hector_tensor::seeded_rng;

/// `examples/quickstart.rs`: AIFB-like graph, RGAT with best options,
/// real-mode inference with a populated run report.
#[test]
fn quickstart_path() {
    let spec = hector::datasets::aifb().scaled(0.05);
    let graph = GraphData::new(hector::generate(&spec));
    assert!(graph.compact().ratio() > 0.0);

    let module = hector::compile_model(ModelKind::Rgat, 16, 16, &CompileOptions::best());
    assert!(module.source_lines > 0);
    assert!(module.code.total_lines() > 0);

    let mut rng = seeded_rng(7);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (outputs, report) = session
        .run_inference(&module, &graph, &mut params, &bindings)
        .expect("fits comfortably");

    let h_out = outputs.tensor(module.forward.outputs[0]);
    assert_eq!(h_out.rows(), graph.graph().num_nodes());
    assert!(h_out.data().iter().all(|v| v.is_finite()));
    assert!(report.elapsed_us > 0.0);
    assert!(report.launches > 0);
    assert!(report.peak_bytes > 0);
}

/// `examples/citation_rgcn.rs`: the hand-built citation graph, unoptimized
/// RGCN, and the virtual-self-loop property for the isolated author node.
#[test]
fn citation_rgcn_path() {
    let mut b = HeteroGraphBuilder::new();
    let (paper0, _) = b.add_node_type(5);
    let (alpha, _) = b.add_node_type(1);
    let (writes, cites) = (0u32, 1u32);
    b.add_edge(alpha, 3, writes);
    b.add_edge(alpha, 4, writes);
    b.add_edge(1, 0, cites);
    b.add_edge(2, 0, cites);
    b.add_edge(3, 0, cites);
    b.add_edge(4, 1, cites);
    b.add_edge(4, 2, cites);
    let graph = GraphData::new(b.build());
    assert_eq!(graph.graph().num_nodes(), 6);
    assert_eq!(graph.graph().in_degree()[paper0 as usize], 3);

    let dim = 8;
    let module = hector::compile_model(ModelKind::Rgcn, dim, dim, &CompileOptions::unopt());
    let mut rng = seeded_rng(1);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (outputs, _) = session
        .run_inference(&module, &graph, &mut params, &bindings)
        .expect("tiny graph");
    let h = outputs.tensor(module.forward.outputs[0]);
    assert_eq!(h.rows(), 6);
    assert!(h.data().iter().all(|v| v.is_finite()));
    // ReLU output is non-negative everywhere.
    assert!(h.data().iter().all(|&v| v >= 0.0));
}

/// `examples/codegen_inspect.rs`: a custom builder-DSL model compiles to a
/// kernel plan with inspectable generated source.
#[test]
fn codegen_inspect_path() {
    let mut m = ModelBuilder::new("gated_rgcn", 16);
    let h = m.node_input("h", 16);
    let w = m.weight_per_etype("W", 16, 16);
    let gate_vec = m.weight_vec_per_etype("g", 16);
    let msg = m.typed_linear("msg", m.src(h), w);
    let score = m.dot("score", m.edge(msg), m.wvec(gate_vec));
    let gate = m.edge_softmax("gate", score);
    let out = m.aggregate("h_out", m.edge(msg), Some(m.edge(gate)), AggNorm::None);
    m.output(out);
    let source = m.finish();
    assert!(source.lines > 0);

    let module = hector::compile(&source, &CompileOptions::best().with_training(true));
    assert!(module.all_kernels().count() > 0);
    assert!(module.code.cuda_lines() > 0);
    let (_, first_kernel) = &module.code.kernels[0];
    assert!(first_kernel.contains("__global__"));
}

/// `examples/compaction_demo.rs`: the Fig. 7 compaction map plus the OOM
/// rescue (vanilla OOMs on a small device, compact fits).
#[test]
fn compaction_demo_path() {
    let mut b = HeteroGraphBuilder::new();
    b.add_node_type(6);
    b.add_edge(5, 3, 0);
    b.add_edge(5, 4, 0);
    b.add_edge(1, 0, 1);
    b.add_edge(2, 0, 1);
    b.add_edge(3, 0, 1);
    b.add_edge(4, 1, 1);
    b.add_edge(4, 2, 1);
    let graph = GraphData::new(b.build());
    let c = graph.compact();
    assert!(c.num_unique() < graph.graph().num_edges());
    // alpha->a and alpha->b share one compact (src, etype) row.
    assert_eq!(c.edge_to_unique()[0], c.edge_to_unique()[1]);

    // Scaled-down OOM rescue: the example uses 600K edges on a 256 MB
    // device; a tenth of both keeps the same contrast cheaply.
    let spec = DatasetSpec {
        name: "oom-demo".into(),
        num_nodes: 3_000,
        num_node_types: 3,
        num_edges: 60_000,
        num_edge_types: 16,
        compaction_ratio: 0.15,
        type_skew: 1.0,
        seed: 3,
    };
    let big = GraphData::new(hector::generate(&spec));
    let cfg = DeviceConfig::rtx3090().with_capacity(24 << 20);
    let mut results = Vec::new();
    for opts in [CompileOptions::unopt(), CompileOptions::compact_only()] {
        let module = hector::compile_model(ModelKind::Rgat, 64, 64, &opts);
        let mut rng = seeded_rng(9);
        let mut params = ParamStore::init(&module.forward, &big, &mut rng);
        let mut session = Session::new(cfg.clone(), Mode::Modeled);
        results.push(
            session
                .run_inference(&module, &big, &mut params, &Bindings::new())
                .is_ok(),
        );
    }
    assert_eq!(
        results,
        vec![false, true],
        "vanilla must OOM, compact must fit"
    );
}

/// `examples/hgt_training.rs`: HGT trains for a few epochs in real mode
/// with finite, decreasing loss.
#[test]
fn hgt_training_path() {
    let spec = hector::datasets::mag().scaled(0.0005);
    let graph = GraphData::new(hector::generate(&spec));
    let (dim, classes) = (8, 4);
    let module = hector::compile_model(
        ModelKind::Hgt,
        dim,
        classes,
        &CompileOptions::best().with_training(true),
    );
    assert!(!module.bw_kernels.is_empty());

    let mut rng = seeded_rng(11);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let labels: Vec<usize> = (0..graph.graph().num_nodes())
        .map(|i| (i * 7 + 3) % classes)
        .collect();
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let mut opt = Adam::new(0.05);
    let mut losses = Vec::new();
    for _ in 0..6 {
        let (_, report) = session
            .run_training_step(&module, &graph, &mut params, &bindings, &labels, &mut opt)
            .expect("fits");
        let loss = report.loss.unwrap();
        assert!(loss.is_finite());
        assert!(report.backward_us > 0.0);
        losses.push(loss);
    }
    assert!(
        losses.last().unwrap() < losses.first().unwrap(),
        "loss should decrease: {losses:?}"
    );
}

/// `examples/minibatch_training.rs`: sampled mini-batch epochs train
/// with finite losses, record sampler stats, and reproduce exactly on a
/// rerun with the same seed.
#[test]
fn minibatch_training_path() {
    let spec = hector::datasets::am().scaled(0.0005);
    let graph = GraphData::new(hector::generate(&spec));
    let run = || {
        let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 4)
            .options(CompileOptions::best())
            .seed(13)
            .build_trainer(Adam::new(0.02))
            .unwrap();
        trainer.bind(&graph).unwrap();
        let cfg = SamplerConfig::new(32).fanouts(&[4, 3]).pipeline(true);
        let mut losses = Vec::new();
        for epoch in 0..2u64 {
            let report = trainer
                .minibatch_epoch(&cfg.clone().epoch(epoch))
                .expect("fits");
            assert!(report.steps > 0);
            assert!(report.mean_loss().unwrap().is_finite());
            losses.extend(report.losses.iter().map(|l| l.to_bits()));
        }
        let stats = trainer.engine().device().counters().sampler();
        assert!(stats.batches > 0 && stats.nodes > 0 && stats.edges > 0);
        assert!(stats.sample_wall_us > 0.0);
        losses
    };
    assert_eq!(run(), run(), "same seed must reproduce every batch loss");
}

/// `examples/rgat_attention.rs`: all four option combos produce kernel
/// plans and modeled reports, and the optimized plan beats unoptimized
/// simulated time.
#[test]
fn rgat_attention_path() {
    // The example's exact spec: modeled mode never touches the numerics,
    // so full scale is cheap, and the C+R-beats-U contrast needs the low
    // compaction ratio to have enough edges to amortise against.
    let spec = DatasetSpec {
        name: "demo".into(),
        num_nodes: 4_000,
        num_node_types: 3,
        num_edges: 80_000,
        num_edge_types: 12,
        compaction_ratio: 0.2,
        type_skew: 1.5,
        seed: 5,
    };
    let graph = GraphData::new(hector::generate(&spec));
    let mut elapsed = Vec::new();
    for opts in [
        CompileOptions::unopt(),
        CompileOptions::compact_only(),
        CompileOptions::reorder_only(),
        CompileOptions::best(),
    ] {
        let module = hector::compile_model(ModelKind::Rgat, 64, 64, &opts);
        let gemms = module
            .fw_kernels
            .iter()
            .filter(|k| matches!(k, KernelSpec::Gemm(_)))
            .count();
        assert!(gemms > 0, "{}: RGAT always has GEMM kernels", opts.label());
        let mut rng = seeded_rng(2);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
        let (_, report) = session
            .run_inference(&module, &graph, &mut params, &Bindings::new())
            .expect("fits");
        assert!(report.elapsed_us > 0.0);
        elapsed.push(report.elapsed_us);
    }
    assert!(
        elapsed[3] < elapsed[0],
        "C+R ({:.1} us) should beat U ({:.1} us)",
        elapsed[3],
        elapsed[0]
    );
}

/// `examples/serve_demo.rs`: two tenants deployed behind one
/// [`ServeHandle`], a burst of coalesced requests, a hot swap that
/// drops nothing, and populated per-tenant counters.
#[test]
fn serve_demo_path() {
    use hector::serve::{ServeConfig, ServeHandle};

    let spec = |seed, nodes| DatasetSpec {
        name: "serve_demo_smoke".into(),
        num_nodes: nodes,
        num_node_types: 3,
        num_edges: nodes * 5,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed,
    };
    let g1 = GraphData::new(hector::generate(&spec(1, 48)));
    let g2 = GraphData::new(hector::generate(&spec(2, 32)));
    let builder = |kind, dims: usize, seed| {
        EngineBuilder::new(kind)
            .dims(dims, dims)
            .options(CompileOptions::best())
            .mode(Mode::Real)
            .seed(seed)
    };

    let srv = ServeHandle::start(ServeConfig::default().with_workers(2).with_max_coalesce(32));
    srv.deploy("rgcn_products", builder(ModelKind::Rgcn, 16, 7), &g1)
        .unwrap();
    srv.deploy("hgt_reviews", builder(ModelKind::Hgt, 8, 9), &g2)
        .unwrap();
    assert_eq!(srv.deployments().len(), 2);

    let tickets: Vec<_> = (0..12)
        .map(|i| {
            let (name, g) = if i % 3 == 0 {
                ("hgt_reviews", &g2)
            } else {
                ("rgcn_products", &g1)
            };
            srv.submit(name, (i * 13) % g.graph().num_nodes()).unwrap()
        })
        .collect();
    for t in tickets {
        let r = t.wait().expect("request served");
        assert!(r.rows[0].iter().all(|v| v.is_finite()));
    }

    let g3 = GraphData::new(hector::generate(&spec(3, 64)));
    let inflight: Vec<_> = (0..6)
        .map(|n| srv.submit("rgcn_products", n).unwrap())
        .collect();
    let v = srv
        .swap("rgcn_products", builder(ModelKind::Rgcn, 16, 7), &g3)
        .unwrap();
    assert_eq!(v, 2);
    for t in inflight {
        t.wait().expect("no request dropped across the swap");
    }

    let s = srv.stats("rgcn_products").unwrap();
    assert_eq!(s.failed + s.timed_out + s.shed, 0);
    assert!(
        s.completed >= 14,
        "8 singles + 6 in-flight: {}",
        s.completed
    );
    assert_eq!(s.swaps, 1);
    assert!(s.coalescing_factor() >= 1.0);
    srv.shutdown();
}

/// `examples/sharded_training.rs`: a destination-partitioned graph
/// trains and runs through a [`hector::ShardedEngine`] bit-identically
/// to the unsharded engine, and a streaming delta re-plans only the
/// affected shards.
#[test]
fn sharded_training_path() {
    use hector::{BindSharded, DeltaBatch, GreedyEdgeCut, ShardConfig, ShardedGraph};

    let spec = hector::datasets::aifb().scaled(0.02);
    let graph = hector::generate(&spec);
    let builder = EngineBuilder::new(ModelKind::Rgcn)
        .dims(8, 4)
        .options(CompileOptions::best())
        .training(true)
        .seed(3);

    // The unsharded oracle: same builder, same training trajectory.
    let data = GraphData::new(graph.clone());
    let mut oracle = builder.clone().build().unwrap();
    oracle.bind(&data).unwrap();
    let labels: Vec<usize> = (0..graph.num_nodes()).map(|v| v % 4).collect();
    let mut opt = Adam::new(0.02);
    for _ in 0..3 {
        oracle.train_step(&labels, &mut opt).expect("fits");
    }
    oracle.forward().expect("fits");

    let sharded =
        ShardedGraph::partition(graph.clone(), Box::new(GreedyEdgeCut), ShardConfig::new(3));
    assert!(sharded.edge_cut_fraction() <= 1.0);
    let mut engine = builder.clone().bind_sharded(sharded).unwrap();
    let mut opt = Adam::new(0.02);
    for _ in 0..3 {
        let r = engine.train_step(&labels, &mut opt).expect("fits");
        assert!(r.loss.expect("real mode").is_finite());
    }
    engine.forward().expect("fits");
    assert_eq!(
        engine.output().data(),
        oracle.output().data(),
        "sharded training/forward must be bit-identical to unsharded"
    );

    // A streaming delta touches one destination: at most a handful of
    // shard plans re-derive, and the graph version advances.
    let batch = DeltaBatch::new().add_edge(0, 1, 0).remove_edge(
        graph.src()[0],
        graph.dst()[0],
        graph.etype()[0],
    );
    let outcome = engine.apply_delta(&batch).expect("delta applies");
    assert_eq!(outcome.version, 1);
    assert!(!outcome.affected.is_empty());
    engine.forward().expect("fits");

    let (_, report) = engine.profile(|e| e.forward().expect("fits"));
    let stats = report
        .shard_stats
        .expect("sharded profile sets the summary");
    assert_eq!(stats.shards, 3);
    assert!(format!("{report}").contains("shards:"));
}

/// `examples/profiling.rs`: a profiled training epoch yields a populated
/// [`ProfileReport`] and a chrome-trace export at the requested path.
/// (The trace recorder is process-global, so the assertions here stay
/// coarse — no other test in this binary reads the trace back.)
#[test]
fn profiling_path() {
    let spec = hector::datasets::aifb().scaled(0.02);
    let graph = GraphData::new(hector::generate(&spec));
    let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
        .dims(16, 16)
        .options(CompileOptions::best())
        .seed(0)
        .build_trainer(Adam::new(0.01))
        .unwrap();
    trainer.bind(&graph).unwrap();
    trainer.step().expect("fits");

    let (result, report) = trainer.profile(|t| t.epoch(3));
    let epoch = result.expect("fits");
    assert_eq!(epoch.losses.len(), 3);
    assert!(report.wall_us > 0.0);
    assert!(!report.kernels.is_empty());
    assert!(format!("{report}").contains("profile:"));

    let out = std::env::temp_dir().join("hector_profiling_smoke_trace.json");
    let out = out.to_str().unwrap().to_string();
    trainer.engine_mut().write_trace(&out).expect("export");
    let json = std::fs::read_to_string(&out).expect("written");
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.contains("\"ph\":\"X\""));
    std::fs::remove_file(&out).ok();
}
