//! Memory accounting and out-of-memory behaviour.
//!
//! The paper's Table 4 / Fig. 8 OOM events and the Fig. 10 memory ratios
//! all come from allocation accounting; these tests pin the mechanisms:
//! footprints scale with edges, compaction shrinks them toward the entity
//! compaction ratio, weight-replicating baselines explode, and OOM
//! surfaces as an error with full context rather than a crash.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::baselines::{Pyg, System};
use hector::prelude::*;

fn graph_with(edges: usize, ratio: f64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "mem".into(),
        num_nodes: (edges / 10).max(10),
        num_node_types: 3,
        num_edges: edges,
        num_edge_types: 8,
        compaction_ratio: ratio,
        type_skew: 1.0,
        seed: 21,
    }))
}

fn peak_bytes(kind: ModelKind, graph: &GraphData, opts: &CompileOptions) -> usize {
    let module = hector::compile_model(kind, 64, 64, opts);
    let mut rng = seeded_rng(1);
    let mut params = ParamStore::init(&module.forward, graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
    let (_, report) = session
        .run_inference(&module, graph, &mut params, &Bindings::new())
        .unwrap();
    report.peak_bytes
}

#[test]
fn footprint_scales_with_edge_count() {
    let small = peak_bytes(
        ModelKind::Hgt,
        &graph_with(10_000, 0.8),
        &CompileOptions::unopt(),
    );
    let large = peak_bytes(
        ModelKind::Hgt,
        &graph_with(80_000, 0.8),
        &CompileOptions::unopt(),
    );
    assert!(
        large > 4 * small,
        "8x the edges should be > 4x the footprint: {small} -> {large}"
    );
}

#[test]
fn compact_footprint_tracks_entity_compaction_ratio() {
    // Fig. 10: the memory ratio correlates with the compaction ratio but
    // stays above it (nodewise data and weights are not compacted).
    let graph = graph_with(60_000, 0.25);
    let vanilla = peak_bytes(ModelKind::Hgt, &graph, &CompileOptions::unopt());
    let compact = peak_bytes(ModelKind::Hgt, &graph, &CompileOptions::compact_only());
    let ratio = compact as f64 / vanilla as f64;
    let entity = graph.compact().ratio();
    assert!(ratio < 1.0, "compaction must reduce memory");
    assert!(
        ratio > entity,
        "memory ratio {ratio:.2} cannot beat the entity ratio {entity:.2}"
    );
}

#[test]
fn training_uses_more_memory_than_inference() {
    let graph = graph_with(30_000, 0.6);
    let module_inf = hector::compile_model(ModelKind::Hgt, 64, 64, &CompileOptions::unopt());
    let module_tr = hector::compile_model(
        ModelKind::Hgt,
        64,
        64,
        &CompileOptions::unopt().with_training(true),
    );
    let mut rng = seeded_rng(2);
    let mut params = ParamStore::init(&module_tr.forward, &graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
    let (_, inf) = session
        .run_inference(&module_inf, &graph, &mut params, &Bindings::new())
        .unwrap();
    let mut sgd = Sgd::new(0.01);
    let (_, tr) = session
        .run_training_step(
            &module_tr,
            &graph,
            &mut params,
            &Bindings::new(),
            &[],
            &mut sgd,
        )
        .unwrap();
    assert!(
        tr.peak_bytes > inf.peak_bytes,
        "training saves activations and gradients: {} vs {}",
        tr.peak_bytes,
        inf.peak_bytes
    );
}

#[test]
fn oom_error_carries_context() {
    let graph = graph_with(50_000, 0.9);
    let module = hector::compile_model(ModelKind::Rgat, 64, 64, &CompileOptions::unopt());
    let mut rng = seeded_rng(3);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let cap = 8 << 20; // 8 MB device
    let mut session = Session::new(DeviceConfig::rtx3090().with_capacity(cap), Mode::Modeled);
    let err = session
        .run_inference(&module, &graph, &mut params, &Bindings::new())
        .unwrap_err();
    assert_eq!(err.capacity, cap);
    assert!(err.requested > 0);
    assert!(!err.label.is_empty());
}

#[test]
fn compaction_rescues_oom_runs() {
    // The paper: "with compaction enabled, Hector incurs no OOM error for
    // all the datasets tested". Build a graph whose vanilla edgewise
    // tensors overflow a small device but whose compact ones fit.
    let graph = graph_with(120_000, 0.15);
    let mut rng = seeded_rng(4);
    let module_u = hector::compile_model(ModelKind::Rgat, 64, 64, &CompileOptions::unopt());
    let mut params = ParamStore::init(&module_u.forward, &graph, &mut rng);
    // Pick a capacity between the two footprints.
    let peak_u = peak_bytes(ModelKind::Rgat, &graph, &CompileOptions::unopt());
    let peak_c = peak_bytes(ModelKind::Rgat, &graph, &CompileOptions::compact_only());
    assert!(peak_c < peak_u);
    let cap = (peak_c + peak_u) / 2;
    let mut session = Session::new(DeviceConfig::rtx3090().with_capacity(cap), Mode::Modeled);
    assert!(session
        .run_inference(&module_u, &graph, &mut params, &Bindings::new())
        .is_err());
    let module_c = hector::compile_model(ModelKind::Rgat, 64, 64, &CompileOptions::compact_only());
    let mut params_c = ParamStore::init(&module_c.forward, &graph, &mut rng);
    assert!(session
        .run_inference(&module_c, &graph, &mut params_c, &Bindings::new())
        .is_ok());
}

#[test]
fn pyg_weight_replication_ooms_where_hector_fits() {
    // §2.3's case study: the E×d×d replicated weight tensor.
    let graph = graph_with(150_000, 0.8);
    let d = 64;
    // Hector fits comfortably.
    let hector_peak = peak_bytes(ModelKind::Rgcn, &graph, &CompileOptions::unopt());
    let cap = hector_peak * 4;
    let cfg = DeviceConfig::rtx3090().with_capacity(cap);
    let pyg = Pyg.run(ModelKind::Rgcn, &graph, d, &cfg, false);
    // The replicated tensor alone is E*d*d*4 = 150k*64*64*4 ≈ 2.4 GB.
    // PyG falls back to its per-type loop when replication OOMs, which
    // still fits — so check the fast variant's footprint indirectly: if
    // PyG did not OOM it must have used the loop variant (slower) or
    // more memory than Hector.
    assert!(
        pyg.oom || pyg.peak_bytes > hector_peak || pyg.time_us > 0.0,
        "PyG must pay for replication one way or another"
    );
    let mut session = Session::new(cfg, Mode::Modeled);
    let module = hector::compile_model(ModelKind::Rgcn, d, d, &CompileOptions::unopt());
    let mut rng = seeded_rng(5);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    assert!(session
        .run_inference(&module, &graph, &mut params, &Bindings::new())
        .is_ok());
}
