//! Optimization-equivalence properties: compact materialization and
//! linear operator reordering are *semantics-preserving* program
//! rewrites, and their resource effects have known signs.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_ir::KernelSpec;
use proptest::prelude::*;

fn graph_from(nodes: usize, edges: usize, etypes: usize, ratio: f64, seed: u64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "prop".into(),
        num_nodes: nodes,
        num_node_types: 2,
        num_edges: edges,
        num_edge_types: etypes,
        compaction_ratio: ratio,
        type_skew: 1.0,
        seed,
    }))
}

fn forward_output(
    kind: ModelKind,
    opts: &CompileOptions,
    graph: &GraphData,
    dim: usize,
    seed: u64,
) -> Tensor {
    let module = hector::compile_model(kind, dim, dim, opts);
    let mut rng = seeded_rng(seed);
    let mut params = ParamStore::init(&module.forward, graph, &mut rng);
    let mut rng2 = seeded_rng(seed + 1000);
    let bindings = Bindings::standard(&module.forward, graph, &mut rng2);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (vars, _) = session
        .run_inference(&module, graph, &mut params, &bindings)
        .unwrap();
    vars.tensor(module.forward.outputs[0]).clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_option_combos_agree(
        seed in 0u64..1000,
        ratio in 0.2f64..1.0,
        etypes in 1usize..6,
    ) {
        let graph = graph_from(30, 120, etypes, ratio, seed);
        for kind in [ModelKind::Rgat, ModelKind::Hgt] {
            let base = forward_output(kind, &CompileOptions::unopt(), &graph, 8, seed);
            for opts in [
                CompileOptions::compact_only(),
                CompileOptions::reorder_only(),
                CompileOptions::best(),
            ] {
                let out = forward_output(kind, &opts, &graph, 8, seed);
                for (a, b) in base.data().iter().zip(out.data().iter()) {
                    prop_assert!(
                        (a - b).abs() < 1e-3 + 1e-3 * b.abs(),
                        "{kind:?} {} diverged: {a} vs {b}",
                        opts.label()
                    );
                }
            }
        }
    }
}

/// Optimization equivalence through the scratch-arena executor at
/// explicit thread counts (`HECTOR_THREADS ∈ {1, 4}` regardless of the
/// ambient environment): every optimization combo must agree with the
/// unoptimized baseline under both the sequential and the parallel
/// interpreter, and each combo must be bit-identical across the two
/// thread counts.
#[test]
fn option_combos_agree_at_one_and_four_threads() {
    let graph = graph_from(40, 200, 4, 0.4, 77);
    for kind in [ModelKind::Rgat, ModelKind::Hgt] {
        for opts in [
            CompileOptions::unopt(),
            CompileOptions::compact_only(),
            CompileOptions::reorder_only(),
            CompileOptions::best(),
        ] {
            let mut per_thread = Vec::new();
            for threads in [1usize, 4] {
                let module = hector::compile_model(kind, 8, 8, &opts);
                let mut rng = seeded_rng(13);
                let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
                let mut rng2 = seeded_rng(1013);
                let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);
                let par = ParallelConfig::sequential()
                    .with_threads(threads)
                    .with_min_chunk_rows(4);
                let mut session = Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par);
                let (vars, _) = session
                    .run_inference(&module, &graph, &mut params, &bindings)
                    .unwrap();
                per_thread.push(vars.tensor(module.forward.outputs[0]).clone());
            }
            let bits = |t: &Tensor| t.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
            assert_eq!(
                bits(&per_thread[0]),
                bits(&per_thread[1]),
                "{kind:?} {}: threads=1 vs threads=4 diverged",
                opts.label()
            );
        }
        // And the combos agree with each other (loose tolerance — the
        // rewrites reassociate float math), at both thread counts.
        for threads in [1usize, 4] {
            let out_of = |opts: &CompileOptions| {
                let module = hector::compile_model(kind, 8, 8, opts);
                let mut rng = seeded_rng(13);
                let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
                let mut rng2 = seeded_rng(1013);
                let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);
                let par = ParallelConfig::sequential()
                    .with_threads(threads)
                    .with_min_chunk_rows(4);
                let mut session = Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par);
                let (vars, _) = session
                    .run_inference(&module, &graph, &mut params, &bindings)
                    .unwrap();
                vars.tensor(module.forward.outputs[0]).clone()
            };
            let base = out_of(&CompileOptions::unopt());
            for opts in [
                CompileOptions::compact_only(),
                CompileOptions::reorder_only(),
                CompileOptions::best(),
            ] {
                let out = out_of(&opts);
                for (a, b) in base.data().iter().zip(out.data().iter()) {
                    assert!(
                        (a - b).abs() < 1e-3 + 1e-3 * b.abs(),
                        "{kind:?} {} diverged at {threads} threads: {a} vs {b}",
                        opts.label()
                    );
                }
            }
        }
    }
}

#[test]
fn compaction_reduces_modeled_memory_when_ratio_is_low() {
    let graph = graph_from(2_000, 40_000, 8, 0.2, 5);
    for kind in [ModelKind::Rgat, ModelKind::Hgt] {
        let mut peak = std::collections::HashMap::new();
        for opts in [CompileOptions::unopt(), CompileOptions::compact_only()] {
            let module = hector::compile_model(kind, 64, 64, &opts);
            let mut rng = seeded_rng(1);
            let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
            let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
            let (_, report) = session
                .run_inference(&module, &graph, &mut params, &Bindings::new())
                .unwrap();
            peak.insert(opts.label(), report.peak_bytes);
        }
        assert!(
            peak["C"] < peak["U"],
            "{kind:?}: compaction must shrink the footprint ({} vs {})",
            peak["C"],
            peak["U"]
        );
    }
}

#[test]
fn compaction_speeds_up_low_ratio_graphs() {
    let graph = graph_from(2_000, 40_000, 8, 0.15, 9);
    let mut times = std::collections::HashMap::new();
    for opts in [CompileOptions::unopt(), CompileOptions::compact_only()] {
        let module = hector::compile_model(ModelKind::Rgat, 64, 64, &opts);
        let mut rng = seeded_rng(1);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
        let (_, report) = session
            .run_inference(&module, &graph, &mut params, &Bindings::new())
            .unwrap();
        times.insert(opts.label(), report.elapsed_us);
    }
    assert!(
        times["C"] < times["U"],
        "compaction at ratio 0.15 must be faster: {} vs {}",
        times["C"],
        times["U"]
    );
}

#[test]
fn reordering_removes_a_gemm_from_rgat() {
    let unopt = hector::compile_model(ModelKind::Rgat, 64, 64, &CompileOptions::unopt());
    let reord = hector::compile_model(ModelKind::Rgat, 64, 64, &CompileOptions::reorder_only());
    let gemms = |m: &hector::CompiledModule| {
        m.fw_kernels
            .iter()
            .filter(|k| matches!(k, KernelSpec::Gemm(_)))
            .count()
    };
    assert!(gemms(&reord) < gemms(&unopt));
    assert!(
        !reord.forward.preps.is_empty(),
        "reorder introduces weight preps"
    );
}

#[test]
fn best_options_never_slower_than_unopt_on_typical_graphs() {
    // The paper's "best fixed strategy" claim: C+R wins on average. On
    // individual small graphs it can tie, so allow a small margin.
    let graph = graph_from(5_000, 100_000, 16, 0.4, 3);
    for kind in [ModelKind::Rgat, ModelKind::Hgt] {
        let mut t = std::collections::HashMap::new();
        for opts in [CompileOptions::unopt(), CompileOptions::best()] {
            let module = hector::compile_model(kind, 64, 64, &opts);
            let mut rng = seeded_rng(2);
            let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
            let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
            let (_, report) = session
                .run_inference(&module, &graph, &mut params, &Bindings::new())
                .unwrap();
            t.insert(opts.label(), report.elapsed_us);
        }
        assert!(
            t["C+R"] <= t["U"] * 1.05,
            "{kind:?}: C+R should not lose: {} vs {}",
            t["C+R"],
            t["U"]
        );
    }
}
