//! Determinism, remap round-trips, and training reproducibility of the
//! sampled mini-batch pipeline.
//!
//! The contract pinned here: a batch's content is a pure function of
//! `(engine seed, epoch, batch index)` — bitwise identical across
//! `HECTOR_THREADS` values and pipeline on/off — and a mini-batch
//! training epoch inherits that reproducibility in every loss and every
//! learned weight. Plus the subgraph remap property: gathering rows
//! through the node map and reading them back through the same map is
//! the identity on the sampled nodes.

use hector::prelude::*;
use hector::{NeighborSampler, Subgraph};
use proptest::prelude::*;

fn graph(seed: u64, nodes: usize, edges: usize) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "minibatch".into(),
        num_nodes: nodes,
        num_node_types: 3,
        num_edges: edges,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed,
    }))
}

fn trainer(kind: ModelKind, threads: usize, g: &GraphData) -> Trainer {
    let mut t = EngineBuilder::new(kind)
        .dims(16, 16)
        .options(CompileOptions::best())
        .parallel(
            ParallelConfig::sequential()
                .with_threads(threads)
                .with_min_chunk_rows(4),
        )
        .seed(17)
        .build_trainer(Adam::new(0.01))
        .unwrap();
    t.bind(g).unwrap();
    t
}

/// Everything that identifies one produced batch, down to raw feature
/// bits: remap tables, seed set, labels, and every input binding.
fn batch_digest(b: &Batch, input_names: &[String]) -> Vec<u64> {
    let mut d: Vec<u64> = Vec::new();
    d.push(b.index as u64);
    d.extend(b.subgraph.node_map().iter().map(|&x| u64::from(x)));
    d.push(u64::MAX);
    d.extend(b.subgraph.edge_map().iter().map(|&x| u64::from(x)));
    d.push(u64::MAX);
    d.extend(b.subgraph.seed_local().iter().map(|&x| u64::from(x)));
    d.push(u64::MAX);
    d.extend(b.labels.iter().map(|&x| x as u64));
    for name in input_names {
        d.push(u64::MAX);
        let t = b.bindings.get(name).expect("batch binds every input");
        d.extend(t.data().iter().map(|v| u64::from(v.to_bits())));
    }
    d
}

/// One mini-batch epoch; returns (per-batch loss bits, final weight
/// bits) — the whole trajectory, bit for bit.
fn epoch_bits(
    kind: ModelKind,
    g: &GraphData,
    threads: usize,
    pipeline: bool,
) -> (Vec<u32>, Vec<u32>) {
    let mut t = trainer(kind, threads, g);
    let cfg = SamplerConfig::new(24).fanouts(&[3, 2]).pipeline(pipeline);
    let report = t.minibatch_epoch(&cfg).expect("epoch fits");
    let losses = report.losses.iter().map(|l| l.to_bits()).collect();
    let params = t.engine().params();
    let mut weights = Vec::new();
    for w in 0..params.len() {
        let wid = hector_ir::WeightId(w as u32);
        weights.extend(params.weight(wid).data().iter().map(|v| v.to_bits()));
    }
    (losses, weights)
}

#[test]
fn batch_sequence_is_identical_with_and_without_pipeline() {
    let g = graph(11, 120, 720);
    for kind in ModelKind::all() {
        let t = trainer(kind, 1, &g);
        let names: Vec<String> = {
            let fw = &t.engine().module().forward;
            fw.inputs.iter().map(|&v| fw.var(v).name.clone()).collect()
        };
        let cfg = SamplerConfig::new(32).fanouts(&[4, 3]);
        let piped: Vec<Vec<u64>> = t
            .minibatch(&cfg.clone().pipeline(true))
            .map(|b| batch_digest(&b, &names))
            .collect();
        let sync: Vec<Vec<u64>> = t
            .minibatch(&cfg.pipeline(false))
            .map(|b| batch_digest(&b, &names))
            .collect();
        assert!(piped.len() > 1, "graph must split into several batches");
        assert_eq!(
            piped,
            sync,
            "{}: pipeline changed batch content",
            kind.name()
        );
    }
}

#[test]
fn minibatch_training_is_bit_identical_across_thread_counts_and_pipeline() {
    let g = graph(23, 96, 576);
    for kind in ModelKind::all() {
        let reference = epoch_bits(kind, &g, 1, false);
        for (threads, pipeline) in [(1, true), (4, false), (4, true)] {
            let got = epoch_bits(kind, &g, threads, pipeline);
            assert_eq!(
                reference.0,
                got.0,
                "{}: loss trajectory diverged at threads={threads} pipeline={pipeline}",
                kind.name()
            );
            assert_eq!(
                reference.1,
                got.1,
                "{}: trained weights diverged at threads={threads} pipeline={pipeline}",
                kind.name()
            );
        }
    }
}

#[test]
fn distinct_seeds_and_epochs_sample_distinct_batches() {
    let g = graph(7, 150, 900);
    let cfg = SamplerConfig::new(30).fanouts(&[4]);
    let a = NeighborSampler::new(g.graph(), &cfg, 1).sample(g.graph(), 0);
    let b = NeighborSampler::new(g.graph(), &cfg, 2).sample(g.graph(), 0);
    assert_ne!(a.seeds, b.seeds, "different seeds must shuffle differently");
    let e0 = NeighborSampler::new(g.graph(), &cfg, 1).sample(g.graph(), 0);
    let e1 = NeighborSampler::new(g.graph(), &SamplerConfig::new(30).fanouts(&[4]).epoch(1), 1)
        .sample(g.graph(), 0);
    assert_eq!(a.seeds, e0.seeds, "same seed+epoch must reproduce");
    assert_ne!(e0.seeds, e1.seeds, "epochs must reshuffle");
}

#[test]
fn sampler_stats_report_overlap_only_when_pipelined() {
    let g = graph(3, 120, 720);
    for pipeline in [false, true] {
        let mut t = trainer(ModelKind::Rgcn, 1, &g);
        let cfg = SamplerConfig::new(24).fanouts(&[3, 2]).pipeline(pipeline);
        t.minibatch_epoch(&cfg).expect("epoch fits");
        let s = t.engine().device().counters().sampler();
        assert!(s.batches > 1, "stats must cover the whole epoch");
        assert!(s.nodes > 0 && s.edges > 0);
        assert!(s.sample_wall_us > 0.0);
        let f = s.overlap_fraction();
        assert!(
            (0.0..=1.0).contains(&f),
            "overlap fraction {f} out of range"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random graph × sampler shape: the remap tables are valid and
    /// gathering node/edge rows through them round-trips — local row
    /// `i` of a gathered tensor is exactly full row `node_map[i]`.
    #[test]
    fn subgraph_remap_round_trips_features_and_labels(
        seed in 0u64..1000,
        nodes in 24usize..120,
        edges_per_node in 2usize..8,
        batch in 4usize..32,
        fanout in 1usize..6,
        hops in 1usize..3,
    ) {
        let g = graph(seed, nodes, nodes * edges_per_node);
        let full = g.graph();
        let cfg = SamplerConfig::new(batch).fanouts(&vec![fanout; hops]);
        let sampler = NeighborSampler::new(full, &cfg, seed ^ 0xABCD);
        let sampled = sampler.sample(full, 0);
        let sub = Subgraph::extract(full, &sampled);

        // Remap tables index the full graph and are duplicate-free.
        let mut seen = std::collections::HashSet::new();
        for &n in sub.node_map() {
            prop_assert!((n as usize) < full.num_nodes());
            prop_assert!(seen.insert(n), "node {n} mapped twice");
        }

        // Feature gather: local row i == full row node_map[i].
        let width = 3usize;
        let feats: Vec<f32> = (0..full.num_nodes() * width).map(|i| i as f32).collect();
        let mut local = vec![0.0f32; sub.graph().num_nodes() * width];
        sub.gather_node_rows(&feats, &mut local, width);
        for (i, &orig) in sub.node_map().iter().enumerate() {
            let o = orig as usize;
            prop_assert_eq!(
                &local[i * width..(i + 1) * width],
                &feats[o * width..(o + 1) * width]
            );
        }

        // Label gather is the same permutation on scalars.
        let labels: Vec<usize> = (0..full.num_nodes()).map(|i| i * 7 + 1).collect();
        let local_labels = sub.gather_node_values(&labels);
        for (i, &orig) in sub.node_map().iter().enumerate() {
            prop_assert_eq!(local_labels[i], labels[orig as usize]);
        }

        // Every subgraph edge connects the remapped endpoints of its
        // original, preserving the edge type.
        let sg = sub.graph();
        for (le, &oe) in sub.edge_map().iter().enumerate() {
            let oe = oe as usize;
            prop_assert_eq!(sg.etype()[le], full.etype()[oe]);
            let (ls, ld) = (sg.src()[le] as usize, sg.dst()[le] as usize);
            prop_assert_eq!(sub.node_map()[ls], full.src()[oe]);
            prop_assert_eq!(sub.node_map()[ld], full.dst()[oe]);
        }
    }

    /// Random sampler shapes: the same seed reproduces the batch
    /// sequence bit for bit; pipeline on/off cannot change it.
    #[test]
    fn sampler_is_deterministic_per_seed(
        seed in 0u64..1000,
        nodes in 30usize..100,
        edges_per_node in 2usize..6,
        batch in 8usize..40,
    ) {
        let g = graph(seed.wrapping_mul(31), nodes, nodes * edges_per_node);
        let cfg = SamplerConfig::new(batch).fanouts(&[3, 2]);
        let s1 = NeighborSampler::new(g.graph(), &cfg, seed);
        let s2 = NeighborSampler::new(g.graph(), &cfg, seed);
        prop_assert_eq!(s1.num_batches(), s2.num_batches());
        for k in 0..s1.num_batches() {
            let a = s1.sample(g.graph(), k);
            let b = s2.sample(g.graph(), k);
            prop_assert_eq!(&a.seeds, &b.seeds);
            prop_assert_eq!(&a.nodes, &b.nodes);
            prop_assert_eq!(&a.edges, &b.edges);
        }
    }
}
