//! Gradient correctness: the IR-generated backward pass must agree with
//! central finite differences of the loss for every model and every
//! optimization combination (including the chain rule through
//! reorder-fused derived weights).

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_ir::WeightId;
use hector_runtime::nll_loss_and_grad;

fn tiny_graph() -> GraphData {
    let spec = DatasetSpec {
        name: "grad".into(),
        num_nodes: 14,
        num_node_types: 2,
        num_edges: 40,
        num_edge_types: 3,
        compaction_ratio: 0.6,
        type_skew: 1.0,
        seed: 77,
    };
    GraphData::new(hector::generate(&spec))
}

/// Computes the loss at the current parameters by running forward only.
fn loss_at(
    module: &hector::CompiledModule,
    graph: &GraphData,
    params: &mut ParamStore,
    bindings: &Bindings,
    labels: &[usize],
) -> f32 {
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (vars, _) = session
        .run_inference(module, graph, params, bindings)
        .unwrap();
    let logits = vars.tensor(module.forward.outputs[0]);
    nll_loss_and_grad(logits, labels).loss
}

/// A do-nothing optimizer: leaves gradients in place for inspection.
struct NoOp;
impl Optimizer for NoOp {
    fn step(&mut self, _p: &mut ParamStore, _prog: &hector_ir::Program) {}
}

fn check_model(kind: ModelKind, opts: &CompileOptions, dim: usize, seed: u64) {
    let graph = tiny_graph();
    let module = hector::compile_model(kind, dim, dim, &opts.clone().with_training(true));
    let mut rng = seeded_rng(seed);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let mut rng2 = seeded_rng(seed + 1);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);
    let labels: Vec<usize> = (0..graph.graph().num_nodes())
        .map(|i| i % dim.min(4))
        .collect();

    // Analytic gradients from one training step (NoOp optimizer keeps
    // both weights and gradients intact).
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let mut noop = NoOp;
    let (_, report) = session
        .run_training_step(&module, &graph, &mut params, &bindings, &labels, &mut noop)
        .unwrap();
    assert!(report.loss.is_some());

    // Finite differences on a sample of weight entries of every
    // non-derived weight.
    let eps = 3e-3f32;
    for wi in 0..module.forward.weights.len() {
        if module.forward.weights[wi].derived {
            continue;
        }
        let wid = WeightId(wi as u32);
        let n = params.weight(wid).len();
        let analytic = params.grad(wid).clone();
        let stride = (n / 5).max(1);
        for idx in (0..n).step_by(stride) {
            let orig = params.weight(wid).data()[idx];
            params.weight_mut(wid).data_mut()[idx] = orig + eps;
            let up = loss_at(&module, &graph, &mut params, &bindings, &labels);
            params.weight_mut(wid).data_mut()[idx] = orig - eps;
            let down = loss_at(&module, &graph, &mut params, &bindings, &labels);
            params.weight_mut(wid).data_mut()[idx] = orig;
            let fd = (up - down) / (2.0 * eps);
            let an = analytic.data()[idx];
            assert!(
                (fd - an).abs() < 2e-2 + 0.15 * fd.abs().max(an.abs()),
                "{kind:?} {} weight '{}'[{idx}]: fd={fd} analytic={an}",
                opts.label(),
                module.forward.weights[wi].name,
            );
        }
    }
}

#[test]
fn rgcn_gradients_match_finite_differences() {
    for opts in [CompileOptions::unopt(), CompileOptions::best()] {
        check_model(ModelKind::Rgcn, &opts, 6, 11);
    }
}

#[test]
fn rgat_gradients_match_finite_differences() {
    for opts in [
        CompileOptions::unopt(),
        CompileOptions::compact_only(),
        CompileOptions::reorder_only(),
        CompileOptions::best(),
    ] {
        check_model(ModelKind::Rgat, &opts, 6, 23);
    }
}

#[test]
fn hgt_gradients_match_finite_differences() {
    for opts in [
        CompileOptions::unopt(),
        CompileOptions::compact_only(),
        CompileOptions::reorder_only(),
        CompileOptions::best(),
    ] {
        check_model(ModelKind::Hgt, &opts, 6, 37);
    }
}
