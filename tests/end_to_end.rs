//! End-to-end correctness: compiled Hector kernels must reproduce the
//! dense reference implementations (up to f32 accumulation order) for
//! every model and every optimization combination.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_models::{hgt, reference, rgat, rgcn};
use hector_runtime::cnorm_tensor;
use hector_tensor::assert_close;

fn test_graph(seed: u64) -> GraphData {
    let spec = DatasetSpec {
        name: "e2e".into(),
        num_nodes: 60,
        num_node_types: 3,
        num_edges: 240,
        num_edge_types: 5,
        compaction_ratio: 0.5,
        type_skew: 1.0,
        seed,
    };
    GraphData::new(hector::generate(&spec))
}

fn all_option_combos() -> Vec<CompileOptions> {
    vec![
        CompileOptions::unopt(),
        CompileOptions::compact_only(),
        CompileOptions::reorder_only(),
        CompileOptions::best(),
    ]
}

fn run_compiled(
    kind: ModelKind,
    opts: &CompileOptions,
    graph: &GraphData,
    dim: usize,
    seed: u64,
) -> (Tensor, ParamStore, Bindings, hector::CompiledModule) {
    let module = hector::compile_model(kind, dim, dim, opts);
    let mut rng = seeded_rng(seed);
    let mut params = ParamStore::init(&module.forward, graph, &mut rng);
    let mut rng2 = seeded_rng(seed + 1);
    let bindings = Bindings::standard(&module.forward, graph, &mut rng2);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (vars, _) = session
        .run_inference(&module, graph, &mut params, &bindings)
        .expect("small graph cannot OOM");
    let out = vars.tensor(module.forward.outputs[0]).clone();
    (out, params, bindings, module)
}

#[test]
fn rgcn_matches_reference_under_all_options() {
    let graph = test_graph(100);
    for opts in all_option_combos() {
        let (got, params, bindings, _m) = run_compiled(ModelKind::Rgcn, &opts, &graph, 16, 7);
        let expect = reference::rgcn_forward(
            graph.graph(),
            bindings.get("h").unwrap(),
            &cnorm_tensor(&graph),
            params.weight(rgcn::weights::W),
            params.weight(rgcn::weights::W0),
        );
        assert_close(&got, &expect, 1e-3, 1e-4);
    }
}

#[test]
fn rgat_matches_reference_under_all_options() {
    let graph = test_graph(200);
    for opts in all_option_combos() {
        let (got, params, bindings, _m) = run_compiled(ModelKind::Rgat, &opts, &graph, 16, 17);
        let expect = reference::rgat_forward(
            graph.graph(),
            bindings.get("h").unwrap(),
            params.weight(rgat::weights::W),
            params.weight(rgat::weights::W_S),
            params.weight(rgat::weights::W_T),
        );
        assert_close(&got, &expect, 1e-3, 1e-4);
    }
}

#[test]
fn hgt_matches_reference_under_all_options() {
    let graph = test_graph(300);
    for opts in all_option_combos() {
        let (got, params, bindings, _m) = run_compiled(ModelKind::Hgt, &opts, &graph, 16, 27);
        let expect = reference::hgt_forward(
            graph.graph(),
            bindings.get("h").unwrap(),
            params.weight(hgt::weights::W_K),
            params.weight(hgt::weights::W_Q),
            params.weight(hgt::weights::W_M),
            params.weight(hgt::weights::W_A),
            params.weight(hgt::weights::W_O),
        );
        assert_close(&got, &expect, 1e-3, 1e-4);
    }
}

#[test]
fn csr_adjacency_produces_identical_results() {
    let graph = test_graph(400);
    let mut coo = CompileOptions::best();
    coo.adjacency = hector_ir::AdjacencyAccess::Coo;
    let mut csr = CompileOptions::best();
    csr.adjacency = hector_ir::AdjacencyAccess::Csr;
    let (a, _, _, _) = run_compiled(ModelKind::Rgat, &coo, &graph, 8, 3);
    let (b, _, _, _) = run_compiled(ModelKind::Rgat, &csr, &graph, 8, 3);
    assert_close(&a, &b, 1e-6, 1e-6);
}

#[test]
fn isolated_destination_nodes_get_zero_aggregate() {
    // A graph where one node has no incoming edges: RGAT output for it is
    // all zeros (no self loop in RGAT).
    let mut b = HeteroGraphBuilder::new();
    b.add_node_type(4);
    b.add_edge(0, 1, 0);
    b.add_edge(2, 1, 0);
    b.add_edge(1, 2, 1);
    let graph = GraphData::new(b.build());
    let (got, ..) = run_compiled(ModelKind::Rgat, &CompileOptions::best(), &graph, 8, 5);
    assert!(
        got.row(3).iter().all(|&x| x == 0.0),
        "node 3 has no in-edges"
    );
    assert!(
        got.row(1).iter().any(|&x| x != 0.0),
        "node 1 aggregates two edges"
    );
}

#[test]
fn deterministic_across_runs() {
    let graph = test_graph(500);
    let (a, ..) = run_compiled(ModelKind::Hgt, &CompileOptions::best(), &graph, 8, 9);
    let (b, ..) = run_compiled(ModelKind::Hgt, &CompileOptions::best(), &graph, 8, 9);
    assert_close(&a, &b, 0.0, 0.0);
}

#[test]
fn larger_dims_stay_correct() {
    let graph = test_graph(600);
    for dim in [32, 64] {
        let (got, params, bindings, _m) =
            run_compiled(ModelKind::Rgcn, &CompileOptions::best(), &graph, dim, 31);
        let expect = reference::rgcn_forward(
            graph.graph(),
            bindings.get("h").unwrap(),
            &cnorm_tensor(&graph),
            params.weight(rgcn::weights::W),
            params.weight(rgcn::weights::W0),
        );
        assert_close(&got, &expect, 1e-3, 1e-4);
    }
}

#[test]
fn graph_with_no_edges_runs_cleanly() {
    // Degenerate but legal: nodes exist, no edges at all. Aggregations
    // produce zeros; GEMMs over zero rows are no-ops.
    let mut b = HeteroGraphBuilder::new();
    b.add_node_type(5);
    let graph = GraphData::new(b.build());
    // RGCN still has the nodewise self-loop path. num_edge_types is 0,
    // so the per-relation weight stack is empty — exercise that too.
    let module = hector::compile_model(ModelKind::Rgcn, 4, 4, &CompileOptions::best());
    let mut rng = seeded_rng(1);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (vars, report) = session
        .run_inference(&module, &graph, &mut params, &bindings)
        .unwrap();
    let out = vars.tensor(module.forward.outputs[0]);
    assert_eq!(out.rows(), 5);
    assert!(out.data().iter().all(|v| v.is_finite()));
    assert!(report.launches > 0);
}

#[test]
fn single_node_self_loop_graph() {
    let mut b = HeteroGraphBuilder::new();
    b.add_node_type(1);
    b.add_edge(0, 0, 0);
    let graph = GraphData::new(b.build());
    let (got, params, bindings, _m) =
        run_compiled(ModelKind::Rgat, &CompileOptions::best(), &graph, 4, 2);
    // One edge, softmax weight is exactly 1: output = hs.
    let expect = hector_models::reference::rgat_forward(
        graph.graph(),
        bindings.get("h").unwrap(),
        params.weight(hector_models::rgat::weights::W),
        params.weight(hector_models::rgat::weights::W_S),
        params.weight(hector_models::rgat::weights::W_T),
    );
    assert_close(&got, &expect, 1e-4, 1e-5);
}

#[test]
fn laptop_device_config_also_works() {
    let graph = test_graph(700);
    let module = hector::compile_model(ModelKind::Hgt, 8, 8, &CompileOptions::best());
    let mut rng = seeded_rng(6);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let mut session = Session::new(DeviceConfig::laptop_4gb(), Mode::Real);
    let (_, report) = session
        .run_inference(&module, &graph, &mut params, &bindings)
        .unwrap();
    // The slower part can never beat the 3090 on the same work (ties are
    // possible when every kernel is launch-overhead-bound).
    let mut fast = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (_, fast_report) = fast
        .run_inference(&module, &graph, &mut params, &bindings)
        .unwrap();
    assert!(report.elapsed_us >= fast_report.elapsed_us);
    assert!(report.elapsed_us.is_finite() && report.peak_bytes > 0);
}
