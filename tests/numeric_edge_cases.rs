//! IEEE edge-case semantics of the real-mode interpreter.
//!
//! Two classes of numeric corner pinned here:
//!
//! 1. **Non-finite weight slabs.** The GEMM templates skip `x == 0.0`
//!    input elements as a sparsity fast path. Skipping is only sound
//!    when the weight slab is finite — IEEE mandates `0 × inf = NaN`, so
//!    a poisoned slab must poison the output, never be silently masked.
//!    The interpreter gates the skip on a per-slab finiteness check
//!    (once per kernel) and, for weight gradients, on the incoming `dy`
//!    row (once per row).
//!
//! 2. **Zero-in-degree destinations.** Softmax/mean normalization at a
//!    node no edge touched divides an all-zero aggregate by a zero
//!    denominator. The interpreter resolves `0/0` to `0` — the same
//!    convention as the `AggNorm::Max` sweep-back (untouched groups get
//!    a finite default) — while every other division keeps IEEE
//!    semantics. For the built-in softmax models the NaN is *refuted*:
//!    the normalizing division is edgewise, so it never executes at an
//!    isolated destination; the guard matters for node-space
//!    normalizations (explicit mean, degree divisions).

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector::{NeighborSampler, Subgraph};
use hector_ir::{AggNorm, Operand};
use hector_tensor::seeded_rng;

fn par_cfg(threads: usize) -> ParallelConfig {
    ParallelConfig::sequential()
        .with_threads(threads)
        .with_min_chunk_rows(2)
}

/// A graph whose nodes 0 and 5 have no incoming edges (node 5 also has
/// no outgoing ones — fully isolated).
fn graph_with_isolated_nodes() -> GraphData {
    let mut b = HeteroGraphBuilder::new();
    b.add_node_type(6);
    b.add_edge(0, 1, 0);
    b.add_edge(1, 2, 1);
    b.add_edge(2, 3, 0);
    b.add_edge(0, 4, 1);
    b.add_edge(3, 4, 0);
    GraphData::new(b.build())
}

fn forward_bits(
    module: &hector::CompiledModule,
    graph: &GraphData,
    params: &mut ParamStore,
    bindings: &Bindings,
    threads: usize,
) -> Vec<u32> {
    let mut session = Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par_cfg(threads));
    let (vars, _) = session
        .run_inference(module, graph, params, bindings)
        .expect("inference fits");
    vars.tensor(module.forward.outputs[0])
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

#[test]
fn zero_input_times_inf_weight_is_nan_not_silently_skipped() {
    // out = h · W0 (shared weight, node rows). Poison W0[1][0] with inf
    // and zero node 2's features: IEEE says out[2][0] = 0 × inf = NaN.
    let dim = 4;
    let mut m = ModelBuilder::new("inf_w", dim);
    let h = m.node_input("h", dim);
    let w0 = m.weight_shared("W0", dim, dim);
    let out = m.typed_linear("out", m.this(h), w0);
    m.output(out);
    let src = m.finish();
    let module = hector::compile(&src, &CompileOptions::unopt());

    let graph = graph_with_isolated_nodes();
    let n = graph.graph().num_nodes();
    let mut rng = seeded_rng(3);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    *params
        .weight_mut(hector_ir::WeightId(0))
        .data_mut()
        .get_mut(dim) // slab 0, row 1, col 0
        .unwrap() = f32::INFINITY;

    let mut feats = vec![1.0f32; n * dim];
    feats[2 * dim..3 * dim].fill(0.0); // node 2: all-zero input row
    let mut bindings = Bindings::new();
    bindings.set("h", Tensor::from_vec(feats, &[n, dim]));

    let seq = forward_bits(&module, &graph, &mut params, &bindings, 1);
    let par = forward_bits(&module, &graph, &mut params, &bindings, 4);
    assert_eq!(seq, par, "non-finite path diverged across thread counts");

    let col0 = f32::from_bits(seq[2 * dim]);
    assert!(
        col0.is_nan(),
        "0 × inf must be NaN, got {col0} (fast path masked the inf)"
    );
    // Finite rows hit the inf directly: 1 × inf = inf.
    assert!(f32::from_bits(seq[0]).is_infinite());
}

#[test]
fn grad_w_keeps_nan_for_zero_input_columns() {
    // Train out = h · W0 with an inf in W0: the loss (and dy) go NaN,
    // and the weight gradient must be NaN everywhere — including rows
    // whose input column is all zeros, which the `x == 0` fast path
    // would otherwise silently leave at 0 (0 × NaN must be NaN).
    let dim = 4;
    let mut m = ModelBuilder::new("inf_gw", dim);
    let h = m.node_input("h", dim);
    let w0 = m.weight_shared("W0", dim, dim);
    let out = m.typed_linear("out", m.this(h), w0);
    m.output(out);
    let src = m.finish();
    let module = hector::compile(&src, &CompileOptions::unopt().with_training(true));

    let graph = graph_with_isolated_nodes();
    let n = graph.graph().num_nodes();
    let mut rng = seeded_rng(5);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    *params
        .weight_mut(hector_ir::WeightId(0))
        .data_mut()
        .get_mut(dim + 1)
        .unwrap() = f32::INFINITY;

    // Column 0 of the input is all zeros across every node.
    let feats: Vec<f32> = (0..n * dim)
        .map(|i| if i % dim == 0 { 0.0 } else { 0.5 })
        .collect();
    let mut bindings = Bindings::new();
    bindings.set("h", Tensor::from_vec(feats, &[n, dim]));
    let labels: Vec<usize> = (0..n).map(|i| i % dim).collect();

    for threads in [1usize, 4] {
        let mut session =
            Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par_cfg(threads));
        let mut p = params.clone();
        let mut opt = Sgd::new(0.0); // keep weights; we inspect grads
        let (_, report) = session
            .run_training_step(&module, &graph, &mut p, &bindings, &labels, &mut opt)
            .expect("training step fits");
        assert!(
            report.loss.expect("real mode reports loss").is_nan(),
            "inf weight must poison the loss"
        );
        let g = p.grad(hector_ir::WeightId(0));
        // Row 0 of the gradient slab pairs with the all-zero input
        // column: every entry must be NaN, not a masked 0.
        for (j, &gv) in g.slab(0)[..dim].iter().enumerate() {
            assert!(
                gv.is_nan(),
                "threads={threads}: grad[0][{j}] = {gv}, expected NaN (0 × NaN skipped)"
            );
        }
    }
}

#[test]
fn node_space_normalization_is_zero_not_nan_at_isolated_nodes() {
    // Explicit mean normalization in node space: sum of messages divided
    // by an aggregated edge count. Isolated destinations aggregate
    // nothing — numerator and denominator are both 0 — and the 0/0
    // convention must produce 0, mirroring the Max sweep-back, instead
    // of poisoning the output row with NaN.
    let dim = 4;
    let mut m = ModelBuilder::new("mean_norm", dim);
    let h = m.node_input("h", dim);
    let w = m.weight_per_etype("W", dim, dim);
    let msg = m.typed_linear("msg", m.src(h), w);
    let agg = m.aggregate("agg", m.edge(msg), None, AggNorm::None);
    let cnt = m.aggregate("cnt", Operand::Const(1.0), None, AggNorm::None);
    let norm = m.div("norm", m.this(agg), m.this(cnt));
    m.output(norm);
    let src = m.finish();

    let graph = graph_with_isolated_nodes();
    for opts in [CompileOptions::unopt(), CompileOptions::best()] {
        let module = hector::compile(&src, &opts);
        let mut rng = seeded_rng(11);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        let seq = forward_bits(&module, &graph, &mut params, &bindings, 1);
        let par = forward_bits(&module, &graph, &mut params, &bindings, 4);
        assert_eq!(seq, par, "normalization guard diverged across threads");
        for (i, &bits) in seq.iter().enumerate() {
            let v = f32::from_bits(bits);
            assert!(v.is_finite(), "output[{i}] = {v} must be finite");
        }
        // Nodes 0 and 5 have no in-edges: their normalized rows are 0.
        for node in [0usize, 5] {
            for j in 0..dim {
                assert_eq!(f32::from_bits(seq[node * dim + j]), 0.0);
            }
        }
    }
}

#[test]
fn sampled_subgraphs_pin_zero_in_degree_convention_to_zero() {
    // Sampled subgraphs *routinely* manufacture zero-in-degree
    // destinations: a fanout cap drops edges, and frontier nodes
    // discovered at the last hop keep none of their own in-edges. This
    // pins the audit result of the `BinOp::Div` 0/0 read path (see
    // exec.rs, "Zero-in-degree destinations") on exactly those graphs:
    // explicit mean normalisation at an isolated destination must
    // produce 0 — not NaN — bit-identically on the sequential and
    // parallel executors, and max-aggregation must sweep untouched rows
    // back to the same finite default.
    let dim = 4;
    let mut m = ModelBuilder::new("sub_mean_norm", dim);
    let h = m.node_input("h", dim);
    let w = m.weight_per_etype("W", dim, dim);
    let msg = m.typed_linear("msg", m.src(h), w);
    let agg = m.aggregate("agg", m.edge(msg), None, AggNorm::None);
    let cnt = m.aggregate("cnt", Operand::Const(1.0), None, AggNorm::None);
    let norm = m.div("norm", m.this(agg), m.this(cnt));
    let mx = m.aggregate("mx", m.edge(msg), None, AggNorm::Max);
    let both = m.add("both", m.this(norm), m.this(mx));
    m.output(both);
    let src = m.finish();
    let module = hector::compile(&src, &CompileOptions::best());

    let full = hector::generate(&DatasetSpec {
        name: "sub_zero_deg".into(),
        num_nodes: 80,
        num_node_types: 2,
        num_edges: 500,
        num_edge_types: 3,
        compaction_ratio: 0.5,
        type_skew: 1.0,
        seed: 13,
    });
    // An aggressive fanout cap guarantees plenty of dropped in-edges.
    let sampler = NeighborSampler::new(&full, &SamplerConfig::new(12).fanouts(&[2, 1]), 41);
    let batch = sampler.sample(&full, 0);
    let sub = Subgraph::extract(&full, &batch);
    let graph = GraphData::new(sub.graph().clone());
    let g = graph.graph();
    let isolated: Vec<usize> = (0..g.num_nodes())
        .filter(|&v| g.csc().in_edges(v).is_empty())
        .collect();
    assert!(
        !isolated.is_empty(),
        "the sampled subgraph must contain zero-in-degree nodes for this pin to bite"
    );

    let mut rng = seeded_rng(19);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let seq = forward_bits(&module, &graph, &mut params, &bindings, 1);
    let par = forward_bits(&module, &graph, &mut params, &bindings, 4);
    assert_eq!(seq, par, "zero-in-degree guard diverged across threads");
    for (i, &bits) in seq.iter().enumerate() {
        let v = f32::from_bits(bits);
        assert!(v.is_finite(), "output[{i}] = {v} must be finite");
    }
    // Isolated destinations: mean term is 0/0 → 0, max term sweeps back
    // to 0 — the whole row is exactly 0.0, not NaN.
    for &node in &isolated {
        for j in 0..dim {
            assert_eq!(
                f32::from_bits(seq[node * dim + j]),
                0.0,
                "node {node} (0 in-edges) col {j}: 0-neighbor convention is 0, not NaN"
            );
        }
    }
}

#[test]
fn softmax_models_stay_finite_on_graphs_with_isolated_nodes() {
    // The issue hypothesised that zero-in-degree destinations turn the
    // edge softmax's normalizing division into 0/0 = NaN. Refuted for
    // the built-in models: that division is *edgewise*, so it only ever
    // runs for destinations with at least one incoming edge, and the
    // max-stabilised numerator keeps the denominator ≥ 1. This test
    // pins the refutation — inference outputs and five training steps
    // stay finite on a graph with isolated nodes, at 1 and 4 threads.
    let graph = graph_with_isolated_nodes();
    let n = graph.graph().num_nodes();
    for kind in [ModelKind::Rgat, ModelKind::Hgt] {
        for threads in [1usize, 4] {
            let module =
                hector::compile_model(kind, 8, 8, &CompileOptions::best().with_training(true));
            let mut rng = seeded_rng(17);
            let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
            let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
            let labels: Vec<usize> = (0..n).map(|i| i % 4).collect();
            let mut session =
                Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par_cfg(threads));
            let mut opt = Adam::new(0.01);
            for step in 0..5 {
                let (vars, report) = session
                    .run_training_step(&module, &graph, &mut params, &bindings, &labels, &mut opt)
                    .expect("training step fits");
                let loss = report.loss.expect("real mode reports loss");
                assert!(
                    loss.is_finite(),
                    "{} threads={threads} step {step}: loss {loss}",
                    kind.name()
                );
                for &v in vars.tensor(module.forward.outputs[0]).data() {
                    assert!(v.is_finite(), "{} non-finite output {v}", kind.name());
                }
            }
        }
    }
}
