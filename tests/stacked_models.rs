//! Multi-layer model stacks through the full pipeline: correctness
//! against a layer-by-layer reference, training convergence, and
//! optimization equivalence on deep programs.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_models::{reference, stacked};
use hector_runtime::cnorm_tensor;
use hector_tensor::{assert_close, Tensor};

fn graph() -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "stack".into(),
        num_nodes: 40,
        num_node_types: 2,
        num_edges: 150,
        num_edge_types: 4,
        compaction_ratio: 0.5,
        type_skew: 1.0,
        seed: 55,
    }))
}

/// Layer-by-layer reference for the RGCN stack (logits on the last
/// layer, ReLU between layers).
fn rgcn_stack_reference(
    g: &hector::HeteroGraph,
    h: &Tensor,
    cnorm: &Tensor,
    params: &ParamStore,
    layers: usize,
) -> Tensor {
    let mut cur = h.clone();
    for l in 0..layers {
        let w = params.weight(hector_ir::WeightId((2 * l) as u32));
        let w0 = params.weight(hector_ir::WeightId((2 * l + 1) as u32));
        // reference::rgcn_forward applies a trailing relu; undo it on the
        // last layer by recomputing without activation.
        let full = reference::rgcn_forward(g, &cur, cnorm, w, w0);
        if l + 1 == layers {
            // Recompute the pre-activation output: relu(x) == x wherever
            // x >= 0, so rebuild from scratch with a no-relu pass.
            let mut out = Tensor::zeros(full.shape());
            for v in 0..g.num_nodes() {
                let mut row = vec![0.0f32; w0.shape()[2]];
                for (j, r) in row.iter_mut().enumerate() {
                    for p in 0..w0.shape()[1] {
                        *r += cur.at2(v, p) * w0.at3(0, p, j);
                    }
                }
                out.row_mut(v).copy_from_slice(&row);
            }
            for e in 0..g.num_edges() {
                let (s, d, ty) = (
                    g.src()[e] as usize,
                    g.dst()[e] as usize,
                    g.etype()[e] as usize,
                );
                let c = cnorm.at2(e, 0);
                for j in 0..w.shape()[2] {
                    let mut m = 0.0;
                    for p in 0..w.shape()[1] {
                        m += cur.at2(s, p) * w.at3(ty, p, j);
                    }
                    *out.at2_mut(d, j) += c * m;
                }
            }
            return out;
        }
        cur = full;
    }
    cur
}

#[test]
fn two_layer_rgcn_matches_layerwise_reference() {
    let graph = graph();
    for opts in [CompileOptions::unopt(), CompileOptions::best()] {
        let src = stacked::rgcn_stack(2, 12, 10, 6);
        let module = hector::compile(&src, &opts);
        let mut rng = seeded_rng(3);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let (vars, _) = session
            .run_inference(&module, &graph, &mut params, &bindings)
            .unwrap();
        let got = vars.tensor(module.forward.outputs[0]);
        let expect = rgcn_stack_reference(
            graph.graph(),
            bindings.get("h").unwrap(),
            &cnorm_tensor(&graph),
            &params,
            2,
        );
        assert_close(got, &expect, 1e-3, 1e-4);
    }
}

#[test]
fn three_layer_stack_compiles_and_runs() {
    let graph = graph();
    let src = stacked::rgcn_stack(3, 8, 12, 4);
    let module = hector::compile(&src, &CompileOptions::best().with_training(true));
    assert!(module.fw_kernels.len() >= 6, "three layers of kernels");
    let mut rng = seeded_rng(4);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
    let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let mut adam = Adam::new(0.02);
    let mut losses = Vec::new();
    for _ in 0..25 {
        let (_, r) = session
            .run_training_step(&module, &graph, &mut params, &bindings, &labels, &mut adam)
            .unwrap();
        losses.push(r.loss.unwrap());
    }
    assert!(
        losses.last().unwrap() < &(losses[0] - 0.05),
        "deep stack should train: {losses:?}"
    );
}

#[test]
fn stacked_rgat_all_option_combos_agree() {
    let graph = graph();
    let src = stacked::rgat_stack(2, 10, 8, 5);
    let mut outputs = Vec::new();
    for opts in [
        CompileOptions::unopt(),
        CompileOptions::compact_only(),
        CompileOptions::reorder_only(),
        CompileOptions::best(),
    ] {
        let module = hector::compile(&src, &opts);
        let mut rng = seeded_rng(5);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let (vars, _) = session
            .run_inference(&module, &graph, &mut params, &bindings)
            .unwrap();
        outputs.push(vars.tensor(module.forward.outputs[0]).clone());
    }
    for other in &outputs[1..] {
        assert_close(&outputs[0], other, 2e-3, 2e-4);
    }
}

#[test]
fn deep_stacks_gain_from_reordering_each_layer() {
    // Reordering should remove one GEMM per RGAT layer.
    use hector_ir::KernelSpec;
    let count = |opts: &CompileOptions| {
        hector::compile(&stacked::rgat_stack(3, 16, 16, 16), opts)
            .fw_kernels
            .iter()
            .filter(|k| matches!(k, KernelSpec::Gemm(_)))
            .count()
    };
    let unopt = count(&CompileOptions::unopt());
    let reord = count(&CompileOptions::reorder_only());
    assert_eq!(unopt - reord, 3, "one ht GEMM eliminated per layer");
}
