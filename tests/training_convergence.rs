//! Training behaviour: loss decreases under every model and optimization
//! combination, both optimizers make progress, and derived (reordered)
//! weights stay consistent across steps.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;

fn train_graph(seed: u64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "train".into(),
        num_nodes: 40,
        num_node_types: 2,
        num_edges: 160,
        num_edge_types: 4,
        compaction_ratio: 0.5,
        type_skew: 1.0,
        seed,
    }))
}

fn losses(
    kind: ModelKind,
    opts: &CompileOptions,
    optimizer: &mut dyn Optimizer,
    epochs: usize,
    seed: u64,
) -> Vec<f32> {
    let graph = train_graph(seed);
    let dim = 8;
    let module = hector::compile_model(kind, dim, dim, &opts.clone().with_training(true));
    let mut rng = seeded_rng(seed);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let mut rng2 = seeded_rng(seed + 1);
    let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);
    let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let mut out = Vec::new();
    for _ in 0..epochs {
        let (_, report) = session
            .run_training_step(&module, &graph, &mut params, &bindings, &labels, optimizer)
            .unwrap();
        out.push(report.loss.unwrap());
    }
    out
}

#[test]
fn rgcn_converges_with_sgd() {
    let mut sgd = Sgd::new(0.5);
    let l = losses(ModelKind::Rgcn, &CompileOptions::unopt(), &mut sgd, 25, 1);
    assert!(l.last().unwrap() < &(l[0] - 0.1), "loss curve: {l:?}");
}

#[test]
fn rgat_converges_under_all_option_combos() {
    for opts in [
        CompileOptions::unopt(),
        CompileOptions::compact_only(),
        CompileOptions::reorder_only(),
        CompileOptions::best(),
    ] {
        let mut adam = Adam::new(0.05);
        let l = losses(ModelKind::Rgat, &opts, &mut adam, 30, 2);
        assert!(
            l.last().unwrap() < &(l[0] - 0.05),
            "RGAT {} loss curve: {l:?}",
            opts.label()
        );
    }
}

#[test]
fn hgt_converges_under_all_option_combos() {
    for opts in [
        CompileOptions::unopt(),
        CompileOptions::compact_only(),
        CompileOptions::reorder_only(),
        CompileOptions::best(),
    ] {
        let mut adam = Adam::new(0.05);
        let l = losses(ModelKind::Hgt, &opts, &mut adam, 30, 3);
        assert!(
            l.last().unwrap() < &(l[0] - 0.05),
            "HGT {} loss curve: {l:?}",
            opts.label()
        );
    }
}

#[test]
fn optimized_training_follows_the_same_trajectory() {
    // Same seeds, same model: the optimization passes must not change the
    // training trajectory (they are semantics-preserving), up to f32
    // accumulation noise.
    let mut sgd_a = Sgd::new(0.1);
    let a = losses(ModelKind::Rgat, &CompileOptions::unopt(), &mut sgd_a, 10, 7);
    let mut sgd_b = Sgd::new(0.1);
    let b = losses(ModelKind::Rgat, &CompileOptions::best(), &mut sgd_b, 10, 7);
    for (x, y) in a.iter().zip(b.iter()) {
        assert!(
            (x - y).abs() < 1e-2,
            "trajectories diverged: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn adam_beats_sgd_on_hgt() {
    let mut sgd = Sgd::new(0.05);
    let s = losses(ModelKind::Hgt, &CompileOptions::unopt(), &mut sgd, 20, 9);
    let mut adam = Adam::new(0.05);
    let a = losses(ModelKind::Hgt, &CompileOptions::unopt(), &mut adam, 20, 9);
    assert!(
        a.last().unwrap() <= s.last().unwrap(),
        "adam {a:?} vs sgd {s:?}"
    );
}

#[test]
fn modeled_training_reports_costs_without_loss() {
    let graph = train_graph(11);
    let module = hector::compile_model(
        ModelKind::Rgcn,
        16,
        16,
        &CompileOptions::best().with_training(true),
    );
    let mut rng = seeded_rng(12);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
    let mut sgd = Sgd::new(0.1);
    let (_, report) = session
        .run_training_step(
            &module,
            &graph,
            &mut params,
            &Bindings::new(),
            &[],
            &mut sgd,
        )
        .unwrap();
    assert!(report.loss.is_none());
    assert!(report.backward_us > 0.0);
    assert!(report.forward_us > 0.0);
}
