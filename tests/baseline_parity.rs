//! Baseline sanity: the baseline strategies must reproduce the paper's
//! comparative *shape* — who wins, by what mechanism — on representative
//! synthetic graphs.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::baselines::{all_systems, Dgl, Graphiler, Pyg, Seastar, System};
use hector::prelude::*;

fn graph(nodes: usize, edges: usize, etypes: usize, ratio: f64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "bp".into(),
        num_nodes: nodes,
        num_node_types: 4,
        num_edges: edges,
        num_edge_types: etypes,
        compaction_ratio: ratio,
        type_skew: 1.1,
        seed: 33,
    }))
}

fn hector_time(kind: ModelKind, graph: &GraphData, opts: &CompileOptions, training: bool) -> f64 {
    let module = hector::compile_model(kind, 64, 64, &opts.clone().with_training(training));
    let mut rng = seeded_rng(1);
    let mut params = ParamStore::init(&module.forward, graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
    let report = if training {
        let mut sgd = Sgd::new(0.01);
        session
            .run_training_step(&module, graph, &mut params, &Bindings::new(), &[], &mut sgd)
            .unwrap()
            .1
    } else {
        session
            .run_inference(&module, graph, &mut params, &Bindings::new())
            .unwrap()
            .1
    };
    report.elapsed_us
}

#[test]
fn hector_beats_every_baseline_on_a_midsize_graph() {
    let g = graph(20_000, 300_000, 32, 0.5);
    let cfg = DeviceConfig::rtx3090();
    for kind in ModelKind::all() {
        for training in [false, true] {
            let hector_us = hector_time(kind, &g, &CompileOptions::best(), training);
            for sys in all_systems() {
                if !sys.supports(kind, training) {
                    continue;
                }
                let r = sys.run(kind, &g, 64, &cfg, training);
                if r.oom {
                    continue; // an OOM is also a loss for the baseline
                }
                assert!(
                    r.time_us > hector_us,
                    "{} should lose to Hector on {kind:?} (training={training}): {} vs {hector_us}",
                    sys.name(),
                    r.time_us
                );
            }
        }
    }
}

#[test]
fn speedup_is_larger_on_small_graphs_for_dgl_rgat() {
    // Paper: "the performance advantage is larger in small graphs" —
    // per-relation kernel launches dominate when work per type is tiny.
    let small = graph(2_000, 12_000, 64, 0.8);
    let large = graph(200_000, 3_000_000, 64, 0.8);
    let cfg = DeviceConfig::rtx3090();
    let s_ratio = Dgl.run(ModelKind::Rgat, &small, 64, &cfg, false).time_us
        / hector_time(ModelKind::Rgat, &small, &CompileOptions::best(), false);
    let l_ratio = Dgl.run(ModelKind::Rgat, &large, 64, &cfg, false).time_us
        / hector_time(ModelKind::Rgat, &large, &CompileOptions::best(), false);
    assert!(
        s_ratio > l_ratio,
        "speedup small={s_ratio:.1} should exceed large={l_ratio:.1}"
    );
}

#[test]
fn graphiler_is_close_on_hgt_but_degrades_on_rgat() {
    let g = graph(15_000, 200_000, 24, 0.5);
    let cfg = DeviceConfig::rtx3090();
    let hgt_ratio = Graphiler.run(ModelKind::Hgt, &g, 64, &cfg, false).time_us
        / hector_time(ModelKind::Hgt, &g, &CompileOptions::best(), false);
    let rgat_ratio = Graphiler.run(ModelKind::Rgat, &g, 64, &cfg, false).time_us
        / hector_time(ModelKind::Rgat, &g, &CompileOptions::best(), false);
    assert!(
        rgat_ratio > hgt_ratio * 1.5,
        "RGAT degradation ({rgat_ratio:.2}x) must exceed HGT ({hgt_ratio:.2}x)"
    );
    assert!(
        hgt_ratio < 3.0,
        "Graphiler should be competitive on HGT: {hgt_ratio:.2}x"
    );
}

#[test]
fn seastar_is_memory_lean_but_slow() {
    let g = graph(10_000, 150_000, 16, 0.5);
    let cfg = DeviceConfig::rtx3090();
    let sea = Seastar.run(ModelKind::Rgcn, &g, 64, &cfg, false);
    let dgl = Dgl.run(ModelKind::Rgcn, &g, 64, &cfg, false);
    assert!(
        sea.peak_bytes < dgl.peak_bytes,
        "vertex-centric code materialises less"
    );
    assert!(
        sea.time_us > dgl.time_us,
        "sparse-only lowering loses to GEMM-based lowering"
    );
}

#[test]
fn pyg_fast_variant_ooms_on_edge_heavy_graphs() {
    // ~6M edges × 64×64 replicated weights = ~98 GB >> 24 GB.
    let g = graph(200_000, 6_000_000, 16, 0.6);
    let cfg = DeviceConfig::rtx3090();
    let r = Pyg.run(ModelKind::Rgcn, &g, 64, &cfg, false);
    // PyG falls back to the loop variant; it must still complete, and its
    // footprint must be far below what the replicated weight tensor alone
    // would have required (the fast variant's signature).
    let d = 64usize;
    let replication_bytes = g.graph().num_edges() * d * d * 4;
    assert!(!r.oom, "the loop variant rescues PyG here");
    assert!(
        r.peak_bytes < replication_bytes,
        "loop variant must avoid the E*d*d materialisation"
    );
}

#[test]
fn baseline_breakdowns_are_populated() {
    let g = graph(5_000, 60_000, 8, 0.7);
    let cfg = DeviceConfig::rtx3090();
    let r = Graphiler.run(ModelKind::Rgcn, &g, 64, &cfg, false);
    assert!(r.gemm_us > 0.0);
    assert!(r.traversal_us > 0.0);
    assert!(r.copy_us > 0.0, "Graphiler launches dedicated copy kernels");
}
