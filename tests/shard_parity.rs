//! Sharded-execution parity: partition → per-shard execute → merge must
//! be **bit-identical** to the unsharded engine, at every shard count,
//! thread count, model, and backend — sharding is a storage/execution
//! layout, never a numeric path.
//!
//! * Forward outputs match the unsharded oracle bitwise at shard counts
//!   {1, 2, 3, 8} × executor threads {1, 4} × three models, on both
//!   backends, including multi-layer models (halo hops = layers).
//! * Zero-in-degree nodes and shards whose owned nodes are fully
//!   isolated merge correctly.
//! * Training through the sharded engine stays bitwise on the unsharded
//!   trajectory (authoritative full-graph step + mirror resync).
//! * A delta batch invalidates exactly the affected shards' plans
//!   (pinned through the `shard_probe` counters), and post-delta
//!   outputs equal a fresh engine on the post-delta graph.
//! * Property: random graph × random partitioner × random shard count
//!   never diverges.

use hector::prelude::*;
use hector::{
    BindSharded, DeltaBatch, GreedyEdgeCut, HashPartitioner, HeteroGraph, HeteroGraphBuilder,
    Partitioner, RangePartitioner, ShardConfig, ShardedGraph,
};
use proptest::prelude::*;

fn graph(seed: u64, nodes: usize, edges: usize) -> HeteroGraph {
    hector::generate(&DatasetSpec {
        name: "shard_parity".into(),
        num_nodes: nodes,
        num_node_types: 3,
        num_edges: edges,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.1,
        seed,
    })
}

fn bits(t: &hector_tensor::Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

/// The unsharded oracle: build, bind, forward, raw output bits.
fn oracle_bits(builder: &EngineBuilder, g: &HeteroGraph) -> Vec<u32> {
    let data = GraphData::new(g.clone());
    let mut engine = builder.clone().build().expect("oracle builds");
    engine.bind(&data).expect("oracle binds");
    engine.forward().expect("oracle runs");
    bits(engine.output())
}

fn sharded_bits(builder: &EngineBuilder, g: &HeteroGraph, k: usize, hops: usize) -> Vec<u32> {
    let sharded = ShardedGraph::partition(
        g.clone(),
        Box::new(HashPartitioner::new(k as u64)),
        ShardConfig::new(k).hops(hops),
    );
    let mut eng = builder
        .clone()
        .bind_sharded(sharded)
        .expect("sharded engine builds");
    eng.forward().expect("sharded forward runs");
    bits(eng.output())
}

#[test]
fn forward_matches_unsharded_across_shards_threads_and_models() {
    let g = graph(51, 72, 400);
    for kind in [ModelKind::Rgcn, ModelKind::Rgat, ModelKind::Hgt] {
        for threads in [1usize, 4] {
            let pc = ParallelConfig {
                num_threads: threads,
                ..ParallelConfig::sequential()
            };
            let builder = EngineBuilder::new(kind).dims(8, 8).parallel(pc).seed(5);
            let want = oracle_bits(&builder, &g);
            for k in [1usize, 2, 3, 8] {
                assert_eq!(
                    sharded_bits(&builder, &g, k, 1),
                    want,
                    "{kind:?} threads={threads} shards={k}: sharded forward diverged"
                );
            }
        }
    }
}

#[test]
fn multi_layer_models_need_hops_equal_to_layers() {
    let g = graph(52, 64, 360);
    let builder = EngineBuilder::new(ModelKind::Rgcn)
        .dims(8, 8)
        .layers(2)
        .parallel(ParallelConfig::sequential())
        .seed(6);
    let want = oracle_bits(&builder, &g);
    for k in [2usize, 3, 8] {
        assert_eq!(
            sharded_bits(&builder, &g, k, 2),
            want,
            "shards={k}: 2-layer model with 2-hop halos diverged"
        );
    }
}

#[test]
fn parity_holds_on_both_backends() {
    let g = graph(53, 64, 360);
    for backend in [BackendKind::Interp, BackendKind::Specialized] {
        let builder = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .backend(backend)
            .parallel(ParallelConfig::sequential())
            .seed(7);
        let want = oracle_bits(&builder, &g);
        for k in [1usize, 4] {
            assert_eq!(
                sharded_bits(&builder, &g, k, 1),
                want,
                "backend={backend:?} shards={k}: sharded forward diverged"
            );
        }
    }
}

/// A graph where one node type is entirely isolated (zero degree both
/// ways) and several nodes have zero in-degree. Range partitioning
/// places the isolated tail type in its own shard — an edge-free shard
/// graph — which must still bind, run, and merge its owned rows.
#[test]
fn zero_in_degree_and_isolated_shards_merge_correctly() {
    let mut b = HeteroGraphBuilder::new();
    let (a0, a_end) = b.add_node_type(12);
    let (_iso0, _iso_end) = b.add_node_type(6); // fully isolated tail type
    b.reserve_edge_types(2);
    for v in a0..a_end {
        // Chain within type A; node a0 keeps zero in-degree.
        if v + 1 < a_end {
            b.add_edge(v, v + 1, v % 2);
        }
    }
    let g = b.build();

    let builder = EngineBuilder::new(ModelKind::Rgcn)
        .dims(4, 4)
        .parallel(ParallelConfig::sequential())
        .seed(8);
    let want = oracle_bits(&builder, &g);
    // Range over 3 shards: the last shard owns only isolated nodes.
    let sharded =
        ShardedGraph::partition(g.clone(), Box::new(RangePartitioner), ShardConfig::new(3));
    assert!(
        (0..sharded.num_shards()).any(|s| sharded.shard(s).graph().num_edges() == 0),
        "the test graph must actually produce an edge-free shard"
    );
    let mut eng = builder
        .clone()
        .bind_sharded(sharded)
        .expect("isolated shard binds");
    eng.forward().expect("isolated shard runs");
    assert_eq!(bits(eng.output()), want, "isolated-shard merge diverged");
}

#[test]
fn training_through_the_sharded_engine_stays_on_the_unsharded_trajectory() {
    let g = graph(54, 60, 320);
    let data = GraphData::new(g.clone());
    let labels: Vec<usize> = (0..g.num_nodes()).map(|v| v % 4).collect();
    let builder = EngineBuilder::new(ModelKind::Rgcn)
        .dims(8, 8)
        .training(true)
        .parallel(ParallelConfig::sequential())
        .seed(9);

    let mut oracle = builder.clone().build().unwrap();
    oracle.bind(&data).unwrap();
    let mut opt = Sgd::new(0.05);
    let mut oracle_losses = Vec::new();
    for _ in 0..3 {
        oracle_losses.push(oracle.train_step(&labels, &mut opt).unwrap().loss);
    }
    oracle.forward().unwrap();
    let want = bits(oracle.output());

    for k in [2usize, 3] {
        let sharded =
            ShardedGraph::partition(g.clone(), Box::new(GreedyEdgeCut), ShardConfig::new(k));
        let mut eng = builder.clone().bind_sharded(sharded).unwrap();
        let mut opt = Sgd::new(0.05);
        let mut losses = Vec::new();
        for _ in 0..3 {
            losses.push(eng.train_step(&labels, &mut opt).unwrap().loss);
        }
        assert_eq!(
            losses, oracle_losses,
            "shards={k}: loss trajectory diverged"
        );
        eng.forward().unwrap();
        assert_eq!(
            bits(eng.output()),
            want,
            "shards={k}: post-training forward diverged"
        );
    }
}

/// The only test in this binary that applies deltas, so the
/// process-global `shard_probe` deltas it asserts on are race-free
/// (partitioning elsewhere touches different counters).
#[test]
fn deltas_invalidate_only_affected_shards_and_match_a_fresh_engine() {
    let g = graph(55, 60, 300);
    let mut sharded =
        ShardedGraph::partition(g.clone(), Box::new(RangePartitioner), ShardConfig::new(4));
    let dst = 5u32;
    let owner = sharded.owner()[dst as usize] as usize;

    let before = hector_device::shard_probe::snapshot();
    let outcome = sharded.apply(&DeltaBatch::new().add_edge(0, dst, 0));
    let after = hector_device::shard_probe::snapshot();
    assert_eq!(
        outcome.affected,
        vec![owner],
        "a single-destination edge delta touches exactly its owner's plan"
    );
    assert!(!outcome.repartitioned);
    assert_eq!(outcome.version, 1);
    assert_eq!(after.plan_invalidations - before.plan_invalidations, 1);
    assert_eq!(after.delta_batches - before.delta_batches, 1);
    assert_eq!(after.delta_ops - before.delta_ops, 1);

    // Engine-level: apply a second delta through the sharded engine and
    // compare against a fresh unsharded engine on the post-delta graph.
    let builder = EngineBuilder::new(ModelKind::Rgcn)
        .dims(8, 8)
        .parallel(ParallelConfig::sequential())
        .seed(10);
    let mut eng = builder.clone().bind_sharded(sharded).unwrap();
    eng.forward().unwrap();
    let batch =
        DeltaBatch::new()
            .add_edge(7, 2, 1)
            .remove_edge(g.src()[0], g.dst()[0], g.etype()[0]);
    let outcome = eng.apply_delta(&batch).unwrap();
    assert_eq!(outcome.version, 2);
    eng.forward().unwrap();
    assert_eq!(
        bits(eng.output()),
        oracle_bits(&builder, eng.full_graph()),
        "post-delta sharded forward diverged from the fresh oracle"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn partition_execute_merge_never_diverges(
        seed in 0u64..1000,
        nodes in 24usize..72,
        k in 1usize..6,
        which in 0usize..3,
    ) {
        let g = graph(seed, nodes, nodes * 4);
        let partitioner: Box<dyn Partitioner> = match which {
            0 => Box::new(RangePartitioner),
            1 => Box::new(HashPartitioner::new(seed)),
            _ => Box::new(GreedyEdgeCut),
        };
        let builder = EngineBuilder::new(ModelKind::Rgcn)
            .dims(4, 4)
            .parallel(ParallelConfig::sequential())
            .seed(seed);
        let want = oracle_bits(&builder, &g);
        let sharded = ShardedGraph::partition(g, partitioner, ShardConfig::new(k));
        let name = sharded.partitioner_name();
        let mut eng = builder.bind_sharded(sharded).unwrap();
        eng.forward().unwrap();
        prop_assert_eq!(
            bits(eng.output()),
            want,
            "seed={} nodes={} k={} partitioner={}",
            seed, nodes, k, name
        );
    }
}
