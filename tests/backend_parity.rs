//! Cross-backend bit-identity: the specialized compiled-kernel backend
//! must be indistinguishable from the reference interpreter, bit for
//! bit.
//!
//! The specialized backend monomorphizes each lowered kernel into a
//! dispatch-free closure at prepare time (see
//! `hector_runtime::backend::spec`), but performs the **exact same
//! floating-point operations in the exact same order** — so every
//! output bit, loss bit, and trained weight bit must match the
//! interpreter, at any thread count. These tests pin that contract for
//! all three built-in models (forward + five Adam steps, threads
//! {1, 4}) and over a property suite of random graphs and
//! configurations.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_tensor::seeded_rng;
use proptest::prelude::*;

fn graph(seed: u64, nodes: usize, edges: usize) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "backend_parity".into(),
        num_nodes: nodes,
        num_node_types: 3,
        num_edges: edges,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed,
    }))
}

fn session(kind: BackendKind, threads: usize) -> Session {
    Session::with_backend(
        DeviceConfig::rtx3090(),
        Mode::Real,
        ParallelConfig::sequential()
            .with_threads(threads)
            .with_min_chunk_rows(4),
        kind,
    )
    .expect("backend is available")
}

/// One inference on `backend`; returns the output tensor as raw bits.
fn inference_bits(
    kind: ModelKind,
    opts: &CompileOptions,
    g: &GraphData,
    backend: BackendKind,
    threads: usize,
) -> Vec<u32> {
    let module = hector::compile_model(kind, 16, 16, opts);
    let mut rng = seeded_rng(7);
    let mut params = ParamStore::init(&module.forward, g, &mut rng);
    let bindings = Bindings::standard(&module.forward, g, &mut rng);
    let mut s = session(backend, threads);
    let (vars, _) = s
        .run_inference(&module, g, &mut params, &bindings)
        .expect("inference fits");
    let out = module.forward.outputs[0];
    vars.tensor(out)
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Five Adam steps on `backend`; returns (per-step loss bits, all final
/// weight bits) — the whole training trajectory.
fn training_bits(
    kind: ModelKind,
    opts: &CompileOptions,
    g: &GraphData,
    backend: BackendKind,
    threads: usize,
) -> (Vec<u32>, Vec<u32>) {
    let module = hector::compile_model(kind, 16, 16, opts);
    let mut rng = seeded_rng(13);
    let mut params = ParamStore::init(&module.forward, g, &mut rng);
    let bindings = Bindings::standard(&module.forward, g, &mut rng);
    let labels: Vec<usize> = (0..g.graph().num_nodes()).map(|i| i % 4).collect();
    let mut s = session(backend, threads);
    let mut opt = Adam::new(0.01);
    let mut losses = Vec::with_capacity(5);
    for _ in 0..5 {
        let (_, report) = s
            .run_training_step(&module, g, &mut params, &bindings, &labels, &mut opt)
            .expect("training step fits");
        losses.push(report.loss.expect("real mode reports loss").to_bits());
    }
    let mut weights = Vec::new();
    for w in 0..params.len() {
        let wid = hector_ir::WeightId(w as u32);
        weights.extend(params.weight(wid).data().iter().map(|v| v.to_bits()));
    }
    (losses, weights)
}

#[test]
fn forward_is_bit_identical_across_backends() {
    let g = graph(17, 120, 720);
    for kind in ModelKind::all() {
        for opts in [CompileOptions::unopt(), CompileOptions::best()] {
            for threads in [1usize, 4] {
                let interp = inference_bits(kind, &opts, &g, BackendKind::Interp, threads);
                let spec = inference_bits(kind, &opts, &g, BackendKind::Specialized, threads);
                assert_eq!(
                    interp,
                    spec,
                    "{} / {} / threads={threads}: specialized forward diverged",
                    kind.name(),
                    opts.label()
                );
            }
        }
    }
}

#[test]
fn five_adam_steps_are_bit_identical_across_backends() {
    let g = graph(29, 80, 480);
    for kind in ModelKind::all() {
        for opts in [
            CompileOptions::unopt().with_training(true),
            CompileOptions::best().with_training(true),
        ] {
            for threads in [1usize, 4] {
                let (il, iw) = training_bits(kind, &opts, &g, BackendKind::Interp, threads);
                let (sl, sw) = training_bits(kind, &opts, &g, BackendKind::Specialized, threads);
                assert_eq!(
                    il,
                    sl,
                    "{} / {} / threads={threads}: loss trajectory diverged",
                    kind.name(),
                    opts.label()
                );
                assert_eq!(
                    iw,
                    sw,
                    "{} / {} / threads={threads}: trained weights diverged",
                    kind.name(),
                    opts.label()
                );
            }
        }
    }
}

#[test]
fn backend_stats_identify_the_backend() {
    let g = graph(3, 60, 240);
    let module = hector::compile_model(ModelKind::Rgcn, 16, 16, &CompileOptions::best());
    let mut rng = seeded_rng(5);
    let mut params = ParamStore::init(&module.forward, &g, &mut rng);
    let bindings = Bindings::standard(&module.forward, &g, &mut rng);
    for kind in [BackendKind::Interp, BackendKind::Specialized] {
        let mut s = session(kind, 1);
        s.run_inference(&module, &g, &mut params, &bindings)
            .unwrap();
        let b = s.device().counters().backend();
        assert_eq!(b.name, kind.name());
        assert_eq!(b.prepares, 1, "{kind:?}: cold run prepares the plan");
        assert_eq!(b.plan_reuses, 0);
        assert!(b.kernels > 0, "{kind:?}: kernel launches are counted");
        s.run_inference(&module, &g, &mut params, &bindings)
            .unwrap();
        let b = s.device().counters().backend();
        assert_eq!(b.prepares, 0, "{kind:?}: warm run reuses the plan");
        assert_eq!(b.plan_reuses, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random graph shape × model × optimization combo × thread count ×
    /// chunk size: the specialized backend must stay bit-identical to
    /// the interpreter.
    #[test]
    fn random_configs_stay_bit_identical_across_backends(
        seed in 0u64..1000,
        nodes in 24usize..96,
        edges_per_node in 2usize..8,
        threads in 1usize..6,
        model_ix in 0usize..3,
        opt_ix in 0usize..4,
    ) {
        let g = graph(seed, nodes, nodes * edges_per_node);
        let kind = ModelKind::all()[model_ix];
        let opts = [
            CompileOptions::unopt(),
            CompileOptions::compact_only(),
            CompileOptions::reorder_only(),
            CompileOptions::best(),
        ][opt_ix]
            .clone();
        let interp = inference_bits(kind, &opts, &g, BackendKind::Interp, threads);
        let spec = inference_bits(kind, &opts, &g, BackendKind::Specialized, threads);
        prop_assert_eq!(interp, spec);
    }
}
