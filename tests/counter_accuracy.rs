//! Counter-accuracy pins: the observability counters must report *exact*
//! values for a graph whose topology is fully known, not merely plausible
//! ones. Three layers are cross-checked against each other:
//!
//! * kernel-invocation counts — one `Kernel` trace span per entry of the
//!   compiled kernel sequence, every run;
//! * [`ParallelStats`] chunk counts — equal to the number of `Worker`
//!   trace spans (every pool job records exactly one, including the
//!   single-chunk inline fast path), and, per kernel, equal to what
//!   [`hector::chunk_ranges`] predicts for the kernel's row domain;
//! * sequential runs — zero chunks, zero worker spans, every launch
//!   counted sequential.
//!
//! The trace recorder is process-global, so every test here serializes on
//! a file-local lock and clears the recorder before running.
//!
//! [`ParallelStats`]: hector_device::ParallelStats

use std::sync::Mutex;

use hector::prelude::*;
use hector::trace::{SpanCat, TraceEvent};
use hector::ModelKind;

static LOCK: Mutex<()> = Mutex::new(());

/// A fixed two-relation graph: one node type of 60 nodes, 90 `cites`
/// edges (i -> i+1 mod 60, i -> i+2 mod 60 for even i) and 30 `likes`
/// edges (i -> (3*i+1) mod 60 for i % 2 == 0).
fn known_graph() -> GraphData {
    let mut b = HeteroGraphBuilder::new();
    let (first, _) = b.add_node_type(60);
    let (cites, likes) = (0u32, 1u32);
    for i in 0..60u32 {
        b.add_edge(first + i, first + (i + 1) % 60, cites);
        if i % 2 == 0 {
            b.add_edge(first + i, first + (i + 2) % 60, cites);
            b.add_edge(first + i, first + (3 * i + 1) % 60, likes);
        }
    }
    let g = GraphData::new(b.build());
    assert_eq!(g.graph().num_nodes(), 60);
    assert_eq!(g.graph().num_edges(), 120);
    g
}

/// Runs one traced forward pass and returns (events, chunks,
/// parallel_launches, sequential_launches, kernel_count).
fn traced_forward(
    par: ParallelConfig,
    dims: usize,
) -> (Vec<TraceEvent>, usize, usize, usize, usize) {
    let graph = known_graph();
    let mut engine = EngineBuilder::new(ModelKind::Rgcn)
        .dims(dims, dims)
        .options(CompileOptions::best())
        .parallel(par)
        .seed(3)
        .build()
        .unwrap();
    let kernel_count = engine.module().fw_kernels.len();
    let mut bound = engine.bind(&graph).unwrap();
    hector::trace::clear();
    hector::trace::enable();
    bound.forward().expect("tiny graph fits");
    hector::trace::disable();
    let events = hector::trace::take_events();
    let p = *bound.engine().device().counters().parallel();
    (
        events,
        p.chunks,
        p.parallel_launches,
        p.sequential_launches,
        kernel_count,
    )
}

fn count(events: &[TraceEvent], cat: SpanCat) -> usize {
    events.iter().filter(|e| e.cat == cat && !e.instant).count()
}

#[test]
fn sequential_counts_are_exact() {
    let _g = LOCK.lock().unwrap();
    let (events, chunks, par_launches, seq_launches, kernel_count) =
        traced_forward(ParallelConfig::sequential(), 8);

    // One Kernel span per compiled kernel, in sequence order.
    let kernel_spans: Vec<&TraceEvent> =
        events.iter().filter(|e| e.cat == SpanCat::Kernel).collect();
    assert_eq!(kernel_spans.len(), kernel_count);
    for (i, e) in kernel_spans.iter().enumerate() {
        assert_eq!(e.stage as usize, i, "kernel spans carry their index");
    }

    // Sequential mode never touches the pool: no chunks, no worker
    // spans, and every non-fallback kernel counted as sequential.
    assert_eq!(chunks, 0);
    assert_eq!(par_launches, 0);
    assert_eq!(count(&events, SpanCat::Worker), 0);
    let fallbacks = kernel_spans
        .iter()
        .filter(|e| e.name.starts_with("fallback/"))
        .count();
    assert_eq!(seq_launches, kernel_count - fallbacks);

    // Exactly one run span and its phases.
    assert_eq!(count(&events, SpanCat::Run), 1);
    assert!(events.iter().any(|e| e.name == "phase/setup"));
    assert!(events.iter().any(|e| e.name == "phase/bind_inputs"));
}

#[test]
fn parallel_chunks_match_worker_spans_and_prediction() {
    let _g = LOCK.lock().unwrap();
    let threads = 4;
    let min_chunk = 8;
    let par = ParallelConfig::sequential()
        .with_threads(threads)
        .with_min_chunk_rows(min_chunk);
    let (events, chunks, par_launches, _seq_launches, kernel_count) = traced_forward(par, 8);

    let kernel_spans: Vec<&TraceEvent> =
        events.iter().filter(|e| e.cat == SpanCat::Kernel).collect();
    assert_eq!(kernel_spans.len(), kernel_count);

    // Cross-check 1: ParallelStats.chunks equals the number of worker
    // chunk spans — every pool job records exactly one.
    let workers: Vec<&TraceEvent> = events.iter().filter(|e| e.cat == SpanCat::Worker).collect();
    assert_eq!(chunks, workers.len());
    assert!(
        par_launches > 0,
        "60 nodes / 120 edges must split somewhere"
    );
    assert!(
        chunks > par_launches,
        "parallel kernels span multiple chunks"
    );

    // Cross-check 2: per kernel, the worker spans nested inside its
    // interval must match chunk_ranges' split of the kernel's row
    // domain exactly, and their row counts must tile it.
    let mut attributed = 0;
    for k in &kernel_spans {
        let (lo, hi) = (k.start_ns, k.start_ns + k.dur_ns);
        let nested: Vec<&&TraceEvent> = workers
            .iter()
            .filter(|w| w.start_ns >= lo && w.start_ns + w.dur_ns <= hi)
            .collect();
        if nested.is_empty() {
            continue; // safety fallback or sequential path
        }
        let expected = hector::chunk_ranges(k.rows as usize, min_chunk, threads).len();
        assert_eq!(
            nested.len(),
            expected,
            "{}: rows={} split into {} chunks, predicted {}",
            k.name,
            k.rows,
            nested.len(),
            expected
        );
        let rows: u64 = nested.iter().map(|w| w.rows).sum();
        assert_eq!(rows, k.rows, "{}: chunk rows tile the domain", k.name);
        attributed += nested.len();
    }
    assert_eq!(attributed, chunks, "every chunk nests in a kernel span");
}

#[test]
fn parallel_and_sequential_agree_on_kernel_counts() {
    let _g = LOCK.lock().unwrap();
    let (seq_events, .., seq_kernels) = traced_forward(ParallelConfig::sequential(), 12);
    let par = ParallelConfig::sequential()
        .with_threads(4)
        .with_min_chunk_rows(8);
    let (par_events, .., par_kernels) = traced_forward(par, 12);
    assert_eq!(seq_kernels, par_kernels);
    let names = |evs: &[TraceEvent]| -> Vec<&'static str> {
        evs.iter()
            .filter(|e| e.cat == SpanCat::Kernel)
            .map(|e| e.name)
            .collect()
    };
    assert_eq!(names(&seq_events), names(&par_events));
}

#[test]
fn backend_stats_count_prepares_reuses_and_kernels() {
    let _g = LOCK.lock().unwrap();
    let graph = known_graph();
    for kind in [BackendKind::Interp, BackendKind::Specialized] {
        let mut engine = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .options(CompileOptions::best())
            .parallel(ParallelConfig::sequential())
            .backend(kind)
            .seed(3)
            .build()
            .unwrap();
        let kernel_count = engine.module().fw_kernels.len() as u64;
        let mut bound = engine.bind(&graph).unwrap();

        bound.forward().expect("tiny graph fits");
        let b = *bound.engine().device().counters().backend();
        assert_eq!(b.name, kind.name(), "counters identify the backend");
        assert_eq!(b.prepares, 1, "{kind:?}: cold run prepares once");
        assert_eq!(b.plan_reuses, 0);
        assert_eq!(
            b.kernels, kernel_count,
            "{kind:?}: every forward kernel runs on the backend"
        );

        bound.forward().expect("warm forward fits");
        let b = *bound.engine().device().counters().backend();
        assert_eq!(b.prepares, 0, "{kind:?}: warm run prepares nothing");
        assert_eq!(b.plan_reuses, 1, "{kind:?}: warm run reuses the plan");
        assert_eq!(b.kernels, kernel_count, "backend stats are run-scoped");
    }
}

#[test]
fn profile_report_names_the_backend() {
    let _g = LOCK.lock().unwrap();
    let graph = known_graph();
    for kind in [BackendKind::Interp, BackendKind::Specialized] {
        let mut engine = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .options(CompileOptions::best())
            .parallel(ParallelConfig::sequential())
            .backend(kind)
            .seed(3)
            .build()
            .unwrap();
        engine
            .bind(&graph)
            .unwrap()
            .forward()
            .expect("warm-up fits");
        let (result, report) = engine.profile(|e| e.bind(&graph).unwrap().forward());
        result.expect("profiled forward fits");
        assert_eq!(
            report.backend,
            kind.name(),
            "profile reports carry the executing backend"
        );
        assert!(format!("{report}").contains(&format!("backend {}", kind.name())));
    }
    hector::trace::clear();
}
