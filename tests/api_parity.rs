//! The `Engine`/`Trainer` handle API is bit-identical to the legacy
//! `Session` flow.
//!
//! The handles are *shims with better ergonomics*, not a new execution
//! path: `bind` derives parameters/inputs/labels from the engine seed in
//! exactly the order the legacy flow draws them (the seed contract in
//! `hector_runtime::engine`), and every run goes through the same
//! session cores. This suite pins that equivalence for all three models,
//! inference and 5 Adam steps, sequential and 4-thread executors —
//! outputs, per-step losses, and final weights compared bitwise.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_runtime::random_labels;

const SEED: u64 = 42;
const DIMS: usize = 16;

fn graph() -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "api_parity".into(),
        num_nodes: 90,
        num_node_types: 3,
        num_edges: 700,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 13,
    }))
}

fn par(threads: usize) -> ParallelConfig {
    ParallelConfig::sequential().with_threads(threads)
}

#[test]
fn engine_inference_is_bit_identical_to_legacy_session_flow() {
    let graph = graph();
    for kind in ModelKind::all() {
        for threads in [1usize, 4] {
            let opts = CompileOptions::best();

            // Legacy: compile, init, bind, session, run.
            let module = hector::compile_model(kind, DIMS, DIMS, &opts);
            let mut rng = seeded_rng(SEED);
            let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
            let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
            let mut session =
                Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par(threads));
            let (vars, legacy_report) = session
                .run_inference(&module, &graph, &mut params, &bindings)
                .expect("fits");
            let legacy_out = vars.tensor(module.forward.outputs[0]);

            // Handle: build, bind, forward.
            let mut engine = EngineBuilder::new(kind)
                .dims(DIMS, DIMS)
                .options(opts)
                .parallel(par(threads))
                .seed(SEED)
                .build()
                .unwrap();
            let mut bound = engine.bind(&graph).unwrap();
            let report = bound.forward().expect("fits");

            assert_eq!(
                legacy_out.data(),
                bound.output().data(),
                "{kind:?} threads={threads}: outputs must be bit-identical"
            );
            assert_eq!(
                legacy_report.launches, report.launches,
                "{kind:?}: same kernel plan"
            );
            assert!(
                (legacy_report.elapsed_us - report.elapsed_us).abs() < 1e-9,
                "{kind:?}: same simulated time"
            );
        }
    }
}

#[test]
fn trainer_is_bit_identical_to_legacy_training_flow() {
    let graph = graph();
    let classes = DIMS;
    for kind in ModelKind::all() {
        for threads in [1usize, 4] {
            let opts = CompileOptions::best().with_training(true);

            // Legacy: the full five-piece wiring, 5 Adam steps.
            let module = hector::compile_model(kind, DIMS, DIMS, &opts);
            let mut rng = seeded_rng(SEED);
            let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
            let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
            let labels = random_labels(&mut rng, graph.graph().num_nodes(), classes);
            let mut session =
                Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par(threads));
            let mut opt = Adam::new(0.01);
            let mut legacy_losses = Vec::new();
            for _ in 0..5 {
                let (_, r) = session
                    .run_training_step(&module, &graph, &mut params, &bindings, &labels, &mut opt)
                    .expect("fits");
                legacy_losses.push(r.loss.unwrap());
            }
            let (vars, _) = session
                .run_inference(&module, &graph, &mut params, &bindings)
                .expect("fits");
            let legacy_out = vars.tensor(module.forward.outputs[0]);

            // Handle: one builder call, bind, 5 steps.
            let mut trainer = EngineBuilder::new(kind)
                .dims(DIMS, DIMS)
                .options(CompileOptions::best())
                .parallel(par(threads))
                .seed(SEED)
                .classes(classes)
                .build_trainer(Adam::new(0.01))
                .unwrap();
            trainer.bind(&graph).unwrap();
            assert_eq!(trainer.labels(), &labels[..], "{kind:?}: same label stream");
            let epoch = trainer.epoch(5).expect("fits");
            assert_eq!(
                legacy_losses, epoch.losses,
                "{kind:?} threads={threads}: per-step losses must be bit-identical"
            );
            trainer.forward().expect("fits");
            assert_eq!(
                legacy_out.data(),
                trainer.engine().output().data(),
                "{kind:?} threads={threads}: post-training outputs must be bit-identical"
            );

            // Weights too: the optimizer walked the same trajectory.
            for w in 0..module.forward.weights.len() {
                let id = hector_ir::WeightId(w as u32);
                assert_eq!(
                    params.weight(id).data(),
                    trainer.engine().params().weight(id).data(),
                    "{kind:?} threads={threads}: weight {w} must match bitwise"
                );
            }
        }
    }
}

#[test]
fn engine_parallel_and_sequential_agree() {
    // The handles inherit the executor's bit-determinism: the same
    // engine config at 1 and 4 threads produces identical outputs.
    let graph = graph();
    for kind in ModelKind::all() {
        let outputs: Vec<Vec<f32>> = [1usize, 4]
            .iter()
            .map(|&threads| {
                let mut engine = EngineBuilder::new(kind)
                    .dims(DIMS, DIMS)
                    .parallel(par(threads))
                    .seed(SEED)
                    .build()
                    .unwrap();
                let mut bound = engine.bind(&graph).unwrap();
                bound.forward().expect("fits");
                bound.output().data().to_vec()
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "{kind:?}: thread-count invariance");
    }
}

#[test]
fn modeled_engine_matches_legacy_modeled_accounting() {
    let graph = graph();
    let opts = CompileOptions::best();
    let module = hector::compile_model(ModelKind::Hgt, DIMS, DIMS, &opts);
    let mut rng = seeded_rng(SEED);
    let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
    let (_, legacy) = session
        .run_inference(&module, &graph, &mut params, &Bindings::new())
        .expect("fits");

    let mut engine = EngineBuilder::new(ModelKind::Hgt)
        .dims(DIMS, DIMS)
        .options(opts)
        .mode(Mode::Modeled)
        .seed(SEED)
        .build()
        .unwrap();
    let report = engine.bind(&graph).unwrap().forward().expect("fits");
    assert!((legacy.elapsed_us - report.elapsed_us).abs() < 1e-9);
    assert_eq!(legacy.peak_bytes, report.peak_bytes);
    assert_eq!(legacy.launches, report.launches);
}
