//! Serving-layer integration: the multi-tenant server must be a pure
//! wrapper over the compiled engines — coalescing, concurrency, and hot
//! swap may change *when* a traversal runs, never *what* it computes.
//!
//! * Every concurrently-served response is bit-identical to a
//!   sequential `Engine::forward` oracle, at 1 and 4 dispatch workers.
//! * k coalesced single-node requests return exactly the rows of one
//!   batched traversal.
//! * Hot swap under sustained load drops and fails nothing.
//! * Every `HectorError` variant is reachable as a typed error — the
//!   fallible public API contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use hector::prelude::*;
use hector::serve::{ServeConfig, ServeError, ServeHandle};
use hector::{DeltaBatch, HashPartitioner, HectorError, ShardConfig, ShardedGraph};

fn graph(seed: u64, nodes: usize) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "serve_it".into(),
        num_nodes: nodes,
        num_node_types: 3,
        num_edges: nodes * 5,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed,
    }))
}

fn builder(kind: ModelKind, dims: usize, seed: u64) -> EngineBuilder {
    EngineBuilder::new(kind)
        .dims(dims, dims)
        .options(CompileOptions::best())
        .mode(Mode::Real)
        .seed(seed)
}

/// The sequential oracle: one standalone engine, one forward, rows as
/// raw bits.
fn oracle_rows(kind: ModelKind, dims: usize, seed: u64, g: &GraphData) -> Vec<Vec<u32>> {
    let mut engine = builder(kind, dims, seed).build().expect("oracle builds");
    let mut bound = engine.bind(g).expect("oracle binds");
    bound.forward().expect("oracle fits");
    let out = bound.output();
    (0..out.rows())
        .map(|i| out.row(i).iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn row_bits(row: &[f32]) -> Vec<u32> {
    row.iter().map(|v| v.to_bits()).collect()
}

#[test]
fn concurrent_submissions_are_bit_identical_to_the_sequential_oracle() {
    let g1 = graph(31, 96);
    let g2 = graph(32, 64);
    let tenants = [
        ("rgcn_g1", ModelKind::Rgcn, 16usize, 3u64, &g1),
        ("rgat_g1", ModelKind::Rgat, 8, 4, &g1),
        ("hgt_g2", ModelKind::Hgt, 8, 5, &g2),
    ];
    let oracles: Vec<Vec<Vec<u32>>> = tenants
        .iter()
        .map(|&(_, kind, dims, seed, g)| oracle_rows(kind, dims, seed, g))
        .collect();

    for workers in [1usize, 4] {
        let srv = ServeHandle::start(ServeConfig::default().with_workers(workers));
        for &(name, kind, dims, seed, g) in &tenants {
            srv.deploy(name, builder(kind, dims, seed), g).unwrap();
        }
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let srv = srv.clone();
                let oracles = &oracles;
                let tenants = &tenants;
                s.spawn(move || {
                    for i in 0..30u64 {
                        let which = ((t * 31 + i * 7) % 3) as usize;
                        let (name, _, _, _, g) = tenants[which];
                        let node = ((t * 13 + i * 17) % g.graph().num_nodes() as u64) as usize;
                        let r = srv.submit(name, node).unwrap().wait().unwrap();
                        assert_eq!(
                            row_bits(&r.rows[0]),
                            oracles[which][node],
                            "workers={workers} tenant={name} node={node}: \
                             served row diverged from the sequential oracle"
                        );
                    }
                });
            }
        });
        srv.shutdown();
    }
}

#[test]
fn coalesced_requests_equal_one_batched_traversal() {
    let g = graph(33, 80);
    let oracle = oracle_rows(ModelKind::Rgcn, 16, 9, &g);

    let srv = ServeHandle::start(ServeConfig::default().with_workers(1));
    srv.deploy("m", builder(ModelKind::Rgcn, 16, 9), &g)
        .unwrap();
    srv.pause();
    let singles: Vec<_> = (0..12).map(|n| srv.submit("m", n).unwrap()).collect();
    let batch = srv.submit_batch("m", &[20, 21, 22]).unwrap();
    srv.resume();

    for (n, t) in singles.into_iter().enumerate() {
        let r = t.wait().unwrap();
        assert_eq!(r.coalesced, 13, "all 13 requests fold into one tick");
        assert_eq!(row_bits(&r.rows[0]), oracle[n]);
    }
    let r = batch.wait().unwrap();
    for (i, node) in [20usize, 21, 22].into_iter().enumerate() {
        assert_eq!(row_bits(&r.rows[i]), oracle[node]);
    }

    let stats = srv.stats("m").unwrap();
    assert_eq!(
        stats.forwards, 1,
        "13 coalesced requests must run exactly one traversal"
    );
    assert_eq!(stats.coalesced_requests, 13);
    assert_eq!(stats.completed, 13);
    srv.shutdown();
}

#[test]
fn hot_swap_under_load_drops_no_requests() {
    let g1 = graph(34, 64);
    let g2 = graph(35, 72);
    let min_nodes = 64usize;

    let srv = ServeHandle::start(ServeConfig::default().with_workers(4));
    srv.deploy("m", builder(ModelKind::Rgcn, 8, 11), &g1)
        .unwrap();

    let versions_seen = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let srv = srv.clone();
            let versions_seen = Arc::clone(&versions_seen);
            s.spawn(move || {
                for i in 0..40u64 {
                    let node = ((t * 19 + i) % min_nodes as u64) as usize;
                    let r = srv
                        .submit("m", node)
                        .expect("submit accepted under load")
                        .wait()
                        .expect("no request may fail across a hot swap");
                    versions_seen.fetch_max(r.version, Ordering::Relaxed);
                }
            });
        }
        // Swap model and graph repeatedly while the clients hammer.
        for round in 0..3u64 {
            let (g, seed) = if round % 2 == 0 { (&g2, 12) } else { (&g1, 11) };
            srv.swap("m", builder(ModelKind::Rgcn, 8, seed), g)
                .expect("swap succeeds under load");
        }
    });

    let stats = srv.stats("m").unwrap();
    assert_eq!(stats.completed, 160, "every request was served");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.swaps, 3);
    assert!(
        stats.coalescing_factor() >= 1.0,
        "coalescing factor is well-defined under swap load"
    );
    assert!(versions_seen.load(Ordering::Relaxed) >= 1);
    srv.shutdown();
}

#[test]
fn coalescing_beats_naive_dispatch_on_traversal_count() {
    let g = graph(36, 64);
    for (max_coalesce, expected_max_forwards) in [(1usize, 16u64), (16, 1)] {
        let srv = ServeHandle::start(
            ServeConfig::default()
                .with_workers(1)
                .with_max_coalesce(max_coalesce),
        );
        srv.deploy("m", builder(ModelKind::Rgcn, 8, 13), &g)
            .unwrap();
        srv.pause();
        let tickets: Vec<_> = (0..16).map(|n| srv.submit("m", n).unwrap()).collect();
        srv.resume();
        for t in tickets {
            t.wait().unwrap();
        }
        let stats = srv.stats("m").unwrap();
        assert_eq!(stats.completed, 16);
        assert!(
            stats.forwards <= expected_max_forwards,
            "max_coalesce={max_coalesce}: {} forwards",
            stats.forwards
        );
        srv.shutdown();
    }
}

#[test]
fn delta_ingestion_under_load_drops_nothing_and_matches_fresh_oracle() {
    let g = graph(41, 64);
    let full = g.graph().clone();
    let mut sharded = ShardedGraph::partition(
        full.clone(),
        Box::new(HashPartitioner::new(3)),
        ShardConfig::new(4),
    );

    let srv = ServeHandle::start(ServeConfig::default().with_workers(4));
    srv.deploy("dyn", builder(ModelKind::Rgcn, 8, 21), &g)
        .unwrap();
    assert_eq!(srv.stats("dyn").unwrap().graph_version, 0);

    // Edge-only deltas keep node ids stable, so clients can keep
    // hammering the same id range across every graph version.
    let batches = [
        DeltaBatch::new()
            .add_edge(3, 9, 0)
            .add_edge(10, 11, 1)
            .add_edge(0, 63, 2),
        DeltaBatch::new()
            .remove_edge(full.src()[0], full.dst()[0], full.etype()[0])
            .add_edge(5, 5, 3),
        DeltaBatch::new().remove_edge(10, 11, 1).add_edge(7, 2, 0),
    ];

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let srv = srv.clone();
            s.spawn(move || {
                for i in 0..40u64 {
                    let node = ((t * 19 + i) % 64) as usize;
                    srv.submit("dyn", node)
                        .expect("submit accepted while deltas stream in")
                        .wait()
                        .expect("no request may fail across a delta swap");
                }
            });
        }
        // Stream the delta batches in while the clients hammer.
        for batch in &batches {
            let v = srv
                .apply_delta("dyn", builder(ModelKind::Rgcn, 8, 21), &mut sharded, batch)
                .expect("delta applies under load");
            assert_eq!(v, sharded.version());
        }
    });

    let stats = srv.stats("dyn").unwrap();
    assert_eq!(stats.completed, 160, "every request was served");
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.timed_out, 0);
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.swaps, 3, "each delta batch is one hot swap");
    assert_eq!(
        stats.graph_version, 3,
        "the deployment reports the delta generation it serves"
    );

    // Post-delta responses are bit-identical to a fresh unsharded
    // engine built directly on the post-delta graph.
    srv.drain();
    let post = GraphData::new(sharded.full().clone());
    let oracle = oracle_rows(ModelKind::Rgcn, 8, 21, &post);
    for node in [0usize, 3, 9, 11, 31, 63] {
        let r = srv.submit("dyn", node).unwrap().wait().unwrap();
        assert_eq!(
            row_bits(&r.rows[0]),
            oracle[node],
            "node {node}: post-delta response diverged from the fresh oracle"
        );
    }
    srv.shutdown();
}

// ---------------------------------------------------------------------------
// Fallible-API contract: every `HectorError` variant is reachable as a
// typed error, and misuse never panics.
// ---------------------------------------------------------------------------

#[test]
fn graph_mismatch_unbound_engine_and_empty_graph() {
    let mut engine = builder(ModelKind::Rgcn, 8, 1).build().unwrap();
    let err = engine.forward().unwrap_err();
    assert!(matches!(err, HectorError::GraphMismatch { .. }), "{err}");
    assert_eq!(err.kind(), "graph_mismatch");

    let empty = GraphData::new(HeteroGraphBuilder::new().build());
    let err = engine.bind(&empty).unwrap_err();
    assert!(matches!(err, HectorError::GraphMismatch { .. }), "{err}");
}

#[test]
fn shape_mismatch_misshapen_binding_and_wrong_label_count() {
    let g = graph(37, 48);
    let mut engine = builder(ModelKind::Rgcn, 8, 2).build().unwrap();
    engine.bind(&g).unwrap();
    let mut bad = Bindings::new();
    bad.set("h", hector_tensor::Tensor::zeros(&[3, 99]));
    engine.set_bindings(bad);
    let err = engine.forward().unwrap_err();
    assert!(matches!(err, HectorError::ShapeMismatch { .. }), "{err}");
    assert_eq!(err.kind(), "shape_mismatch");

    let mut engine = builder(ModelKind::Rgcn, 8, 2)
        .training(true)
        .build()
        .unwrap();
    engine.bind(&g).unwrap();
    let mut sgd = Sgd::new(0.01);
    let err = engine.train_step(&[0usize; 3], &mut sgd).unwrap_err(); // graph has 48 nodes
    assert!(matches!(err, HectorError::ShapeMismatch { .. }), "{err}");
}

#[test]
fn compile_error_custom_source_without_outputs() {
    let m = ModelBuilder::new("no_outputs", 8);
    let err = EngineBuilder::from_source(m.finish()).build().unwrap_err();
    assert!(matches!(err, HectorError::CompileError { .. }), "{err}");
    assert_eq!(err.kind(), "compile_error");
}

#[test]
fn backend_unavailable_for_unknown_backend_name() {
    let err = BackendKind::parse("tpu_v9").unwrap_err();
    assert!(
        matches!(err, HectorError::BackendUnavailable { ref name } if name == "tpu_v9"),
        "{err}"
    );
    assert_eq!(err.kind(), "backend_unavailable");
    assert!(BackendKind::parse("specialized").is_ok());
}

#[test]
fn invalid_config_zero_layers_zero_threads_and_untrained_step() {
    let err = builder(ModelKind::Rgcn, 8, 3)
        .layers(0)
        .build()
        .unwrap_err();
    assert!(matches!(err, HectorError::InvalidConfig { .. }), "{err}");
    assert_eq!(err.kind(), "invalid_config");

    // `with_threads` clamps, so smuggle the misconfiguration in
    // through the public fields — the session must still reject it.
    let zero_threads = ParallelConfig {
        num_threads: 0,
        ..ParallelConfig::sequential()
    };
    let err = Session::with_backend(
        DeviceConfig::rtx3090(),
        Mode::Real,
        zero_threads,
        BackendKind::Interp,
    )
    .unwrap_err();
    assert!(matches!(err, HectorError::InvalidConfig { .. }), "{err}");

    let g = graph(38, 32);
    let mut engine = builder(ModelKind::Rgcn, 8, 3).build().unwrap();
    engine.bind(&g).unwrap();
    let mut sgd = Sgd::new(0.01);
    let labels = vec![0usize; 32];
    let err = engine.train_step(&labels, &mut sgd).unwrap_err();
    assert!(matches!(err, HectorError::InvalidConfig { .. }), "{err}");
}

#[test]
fn oom_surfaces_as_typed_error_not_panic() {
    let g = graph(39, 64);
    let tiny = DeviceConfig::rtx3090().with_capacity(2048);
    let mut engine = builder(ModelKind::Rgcn, 16, 4)
        .device(tiny)
        .mode(Mode::Modeled)
        .build()
        .unwrap();
    let err = engine.bind(&g).unwrap().forward().unwrap_err();
    assert!(matches!(err, HectorError::Oom(_)), "{err}");
    assert_eq!(err.kind(), "oom");
    assert!(std::error::Error::source(&err).is_some());
}

#[test]
fn serve_wraps_engine_errors_and_policy_errors_distinctly() {
    let g = graph(40, 48);
    // An engine that OOMs at dispatch time: the request must fail with
    // a wrapped HectorError, not a panic or a hang.
    let tiny = DeviceConfig::rtx3090().with_capacity(2048);
    let srv = ServeHandle::start(ServeConfig::default().with_workers(1));
    srv.deploy(
        "oomy",
        builder(ModelKind::Rgcn, 16, 5)
            .device(tiny)
            .mode(Mode::Modeled),
        &g,
    )
    .unwrap();
    let err = srv.submit("oomy", 0).unwrap().wait().unwrap_err();
    assert!(
        matches!(err, ServeError::Hector(HectorError::Oom(_))),
        "{err}"
    );
    assert_eq!(srv.stats("oomy").unwrap().failed, 1);

    // Policy errors stay serving-level.
    assert!(matches!(
        srv.submit("ghost", 0),
        Err(ServeError::UnknownDeployment(_))
    ));
    assert!(matches!(
        srv.submit("oomy", 9999),
        Err(ServeError::BadRequest(_))
    ));
    srv.shutdown();
}
