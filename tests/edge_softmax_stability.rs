//! Regression tests for edge-softmax numerical stability.
//!
//! The seed's `edge_softmax` lowered to a bare `exp → sum → div`, so any
//! attention score above ~88 overflowed `exp` in f32 (`inf / inf = NaN`) —
//! HGT training with Adam hit this after ~28 steps and the loss curve
//! ended in NaN. The builder now emits the standard max-stabilised form
//! (subtract the per-destination max before `exp`, detached in backward).
//! These tests pin both overflow and underflow behaviour with extreme
//! attention scores under every optimization combination.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_ir::AggNorm;
use hector_tensor::seeded_rng;

/// A model that routes a node feature through a dot-product attention
/// score and an edge softmax; the output per destination node is the sum
/// of its incoming softmax weights, which must be exactly 1.
fn softmax_model(width: usize) -> hector::ModelSource {
    let mut m = ModelBuilder::new("softmax_stability", width);
    let h = m.node_input("h", width);
    let w_s = m.weight_vec_per_etype("w_s", width);
    let att = m.dot("att", m.src(h), m.wvec(w_s));
    let sm = m.edge_softmax("att_sm", att);
    let out = m.aggregate("out", m.edge(sm), None, AggNorm::None);
    m.output(out);
    m.finish()
}

fn graph() -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "softmax_stability".into(),
        num_nodes: 24,
        num_node_types: 2,
        num_edges: 96,
        num_edge_types: 3,
        compaction_ratio: 0.5,
        type_skew: 1.0,
        seed: 11,
    }))
}

/// Runs the model with the node feature pinned to `feature_value` and
/// returns the output tensor rows (one scalar per node).
fn run_with_feature(feature_value: f32, opts: &CompileOptions) -> Vec<f32> {
    let width = 4;
    let src = softmax_model(width);
    let g = graph();
    let module = hector::compile(&src, opts);
    let mut rng = seeded_rng(5);
    let mut params = ParamStore::init(&module.forward, &g, &mut rng);
    // Unit weights make the attention score exactly `width * feature`:
    // ±4e3 per edge at |feature| = 1e3, far beyond f32's exp range.
    for w in 0..params.len() {
        let wid = hector_ir::WeightId(w as u32);
        params.weight_mut(wid).data_mut().fill(1.0);
    }
    let mut bindings = Bindings::new();
    let n = g.graph().num_nodes();
    bindings.set(
        "h",
        Tensor::from_vec(vec![feature_value; n * width], &[n, width]),
    );
    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let (vars, _) = session
        .run_inference(&module, &g, &mut params, &bindings)
        .unwrap();
    let out = *module.forward.outputs.first().expect("model has an output");
    vars.tensor(out).data().to_vec()
}

fn all_option_combos() -> [CompileOptions; 4] {
    [
        CompileOptions::unopt(),
        CompileOptions::compact_only(),
        CompileOptions::reorder_only(),
        CompileOptions::best(),
    ]
}

#[test]
fn huge_positive_scores_do_not_overflow() {
    for opts in all_option_combos() {
        let sums = run_with_feature(1e3, &opts);
        for (v, &s) in sums.iter().enumerate() {
            assert!(
                s.is_finite(),
                "{}: node {v} softmax sum is {s}",
                opts.label()
            );
        }
        // Nodes with incoming edges must see their attention sum to 1.
        let g = graph();
        let mut has_in = vec![false; g.graph().num_nodes()];
        for &d in g.graph().dst() {
            has_in[d as usize] = true;
        }
        for (v, &s) in sums.iter().enumerate() {
            if has_in[v] {
                assert!((s - 1.0).abs() < 1e-5, "{}: node {v} sum {s}", opts.label());
            }
        }
    }
}

#[test]
fn huge_negative_scores_do_not_underflow_to_nan() {
    // All-negative attention: without true max-stabilisation every exp
    // underflows to 0 and the division yields 0/0 = NaN.
    for opts in all_option_combos() {
        let sums = run_with_feature(-1e3, &opts);
        for (v, &s) in sums.iter().enumerate() {
            assert!(
                s.is_finite(),
                "{}: node {v} softmax sum is {s}",
                opts.label()
            );
        }
    }
}

#[test]
fn stabilised_softmax_matches_unstabilised_in_safe_range() {
    // In the numerically safe regime the stabilisation must be invisible:
    // softmax sums are 1 exactly as before.
    for opts in all_option_combos() {
        let sums = run_with_feature(0.25, &opts);
        let g = graph();
        let mut has_in = vec![false; g.graph().num_nodes()];
        for &d in g.graph().dst() {
            has_in[d as usize] = true;
        }
        for (v, &s) in sums.iter().enumerate() {
            if has_in[v] {
                assert!((s - 1.0).abs() < 1e-5, "{}: node {v} sum {s}", opts.label());
            }
        }
    }
}
