//! Bit-exact determinism of the parallel real-mode executor.
//!
//! The `hector-par` executor promises that `HECTOR_THREADS` never changes
//! a single output bit: row chunks write disjoint rows directly, while
//! scatter/aggregate contributions are recorded per chunk and replayed in
//! fixed chunk order — the exact floating-point operations of the
//! sequential loop, in the exact sequential order. These tests pin that
//! contract across every optimization combination and all three built-in
//! models, for inference outputs and for five full training steps
//! (losses and every learned weight), plus a property suite over random
//! graphs, thread counts, and chunk sizes. Chunk sizes are deliberately
//! tiny so even the small test graphs split into many chunks.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_tensor::seeded_rng;
use proptest::prelude::*;

fn graph(seed: u64, nodes: usize, edges: usize) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "par_determinism".into(),
        num_nodes: nodes,
        num_node_types: 3,
        num_edges: edges,
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed,
    }))
}

fn par_cfg(threads: usize, min_chunk: usize) -> ParallelConfig {
    ParallelConfig::sequential()
        .with_threads(threads)
        .with_min_chunk_rows(min_chunk)
}

fn all_option_combos(training: bool) -> [CompileOptions; 4] {
    [
        CompileOptions::unopt().with_training(training),
        CompileOptions::compact_only().with_training(training),
        CompileOptions::reorder_only().with_training(training),
        CompileOptions::best().with_training(training),
    ]
}

/// Runs one inference and returns the output tensor as raw f32 bits.
fn inference_bits(
    kind: ModelKind,
    opts: &CompileOptions,
    g: &GraphData,
    threads: usize,
    min_chunk: usize,
) -> Vec<u32> {
    let module = hector::compile_model(kind, 16, 16, opts);
    let mut rng = seeded_rng(7);
    let mut params = ParamStore::init(&module.forward, g, &mut rng);
    let bindings = Bindings::standard(&module.forward, g, &mut rng);
    let mut session = Session::with_parallel(
        DeviceConfig::rtx3090(),
        Mode::Real,
        par_cfg(threads, min_chunk),
    );
    let (vars, _) = session
        .run_inference(&module, g, &mut params, &bindings)
        .expect("inference fits");
    let out = module.forward.outputs[0];
    vars.tensor(out)
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Runs `steps` Adam training steps; returns (per-step loss bits, all
/// final weight bits) — the whole training trajectory, bit for bit.
fn training_bits(
    kind: ModelKind,
    opts: &CompileOptions,
    g: &GraphData,
    threads: usize,
    steps: usize,
) -> (Vec<u32>, Vec<u32>) {
    let module = hector::compile_model(kind, 16, 16, opts);
    let mut rng = seeded_rng(13);
    let mut params = ParamStore::init(&module.forward, g, &mut rng);
    let bindings = Bindings::standard(&module.forward, g, &mut rng);
    let labels: Vec<usize> = (0..g.graph().num_nodes()).map(|i| i % 4).collect();
    let mut session =
        Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par_cfg(threads, 4));
    let mut opt = Adam::new(0.01);
    let mut losses = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (_, report) = session
            .run_training_step(&module, g, &mut params, &bindings, &labels, &mut opt)
            .expect("training step fits");
        losses.push(report.loss.expect("real mode reports loss").to_bits());
    }
    let mut weights = Vec::new();
    for w in 0..params.len() {
        let wid = hector_ir::WeightId(w as u32);
        weights.extend(params.weight(wid).data().iter().map(|v| v.to_bits()));
    }
    (losses, weights)
}

#[test]
fn inference_is_bit_identical_across_thread_counts() {
    let g = graph(11, 120, 720);
    for kind in ModelKind::all() {
        for opts in all_option_combos(false) {
            let seq = inference_bits(kind, &opts, &g, 1, 4);
            let par = inference_bits(kind, &opts, &g, 4, 4);
            assert_eq!(
                seq,
                par,
                "{} / {}: 4-thread inference diverged from sequential",
                kind.name(),
                opts.label()
            );
        }
    }
}

#[test]
fn five_training_steps_are_bit_identical_across_thread_counts() {
    let g = graph(23, 80, 480);
    for kind in ModelKind::all() {
        for opts in all_option_combos(true) {
            let (seq_loss, seq_w) = training_bits(kind, &opts, &g, 1, 5);
            let (par_loss, par_w) = training_bits(kind, &opts, &g, 4, 5);
            assert_eq!(
                seq_loss,
                par_loss,
                "{} / {}: loss trajectory diverged",
                kind.name(),
                opts.label()
            );
            assert_eq!(
                seq_w,
                par_w,
                "{} / {}: trained weights diverged",
                kind.name(),
                opts.label()
            );
        }
    }
}

#[test]
fn parallel_runs_record_parallel_stats() {
    let g = graph(5, 200, 1200);
    let module = hector::compile_model(ModelKind::Rgcn, 16, 16, &CompileOptions::best());
    let mut rng = seeded_rng(3);
    let mut params = ParamStore::init(&module.forward, &g, &mut rng);
    let bindings = Bindings::standard(&module.forward, &g, &mut rng);
    let mut session = Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par_cfg(4, 4));
    session
        .run_inference(&module, &g, &mut params, &bindings)
        .unwrap();
    let p = session.device().counters().parallel();
    assert!(p.parallel_launches > 0, "pooled kernels must be recorded");
    assert!(p.chunks > 0, "row domains must have split into chunks");
    assert!(p.total_wall_us() > 0.0);
    let stats = session.pool_stats().expect("4-thread session has a pool");
    assert!(stats.executed > 0);

    // And the sequential config records only sequential launches.
    let mut seq = Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par_cfg(1, 4));
    seq.run_inference(&module, &g, &mut params, &bindings)
        .unwrap();
    let p = seq.device().counters().parallel();
    assert_eq!(p.parallel_launches, 0);
    assert!(p.sequential_launches > 0);
    assert!(seq.pool_stats().is_none(), "num_threads=1 creates no pool");
}

/// The scratch-arena executor at `HECTOR_THREADS ∈ {1, 4}`: repeated
/// runs on a warm session must stay bit-identical (buffer reuse cannot
/// leak state between kernels or runs), and the arenas — the session
/// scratch *and* the pooled per-chunk worker slots — must reach their
/// zero-growth steady state after one warm-up pass at either count.
#[test]
fn scratch_arena_is_stateless_across_runs_and_thread_counts() {
    let g = graph(31, 100, 600);
    let module = hector::compile_model(ModelKind::Hgt, 16, 16, &CompileOptions::best());
    let mut reference: Option<Vec<u32>> = None;
    for threads in [1usize, 4] {
        let mut rng = seeded_rng(29);
        let mut params = ParamStore::init(&module.forward, &g, &mut rng);
        let bindings = Bindings::standard(&module.forward, &g, &mut rng);
        let mut session =
            Session::with_parallel(DeviceConfig::rtx3090(), Mode::Real, par_cfg(threads, 4));
        let mut runs = Vec::new();
        for _ in 0..3 {
            let (vars, _) = session
                .run_inference(&module, &g, &mut params, &bindings)
                .expect("inference fits");
            let out = module.forward.outputs[0];
            runs.push(
                vars.tensor(out)
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<u32>>(),
            );
        }
        assert_eq!(runs[0], runs[1], "threads={threads}: warm rerun diverged");
        assert_eq!(runs[1], runs[2], "threads={threads}: warm rerun diverged");
        let s = session.device().counters().scratch();
        assert!(s.kernels > 0, "scratch stats must be recorded");
        // Steady state at any thread count: the per-chunk worker arenas
        // are pooled on the session, so the last (warm) run grew nothing
        // — sequential and threaded runs alike.
        assert_eq!(s.grows, 0, "threads={threads}: warm arena grew: {s:?}");
        assert!((s.steady_fraction() - 1.0).abs() < 1e-12);
        match &reference {
            None => reference = Some(runs.pop().unwrap()),
            Some(bits) => assert_eq!(bits, &runs[2], "thread counts diverged"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random graph shape × model × optimization combo × thread count ×
    /// chunk size: inference must stay bit-identical to sequential.
    #[test]
    fn random_configs_stay_bit_identical(
        seed in 0u64..1000,
        nodes in 24usize..96,
        edges_per_node in 2usize..8,
        threads in 2usize..6,
        min_chunk in 1usize..32,
        model_ix in 0usize..3,
        opt_ix in 0usize..4,
    ) {
        let g = graph(seed, nodes, nodes * edges_per_node);
        let kind = ModelKind::all()[model_ix];
        let opts = all_option_combos(false)[opt_ix].clone();
        let seq = inference_bits(kind, &opts, &g, 1, min_chunk);
        let par = inference_bits(kind, &opts, &g, threads, min_chunk);
        prop_assert_eq!(seq, par);
    }
}
