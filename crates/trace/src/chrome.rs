//! `trace_event` JSON export for `chrome://tracing` / Perfetto.
//!
//! Emits the JSON-object form (`{"traceEvents": [...]}`) with:
//!
//! * one `"M"` (metadata) `thread_name` event per registered thread,
//!   so worker lanes are labelled `hector-par-{i}`; when the runtime has
//!   set an execution-backend label ([`crate::set_backend_label`]), the
//!   metadata args carry it as `"backend"`;
//! * one `"X"` (complete) event per span, `ts`/`dur` in fractional
//!   microseconds, with `rows`/`stage`/`flops` under `args`;
//! * one `"i"` (instant, thread scope) event per annotation, with the
//!   `detail` string under `args`.
//!
//! The writer is hand-rolled (the build is offline; no serde) and the
//! field set is pinned by the `trace_schema` golden test.

use std::io::Write as _;

use crate::{thread_names, TraceEvent};

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders events as a chrome-trace JSON document.
///
/// Thread-name metadata comes from the recorder's registry
/// ([`thread_names`]), so call this in the process that recorded.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 160 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push_sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    let used: std::collections::BTreeSet<u64> = events.iter().map(|e| e.tid).collect();
    for (tid, name) in thread_names() {
        if !used.contains(&tid) {
            continue;
        }
        push_sep(&mut out);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        out.push_str(&tid.to_string());
        out.push_str(",\"args\":{\"name\":\"");
        escape(&name, &mut out);
        let backend = crate::backend_label();
        if !backend.is_empty() {
            out.push_str("\",\"backend\":\"");
            escape(backend, &mut out);
        }
        out.push_str("\"}}");
    }
    for ev in events {
        push_sep(&mut out);
        let ts = ev.start_ns as f64 / 1e3;
        if ev.instant {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},\"pid\":1,\"tid\":{}",
                ev.name,
                ev.cat.label(),
                ev.tid
            ));
            out.push_str(",\"args\":{\"detail\":\"");
            escape(ev.detail.as_deref().unwrap_or(""), &mut out);
            out.push_str("\"}}");
        } else {
            let dur = ev.dur_ns as f64 / 1e3;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":1,\"tid\":{}",
                ev.name,
                ev.cat.label(),
                ev.tid
            ));
            out.push_str(&format!(
                ",\"args\":{{\"rows\":{},\"stage\":{},\"flops\":{:.1}}}}}",
                ev.rows, ev.stage, ev.flops
            ));
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Writes [`chrome_trace_json`] output to `path`.
///
/// # Errors
///
/// Propagates I/O failures from creating or writing the file.
pub fn write_chrome_trace(path: &str, events: &[TraceEvent]) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(chrome_trace_json(events).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanCat;

    fn ev(name: &'static str, instant: bool) -> TraceEvent {
        TraceEvent {
            name,
            cat: SpanCat::Kernel,
            start_ns: 1500,
            dur_ns: 2500,
            tid: crate::current_tid(),
            rows: 7,
            stage: 2,
            flops: 10.0,
            detail: if instant {
                Some("a \"quoted\"\nreason".into())
            } else {
                None
            },
            instant,
        }
    }

    #[test]
    fn json_has_schema_fields() {
        let s = chrome_trace_json(&[ev("gemm/typed_linear", false), ev("fusion/fuse", true)]);
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"ph\":\"M\""));
        assert!(s.contains("\"ts\":1.500"));
        assert!(s.contains("\"dur\":2.500"));
        assert!(s.contains("\"rows\":7"));
        assert!(s.contains("\\\"quoted\\\"\\n"));
        assert!(s.trim_end().ends_with("]}"));
    }

    #[test]
    fn escape_control_chars() {
        let mut out = String::new();
        escape("a\u{1}b", &mut out);
        assert_eq!(out, "a\\u0001b");
    }
}
