//! Structured tracing and profiling for the Hector runtime.
//!
//! The recorder is process-global and **zero-overhead when off**: every
//! instrumentation site starts with [`span_start`], which is a single
//! relaxed atomic load returning `None` while tracing is disabled — no
//! clock read, no allocation, no lock. The allocation-free warm path of
//! `Session::forward` / `train_step` (pinned by `tests/run_alloc.rs`)
//! is therefore preserved with tracing compiled in.
//!
//! When tracing is enabled (via [`enable`], [`TraceConfig`], or the
//! `HECTOR_TRACE` environment variable read by the engine builder),
//! spans are written into **bounded per-thread ring buffers**:
//!
//! * each thread registers one ring on its first recorded event
//!   (capacity from `HECTOR_TRACE_BUF`, default 16384 events);
//! * recording into a registered ring takes only that ring's own
//!   uncontended mutex and overwrites the oldest slot when full
//!   (overflow is counted, never grows the buffer);
//! * spans recorded without a `detail` string perform **zero heap
//!   allocations** after the ring exists, so steady-state tracing does
//!   not perturb the allocation profile it is measuring.
//!
//! Timestamps are monotonic nanoseconds from a process-wide epoch
//! ([`std::time::Instant`]), and every event carries a dense trace
//! thread id plus the OS thread name captured at registration (worker
//! threads are named `hector-par-{i}` by the pool), so exports land in
//! per-thread lanes in Perfetto / `chrome://tracing`.
//!
//! Three consumers sit on top of the recorder:
//!
//! * [`report::ProfileReport`] — per-kernel-kind and per-relation
//!   aggregates with a pretty `Display` table (`Engine::profile`);
//! * [`chrome`] — `trace_event` JSON export for Perfetto;
//! * [`stats`] — cumulative counters merged into the device
//!   `counters()` report.

#![warn(missing_docs)]

pub mod chrome;
pub mod report;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Category of a recorded span or instant event.
///
/// Categories partition the timeline so [`report::ProfileReport`] can
/// attribute wall time without double counting: `Run` spans cover one
/// whole `forward`/`train_step`, and the disjoint `Kernel` + `Phase`
/// spans inside them are what "attributed" means.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanCat {
    /// One whole run (`run/forward`, `run/train_step`).
    Run,
    /// A non-kernel slice of a run (bind, loss, optimizer, setup).
    Phase,
    /// One kernel invocation in an executor.
    Kernel,
    /// One chunk executed by a pool worker (parallel executor).
    Worker,
    /// A compiler pass or fusion decision.
    Compiler,
    /// Minibatch pipeline activity (sample, prefetch wait).
    Pipeline,
    /// Sharded-execution activity (per-shard runs, boundary exchange,
    /// delta application).
    Shard,
}

impl SpanCat {
    /// Stable lowercase label used in exports and golden files.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanCat::Run => "run",
            SpanCat::Phase => "phase",
            SpanCat::Kernel => "kernel",
            SpanCat::Worker => "worker",
            SpanCat::Compiler => "compiler",
            SpanCat::Pipeline => "pipeline",
            SpanCat::Shard => "shard",
        }
    }
}

/// One recorded event: a duration span, or an instant annotation
/// (`dur_ns == 0`, `instant == true`).
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Static span name, e.g. `gemm/typed_linear`.
    pub name: &'static str,
    /// Category (timeline lane semantics — see [`SpanCat`]).
    pub cat: SpanCat,
    /// Start time in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Dense trace thread id (0 = first recording thread).
    pub tid: u64,
    /// Rows / edges processed (0 when not applicable).
    pub rows: u64,
    /// Stage index within the run (kernel position, chunk index).
    pub stage: u32,
    /// Estimated floating-point operations (0.0 when unknown).
    pub flops: f64,
    /// Optional free-form annotation (fusion decisions); spans on the
    /// execution hot path never carry one, keeping recording
    /// allocation-free.
    pub detail: Option<Box<str>>,
    /// True for point-in-time annotations rather than spans.
    pub instant: bool,
}

/// Cumulative recorder counters, exposed through the device crate's
/// `Counters::trace()` so benches and CI consume them alongside the
/// existing kernel/parallel/sampler stats.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TraceStats {
    /// Whether tracing is currently enabled.
    pub enabled: bool,
    /// Events recorded into rings since process start (or [`clear`]).
    pub recorded: u64,
    /// Events overwritten because a ring was full.
    pub dropped: u64,
    /// Threads that have registered a ring.
    pub threads: u64,
}

/// How tracing should be configured for an engine.
///
/// `EngineBuilder::trace` takes one of these; [`TraceConfig::from_env`]
/// reads the `HECTOR_TRACE` variable so any binary can opt in without
/// code changes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceConfig {
    /// Enable the recorder for the engine's lifetime.
    pub enabled: bool,
    /// Write a chrome-trace JSON file here when the engine is dropped
    /// (or when `Engine::write_trace` is called explicitly).
    pub out_path: Option<String>,
}

impl TraceConfig {
    /// Tracing on, no automatic export.
    #[must_use]
    pub fn on() -> TraceConfig {
        TraceConfig {
            enabled: true,
            out_path: None,
        }
    }

    /// Tracing on, exporting chrome-trace JSON to `path` on drop.
    #[must_use]
    pub fn with_output(path: &str) -> TraceConfig {
        TraceConfig {
            enabled: true,
            out_path: Some(path.to_string()),
        }
    }

    /// Configuration from the environment: `HECTOR_TRACE=<out.json>`
    /// enables tracing and selects the export path. Unset or empty
    /// means disabled.
    #[must_use]
    pub fn from_env() -> TraceConfig {
        match std::env::var("HECTOR_TRACE") {
            Ok(p) if !p.is_empty() => TraceConfig::with_output(&p),
            _ => TraceConfig::default(),
        }
    }
}

// ---------------------------------------------------------------------
// Recorder internals.

static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDED: AtomicU64 = AtomicU64::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the oldest event once the buffer has wrapped.
    head: usize,
}

struct RingHandle {
    tid: u64,
    thread_name: String,
    ring: Mutex<Ring>,
}

fn registry() -> &'static Mutex<Vec<Arc<RingHandle>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<RingHandle>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> &'static Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Ring capacity from `HECTOR_TRACE_BUF` (events per thread, default
/// 16384, minimum 16). Read once per process.
#[must_use]
pub fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("HECTOR_TRACE_BUF")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map_or(16384, |n| n.max(16))
    })
}

thread_local! {
    static LOCAL_RING: Arc<RingHandle> = register_current_thread();
}

fn register_current_thread() -> Arc<RingHandle> {
    let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    let thread_name = std::thread::current()
        .name()
        .unwrap_or("thread")
        .to_string();
    let handle = Arc::new(RingHandle {
        tid,
        thread_name,
        ring: Mutex::new(Ring {
            buf: Vec::with_capacity(ring_capacity()),
            head: 0,
        }),
    });
    registry().lock().unwrap().push(Arc::clone(&handle));
    handle
}

fn push_event(ev: TraceEvent) {
    LOCAL_RING.with(|handle| {
        let mut ring = handle.ring.lock().unwrap();
        let cap = ring.buf.capacity();
        if ring.buf.len() < cap {
            ring.buf.push(ev);
        } else {
            // Overwrite the oldest slot; a dropped `detail` box is a
            // deallocation only, so warm recording stays alloc-free.
            let head = ring.head;
            ring.buf[head] = ev;
            ring.head = (head + 1) % cap;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    });
    RECORDED.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// Public recording API.

/// Turn the recorder on (process-global).
pub fn enable() {
    epoch(); // Pin the epoch before the first timestamp.
    ENABLED.store(true, Ordering::Release);
}

/// Turn the recorder off. Already-recorded events stay buffered until
/// [`take_events`] or [`clear`].
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Is the recorder currently on?
#[inline]
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Nanoseconds since the process trace epoch.
#[must_use]
pub fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Start a span: `None` (one relaxed load, nothing else) while tracing
/// is off, otherwise the current timestamp to hand back to
/// [`record_span`].
#[inline]
#[must_use]
pub fn span_start() -> Option<u64> {
    if is_enabled() {
        Some(now_ns())
    } else {
        None
    }
}

/// Record a completed span started at `start_ns` (from
/// [`span_start`]). Allocation-free once the calling thread's ring
/// exists.
pub fn record_span(
    name: &'static str,
    cat: SpanCat,
    start_ns: u64,
    rows: u64,
    stage: u32,
    flops: f64,
) {
    let end = now_ns();
    push_event(TraceEvent {
        name,
        cat,
        start_ns,
        dur_ns: end.saturating_sub(start_ns),
        tid: current_tid(),
        rows,
        stage,
        flops,
        detail: None,
        instant: false,
    });
}

/// Record an instant annotation. The `detail` closure only runs when
/// tracing is on, so call sites may format freely without gating.
pub fn record_instant(name: &'static str, cat: SpanCat, detail: impl FnOnce() -> String) {
    if !is_enabled() {
        return;
    }
    push_event(TraceEvent {
        name,
        cat,
        start_ns: now_ns(),
        dur_ns: 0,
        tid: current_tid(),
        rows: 0,
        stage: 0,
        flops: 0.0,
        detail: Some(detail().into_boxed_str()),
        instant: true,
    });
}

/// The calling thread's dense trace id (registers a ring on first use).
#[must_use]
pub fn current_tid() -> u64 {
    LOCAL_RING.with(|h| h.tid)
}

/// Drain every thread's ring, returning all buffered events sorted by
/// start time. Ring capacity is retained (no reallocation on the next
/// recorded event).
#[must_use]
pub fn take_events() -> Vec<TraceEvent> {
    let mut out = Vec::new();
    let handles: Vec<Arc<RingHandle>> = registry().lock().unwrap().clone();
    for handle in handles {
        let mut ring = handle.ring.lock().unwrap();
        let head = ring.head;
        // Oldest-first: [head..] then [..head].
        out.extend_from_slice(&ring.buf[head..]);
        out.extend_from_slice(&ring.buf[..head]);
        ring.buf.clear();
        ring.head = 0;
    }
    out.sort_by_key(|e| (e.start_ns, e.tid));
    out
}

/// Discard all buffered events and reset the cumulative
/// recorded/dropped counters (thread registrations persist).
pub fn clear() {
    let handles: Vec<Arc<RingHandle>> = registry().lock().unwrap().clone();
    for handle in handles {
        let mut ring = handle.ring.lock().unwrap();
        ring.buf.clear();
        ring.head = 0;
    }
    RECORDED.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
}

/// Snapshot of the recorder's cumulative counters.
#[must_use]
pub fn stats() -> TraceStats {
    TraceStats {
        enabled: is_enabled(),
        recorded: RECORDED.load(Ordering::Relaxed),
        dropped: DROPPED.load(Ordering::Relaxed),
        threads: registry().lock().unwrap().len() as u64,
    }
}

fn backend_label_cell() -> &'static Mutex<&'static str> {
    static LABEL: OnceLock<Mutex<&'static str>> = OnceLock::new();
    LABEL.get_or_init(|| Mutex::new(""))
}

/// Tags subsequent trace exports with the execution backend that
/// produced the spans ("interp", "specialized"). Set by the runtime when
/// a session is created; `""` means unset. Process-global, like the
/// recorder itself.
pub fn set_backend_label(name: &'static str) {
    *backend_label_cell().lock().unwrap() = name;
}

/// The current backend label (see [`set_backend_label`]).
#[must_use]
pub fn backend_label() -> &'static str {
    *backend_label_cell().lock().unwrap()
}

/// `(tid, thread name)` for every registered ring, for per-thread
/// lanes in exports.
#[must_use]
pub fn thread_names() -> Vec<(u64, String)> {
    let mut v: Vec<(u64, String)> = registry()
        .lock()
        .unwrap()
        .iter()
        .map(|h| (h.tid, h.thread_name.clone()))
        .collect();
    v.sort_by_key(|(tid, _)| *tid);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder is process-global; tests in this binary serialise
    // on one mutex so enable/disable and ring contents don't interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn off_means_no_spans() {
        let _g = LOCK.lock().unwrap();
        disable();
        let _ = take_events();
        assert!(span_start().is_none());
        record_instant("never", SpanCat::Compiler, || unreachable!());
        assert!(take_events().is_empty());
    }

    #[test]
    fn spans_round_trip() {
        let _g = LOCK.lock().unwrap();
        enable();
        let _ = take_events();
        let t0 = span_start().expect("enabled");
        record_span("gemm/typed_linear", SpanCat::Kernel, t0, 42, 3, 1e6);
        record_instant("fusion/fuse", SpanCat::Compiler, || "why".to_string());
        disable();
        let evs = take_events();
        assert_eq!(evs.len(), 2);
        let span = evs.iter().find(|e| !e.instant).unwrap();
        assert_eq!(span.name, "gemm/typed_linear");
        assert_eq!(span.rows, 42);
        assert_eq!(span.stage, 3);
        let inst = evs.iter().find(|e| e.instant).unwrap();
        assert_eq!(inst.detail.as_deref(), Some("why"));
        assert!(stats().recorded >= 2);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let _g = LOCK.lock().unwrap();
        enable();
        let _ = take_events();
        let before_drops = stats().dropped;
        let cap = ring_capacity();
        for i in 0..(cap + 5) {
            let t0 = span_start().unwrap();
            record_span("k", SpanCat::Kernel, t0, i as u64, 0, 0.0);
        }
        disable();
        let evs = take_events();
        assert_eq!(evs.len(), cap, "bounded at ring capacity");
        assert_eq!(stats().dropped - before_drops, 5, "overflow counted");
        // Oldest events were the ones overwritten.
        assert!(evs.iter().all(|e| e.rows >= 5));
    }

    #[test]
    fn config_from_parts() {
        assert!(!TraceConfig::default().enabled);
        assert!(TraceConfig::on().enabled);
        let c = TraceConfig::with_output("/tmp/t.json");
        assert!(c.enabled);
        assert_eq!(c.out_path.as_deref(), Some("/tmp/t.json"));
    }
}
