//! Aggregation of trace events into a structured [`ProfileReport`].
//!
//! `Engine::profile` drains the recorder after the profiled closure and
//! feeds the events here. Aggregation is by span *name* within each
//! category, so "per kernel kind" falls out of the span naming scheme
//! (`gemm/typed_linear`, `traversal/edges`, ...). Per-relation rows are
//! model-based estimates: a fused kernel invocation covers every edge
//! type in one pass, so kernel time is apportioned by each relation's
//! share of edges (traversal) and of unique (src,etype) pairs (GEMM) —
//! see [`RelationShare`].

use std::collections::BTreeMap;
use std::fmt;

use crate::{SpanCat, TraceEvent};

/// Aggregate over all spans sharing one name within a category.
#[derive(Clone, Debug, Default)]
pub struct SpanAgg {
    /// Span name (e.g. `gemm/typed_linear`).
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Total time, microseconds.
    pub total_us: f64,
    /// Mean time per span, microseconds.
    pub mean_us: f64,
    /// 99th-percentile span time, microseconds.
    pub p99_us: f64,
    /// Total rows/edges processed across spans.
    pub rows: u64,
    /// Total estimated floating-point operations.
    pub flops: f64,
}

impl SpanAgg {
    /// Estimated GFLOP/s over this aggregate's own busy time.
    #[must_use]
    pub fn gflops(&self) -> f64 {
        if self.total_us <= 0.0 {
            0.0
        } else {
            self.flops / (self.total_us * 1e3)
        }
    }
}

/// One relation's share of the graph, used to apportion fused-kernel
/// time into per-relation estimates.
#[derive(Clone, Debug)]
pub struct RelationShare {
    /// Relation (edge type) name.
    pub name: String,
    /// Edges of this relation.
    pub edges: u64,
    /// Unique (source node, relation) pairs — the GEMM row count under
    /// compact materialization.
    pub unique: u64,
}

/// Per-relation time estimate derived from [`RelationShare`] fractions.
#[derive(Clone, Debug)]
pub struct RelationAgg {
    /// Relation (edge type) name.
    pub name: String,
    /// Edges of this relation.
    pub edges: u64,
    /// Estimated traversal time attributable to this relation, µs.
    pub traversal_us: f64,
    /// Estimated GEMM time attributable to this relation, µs.
    pub gemm_us: f64,
}

/// Sharded-execution summary mirrored into a [`ProfileReport`] by
/// `ShardedEngine::profile` (`hector-shard`). The trace crate defines the
/// shape so reports can carry it without a dependency on the shard or
/// device crates; the numbers themselves come from the device's
/// process-global shard probe.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardSummary {
    /// Shards in the current partitioning.
    pub shards: usize,
    /// Fraction of full-graph edges whose endpoints live on different
    /// shards.
    pub edge_cut_fraction: f64,
    /// Halo rows (replicated non-owned nodes) across all shards.
    pub halo_rows: u64,
    /// Per-shard run plans invalidated by delta application.
    pub plan_invalidations: u64,
    /// Individual delta operations applied.
    pub delta_ops: u64,
}

/// Structured profile built from one drained trace.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Total wall time of all `Run` spans, microseconds.
    pub wall_us: f64,
    /// Per-kernel-kind aggregates, sorted by descending total time.
    pub kernels: Vec<SpanAgg>,
    /// Per-phase aggregates (bind, loss, optimizer, ...), same order.
    pub phases: Vec<SpanAgg>,
    /// Compiler pass aggregates (present when compilation was traced).
    pub passes: Vec<SpanAgg>,
    /// Minibatch pipeline aggregates (sample, prefetch wait).
    pub pipeline: Vec<SpanAgg>,
    /// Sharded-execution aggregates (per-shard runs, boundary exchange,
    /// delta application); empty outside sharded execution.
    pub shard: Vec<SpanAgg>,
    /// Sharding counters, set by `ShardedEngine::profile`; `None` for
    /// unsharded profiles.
    pub shard_stats: Option<ShardSummary>,
    /// Per-relation estimates (see module docs); empty when no graph
    /// relation mix was supplied.
    pub relations: Vec<RelationAgg>,
    /// Fraction of `Run` wall time attributed to kernel + phase spans.
    pub coverage: f64,
    /// Events aggregated into this report.
    pub events: usize,
    /// Ring-buffer overwrites during recording (0 = nothing lost).
    pub dropped: u64,
    /// Execution backend that produced the kernel spans ("interp",
    /// "specialized"); `""` when no backend label was set (for example,
    /// a compile-only trace).
    pub backend: String,
}

fn aggregate(events: &[TraceEvent], cat: SpanCat) -> Vec<SpanAgg> {
    let mut durs: BTreeMap<&'static str, Vec<f64>> = BTreeMap::new();
    let mut rows: BTreeMap<&'static str, (u64, f64)> = BTreeMap::new();
    for e in events.iter().filter(|e| e.cat == cat && !e.instant) {
        durs.entry(e.name).or_default().push(e.dur_ns as f64 / 1e3);
        let r = rows.entry(e.name).or_insert((0, 0.0));
        r.0 += e.rows;
        r.1 += e.flops;
    }
    let mut out: Vec<SpanAgg> = durs
        .into_iter()
        .map(|(name, mut ds)| {
            ds.sort_by(f64::total_cmp);
            let total: f64 = ds.iter().sum();
            let n = ds.len();
            let p99_idx = ((n as f64 * 0.99).ceil() as usize).clamp(1, n) - 1;
            let (r, f) = rows[name];
            SpanAgg {
                name: name.to_string(),
                count: n as u64,
                total_us: total,
                mean_us: total / n as f64,
                p99_us: ds[p99_idx],
                rows: r,
                flops: f,
            }
        })
        .collect();
    out.sort_by(|a, b| b.total_us.total_cmp(&a.total_us));
    out
}

/// Builds a report from drained events plus the bound graph's relation
/// mix (pass `&[]` when no graph is bound).
#[must_use]
pub fn build_report(events: &[TraceEvent], relations: &[RelationShare]) -> ProfileReport {
    let kernels = aggregate(events, SpanCat::Kernel);
    let phases = aggregate(events, SpanCat::Phase);
    let passes = aggregate(events, SpanCat::Compiler);
    let pipeline = aggregate(events, SpanCat::Pipeline);
    let shard = aggregate(events, SpanCat::Shard);
    let wall_us: f64 = events
        .iter()
        .filter(|e| e.cat == SpanCat::Run)
        .map(|e| e.dur_ns as f64 / 1e3)
        .sum();
    let attributed: f64 = kernels
        .iter()
        .chain(phases.iter())
        .map(|a| a.total_us)
        .sum();
    let coverage = if wall_us > 0.0 {
        (attributed / wall_us).min(1.0)
    } else {
        0.0
    };

    let traversal_us: f64 = kernels
        .iter()
        .filter(|a| a.name.starts_with("traversal/"))
        .map(|a| a.total_us)
        .sum();
    let gemm_us: f64 = kernels
        .iter()
        .filter(|a| a.name.starts_with("gemm/"))
        .map(|a| a.total_us)
        .sum();
    let total_edges: u64 = relations.iter().map(|r| r.edges).sum();
    let total_unique: u64 = relations.iter().map(|r| r.unique).sum();
    let rel = relations
        .iter()
        .map(|r| RelationAgg {
            name: r.name.clone(),
            edges: r.edges,
            traversal_us: if total_edges == 0 {
                0.0
            } else {
                traversal_us * r.edges as f64 / total_edges as f64
            },
            gemm_us: if total_unique == 0 {
                0.0
            } else {
                gemm_us * r.unique as f64 / total_unique as f64
            },
        })
        .collect();

    ProfileReport {
        wall_us,
        kernels,
        phases,
        passes,
        pipeline,
        shard,
        shard_stats: None,
        relations: rel,
        coverage,
        events: events.len(),
        dropped: crate::stats().dropped,
        backend: crate::backend_label().to_string(),
    }
}

fn fmt_us(us: f64) -> String {
    if us >= 1e4 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{us:.1} us")
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} over {} events ({:.1}% of run wall attributed{}{})",
            fmt_us(self.wall_us),
            self.events,
            self.coverage * 100.0,
            if self.backend.is_empty() {
                String::new()
            } else {
                format!("; backend {}", self.backend)
            },
            if self.dropped > 0 {
                format!("; {} events dropped", self.dropped)
            } else {
                String::new()
            }
        )?;
        let table = |f: &mut fmt::Formatter<'_>, title: &str, aggs: &[SpanAgg]| -> fmt::Result {
            if aggs.is_empty() {
                return Ok(());
            }
            writeln!(f, "{title}")?;
            writeln!(
                f,
                "  {:<24} {:>7} {:>12} {:>10} {:>10} {:>12} {:>9}",
                "span", "count", "total", "mean", "p99", "rows", "GFLOP/s"
            )?;
            for a in aggs {
                writeln!(
                    f,
                    "  {:<24} {:>7} {:>12} {:>10} {:>10} {:>12} {:>9.2}",
                    a.name,
                    a.count,
                    fmt_us(a.total_us),
                    fmt_us(a.mean_us),
                    fmt_us(a.p99_us),
                    a.rows,
                    a.gflops()
                )?;
            }
            Ok(())
        };
        table(f, "kernels:", &self.kernels)?;
        table(f, "phases:", &self.phases)?;
        table(f, "compiler passes:", &self.passes)?;
        table(f, "pipeline:", &self.pipeline)?;
        table(f, "sharding:", &self.shard)?;
        if let Some(s) = &self.shard_stats {
            writeln!(
                f,
                "shards: {} ({:.1}% edge cut, {} halo rows, {} plan invalidations, {} delta ops)",
                s.shards,
                s.edge_cut_fraction * 100.0,
                s.halo_rows,
                s.plan_invalidations,
                s.delta_ops
            )?;
        }
        if !self.relations.is_empty() {
            writeln!(f, "relations (estimated from edge/pair shares):")?;
            writeln!(
                f,
                "  {:<24} {:>12} {:>12} {:>12}",
                "relation", "edges", "traversal", "gemm"
            )?;
            for r in &self.relations {
                writeln!(
                    f,
                    "  {:<24} {:>12} {:>12} {:>12}",
                    r.name,
                    r.edges,
                    fmt_us(r.traversal_us),
                    fmt_us(r.gemm_us)
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, cat: SpanCat, dur_us: f64, rows: u64) -> TraceEvent {
        TraceEvent {
            name,
            cat,
            start_ns: 0,
            dur_ns: (dur_us * 1e3) as u64,
            tid: 0,
            rows,
            stage: 0,
            flops: 1000.0,
            detail: None,
            instant: false,
        }
    }

    #[test]
    fn aggregates_and_coverage() {
        let evs = vec![
            span("run/train_step", SpanCat::Run, 100.0, 0),
            span("gemm/typed_linear", SpanCat::Kernel, 40.0, 64),
            span("gemm/typed_linear", SpanCat::Kernel, 20.0, 64),
            span("traversal/edges", SpanCat::Kernel, 30.0, 960),
            span("phase/optimizer", SpanCat::Phase, 5.0, 0),
        ];
        let rels = vec![
            RelationShare {
                name: "r0".into(),
                edges: 750,
                unique: 75,
            },
            RelationShare {
                name: "r1".into(),
                edges: 250,
                unique: 25,
            },
        ];
        let r = build_report(&evs, &rels);
        assert!((r.wall_us - 100.0).abs() < 1e-9);
        assert!((r.coverage - 0.95).abs() < 1e-9);
        let g = &r.kernels[0];
        assert_eq!(g.name, "gemm/typed_linear");
        assert_eq!(g.count, 2);
        assert!((g.mean_us - 30.0).abs() < 1e-9);
        assert_eq!(g.rows, 128);
        assert!((r.relations[0].traversal_us - 22.5).abs() < 1e-9);
        assert!((r.relations[0].gemm_us - 45.0).abs() < 1e-9);
        let shown = format!("{r}");
        assert!(shown.contains("gemm/typed_linear"));
        assert!(shown.contains("95.0%"));
    }

    #[test]
    fn shard_spans_and_summary_render() {
        let evs = vec![
            span("run/forward", SpanCat::Run, 100.0, 0),
            span("shard/forward", SpanCat::Shard, 40.0, 64),
            span("shard/exchange", SpanCat::Shard, 5.0, 64),
        ];
        let mut r = build_report(&evs, &[]);
        assert_eq!(r.shard.len(), 2);
        assert_eq!(r.shard[0].name, "shard/forward");
        r.shard_stats = Some(ShardSummary {
            shards: 4,
            edge_cut_fraction: 0.25,
            halo_rows: 80,
            plan_invalidations: 1,
            delta_ops: 3,
        });
        let shown = format!("{r}");
        assert!(shown.contains("sharding:"));
        assert!(shown.contains("shard/exchange"));
        assert!(shown.contains("shards: 4 (25.0% edge cut, 80 halo rows"));
    }

    #[test]
    fn empty_report_is_zero_not_nan() {
        let r = build_report(&[], &[]);
        assert_eq!(r.coverage, 0.0);
        assert_eq!(r.wall_us, 0.0);
        assert!(format!("{r}").contains("0 events"));
    }
}
