//! Dense reference implementations of the three models.
//!
//! These compute each layer with straightforward per-edge loops and plain
//! tensor math — no compiler, no kernels — and serve as the correctness
//! oracle for the compiled execution paths: integration tests assert that
//! Hector's generated kernels produce identical outputs under every
//! optimization combination.

use hector_graph::HeteroGraph;
use hector_ir::interop::LEAKY_RELU_SLOPE;
use hector_tensor::Tensor;

fn row_matmul(x: &[f32], w: &Tensor, ty: usize) -> Vec<f32> {
    let (k, n) = (w.shape()[1], w.shape()[2]);
    debug_assert_eq!(x.len(), k);
    let slab = w.slab(ty);
    let mut y = vec![0.0f32; n];
    for (p, &xv) in x.iter().enumerate() {
        for j in 0..n {
            y[j] += xv * slab[p * n + j];
        }
    }
    y
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Per-destination edge softmax of raw attention logits, max-stabilised
/// exactly like the compiled path (`ModelBuilder::edge_softmax`): the
/// per-destination maximum is subtracted before `exp`, so scores beyond
/// f32's exp range neither overflow nor underflow to `0/0`.
fn edge_softmax(g: &HeteroGraph, logits: &[f32]) -> Vec<f32> {
    let mut maxes = vec![f32::NEG_INFINITY; g.num_nodes()];
    for (e, &lv) in logits.iter().enumerate().take(g.num_edges()) {
        let d = g.dst()[e] as usize;
        maxes[d] = maxes[d].max(lv);
    }
    let mut sums = vec![0.0f32; g.num_nodes()];
    let exp: Vec<f32> = (0..g.num_edges())
        .map(|e| (logits[e] - maxes[g.dst()[e] as usize]).exp())
        .collect();
    for e in 0..g.num_edges() {
        sums[g.dst()[e] as usize] += exp[e];
    }
    (0..g.num_edges())
        .map(|e| exp[e] / sums[g.dst()[e] as usize])
        .collect()
}

/// RGCN layer: `relu(h·W0 + Σ_r Σ_{u∈N_r(v)} cnorm_e · h_u·W_r)`.
///
/// # Panics
///
/// Panics on shape mismatches.
#[must_use]
pub fn rgcn_forward(
    g: &HeteroGraph,
    h: &Tensor,
    cnorm: &Tensor,
    w: &Tensor,
    w0: &Tensor,
) -> Tensor {
    let out_dim = w.shape()[2];
    let mut out = Tensor::zeros(&[g.num_nodes(), out_dim]);
    for v in 0..g.num_nodes() {
        let selfl = row_matmul(h.row(v), w0, 0);
        out.row_mut(v).copy_from_slice(&selfl);
    }
    for e in 0..g.num_edges() {
        let (s, d, ty) = (
            g.src()[e] as usize,
            g.dst()[e] as usize,
            g.etype()[e] as usize,
        );
        let msg = row_matmul(h.row(s), w, ty);
        let c = cnorm.at2(e, 0);
        let drow = out.row_mut(d);
        for (acc, m) in drow.iter_mut().zip(msg.iter()) {
            *acc += c * m;
        }
    }
    out.map(|x| x.max(0.0))
}

/// RGAT layer (single head), matching [`crate::rgat::source`].
///
/// # Panics
///
/// Panics on shape mismatches.
#[must_use]
pub fn rgat_forward(g: &HeteroGraph, h: &Tensor, w: &Tensor, w_s: &Tensor, w_t: &Tensor) -> Tensor {
    let out_dim = w.shape()[2];
    let e_count = g.num_edges();
    let mut hs_rows = Vec::with_capacity(e_count);
    let mut logits = vec![0.0f32; e_count];
    for (e, logit) in logits.iter_mut().enumerate().take(e_count) {
        let (s, d, ty) = (
            g.src()[e] as usize,
            g.dst()[e] as usize,
            g.etype()[e] as usize,
        );
        let hs = row_matmul(h.row(s), w, ty);
        let ht = row_matmul(h.row(d), w, ty);
        let atts = dot(&hs, w_s.slab(ty));
        let attt = dot(&ht, w_t.slab(ty));
        let raw = atts + attt;
        *logit = if raw >= 0.0 {
            raw
        } else {
            LEAKY_RELU_SLOPE * raw
        };
        hs_rows.push(hs);
    }
    let att = edge_softmax(g, &logits);
    let mut out = Tensor::zeros(&[g.num_nodes(), out_dim]);
    for e in 0..e_count {
        let d = g.dst()[e] as usize;
        let drow = out.row_mut(d);
        for (acc, m) in drow.iter_mut().zip(hs_rows[e].iter()) {
            *acc += att[e] * m;
        }
    }
    out
}

/// HGT layer (single head), matching [`crate::hgt::source`].
///
/// # Panics
///
/// Panics on shape mismatches.
#[must_use]
#[allow(clippy::many_single_char_names)]
pub fn hgt_forward(
    g: &HeteroGraph,
    h: &Tensor,
    wk: &Tensor,
    wq: &Tensor,
    wm: &Tensor,
    wa: &Tensor,
    wo: &Tensor,
) -> Tensor {
    let d_model = wk.shape()[2];
    let out_dim = wo.shape()[2];
    let scale = 1.0 / (d_model as f32).sqrt();
    let n = g.num_nodes();
    // Nodewise keys and queries.
    let mut k_rows = Vec::with_capacity(n);
    let mut q_rows = Vec::with_capacity(n);
    for v in 0..n {
        let nt = g.node_type()[v] as usize;
        k_rows.push(row_matmul(h.row(v), wk, nt));
        q_rows.push(row_matmul(h.row(v), wq, nt));
    }
    // Edgewise attention logits and messages.
    let e_count = g.num_edges();
    let mut logits = vec![0.0f32; e_count];
    let mut msgs = Vec::with_capacity(e_count);
    for (e, logit) in logits.iter_mut().enumerate().take(e_count) {
        let (s, dd, ty) = (
            g.src()[e] as usize,
            g.dst()[e] as usize,
            g.etype()[e] as usize,
        );
        let kw = row_matmul(&k_rows[s], wa, ty);
        *logit = dot(&kw, &q_rows[dd]) * scale;
        msgs.push(row_matmul(h.row(s), wm, ty));
    }
    let att = edge_softmax(g, &logits);
    // Aggregate and project per destination node type.
    let mut agg = Tensor::zeros(&[n, d_model]);
    for e in 0..e_count {
        let dd = g.dst()[e] as usize;
        let row = agg.row_mut(dd);
        for (acc, m) in row.iter_mut().zip(msgs[e].iter()) {
            *acc += att[e] * m;
        }
    }
    let mut out = Tensor::zeros(&[n, out_dim]);
    for v in 0..n {
        let nt = g.node_type()[v] as usize;
        let y = row_matmul(agg.row(v), wo, nt);
        out.row_mut(v).copy_from_slice(&y);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_graph::HeteroGraphBuilder;
    use hector_tensor::{seeded_rng, xavier_uniform};

    fn toy() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(3);
        b.add_node_type(2);
        b.add_edge(0, 3, 0);
        b.add_edge(1, 3, 0);
        b.add_edge(4, 0, 1);
        b.add_edge(2, 1, 1);
        b.build()
    }

    #[test]
    fn rgcn_isolated_node_keeps_self_loop_only() {
        let g = toy();
        let mut rng = seeded_rng(1);
        let h = xavier_uniform(&mut rng, &[5, 4]);
        let w = xavier_uniform(&mut rng, &[2, 4, 4]);
        let w0 = xavier_uniform(&mut rng, &[1, 4, 4]);
        let cnorm = Tensor::full(&[4, 1], 1.0);
        let out = rgcn_forward(&g, &h, &cnorm, &w, &w0);
        // Node 2 has no incoming edges: out = relu(h2 · W0).
        let expect: Vec<f32> = row_matmul(h.row(2), &w0, 0)
            .iter()
            .map(|&x| x.max(0.0))
            .collect();
        for (a, b) in out.row(2).iter().zip(expect.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rgat_attention_sums_to_one_per_destination() {
        let g = toy();
        let mut rng = seeded_rng(2);
        let h = xavier_uniform(&mut rng, &[5, 4]);
        let w = xavier_uniform(&mut rng, &[2, 4, 4]);
        let w_s = xavier_uniform(&mut rng, &[2, 4, 1]);
        let w_t = xavier_uniform(&mut rng, &[2, 4, 1]);
        let out = rgat_forward(&g, &h, &w, &w_s, &w_t);
        assert_eq!(out.shape(), &[5, 4]);
        // Node 3 receives two edges with softmaxed weights; the output is
        // a convex combination of hs rows, so its norm is bounded by the
        // max hs norm.
        assert!(out.row(3).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn hgt_output_shape_and_finiteness() {
        let g = toy();
        let mut rng = seeded_rng(3);
        let h = xavier_uniform(&mut rng, &[5, 6]);
        let wk = xavier_uniform(&mut rng, &[2, 6, 4]);
        let wq = xavier_uniform(&mut rng, &[2, 6, 4]);
        let wm = xavier_uniform(&mut rng, &[2, 6, 4]);
        let wa = xavier_uniform(&mut rng, &[2, 4, 4]);
        let wo = xavier_uniform(&mut rng, &[2, 4, 3]);
        let out = hgt_forward(&g, &h, &wk, &wq, &wm, &wa, &wo);
        assert_eq!(out.shape(), &[5, 3]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }
}
