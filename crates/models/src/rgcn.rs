//! Relational graph convolutional network (RGCN).
//!
//! Paper Eq. 1:
//! `h_v' = σ( h_v·W_0 + Σ_r Σ_{u ∈ N_r(v)} (1/c_{v,r}) · h_u·W_r )`
//!
//! The normalisation constants `1/c_{v,r}` are bound as the edgewise
//! input `cnorm` (see `hector_runtime::cnorm_tensor`), keeping the
//! aggregation operator uniform and differentiable.

use hector_ir::builder::ModelSource;
use hector_ir::{AggNorm, ModelBuilder, WeightId};

/// Weight ids in declaration order.
pub mod weights {
    use super::WeightId;
    /// Per-relation weight `W_r`.
    pub const W: WeightId = WeightId(0);
    /// Virtual self-loop weight `W_0`.
    pub const W0: WeightId = WeightId(1);
}

/// Builds one RGCN layer.
#[must_use]
pub fn source(in_dim: usize, out_dim: usize) -> ModelSource {
    let mut m = ModelBuilder::new("rgcn", out_dim);
    let h = m.node_input("h", in_dim);
    let cnorm = m.edge_input("cnorm", 1);
    let w = m.weight_per_etype("W", in_dim, out_dim);
    let w0 = m.weight_shared("W0", in_dim, out_dim);
    let msg = m.typed_linear("msg", m.src(h), w);
    let agg = m.aggregate("agg", m.edge(msg), Some(m.edge(cnorm)), AggNorm::None);
    let selfl = m.typed_linear("selfl", m.this(h), w0);
    let sum = m.add("sum", m.this(agg), m.this(selfl));
    let out = m.relu("h_out", m.this(sum));
    m.output(out);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_under_ten_lines() {
        let s = source(64, 64);
        assert!(s.lines <= 10, "RGCN took {} lines", s.lines);
        s.program.validate();
    }

    #[test]
    fn weight_ids_are_stable() {
        let s = source(8, 16);
        assert_eq!(s.program.weight(weights::W).name, "W");
        assert_eq!(s.program.weight(weights::W0).name, "W0");
        assert_eq!(s.program.weight(weights::W).rows, 8);
        assert_eq!(s.program.weight(weights::W).cols, 16);
    }
}
