//! Multi-layer model stacks.
//!
//! The paper evaluates single layers (§4.1); a deployable library also
//! needs stacked models. A stack is expressed as one inter-operator
//! program — layer `l+1` consumes layer `l`'s node output directly — so
//! the whole network flows through the same passes, lowering, and
//! backward generation, and inter-layer fusion opportunities remain
//! visible to the compiler.

use hector_ir::builder::ModelSource;
use hector_ir::{AggNorm, ModelBuilder, VarId};

use crate::ModelKind;

/// Builds a `layers`-deep stack of any built-in model,
/// `in_dim → hidden → … → out_dim`. `layers == 1` returns the plain
/// single-layer source (identical to [`crate::source`]), so callers can
/// treat depth as just another dimension — this is what
/// `EngineBuilder::layers` feeds on.
///
/// # Panics
///
/// Panics if `layers == 0`.
#[must_use]
pub fn stack(
    kind: ModelKind,
    layers: usize,
    in_dim: usize,
    hidden: usize,
    out_dim: usize,
) -> ModelSource {
    assert!(layers > 0, "need at least one layer");
    if layers == 1 {
        return crate::source(kind, in_dim, out_dim);
    }
    match kind {
        ModelKind::Rgcn => rgcn_stack(layers, in_dim, hidden, out_dim),
        ModelKind::Rgat => rgat_stack(layers, in_dim, hidden, out_dim),
        ModelKind::Hgt => hgt_stack(layers, in_dim, hidden, out_dim),
    }
}

/// Builds an `layers`-deep RGCN, `in_dim → hidden → … → out_dim`.
///
/// # Panics
///
/// Panics if `layers == 0`.
#[must_use]
pub fn rgcn_stack(layers: usize, in_dim: usize, hidden: usize, out_dim: usize) -> ModelSource {
    assert!(layers > 0, "need at least one layer");
    let mut m = ModelBuilder::new("rgcn_stack", hidden);
    let h0 = m.node_input("h", in_dim);
    let cnorm = m.edge_input("cnorm", 1);
    let mut h: VarId = h0;
    let mut d_in = in_dim;
    for l in 0..layers {
        let d_out = if l + 1 == layers { out_dim } else { hidden };
        let w = m.weight_per_etype(&format!("W{l}"), d_in, d_out);
        let w0 = m.weight_shared(&format!("W0_{l}"), d_in, d_out);
        let msg = m.typed_linear(&format!("msg{l}"), m.src(h), w);
        let agg = m.aggregate(
            &format!("agg{l}"),
            m.edge(msg),
            Some(m.edge(cnorm)),
            AggNorm::None,
        );
        let selfl = m.typed_linear(&format!("self{l}"), m.this(h), w0);
        let sum = m.add(&format!("sum{l}"), m.this(agg), m.this(selfl));
        h = if l + 1 == layers {
            sum // final layer: logits, no activation
        } else {
            m.relu(&format!("h{}", l + 1), m.this(sum))
        };
        d_in = d_out;
    }
    m.output(h);
    m.finish()
}

/// Builds a `layers`-deep single-headed RGAT stack.
///
/// # Panics
///
/// Panics if `layers == 0`.
#[must_use]
pub fn rgat_stack(layers: usize, in_dim: usize, hidden: usize, out_dim: usize) -> ModelSource {
    assert!(layers > 0, "need at least one layer");
    let mut m = ModelBuilder::new("rgat_stack", hidden);
    let h0 = m.node_input("h", in_dim);
    let mut h: VarId = h0;
    let mut d_in = in_dim;
    for l in 0..layers {
        let d_out = if l + 1 == layers { out_dim } else { hidden };
        let w = m.weight_per_etype(&format!("W{l}"), d_in, d_out);
        let w_s = m.weight_vec_per_etype(&format!("w_s{l}"), d_out);
        let w_t = m.weight_vec_per_etype(&format!("w_t{l}"), d_out);
        let hs = m.typed_linear(&format!("hs{l}"), m.src(h), w);
        let atts = m.dot(&format!("atts{l}"), m.edge(hs), m.wvec(w_s));
        let ht = m.typed_linear(&format!("ht{l}"), m.dst(h), w);
        let attt = m.dot(&format!("attt{l}"), m.edge(ht), m.wvec(w_t));
        let raw = m.add(&format!("raw{l}"), m.edge(atts), m.edge(attt));
        let act = m.leaky_relu(&format!("act{l}"), m.edge(raw));
        let att = m.edge_softmax(&format!("att{l}"), act);
        let agg = m.aggregate(
            &format!("agg{l}"),
            m.edge(hs),
            Some(m.edge(att)),
            AggNorm::None,
        );
        h = if l + 1 == layers {
            agg
        } else {
            m.relu(&format!("h{}", l + 1), m.this(agg))
        };
        d_in = d_out;
    }
    m.output(h);
    m.finish()
}

/// Builds a `layers`-deep single-headed HGT stack (per-layer
/// key/query/message/attention/output projections, ReLU between layers,
/// raw logits on the last layer — consistent with the other stacks).
///
/// # Panics
///
/// Panics if `layers == 0`.
#[must_use]
pub fn hgt_stack(layers: usize, in_dim: usize, hidden: usize, out_dim: usize) -> ModelSource {
    assert!(layers > 0, "need at least one layer");
    let mut m = ModelBuilder::new("hgt_stack", hidden);
    let h0 = m.node_input("h", in_dim);
    let mut h: VarId = h0;
    let mut d_in = in_dim;
    for l in 0..layers {
        let d_out = if l + 1 == layers { out_dim } else { hidden };
        let d = d_out;
        let scale = 1.0 / (d as f32).sqrt();
        let wk = m.weight_per_ntype(&format!("Wk{l}"), d_in, d);
        let wq = m.weight_per_ntype(&format!("Wq{l}"), d_in, d);
        let wm = m.weight_per_etype(&format!("Wm{l}"), d_in, d);
        let wa = m.weight_per_etype(&format!("Wa{l}"), d, d);
        let wo = m.weight_per_ntype(&format!("Wo{l}"), d, d_out);
        let k = m.typed_linear(&format!("k{l}"), m.this(h), wk);
        let q = m.typed_linear(&format!("q{l}"), m.this(h), wq);
        let kw = m.typed_linear(&format!("kw{l}"), m.src(k), wa);
        let att_raw = m.dot(&format!("att_raw{l}"), m.edge(kw), m.dst(q));
        let att_sc = m.mul(&format!("att_sc{l}"), m.edge(att_raw), m.konst(scale));
        let att = m.edge_softmax(&format!("att{l}"), att_sc);
        let msg = m.typed_linear(&format!("msg{l}"), m.src(h), wm);
        let agg = m.aggregate(
            &format!("agg{l}"),
            m.edge(msg),
            Some(m.edge(att)),
            AggNorm::None,
        );
        let proj = m.typed_linear(&format!("ho{l}"), m.this(agg), wo);
        h = if l + 1 == layers {
            proj
        } else {
            m.relu(&format!("h{}", l + 1), m.this(proj))
        };
        d_in = d_out;
    }
    m.output(h);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_ir::Space;

    #[test]
    fn rgcn_stack_builds_and_validates() {
        for layers in 1..=3 {
            let s = rgcn_stack(layers, 16, 32, 8);
            s.program.validate();
            assert_eq!(s.program.weights.len(), 2 * layers);
        }
    }

    #[test]
    fn rgat_stack_builds_and_validates() {
        let s = rgat_stack(2, 16, 16, 4);
        s.program.validate();
        assert_eq!(s.program.weights.len(), 6);
        // The final output is nodewise logits.
        let out = s.program.outputs[0];
        assert_eq!(s.program.var(out).space, Space::Node);
        assert_eq!(s.program.var(out).width, 4);
    }

    #[test]
    fn single_layer_stack_matches_plain_shape() {
        let stack = rgcn_stack(1, 8, 999, 8);
        let plain = crate::rgcn::source(8, 8);
        // Same operator count modulo the final activation (the stack's
        // last layer emits raw logits).
        assert_eq!(stack.program.ops.len() + 1, plain.program.ops.len());
    }

    #[test]
    fn hgt_stack_builds_and_validates() {
        for layers in 1..=3 {
            let s = hgt_stack(layers, 8, 12, 4);
            s.program.validate();
            if layers > 1 {
                assert_eq!(s.program.weights.len(), 5 * layers);
            }
            let out = s.program.outputs[0];
            assert_eq!(s.program.var(out).space, Space::Node);
            assert_eq!(s.program.var(out).width, 4);
        }
    }

    #[test]
    fn stack_dispatcher_covers_all_kinds() {
        for kind in ModelKind::all() {
            let deep = stack(kind, 2, 8, 8, 8);
            deep.program.validate();
            // One layer falls back to the plain single-layer source.
            let single = stack(kind, 1, 8, 16, 8);
            let plain = crate::source(kind, 8, 8);
            assert_eq!(single.program, plain.program, "{kind:?}");
        }
    }

    #[test]
    fn dimensions_thread_through_layers() {
        let s = rgcn_stack(3, 10, 20, 5);
        let p = &s.program;
        assert_eq!(p.weight(hector_ir::WeightId(0)).rows, 10);
        assert_eq!(p.weight(hector_ir::WeightId(0)).cols, 20);
        assert_eq!(p.weight(hector_ir::WeightId(4)).rows, 20);
        assert_eq!(p.weight(hector_ir::WeightId(4)).cols, 5);
    }
}
