//! Relational graph attention network (RGAT), single head.
//!
//! Paper Fig. 2 / Listing 1: per-edge projections `hs = h_src·W_r`,
//! `ht = h_dst·W_r`, attention logits `leaky_relu(hs·w_s,r + ht·w_t,r)`,
//! edge softmax per destination node, and attention-weighted aggregation
//! of `hs` as the message.

use hector_ir::builder::ModelSource;
use hector_ir::{AggNorm, ModelBuilder, WeightId};

/// Weight ids in declaration order.
pub mod weights {
    use super::WeightId;
    /// Per-relation projection `W_r`.
    pub const W: WeightId = WeightId(0);
    /// Per-relation source attention vector `w_s,r`.
    pub const W_S: WeightId = WeightId(1);
    /// Per-relation target attention vector `w_t,r`.
    pub const W_T: WeightId = WeightId(2);
}

/// Builds one single-headed RGAT layer.
#[must_use]
pub fn source(in_dim: usize, out_dim: usize) -> ModelSource {
    let mut m = ModelBuilder::new("rgat", out_dim);
    let h = m.node_input("h", in_dim);
    let w = m.weight_per_etype("W", in_dim, out_dim);
    let w_s = m.weight_vec_per_etype("w_s", out_dim);
    let w_t = m.weight_vec_per_etype("w_t", out_dim);
    let hs = m.typed_linear("hs", m.src(h), w);
    let atts = m.dot("atts", m.edge(hs), m.wvec(w_s));
    let ht = m.typed_linear("ht", m.dst(h), w);
    let attt = m.dot("attt", m.edge(ht), m.wvec(w_t));
    let raw = m.add("att_raw", m.edge(atts), m.edge(attt));
    let act = m.leaky_relu("att_act", m.edge(raw));
    let att = m.edge_softmax("att", act);
    let out = m.aggregate("h_out", m.edge(hs), Some(m.edge(att)), AggNorm::None);
    m.output(out);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_reasonable_lines() {
        let s = source(64, 64);
        assert!(s.lines <= 16, "RGAT took {} lines", s.lines);
        s.program.validate();
    }

    #[test]
    fn weight_ids_are_stable() {
        let s = source(8, 8);
        assert_eq!(s.program.weight(weights::W).name, "W");
        assert_eq!(s.program.weight(weights::W_S).name, "w_s");
        assert_eq!(s.program.weight(weights::W_T).name, "w_t");
        assert_eq!(s.program.weight(weights::W_S).cols, 1);
    }
}
