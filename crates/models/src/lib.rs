//! RGNN model definitions for the Hector framework.
//!
//! The three models of the paper's evaluation, expressed in the Hector
//! builder DSL (the "51 lines of code" input side of the programming-
//! effort claim):
//!
//! * [`rgcn`] — relational graph convolutional network
//!   (Schlichtkrull et al.), Eq. 1 of the paper;
//! * [`rgat`] — relational graph attention network (Busbridge et al.),
//!   the single-headed attention of Listing 1 / Fig. 2;
//! * [`hgt`] — heterogeneous graph transformer (Hu et al.), Fig. 2's
//!   key/query/message formulation with per-node-type and per-edge-type
//!   projections.
//!
//! Each module also provides a *reference implementation*: plain dense
//! tensor math computing the same layer, used as the correctness oracle
//! for the compiled kernels in the integration test suite.

#![warn(missing_docs)]

pub mod hgt;
pub mod reference;
pub mod rgat;
pub mod rgcn;
pub mod stacked;

use hector_ir::builder::ModelSource;

/// The three evaluated models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Relational graph convolutional network.
    Rgcn,
    /// Relational graph attention network (single head).
    Rgat,
    /// Heterogeneous graph transformer (single head).
    Hgt,
}

impl ModelKind {
    /// All models, in the paper's reporting order.
    #[must_use]
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::Rgcn, ModelKind::Rgat, ModelKind::Hgt]
    }

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Rgcn => "RGCN",
            ModelKind::Rgat => "RGAT",
            ModelKind::Hgt => "HGT",
        }
    }
}

/// Builds the model source for `kind` with the given dimensions
/// (the paper uses `in_dim = out_dim = 64`, one head, §4.1).
#[must_use]
pub fn source(kind: ModelKind, in_dim: usize, out_dim: usize) -> ModelSource {
    match kind {
        ModelKind::Rgcn => rgcn::source(in_dim, out_dim),
        ModelKind::Rgat => rgat::source(in_dim, out_dim),
        ModelKind::Hgt => hgt::source(in_dim, out_dim),
    }
}

/// Total DSL lines across the three models (the paper reports 51).
#[must_use]
pub fn total_source_lines(in_dim: usize, out_dim: usize) -> usize {
    ModelKind::all()
        .iter()
        .map(|&k| source(k, in_dim, out_dim).lines)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_and_validate() {
        for kind in ModelKind::all() {
            let src = source(kind, 64, 64);
            src.program.validate();
            assert!(!src.program.ops.is_empty());
        }
    }

    #[test]
    fn total_lines_matches_papers_order_of_magnitude() {
        let lines = total_source_lines(64, 64);
        assert!(
            (30..=60).contains(&lines),
            "expected ~51 lines for the three models, got {lines}"
        );
    }

    #[test]
    fn names() {
        assert_eq!(ModelKind::Rgcn.name(), "RGCN");
        assert_eq!(ModelKind::all().len(), 3);
    }
}
