//! Heterogeneous graph transformer (HGT), single head.
//!
//! Paper Fig. 2: keys/queries are per-node-type projections, the
//! attention bilinear form and the message use per-edge-type weights:
//!
//! * `k_n = h_n · W_K[τ(n)]`, `q_n = h_n · W_Q[τ(n)]` (nodewise),
//! * `att_e = (k_src · W_A[τ(e)]) · q_dst / √d` + edge softmax,
//! * `msg_e = h_src · W_M[τ(e)]` (depends only on source + edge type —
//!   the compact-materialization opportunity the paper highlights),
//! * `h'_v = (Σ_e att_e · msg_e) · W_O[τ(v)]` (nodewise output
//!   projection).

use hector_ir::builder::ModelSource;
use hector_ir::{AggNorm, ModelBuilder, WeightId};

/// Weight ids in declaration order.
pub mod weights {
    use super::WeightId;
    /// Per-node-type key projection `W_K`.
    pub const W_K: WeightId = WeightId(0);
    /// Per-node-type query projection `W_Q`.
    pub const W_Q: WeightId = WeightId(1);
    /// Per-edge-type message projection `W_M`.
    pub const W_M: WeightId = WeightId(2);
    /// Per-edge-type attention bilinear form `W_A`.
    pub const W_A: WeightId = WeightId(3);
    /// Per-node-type output projection `W_O`.
    pub const W_O: WeightId = WeightId(4);
}

/// Builds one single-headed HGT layer.
#[must_use]
pub fn source(in_dim: usize, out_dim: usize) -> ModelSource {
    let d = out_dim;
    let scale = 1.0 / (d as f32).sqrt();
    let mut m = ModelBuilder::new("hgt", out_dim);
    let h = m.node_input("h", in_dim);
    let wk = m.weight_per_ntype("Wk", in_dim, d);
    let wq = m.weight_per_ntype("Wq", in_dim, d);
    let wm = m.weight_per_etype("Wm", in_dim, d);
    let wa = m.weight_per_etype("Wa", d, d);
    let wo = m.weight_per_ntype("Wo", d, out_dim);
    let k = m.typed_linear("k", m.this(h), wk);
    let q = m.typed_linear("q", m.this(h), wq);
    let kw = m.typed_linear("kw", m.src(k), wa);
    let att_raw = m.dot("att_raw", m.edge(kw), m.dst(q));
    let att_sc = m.mul("att_sc", m.edge(att_raw), m.konst(scale));
    let att = m.edge_softmax("att", att_sc);
    let msg = m.typed_linear("msg", m.src(h), wm);
    let agg = m.aggregate("agg", m.edge(msg), Some(m.edge(att)), AggNorm::None);
    let out = m.typed_linear("h_out", m.this(agg), wo);
    m.output(out);
    m.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_reasonable_lines() {
        let s = source(64, 64);
        assert!(s.lines <= 20, "HGT took {} lines", s.lines);
        s.program.validate();
    }

    #[test]
    fn weight_ids_are_stable() {
        let s = source(8, 8);
        assert_eq!(s.program.weight(weights::W_K).name, "Wk");
        assert_eq!(s.program.weight(weights::W_A).name, "Wa");
        assert_eq!(s.program.weight(weights::W_O).name, "Wo");
        assert_eq!(
            s.program.weight(weights::W_K).per,
            hector_ir::TypeIndex::NodeType
        );
        assert_eq!(
            s.program.weight(weights::W_A).per,
            hector_ir::TypeIndex::EdgeType
        );
    }
}
