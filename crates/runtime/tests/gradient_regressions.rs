//! Regression tests for backward-generation bugs found during
//! development (kept as a fine-grained gradient test suite at the
//! runtime level; the model-level checks live in the workspace-root
//! `gradients.rs` integration test).

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector_compiler::{compile, CompileOptions};
use hector_device::DeviceConfig;
use hector_graph::HeteroGraphBuilder;
use hector_ir::{AggNorm, ModelBuilder, Program, WeightId};
use hector_runtime::*;
use hector_tensor::seeded_rng;

struct NoOp;
impl Optimizer for NoOp {
    fn step(&mut self, _p: &mut ParamStore, _prog: &Program) {}
}

fn graph() -> GraphData {
    let mut b = HeteroGraphBuilder::new();
    b.add_node_type(3);
    b.add_edge(0, 2, 0);
    b.add_edge(1, 2, 0);
    GraphData::new(b.build())
}

fn check(src: hector_ir::builder::ModelSource, names: &[&str]) {
    let module = compile(&src, &CompileOptions::unopt().with_training(true));
    let g = graph();
    let mut rng = seeded_rng(5);
    let mut params = ParamStore::init(&module.forward, &g, &mut rng);
    let mut rng2 = seeded_rng(6);
    let bindings = Bindings::standard(&module.forward, &g, &mut rng2);
    let labels = vec![0usize, 1, 0];
    let mut sess = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let mut noop = NoOp;
    sess.run_training_step(&module, &g, &mut params, &bindings, &labels, &mut noop)
        .unwrap();
    let eps = 1e-3f32;
    for (wi, info) in module.forward.weights.iter().enumerate() {
        if info.derived || !names.contains(&info.name.as_str()) {
            continue;
        }
        let wid = WeightId(wi as u32);
        for idx in 0..params.weight(wid).len() {
            let orig = params.weight(wid).data()[idx];
            params.weight_mut(wid).data_mut()[idx] = orig + eps;
            let (v1, _) = sess
                .run_inference(&module, &g, &mut params, &bindings)
                .unwrap();
            let up = nll_loss_and_grad(v1.tensor(module.forward.outputs[0]), &labels).loss;
            params.weight_mut(wid).data_mut()[idx] = orig - eps;
            let (v2, _) = sess
                .run_inference(&module, &g, &mut params, &bindings)
                .unwrap();
            let down = nll_loss_and_grad(v2.tensor(module.forward.outputs[0]), &labels).loss;
            params.weight_mut(wid).data_mut()[idx] = orig;
            let fd = (up - down) / (2.0 * eps);
            let an = params.grad(wid).data()[idx];
            println!(
                "{}[{}]: fd={:.6} analytic={:.6} {}",
                info.name,
                idx,
                fd,
                an,
                if (fd - an).abs() > 1e-2 + 0.1 * fd.abs().max(an.abs()) {
                    "MISMATCH"
                } else {
                    ""
                }
            );
        }
    }
}

#[test]
fn dot_weightvec_grad() {
    let mut m = ModelBuilder::new("mini", 2);
    let h = m.node_input("h", 2);
    let w = m.weight_per_etype("W", 2, 2);
    let w_s = m.weight_vec_per_etype("w_s", 2);
    let hs = m.typed_linear("hs", m.src(h), w);
    let atts = m.dot("atts", m.edge(hs), m.wvec(w_s));
    let att = m.edge_softmax("att", atts);
    let out = m.aggregate("out", m.edge(hs), Some(m.edge(att)), AggNorm::None);
    m.output(out);
    check(m.finish(), &["W", "w_s"]);
}

#[test]
fn no_softmax_grad() {
    let mut m = ModelBuilder::new("mini2", 2);
    let h = m.node_input("h", 2);
    let w = m.weight_per_etype("W", 2, 2);
    let w_s = m.weight_vec_per_etype("w_s", 2);
    let hs = m.typed_linear("hs", m.src(h), w);
    let atts = m.dot("atts", m.edge(hs), m.wvec(w_s));
    let out = m.aggregate("out", m.edge(hs), Some(m.edge(atts)), AggNorm::None);
    m.output(out);
    check(m.finish(), &["W", "w_s"]);
}

#[test]
fn full_rgat_tiny() {
    let mut m = ModelBuilder::new("mini3", 2);
    let h = m.node_input("h", 2);
    let w = m.weight_per_etype("W", 2, 2);
    let w_s = m.weight_vec_per_etype("w_s", 2);
    let w_t = m.weight_vec_per_etype("w_t", 2);
    let hs = m.typed_linear("hs", m.src(h), w);
    let atts = m.dot("atts", m.edge(hs), m.wvec(w_s));
    let ht = m.typed_linear("ht", m.dst(h), w);
    let attt = m.dot("attt", m.edge(ht), m.wvec(w_t));
    let raw = m.add("raw", m.edge(atts), m.edge(attt));
    let act = m.leaky_relu("act", m.edge(raw));
    let att = m.edge_softmax("att", act);
    let out = m.aggregate("out", m.edge(hs), Some(m.edge(att)), AggNorm::None);
    m.output(out);
    check(m.finish(), &["W", "w_s", "w_t"]);
}

#[test]
fn full_rgat_generated_graph() {
    let spec = hector_graph::DatasetSpec {
        name: "g".into(),
        num_nodes: 14,
        num_node_types: 2,
        num_edges: 40,
        num_edge_types: 3,
        compaction_ratio: 0.6,
        type_skew: 1.0,
        seed: 77,
    };
    let g = GraphData::new(hector_graph::generate(&spec));
    let dim = 4;
    let mut m = ModelBuilder::new("mini4", dim);
    let h = m.node_input("h", dim);
    let w = m.weight_per_etype("W", dim, dim);
    let w_s = m.weight_vec_per_etype("w_s", dim);
    let w_t = m.weight_vec_per_etype("w_t", dim);
    let hs = m.typed_linear("hs", m.src(h), w);
    let atts = m.dot("atts", m.edge(hs), m.wvec(w_s));
    let ht = m.typed_linear("ht", m.dst(h), w);
    let attt = m.dot("attt", m.edge(ht), m.wvec(w_t));
    let raw = m.add("raw", m.edge(atts), m.edge(attt));
    let act = m.leaky_relu("act", m.edge(raw));
    let att = m.edge_softmax("att", act);
    let out = m.aggregate("out", m.edge(hs), Some(m.edge(att)), AggNorm::None);
    m.output(out);
    let src = m.finish();
    let module = compile(&src, &CompileOptions::unopt().with_training(true));
    let mut rng = seeded_rng(5);
    let mut params = ParamStore::init(&module.forward, &g, &mut rng);
    let mut rng2 = seeded_rng(6);
    let bindings = Bindings::standard(&module.forward, &g, &mut rng2);
    let labels: Vec<usize> = (0..g.graph().num_nodes()).map(|i| i % 4).collect();
    let mut sess = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let mut noop = NoOp;
    sess.run_training_step(&module, &g, &mut params, &bindings, &labels, &mut noop)
        .unwrap();
    let eps = 1e-3f32;
    for (wi, info) in module.forward.weights.iter().enumerate() {
        if info.derived {
            continue;
        }
        let wid = WeightId(wi as u32);
        for idx in 0..params.weight(wid).len().min(8) {
            let orig = params.weight(wid).data()[idx];
            params.weight_mut(wid).data_mut()[idx] = orig + eps;
            let (v1, _) = sess
                .run_inference(&module, &g, &mut params, &bindings)
                .unwrap();
            let up = nll_loss_and_grad(v1.tensor(module.forward.outputs[0]), &labels).loss;
            params.weight_mut(wid).data_mut()[idx] = orig - eps;
            let (v2, _) = sess
                .run_inference(&module, &g, &mut params, &bindings)
                .unwrap();
            let down = nll_loss_and_grad(v2.tensor(module.forward.outputs[0]), &labels).loss;
            params.weight_mut(wid).data_mut()[idx] = orig;
            let fd = (up - down) / (2.0 * eps);
            let an = params.grad(wid).data()[idx];
            println!(
                "{}[{}]: fd={:.6} analytic={:.6} {}",
                info.name,
                idx,
                fd,
                an,
                if (fd - an).abs() > 5e-3 + 0.1 * fd.abs().max(an.abs()) {
                    "MISMATCH"
                } else {
                    ""
                }
            );
        }
    }
}

fn check_on_generated(src: hector_ir::builder::ModelSource, names: &[&str]) {
    let spec = hector_graph::DatasetSpec {
        name: "g".into(),
        num_nodes: 14,
        num_node_types: 2,
        num_edges: 40,
        num_edge_types: 3,
        compaction_ratio: 0.6,
        type_skew: 1.0,
        seed: 77,
    };
    let g = GraphData::new(hector_graph::generate(&spec));
    let module = compile(&src, &CompileOptions::unopt().with_training(true));
    let mut rng = seeded_rng(5);
    let mut params = ParamStore::init(&module.forward, &g, &mut rng);
    let mut rng2 = seeded_rng(6);
    let bindings = Bindings::standard(&module.forward, &g, &mut rng2);
    let labels: Vec<usize> = (0..g.graph().num_nodes()).map(|i| i % 2).collect();
    let mut sess = Session::new(DeviceConfig::rtx3090(), Mode::Real);
    let mut noop = NoOp;
    sess.run_training_step(&module, &g, &mut params, &bindings, &labels, &mut noop)
        .unwrap();
    let eps = 1e-3f32;
    let mut bad = 0;
    for (wi, info) in module.forward.weights.iter().enumerate() {
        if info.derived || !names.contains(&info.name.as_str()) {
            continue;
        }
        let wid = WeightId(wi as u32);
        for idx in 0..params.weight(wid).len().min(6) {
            let orig = params.weight(wid).data()[idx];
            params.weight_mut(wid).data_mut()[idx] = orig + eps;
            let (v1, _) = sess
                .run_inference(&module, &g, &mut params, &bindings)
                .unwrap();
            let up = nll_loss_and_grad(v1.tensor(module.forward.outputs[0]), &labels).loss;
            params.weight_mut(wid).data_mut()[idx] = orig - eps;
            let (v2, _) = sess
                .run_inference(&module, &g, &mut params, &bindings)
                .unwrap();
            let down = nll_loss_and_grad(v2.tensor(module.forward.outputs[0]), &labels).loss;
            params.weight_mut(wid).data_mut()[idx] = orig;
            let fd = (up - down) / (2.0 * eps);
            let an = params.grad(wid).data()[idx];
            if (fd - an).abs() > 5e-3 + 0.1f32 * fd.abs().max(an.abs()) {
                println!(
                    "  {}[{}]: fd={:.6} analytic={:.6} MISMATCH",
                    info.name, idx, fd, an
                );
                bad += 1;
            }
        }
    }
    assert_eq!(bad, 0, "{} mismatches", bad);
}

#[test]
fn gen_no_softmax() {
    let mut m = ModelBuilder::new("g1", 2);
    let h = m.node_input("h", 2);
    let w = m.weight_per_etype("W", 2, 2);
    let w_s = m.weight_vec_per_etype("w_s", 2);
    let hs = m.typed_linear("hs", m.src(h), w);
    let atts = m.dot("atts", m.edge(hs), m.wvec(w_s));
    let out = m.aggregate("out", m.edge(hs), Some(m.edge(atts)), AggNorm::None);
    m.output(out);
    check_on_generated(m.finish(), &["W", "w_s"]);
}

#[test]
fn gen_softmax() {
    let mut m = ModelBuilder::new("g2", 2);
    let h = m.node_input("h", 2);
    let w = m.weight_per_etype("W", 2, 2);
    let w_s = m.weight_vec_per_etype("w_s", 2);
    let hs = m.typed_linear("hs", m.src(h), w);
    let atts = m.dot("atts", m.edge(hs), m.wvec(w_s));
    let att = m.edge_softmax("att", atts);
    let out = m.aggregate("out", m.edge(hs), Some(m.edge(att)), AggNorm::None);
    m.output(out);
    check_on_generated(m.finish(), &["W", "w_s"]);
}

#[test]
fn gen_plain_agg() {
    let mut m = ModelBuilder::new("g3", 2);
    let h = m.node_input("h", 2);
    let w = m.weight_per_etype("W", 2, 2);
    let hs = m.typed_linear("hs", m.src(h), w);
    let out = m.aggregate("out", m.edge(hs), None, AggNorm::None);
    m.output(out);
    check_on_generated(m.finish(), &["W"]);
}
