//! Real vs. modeled execution equivalence: the two session modes must
//! charge the device identically — same simulated time, same launches,
//! same peak memory — for any model, option combination, and graph.
//! (This is what makes the paper-scale modeled experiments trustworthy:
//! they report exactly what a real-mode run would have reported.)

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector_compiler::{compile, CompileOptions};
use hector_device::DeviceConfig;
use hector_graph::{generate, DatasetSpec};
use hector_models::{source, ModelKind};
use hector_runtime::{Bindings, GraphData, Mode, ParamStore, Session, Sgd};
use hector_tensor::seeded_rng;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = GraphData> {
    (
        10usize..60,
        1usize..4,
        20usize..200,
        1usize..8,
        0.2f64..1.0,
        any::<u64>(),
    )
        .prop_map(|(n, nt, e, et, ratio, seed)| {
            GraphData::new(generate(&DatasetSpec {
                name: "prop".into(),
                num_nodes: n,
                num_node_types: nt,
                num_edges: e,
                num_edge_types: et,
                compaction_ratio: ratio,
                type_skew: 1.0,
                seed,
            }))
        })
}

fn models() -> impl Strategy<Value = ModelKind> {
    prop_oneof![
        Just(ModelKind::Rgcn),
        Just(ModelKind::Rgat),
        Just(ModelKind::Hgt)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn modeled_inference_reports_match_real(
        graph in arb_graph(),
        kind in models(),
        compact in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        let opts = CompileOptions { compact, reorder, ..CompileOptions::default() };
        let module = compile(&source(kind, 8, 8), &opts);
        let mut rng = seeded_rng(1);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);

        let mut real = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let (_, r) = real.run_inference(&module, &graph, &mut params, &bindings).unwrap();
        let mut modeled = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
        let (_, m) =
            modeled.run_inference(&module, &graph, &mut params, &Bindings::new()).unwrap();

        prop_assert!((r.elapsed_us - m.elapsed_us).abs() < 1e-6);
        prop_assert_eq!(r.launches, m.launches);
        prop_assert_eq!(r.peak_bytes, m.peak_bytes);
        prop_assert!((r.gemm_us - m.gemm_us).abs() < 1e-6);
        prop_assert!((r.traversal_us - m.traversal_us).abs() < 1e-6);
    }

    #[test]
    fn modeled_training_reports_match_real(
        graph in arb_graph(),
        kind in models(),
    ) {
        let opts = CompileOptions::best().with_training(true);
        let module = compile(&source(kind, 6, 6), &opts);
        let mut rng = seeded_rng(2);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        let labels: Vec<usize> =
            (0..graph.graph().num_nodes()).map(|i| i % 6).collect();

        let mut real = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let mut sgd = Sgd::new(0.0);
        let (_, r) = real
            .run_training_step(&module, &graph, &mut params, &bindings, &labels, &mut sgd)
            .unwrap();
        let mut modeled = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
        let (_, m) = modeled
            .run_training_step(&module, &graph, &mut params, &Bindings::new(), &[], &mut sgd)
            .unwrap();

        prop_assert!((r.elapsed_us - m.elapsed_us).abs() < 1e-6);
        prop_assert_eq!(r.launches, m.launches);
        prop_assert!((r.backward_us - m.backward_us).abs() < 1e-6);
        prop_assert!(r.loss.is_some() && m.loss.is_none());
    }
}
