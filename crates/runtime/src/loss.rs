//! Training loss: negative log-likelihood against random labels.
//!
//! The paper's training methodology (§4.1): "to obtain a loss, we compute
//! the negative log-likelihood loss by comparing the output with a
//! precomputed random label tensor."

use hector_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Loss value and the gradient w.r.t. the logits.
#[derive(Clone, Debug)]
pub struct LossResult {
    /// Mean negative log-likelihood.
    pub loss: f32,
    /// `d loss / d logits`, same shape as the logits.
    pub grad: Tensor,
}

/// Computes mean NLL loss (with an internal log-softmax) and its gradient.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of logit rows or any
/// label is out of range.
#[must_use]
pub fn nll_loss_and_grad(logits: &Tensor, labels: &[usize]) -> LossResult {
    assert_eq!(logits.rank(), 2);
    let (m, n) = (logits.shape()[0], logits.shape()[1]);
    let mut grad = Tensor::zeros(&[m, n]);
    let loss = nll_loss_and_grad_into(logits, labels, grad.data_mut());
    LossResult { loss, grad }
}

/// Allocation-free core of [`nll_loss_and_grad`]: writes the gradient
/// into `grad` (a `rows × classes` row-major slice, fully overwritten)
/// and returns the loss. The run-reuse path ([`crate::Session`]'s
/// `train_step`) calls this with a session-owned staging buffer so a
/// warm training step never touches the heap.
///
/// # Panics
///
/// Panics if `labels`/`grad` sizes disagree with the logits or any label
/// is out of range.
#[must_use]
pub fn nll_loss_and_grad_into(logits: &Tensor, labels: &[usize], grad: &mut [f32]) -> f32 {
    assert_eq!(logits.rank(), 2);
    let (m, n) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), m, "one label per row");
    assert_eq!(grad.len(), m * n, "gradient buffer shape mismatch");
    let mut loss = 0.0f64;
    for (i, &label) in labels.iter().enumerate().take(m) {
        let row = logits.row(i);
        assert!(label < n, "label {label} out of range for {n} classes");
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for &v in row {
            sum += (v - max).exp();
        }
        let log_sum = sum.ln() + max;
        loss += f64::from(log_sum - row[label]);
        let g = &mut grad[i * n..(i + 1) * n];
        for j in 0..n {
            let softmax = (row[j] - log_sum).exp();
            g[j] = (softmax - if j == label { 1.0 } else { 0.0 }) / m as f32;
        }
    }
    (loss / m as f64) as f32
}

/// Generates the paper's "precomputed random label tensor": one class id
/// per node, seeded.
#[must_use]
pub fn random_labels(rng: &mut StdRng, count: usize, classes: usize) -> Vec<usize> {
    (0..count).map(|_| rng.gen_range(0..classes)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_tensor::seeded_rng;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]);
        let r = nll_loss_and_grad(&logits, &[0, 1]);
        assert!(r.loss < 1e-3);
    }

    #[test]
    fn uniform_prediction_loss_is_log_n() {
        let logits = Tensor::zeros(&[4, 8]);
        let r = nll_loss_and_grad(&logits, &[0, 1, 2, 3]);
        assert!((r.loss - (8.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![0.3, -0.2, 1.0, 0.5, 0.1, -0.6], &[2, 3]);
        let r = nll_loss_and_grad(&logits, &[2, 0]);
        for i in 0..2 {
            let s: f32 = r.grad.row(i).iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn grad_matches_finite_difference() {
        let mut logits = Tensor::from_vec(vec![0.5, -1.0, 0.25, 0.75], &[2, 2]);
        let labels = [1usize, 0];
        let base = nll_loss_and_grad(&logits, &labels);
        let eps = 1e-3;
        for i in 0..4 {
            let orig = logits.data()[i];
            logits.data_mut()[i] = orig + eps;
            let up = nll_loss_and_grad(&logits, &labels).loss;
            logits.data_mut()[i] = orig - eps;
            let down = nll_loss_and_grad(&logits, &labels).loss;
            logits.data_mut()[i] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - base.grad.data()[i]).abs() < 1e-3,
                "fd {fd} vs analytic {}",
                base.grad.data()[i]
            );
        }
    }

    #[test]
    fn random_labels_in_range() {
        let mut rng = seeded_rng(9);
        let labels = random_labels(&mut rng, 100, 7);
        assert_eq!(labels.len(), 100);
        assert!(labels.iter().all(|&l| l < 7));
    }
}
