//! The reference interpreter backend.
//!
//! Executes each kernel spec exactly as `crates/runtime/src/exec.rs`
//! (sequential) and `par_exec.rs` (deterministic parallel) define it —
//! this is the numerics baseline every other backend is pinned against.

use hector_compiler::CompiledModule;
use hector_device::Phase;
use hector_ir::KernelSpec;

use crate::exec::{exec_gemm, exec_traversal};
use crate::par_exec::{exec_gemm_par, exec_traversal_par};

use super::{plan_of, prepare_trav, Backend, BackendCaps, BackendKind, ExecCtx, ExecPlan};

/// The reference interpreter (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct InterpBackend;

impl Backend for InterpBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Interp
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            parallel: true,
            zero_alloc_warm: true,
            trace_spans: true,
        }
    }

    fn prepare(&self, module: &CompiledModule) -> ExecPlan {
        let fw = prepare_trav(&module.fw_kernels, &module.forward);
        let bw = match &module.backward {
            Some(p) => prepare_trav(&module.bw_kernels, p),
            None => Vec::new(),
        };
        plan_of(self.kind(), module, fw, bw)
    }

    fn run_kernel(
        &self,
        plan: &ExecPlan,
        phase: Phase,
        index: usize,
        spec: &KernelSpec,
        ctx: &mut ExecCtx<'_>,
    ) -> bool {
        run_interp(plan, phase, index, spec, ctx)
    }
}

/// Interpreter dispatch for one kernel — shared with the specialized
/// backend's fallback paths. Mirrors the session's historical inline
/// `match (spec, pool)` exactly.
pub(crate) fn run_interp(
    plan: &ExecPlan,
    phase: Phase,
    index: usize,
    spec: &KernelSpec,
    ctx: &mut ExecCtx<'_>,
) -> bool {
    match (spec, ctx.pool) {
        (KernelSpec::Gemm(g), Some(pool)) => exec_gemm_par(
            g,
            ctx.program,
            ctx.graph,
            ctx.params,
            ctx.vars,
            pool,
            ctx.min_chunk,
            ctx.scratch,
            ctx.arenas,
        ),
        (KernelSpec::Gemm(g), None) => {
            exec_gemm(g, ctx.program, ctx.graph, ctx.params, ctx.vars, ctx.scratch);
            false
        }
        (KernelSpec::Traversal(t), Some(pool)) => {
            let prep = plan.kernels(phase)[index]
                .trav
                .as_ref()
                .expect("traversal kernels carry TravPrep");
            exec_traversal_par(
                t,
                prep,
                ctx.program,
                ctx.graph,
                ctx.params,
                ctx.vars,
                pool,
                ctx.min_chunk,
                ctx.scratch,
                ctx.arenas,
            )
        }
        (KernelSpec::Traversal(t), None) => {
            exec_traversal(t, ctx.program, ctx.graph, ctx.params, ctx.vars, ctx.scratch);
            false
        }
        (KernelSpec::Fallback(f), _) => {
            if let Some(i) = f.prep_index {
                ctx.params.run_prep(&ctx.program.preps[i], ctx.program);
            }
            false
        }
    }
}
