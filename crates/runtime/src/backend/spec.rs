//! The specialized compiled-kernel backend.
//!
//! Where the interpreter re-derives scheduling facts on every launch —
//! scanning the whole fused op list per edge per pass, testing
//! `hoisted.contains(op)` per op, re-matching aggregation kinds and
//! re-resolving weight slabs per row — this backend resolves all of it
//! **once**, at [`Backend::prepare`] time, and monomorphizes each
//! lowered kernel into a dispatch-free closure:
//!
//! * **Linear-domain traversals** (edges, unique pairs, nodes): the
//!   fused op list is compiled to [`MicroOp`]s — every `Operand` match,
//!   variable-store hash lookup, and space/endpoint decision is made at
//!   prepare time — and executed **op-at-a-time**: one tight loop over
//!   all rows per op, with the operand tensors bound once per launch and
//!   results written straight into the output rows (no scratch staging
//!   copy). The interchange is bit-exact: per-row ops are row-local, and
//!   aggregates fold contributions in the same ascending-row order as
//!   the interpreter's row-at-a-time loop. Kernels where an aggregate's
//!   output is read back in the same kernel (where interchange would
//!   observe different partial sums) are detected at prepare time and
//!   fall back to the interpreter.
//! * **Dst-node traversals** (edge softmax and friends): the per-pass
//!   schedule is compiled to direct op-index lists (`edge_ops[pass]`,
//!   `node_ops[pass]`) and per-pass `-inf` sweep targets, so the hot
//!   per-edge loop touches exactly the ops that run — no stage scan, no
//!   `contains` probes.
//! * **Shared-weight dense GEMMs**: the weight slab and its finiteness
//!   bit are resolved once per kernel instead of once per row.
//! * Everything else falls back to the interpreter's own routines, so
//!   numerics are the interpreter's by construction.
//!
//! Every closure reuses the session [`Scratch`] arena and, on the
//! parallel path, delegates to the same deterministic chunked executor
//! as the interpreter — warm runs stay 0-alloc and outputs stay
//! bit-identical across backends and thread counts
//! (`tests/backend_parity.rs`).

use hector_compiler::CompiledModule;
use hector_device::Phase;
use hector_ir::{
    AggNorm, BinOp, Endpoint, GemmSpec, KernelSpec, OpKind, Operand, Program, RowDomain, Space,
    TraversalDomain, TraversalSpec, UnOp, VarId, WeightId,
};
use hector_tensor::Tensor;

use crate::exec::{
    apply_binary_into, apply_unary_into, dot, dst_private_max_aggs, exec_gemm, exec_op,
    exec_traversal, gemm_row_into, max_agg_outputs, read_operand, row_ctx, Ctx,
};
use crate::par_exec::{buffered_agg_outs, exec_gemm_par, exec_traversal_par, par_traversal_safe};

use super::{
    plan_of, Backend, BackendCaps, BackendKind, ExecCtx, ExecPlan, KernelFn, PreparedKernel,
    TravPrep,
};

/// The specialized compiled-kernel backend (see module docs).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SpecializedBackend;

impl Backend for SpecializedBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Specialized
    }

    fn caps(&self) -> BackendCaps {
        BackendCaps {
            parallel: true,
            zero_alloc_warm: true,
            trace_spans: true,
        }
    }

    fn prepare(&self, module: &CompiledModule) -> ExecPlan {
        let fw = compile_kernels(&module.fw_kernels, &module.forward);
        let bw = match &module.backward {
            Some(p) => compile_kernels(&module.bw_kernels, p),
            None => Vec::new(),
        };
        plan_of(self.kind(), module, fw, bw)
    }

    fn run_kernel(
        &self,
        plan: &ExecPlan,
        phase: Phase,
        index: usize,
        _spec: &KernelSpec,
        ctx: &mut ExecCtx<'_>,
    ) -> bool {
        let body = plan.kernels(phase)[index]
            .body
            .as_ref()
            .expect("specialized plans carry a body per kernel");
        body(ctx)
    }
}

fn compile_kernels(kernels: &[KernelSpec], program: &Program) -> Vec<PreparedKernel> {
    kernels
        .iter()
        .map(|spec| {
            let (trav, body) = match spec {
                KernelSpec::Traversal(t) => {
                    let prep = trav_prep(t, program);
                    let body = compile_traversal(t, program, prep.clone());
                    (Some(prep), body)
                }
                KernelSpec::Gemm(g) => (None, compile_gemm(g)),
                KernelSpec::Fallback(f) => {
                    let prep_index = f.prep_index;
                    let body: KernelFn = Box::new(move |ctx: &mut ExecCtx<'_>| {
                        if let Some(i) = prep_index {
                            ctx.params.run_prep(&ctx.program.preps[i], ctx.program);
                        }
                        false
                    });
                    (None, body)
                }
            };
            PreparedKernel {
                trav,
                body: Some(body),
            }
        })
        .collect()
}

fn trav_prep(spec: &TraversalSpec, program: &Program) -> TravPrep {
    let mut buffered: Vec<VarId> = buffered_agg_outs(spec, program).into_iter().collect();
    buffered.sort_unstable_by_key(|v| v.0);
    TravPrep {
        par_safe: par_traversal_safe(spec, program),
        buffered,
    }
}

/// The prepare-time-resolved schedule of a dst-node kernel: exactly
/// which op indices run where in each inner pass, and which max-agg
/// rows need the mid-pass `-inf` sweep.
struct DstSched {
    max_stage: usize,
    /// Per pass: indices (into `ops`) of per-edge ops.
    edge_ops: Vec<Vec<usize>>,
    /// Per pass: indices of hoisted per-node ops.
    node_ops: Vec<Vec<usize>>,
    /// Per pass: dst-private max-aggregate outputs to sweep mid-pass.
    mid_sweeps: Vec<Vec<VarId>>,
}

fn dst_sched(spec: &TraversalSpec, program: &Program) -> DstSched {
    let st = &spec.stages;
    let max_stage = st.iter().copied().max().unwrap_or(0);
    let mut edge_ops = vec![Vec::new(); max_stage + 1];
    let mut node_ops = vec![Vec::new(); max_stage + 1];
    let mut mid_sweeps = vec![Vec::new(); max_stage + 1];
    for (i, op) in spec.ops.iter().enumerate() {
        if spec.hoisted.contains(&op.id) {
            node_ops[st[i]].push(i);
        } else {
            edge_ops[st[i]].push(i);
        }
    }
    for (pass, sweeps) in mid_sweeps.iter_mut().enumerate() {
        sweeps.extend(dst_private_max_aggs(spec, program, pass));
    }
    DstSched {
        max_stage,
        edge_ops,
        node_ops,
        mid_sweeps,
    }
}

/// Per-row index mapping of a pre-resolved operand or aggregate target,
/// fixed at prepare time from the traversal domain and the variable's
/// space — the decision `read_operand` re-derives per row.
#[derive(Clone, Copy, Debug)]
enum RowMap {
    /// The iterated row itself.
    This,
    /// Edge row → source node row.
    Src,
    /// Edge row → destination node row.
    Dst,
    /// Edge row → its compacted unique-pair row.
    EdgeToUnique,
    /// Unique-pair row → its representative node row.
    UniqueRowIdx,
}

/// Which per-row edge-type array selects a weight-vector slab.
#[derive(Clone, Copy, Debug)]
enum ESel {
    /// `graph.etype()` (edge rows).
    Edge,
    /// `graph.unique_etype()` (unique-pair rows).
    Unique,
}

/// A traversal operand with every space/endpoint decision already made:
/// execution binds the referenced storage once per launch and indexes it
/// per row — no `Operand` match, no var-store hash lookup in the loop.
#[derive(Clone, Copy, Debug)]
enum PreOperand {
    /// An inline IR constant (broadcast scalar).
    Const(f32),
    /// Per-edge-type weight vector; the slab index comes from `ESel`.
    WVec(WeightId, ESel),
    /// A variable row through a prepare-time-resolved index map.
    Var(VarId, RowMap),
}

impl PreOperand {
    fn var(&self) -> Option<VarId> {
        match self {
            PreOperand::Var(v, _) => Some(*v),
            _ => None,
        }
    }
}

/// One fused traversal op compiled for op-at-a-time execution.
#[derive(Clone, Debug)]
enum MicroOp {
    Dot {
        a: PreOperand,
        b: PreOperand,
        out: VarId,
    },
    Bin {
        op: BinOp,
        a: PreOperand,
        b: PreOperand,
        out: VarId,
    },
    Un {
        op: UnOp,
        a: PreOperand,
        out: VarId,
    },
    Agg {
        val: PreOperand,
        scale: Option<PreOperand>,
        max: bool,
        out: VarId,
        map: RowMap,
    },
}

impl MicroOp {
    fn out(&self) -> VarId {
        match self {
            MicroOp::Dot { out, .. }
            | MicroOp::Bin { out, .. }
            | MicroOp::Un { out, .. }
            | MicroOp::Agg { out, .. } => *out,
        }
    }

    fn read_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        let (a, b) = match self {
            MicroOp::Dot { a, b, .. } | MicroOp::Bin { a, b, .. } => (Some(a), Some(b)),
            MicroOp::Un { a, .. } => (Some(a), None),
            MicroOp::Agg { val, scale, .. } => (Some(val), scale.as_ref()),
        };
        a.and_then(PreOperand::var)
            .into_iter()
            .chain(b.and_then(PreOperand::var))
    }
}

fn resolve_operand(o: &Operand, domain: TraversalDomain, program: &Program) -> Option<PreOperand> {
    Some(match o {
        Operand::Const(c) => PreOperand::Const(*c),
        Operand::WeightVec(w) => match domain {
            TraversalDomain::Edges => PreOperand::WVec(*w, ESel::Edge),
            TraversalDomain::UniquePairs => PreOperand::WVec(*w, ESel::Unique),
            _ => return None,
        },
        Operand::Node(v, ep) => {
            let map = match (domain, ep) {
                (TraversalDomain::Edges, Endpoint::Src) => RowMap::Src,
                (TraversalDomain::Edges, Endpoint::Dst) => RowMap::Dst,
                (TraversalDomain::UniquePairs, Endpoint::Src) => RowMap::UniqueRowIdx,
                (TraversalDomain::Nodes, Endpoint::This | Endpoint::Dst) => RowMap::This,
                _ => return None,
            };
            PreOperand::Var(*v, map)
        }
        Operand::Edge(v) => {
            let map = match (domain, program.var(*v).space) {
                (TraversalDomain::Edges, Space::Edge) => RowMap::This,
                (TraversalDomain::Edges, Space::Compact) => RowMap::EdgeToUnique,
                (TraversalDomain::UniquePairs, Space::Compact) => RowMap::This,
                _ => return None,
            };
            PreOperand::Var(*v, map)
        }
    })
}

/// The row space a pure (non-aggregate) op writes in each linear domain
/// — mirrors `write_row`'s accepted combinations.
fn pure_out_space(domain: TraversalDomain) -> Space {
    match domain {
        TraversalDomain::Edges => Space::Edge,
        TraversalDomain::UniquePairs => Space::Compact,
        TraversalDomain::Nodes => Space::Node,
        TraversalDomain::DstNodes => unreachable!("linear domains only"),
    }
}

/// One compiled execution segment of a linear-domain traversal.
enum Seg {
    /// Interchange-safe ops, executed op-at-a-time: one tight loop over
    /// all rows per op, operands bound once.
    Oat(Vec<MicroOp>),
    /// A hazard window (`spec.ops` index range): ops that must interleave
    /// per row — an aggregate whose output is read back in-kernel (the
    /// reader observes *partial* sums, per the interpreter's row-major
    /// order) or an op reading its own output. Executed through
    /// [`exec_op`], row-at-a-time, exactly like the interpreter.
    PerRow(std::ops::Range<usize>),
}

/// Compiles a linear-domain (edges / unique pairs / nodes) traversal into
/// execution segments, or `None` when the whole kernel must fall back to
/// the interpreter loop.
///
/// Op-at-a-time execution (the loop interchange) is bit-exact for an op
/// whose reads and writes are row-local, and for aggregates folded in
/// ascending-row order — which is every shape **except** reading a
/// variable some aggregate of the same kernel writes: the interpreter's
/// row-major interleave makes such a read observe the partial sum over
/// rows processed so far. Those ops (and everything between them, to
/// preserve relative order) are carved into a [`Seg::PerRow`] window that
/// replays the interpreter's own per-row loop; the ops before and after
/// still run op-at-a-time.
///
/// Full fallback triggers only when an operand shape is outside the
/// resolver (a compiler-invariant breach) or two ops write the same
/// aggregate output (segmenting would reorder the interleaved
/// accumulation).
fn compile_linear(spec: &TraversalSpec, program: &Program) -> Option<Vec<Seg>> {
    let domain = spec.domain;
    let mut mops = Vec::with_capacity(spec.ops.len());
    for op in &spec.ops {
        let m = match &op.kind {
            OpKind::DotProduct { a, b, out } => MicroOp::Dot {
                a: resolve_operand(a, domain, program)?,
                b: resolve_operand(b, domain, program)?,
                out: (program.var(*out).space == pure_out_space(domain)).then_some(*out)?,
            },
            OpKind::Binary { op, a, b, out } => MicroOp::Bin {
                op: *op,
                a: resolve_operand(a, domain, program)?,
                b: resolve_operand(b, domain, program)?,
                out: (program.var(*out).space == pure_out_space(domain)).then_some(*out)?,
            },
            OpKind::Unary { op, a, out } => MicroOp::Un {
                op: *op,
                a: resolve_operand(a, domain, program)?,
                out: (program.var(*out).space == pure_out_space(domain)).then_some(*out)?,
            },
            OpKind::NodeAggregate {
                edge_val,
                scale,
                norm,
                endpoint,
                out,
            } => {
                let map = match (domain, program.var(*out).space, endpoint) {
                    (TraversalDomain::Edges, Space::Node, Endpoint::Dst) => RowMap::Dst,
                    (TraversalDomain::Edges, Space::Node, Endpoint::Src) => RowMap::Src,
                    (TraversalDomain::Edges, Space::Compact, _) => RowMap::EdgeToUnique,
                    (TraversalDomain::UniquePairs, Space::Node, _) => RowMap::UniqueRowIdx,
                    _ => return None,
                };
                MicroOp::Agg {
                    val: resolve_operand(edge_val, domain, program)?,
                    scale: match scale {
                        Some(s) => Some(resolve_operand(s, domain, program)?),
                        None => None,
                    },
                    max: *norm == AggNorm::Max,
                    out: *out,
                    map,
                }
            }
            _ => return None,
        };
        mops.push(m);
    }

    // Mark the ops that cannot interchange.
    let mut hazard = vec![false; mops.len()];
    for (i, m) in mops.iter().enumerate() {
        let out = m.out();
        if m.read_vars().any(|v| v == out) {
            hazard[i] = true;
        }
        if matches!(m, MicroOp::Agg { .. }) {
            if mops
                .iter()
                .enumerate()
                .any(|(j, o)| j != i && o.out() == out)
            {
                return None;
            }
            for (j, o) in mops.iter().enumerate() {
                if o.read_vars().any(|v| v == out) {
                    hazard[i] = true;
                    hazard[j] = true;
                }
            }
        }
    }

    // One contiguous per-row window from the first hazard op to the
    // last (relative op order inside it matches the interpreter);
    // op-at-a-time segments on both sides.
    let mut segs = Vec::new();
    match (
        hazard.iter().position(|&h| h),
        hazard.iter().rposition(|&h| h),
    ) {
        (Some(lo), Some(hi)) => {
            if lo > 0 {
                segs.push(Seg::Oat(mops[..lo].to_vec()));
            }
            segs.push(Seg::PerRow(lo..hi + 1));
            if hi + 1 < mops.len() {
                segs.push(Seg::Oat(mops[hi + 1..].to_vec()));
            }
        }
        _ => segs.push(Seg::Oat(mops)),
    }
    Some(segs)
}

/// A [`PreOperand`] bound to its storage for one launch.
enum BoundOperand<'a> {
    Scalar(f32),
    Rows(&'a Tensor, Option<&'a [u32]>),
    WVec(&'a Tensor, &'a [u32]),
}

impl BoundOperand<'_> {
    #[inline]
    fn row(&self, r: usize) -> &[f32] {
        match self {
            BoundOperand::Scalar(v) => std::slice::from_ref(v),
            BoundOperand::Rows(t, None) => t.row(r),
            BoundOperand::Rows(t, Some(m)) => t.row(m[r] as usize),
            BoundOperand::WVec(t, et) => t.slab(et[r] as usize),
        }
    }
}

fn bind_map<'a>(map: RowMap, ctx: &'a ExecCtx<'_>) -> Option<&'a [u32]> {
    match map {
        RowMap::This => None,
        RowMap::Src => Some(ctx.graph.graph().src()),
        RowMap::Dst => Some(ctx.graph.graph().dst()),
        RowMap::EdgeToUnique => Some(ctx.graph.compact().edge_to_unique()),
        RowMap::UniqueRowIdx => Some(ctx.graph.compact().unique_row_idx()),
    }
}

fn bind<'a>(o: &PreOperand, ctx: &'a ExecCtx<'_>) -> BoundOperand<'a> {
    match o {
        PreOperand::Const(c) => BoundOperand::Scalar(*c),
        PreOperand::WVec(w, sel) => BoundOperand::WVec(
            ctx.params.weight(*w),
            match sel {
                ESel::Edge => ctx.graph.graph().etype(),
                ESel::Unique => ctx.graph.unique_etype(),
            },
        ),
        PreOperand::Var(v, map) => BoundOperand::Rows(ctx.vars.tensor(*v), bind_map(*map, ctx)),
    }
}

/// Runs one micro-op over all `rows` — the op-at-a-time twin of
/// [`exec_op`]'s row-at-a-time dispatch, performing the identical float
/// operations in the identical ascending-row order. The output buffer is
/// detached from the store for the loop (resolution guarantees no op
/// reads its own output), which lets results land directly in the output
/// rows instead of staging through scratch.
fn run_micro_op(m: &MicroOp, rows: usize, ctx: &mut ExecCtx<'_>) {
    let out = m.out();
    let mut out_buf = ctx
        .vars
        .remove(out)
        .expect("traversal outputs are allocated before launch");
    {
        let t = out_buf.tensor_mut();
        let cx: &ExecCtx<'_> = ctx;
        match m {
            MicroOp::Dot { a, b, .. } => {
                let (ab, bb) = (bind(a, cx), bind(b, cx));
                for r in 0..rows {
                    t.set_row(r, &[dot(ab.row(r), bb.row(r))]);
                }
            }
            MicroOp::Bin { op, a, b, .. } => {
                let (ab, bb) = (bind(a, cx), bind(b, cx));
                for r in 0..rows {
                    apply_binary_into(*op, ab.row(r), bb.row(r), t.row_mut(r));
                }
            }
            MicroOp::Un { op, a, .. } => {
                let ab = bind(a, cx);
                for r in 0..rows {
                    apply_unary_into(*op, ab.row(r), t.row_mut(r));
                }
            }
            MicroOp::Agg {
                val,
                scale,
                max,
                map,
                ..
            } => {
                let vb = bind(val, cx);
                let sb = scale.as_ref().map(|s| bind(s, cx));
                let idx = bind_map(*map, cx);
                for r in 0..rows {
                    let x = vb.row(r);
                    let i = match idx {
                        Some(m) => m[r] as usize,
                        None => r,
                    };
                    let row = t.row_mut(i);
                    if *max {
                        // Rows are seeded with -inf before the kernel
                        // runs, exactly as in `exec_traversal`.
                        for (acc, v) in row.iter_mut().zip(x) {
                            *acc = acc.max(*v);
                        }
                    } else {
                        let s = match &sb {
                            Some(b) => b.row(r)[0],
                            None => 1.0,
                        };
                        for (acc, &v) in row.iter_mut().zip(x) {
                            *acc += v * s;
                        }
                    }
                }
            }
        }
    }
    ctx.vars.insert(out, out_buf);
}

/// Monomorphizes one traversal kernel. Dst-node kernels get the compiled
/// per-pass schedule; linear domains get the op-at-a-time micro-op
/// pipeline (falling back to the interpreter loop when [`resolve_linear`]
/// declines).
fn compile_traversal(spec: &TraversalSpec, program: &Program, prep: TravPrep) -> KernelFn {
    let spec = spec.clone();
    let max_outs: Vec<VarId> = max_agg_outputs(&spec).collect();
    match spec.domain {
        TraversalDomain::DstNodes => {
            let sched = dst_sched(&spec, program);
            Box::new(move |ctx: &mut ExecCtx<'_>| {
                if let Some(pool) = ctx.pool {
                    return exec_traversal_par(
                        &spec,
                        &prep,
                        ctx.program,
                        ctx.graph,
                        ctx.params,
                        ctx.vars,
                        pool,
                        ctx.min_chunk,
                        ctx.scratch,
                        ctx.arenas,
                    );
                }
                for &v in &max_outs {
                    ctx.vars
                        .get_mut(v)
                        .tensor_mut()
                        .data_mut()
                        .fill(f32::NEG_INFINITY);
                }
                let csc = ctx.graph.csc();
                for v in 0..ctx.graph.graph().num_nodes() {
                    for pass in 0..=sched.max_stage {
                        for &eidx in csc.in_edges(v) {
                            let e = eidx as usize;
                            for &i in &sched.edge_ops[pass] {
                                exec_op(
                                    &spec.ops[i].kind,
                                    Ctx::Edge(e),
                                    ctx.program,
                                    ctx.graph,
                                    ctx.params,
                                    ctx.vars,
                                    ctx.scratch,
                                );
                            }
                        }
                        // Same mid-pass sweep as the interpreter: a
                        // zero-in-degree `v` still holds the `-inf` seed
                        // and later stages read the row mid-kernel.
                        for &out in &sched.mid_sweeps[pass] {
                            for x in ctx.vars.get_mut(out).tensor_mut().row_mut(v) {
                                if *x == f32::NEG_INFINITY {
                                    *x = 0.0;
                                }
                            }
                        }
                        for &i in &sched.node_ops[pass] {
                            exec_op(
                                &spec.ops[i].kind,
                                Ctx::Node(v),
                                ctx.program,
                                ctx.graph,
                                ctx.params,
                                ctx.vars,
                                ctx.scratch,
                            );
                        }
                    }
                }
                for &v in &max_outs {
                    for x in ctx.vars.get_mut(v).tensor_mut().data_mut() {
                        if *x == f32::NEG_INFINITY {
                            *x = 0.0;
                        }
                    }
                }
                false
            })
        }
        _ => {
            let segs = compile_linear(&spec, program);
            let rows_domain = match spec.domain {
                TraversalDomain::Edges => RowDomain::Edges,
                TraversalDomain::UniquePairs => RowDomain::UniquePairs,
                TraversalDomain::Nodes => RowDomain::Nodes,
                TraversalDomain::DstNodes => unreachable!("handled above"),
            };
            Box::new(move |ctx: &mut ExecCtx<'_>| {
                if let Some(pool) = ctx.pool {
                    return exec_traversal_par(
                        &spec,
                        &prep,
                        ctx.program,
                        ctx.graph,
                        ctx.params,
                        ctx.vars,
                        pool,
                        ctx.min_chunk,
                        ctx.scratch,
                        ctx.arenas,
                    );
                }
                match &segs {
                    Some(segs) => {
                        for &v in &max_outs {
                            ctx.vars
                                .get_mut(v)
                                .tensor_mut()
                                .data_mut()
                                .fill(f32::NEG_INFINITY);
                        }
                        let rows = ctx.graph.rows_of(rows_domain);
                        for seg in segs {
                            match seg {
                                Seg::Oat(mops) => {
                                    for m in mops {
                                        run_micro_op(m, rows, ctx);
                                    }
                                }
                                Seg::PerRow(range) => {
                                    for r in 0..rows {
                                        let c = row_ctx(rows_domain, r);
                                        for op in &spec.ops[range.clone()] {
                                            exec_op(
                                                &op.kind,
                                                c,
                                                ctx.program,
                                                ctx.graph,
                                                ctx.params,
                                                ctx.vars,
                                                ctx.scratch,
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        for &v in &max_outs {
                            for x in ctx.vars.get_mut(v).tensor_mut().data_mut() {
                                if *x == f32::NEG_INFINITY {
                                    *x = 0.0;
                                }
                            }
                        }
                    }
                    None => exec_traversal(
                        &spec,
                        ctx.program,
                        ctx.graph,
                        ctx.params,
                        ctx.vars,
                        ctx.scratch,
                    ),
                }
                false
            })
        }
    }
}

/// Monomorphizes one GEMM kernel. A shared-weight dense `TypedLinear`
/// (one slab, row-aligned store) gets the slab and its finiteness bit
/// resolved once per launch; every other shape reuses the interpreter's
/// loop (which already hoists what it can).
fn compile_gemm(spec: &GemmSpec) -> KernelFn {
    let spec = spec.clone();
    let shared_dense = matches!(
        &spec.op.kind,
        OpKind::TypedLinear {
            weight: _,
            scatter: None,
            ..
        } if spec.weight_index == hector_ir::TypeIndex::Shared
    );
    Box::new(move |ctx: &mut ExecCtx<'_>| {
        if let Some(pool) = ctx.pool {
            return exec_gemm_par(
                &spec,
                ctx.program,
                ctx.graph,
                ctx.params,
                ctx.vars,
                pool,
                ctx.min_chunk,
                ctx.scratch,
                ctx.arenas,
            );
        }
        if shared_dense {
            exec_gemm_shared_dense(&spec, ctx);
        } else {
            exec_gemm(
                &spec,
                ctx.program,
                ctx.graph,
                ctx.params,
                ctx.vars,
                ctx.scratch,
            );
        }
        false
    })
}

/// Sequential shared-slab dense `TypedLinear`: identical float operations
/// to [`exec_gemm`]'s loop, with the per-row type-index resolution and
/// slab/finiteness lookups hoisted out (the slab is always slab 0).
fn exec_gemm_shared_dense(spec: &GemmSpec, ctx: &mut ExecCtx<'_>) {
    let OpKind::TypedLinear {
        input,
        weight,
        transpose_w,
        scatter: None,
        fused_scale,
        out,
    } = &spec.op.kind
    else {
        unreachable!("gated by compile_gemm");
    };
    let m = ctx.graph.rows_of(spec.rows);
    let params: &crate::ParamStore = ctx.params;
    let wt = params.weight(*weight);
    let (wrows, wcols) = (wt.shape()[1], wt.shape()[2]);
    let out_width = ctx.program.var(*out).width;
    if !*transpose_w {
        ctx.scratch.set_slab_finite(wt);
    }
    let slab = wt.slab(0);
    let slab_finite = *transpose_w || ctx.scratch.slab_finite(0);
    for r in 0..m {
        let rctx = row_ctx(spec.rows, r);
        {
            let x = read_operand(input, rctx, ctx.program, ctx.graph, params, ctx.vars);
            let y = ctx.scratch.y_zeroed(out_width);
            gemm_row_into(
                x.as_slice(),
                slab,
                wrows,
                wcols,
                *transpose_w,
                slab_finite,
                y,
            );
        }
        if let Some(s) = fused_scale {
            let sv = read_operand(s, rctx, ctx.program, ctx.graph, params, ctx.vars).scalar();
            for v in ctx.scratch.y_mut(out_width) {
                *v *= sv;
            }
        }
        ctx.vars
            .get_mut(*out)
            .tensor_mut()
            .set_row(r, ctx.scratch.y(out_width));
    }
}
