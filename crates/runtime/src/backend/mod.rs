//! Execution backends: pluggable strategies for running compiled kernels.
//!
//! The compiler lowers a model to a sequence of [`KernelSpec`]s; *how*
//! those kernels execute is a backend decision. [`Session`] routes every
//! real-mode kernel launch through a [`Backend`]:
//!
//! * [`Backend::prepare`] runs once per (session, module) — it analyses
//!   the kernel sequence and builds an [`ExecPlan`] of per-kernel
//!   prepared state (parallel-safety verdicts, deferred-aggregate sets,
//!   monomorphized kernel bodies). The plan is cached on the session, so
//!   warm runs pay none of the analysis and stay allocation-free.
//! * [`Backend::run_kernel`] executes one kernel of the plan against an
//!   [`ExecCtx`] (graph, parameters, variable buffers, scratch arenas).
//!
//! Two backends ship today:
//!
//! * **`interp`** ([`BackendKind::Interp`], the default) — the reference
//!   interpreter: walks each kernel spec per row, sequentially or across
//!   the deterministic thread pool.
//! * **`specialized`** ([`BackendKind::Specialized`]) — resolves shapes,
//!   stage assignments, aggregation kinds, and the fusion schedule once
//!   at `prepare` time, monomorphizing each kernel into a dispatch-free
//!   closure. Bit-identical to the interpreter (pinned by
//!   `tests/backend_parity.rs`), faster on traversal-heavy models.
//!
//! The CUDA code generator (`CompiledModule::code`) is *not* a backend:
//! it is a text-only emission target — nothing in this crate executes
//! it. See `GeneratedCode` in `hector-compiler`.
//!
//! [`Session`]: crate::Session

use std::sync::Arc;

use hector_compiler::CompiledModule;
use hector_device::Phase;
use hector_ir::{KernelSpec, Program, VarId};
use hector_par::ThreadPool;

use crate::par_exec::{buffered_agg_outs, par_traversal_safe, WorkerArenas};
use crate::scratch::Scratch;
use crate::store::VarStore;
use crate::{GraphData, ParamStore};

mod interp;
mod spec;

/// Which execution backend a session runs kernels on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The reference interpreter: executes each kernel spec directly,
    /// matching on op kinds per row. Sequential and parallel paths are
    /// bit-identical; this is the numerics baseline every other backend
    /// is pinned against.
    Interp,
    /// The specialized compiled-kernel backend: monomorphizes each
    /// lowered kernel into a dispatch-free closure at prepare time
    /// (shapes, stage schedules, aggregation kinds resolved once, not
    /// matched per row per run). Bit-identical to [`BackendKind::Interp`].
    Specialized,
}

impl BackendKind {
    /// Stable lower-case name (the `HECTOR_BACKEND` value and the label
    /// surfaced through counters, profiles, and trace metadata).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Interp => "interp",
            BackendKind::Specialized => "specialized",
        }
    }

    /// Parses a backend name as accepted by `HECTOR_BACKEND`.
    #[must_use]
    pub fn from_name(s: &str) -> Option<BackendKind> {
        match s.trim() {
            "" | "interp" | "interpreter" => Some(BackendKind::Interp),
            "specialized" | "spec" => Some(BackendKind::Specialized),
            _ => None,
        }
    }

    /// Fallible counterpart of [`BackendKind::from_name`]: parses a
    /// backend name, reporting an unknown one as
    /// [`HectorError::BackendUnavailable`](crate::HectorError::BackendUnavailable) instead of [`None`] — the
    /// form server front ends and config loaders want.
    ///
    /// # Errors
    ///
    /// Returns [`HectorError::BackendUnavailable`](crate::HectorError::BackendUnavailable) for any name
    /// [`BackendKind::from_name`] does not recognise.
    pub fn parse(s: &str) -> Result<BackendKind, crate::HectorError> {
        BackendKind::from_name(s).ok_or_else(|| crate::HectorError::BackendUnavailable {
            name: s.to_string(),
        })
    }

    /// Backend selection from the environment: `HECTOR_BACKEND=interp`
    /// (default) or `HECTOR_BACKEND=specialized`.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognised value — a misspelt backend silently
    /// falling back to the default would invalidate any benchmark or CI
    /// matrix leg that set it.
    #[must_use]
    pub fn from_env() -> BackendKind {
        match std::env::var("HECTOR_BACKEND") {
            Ok(v) => BackendKind::from_name(&v).unwrap_or_else(|| {
                panic!("unknown HECTOR_BACKEND '{v}' (expected 'interp' or 'specialized')")
            }),
            Err(_) => BackendKind::Interp,
        }
    }
}

/// Capability flags a backend advertises. Purely informational — the
/// session does not gate behaviour on them — but they document the
/// contract each backend is tested against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendCaps {
    /// Executes across the deterministic thread pool when the session
    /// has one (`HECTOR_THREADS > 1`).
    pub parallel: bool,
    /// Warm runs perform zero heap allocations (pinned by
    /// `tests/run_alloc.rs`).
    pub zero_alloc_warm: bool,
    /// Emits the standard kernel/phase/worker trace spans (the golden
    /// schema in `tests/trace_schema.rs` holds under this backend).
    pub trace_spans: bool,
}

/// Everything a backend needs to execute one kernel: the program and
/// graph being run, parameter and variable stores, the optional thread
/// pool, and the session-owned scratch arenas.
///
/// Constructed by [`Session`](crate::Session) per kernel launch; the
/// fields are crate-private, so the [`Backend`] trait is effectively
/// sealed to this crate.
pub struct ExecCtx<'a> {
    pub(crate) program: &'a Program,
    pub(crate) graph: &'a GraphData,
    pub(crate) params: &'a mut ParamStore,
    pub(crate) vars: &'a mut VarStore,
    pub(crate) pool: Option<&'a ThreadPool>,
    pub(crate) min_chunk: usize,
    pub(crate) scratch: &'a mut Scratch,
    pub(crate) arenas: &'a mut WorkerArenas,
}

/// Prepared parallel-execution metadata for one traversal kernel,
/// computed once per module instead of per launch: whether the chunked
/// scheme is safe at all, and which aggregate outputs must be deferred
/// to the record-and-replay merge.
#[derive(Clone, Debug, Default)]
pub(crate) struct TravPrep {
    /// Verdict of [`par_traversal_safe`] — `false` forces the sequential
    /// interpreter even when a pool exists.
    pub(crate) par_safe: bool,
    /// Sorted [`buffered_agg_outs`] result: aggregate outputs whose
    /// target row may belong to another chunk.
    pub(crate) buffered: Vec<VarId>,
}

/// A monomorphized kernel body built by the specialized backend: one
/// closure per kernel, with every prepare-time decision already baked
/// in. Returns whether the kernel actually split across chunks.
pub(crate) type KernelFn = Box<dyn Fn(&mut ExecCtx<'_>) -> bool + Send + Sync>;

/// Per-kernel prepared state inside an [`ExecPlan`].
#[derive(Default)]
pub(crate) struct PreparedKernel {
    /// Parallel metadata (traversal kernels only).
    pub(crate) trav: Option<TravPrep>,
    /// Monomorphized body (specialized backend only); `None` falls back
    /// to the interpreter dispatch in [`Backend::run_kernel`].
    pub(crate) body: Option<KernelFn>,
}

/// A backend's prepared execution state for one [`CompiledModule`]:
/// per-kernel analysis results and (for compiling backends) the
/// monomorphized kernel bodies. Built by [`Backend::prepare`], cached by
/// the session, and keyed to the module it was built from.
pub struct ExecPlan {
    kind: BackendKind,
    module_ptr: usize,
    module_name: String,
    fw: Vec<PreparedKernel>,
    bw: Vec<PreparedKernel>,
}

impl std::fmt::Debug for ExecPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecPlan")
            .field("kind", &self.kind)
            .field("module", &self.module_name)
            .field("fw_kernels", &self.fw.len())
            .field("bw_kernels", &self.bw.len())
            .finish()
    }
}

impl ExecPlan {
    /// The backend kind this plan was prepared by.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        self.kind
    }

    /// Whether this plan was prepared from `module` (same address, name,
    /// and kernel counts) by a backend of `kind` — the session's cache
    /// key for skipping re-preparation on warm runs.
    pub(crate) fn matches(&self, kind: BackendKind, module: &CompiledModule) -> bool {
        self.kind == kind
            && self.module_ptr == std::ptr::from_ref(module) as usize
            && self.module_name == module.name
            && self.fw.len() == module.fw_kernels.len()
            && self.bw.len() == module.bw_kernels.len()
    }

    pub(crate) fn kernels(&self, phase: Phase) -> &[PreparedKernel] {
        match phase {
            Phase::Forward => &self.fw,
            Phase::Backward => &self.bw,
        }
    }
}

/// Builds the interpreter-level prepared state shared by every backend:
/// parallel-safety and deferred-aggregate analysis per traversal kernel.
fn prepare_trav(kernels: &[KernelSpec], program: &Program) -> Vec<PreparedKernel> {
    kernels
        .iter()
        .map(|spec| match spec {
            KernelSpec::Traversal(t) => {
                let mut buffered: Vec<VarId> = buffered_agg_outs(t, program).into_iter().collect();
                buffered.sort_unstable_by_key(|v| v.0);
                PreparedKernel {
                    trav: Some(TravPrep {
                        par_safe: par_traversal_safe(t, program),
                        buffered,
                    }),
                    body: None,
                }
            }
            _ => PreparedKernel::default(),
        })
        .collect()
}

/// Plan skeleton: per-phase prepared kernels plus the module cache key.
fn plan_of(
    kind: BackendKind,
    module: &CompiledModule,
    fw: Vec<PreparedKernel>,
    bw: Vec<PreparedKernel>,
) -> ExecPlan {
    ExecPlan {
        kind,
        module_ptr: std::ptr::from_ref(module) as usize,
        module_name: module.name.clone(),
        fw,
        bw,
    }
}

/// An execution strategy for compiled kernel sequences.
///
/// Implementations must keep outputs **bit-identical** to the reference
/// interpreter ([`BackendKind::Interp`]) — `tests/backend_parity.rs`
/// pins forward outputs, losses, and trained weights across backends and
/// thread counts. The trait is sealed to this crate ([`ExecCtx`]'s
/// fields are crate-private).
pub trait Backend: std::fmt::Debug + Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Stable backend name (see [`BackendKind::name`]).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Capability flags (see [`BackendCaps`]).
    fn caps(&self) -> BackendCaps;

    /// Analyses `module` and builds the prepared per-kernel state this
    /// backend needs. Called once per (session, module); the session
    /// caches the result so warm runs skip it entirely.
    fn prepare(&self, module: &CompiledModule) -> ExecPlan;

    /// Executes kernel `index` of `phase` (`spec` is
    /// `module.fw_kernels[index]` / `bw_kernels[index]`, `plan` the
    /// matching [`Backend::prepare`] result). Returns whether the kernel
    /// actually split across pool chunks (for
    /// [`hector_device::ParallelStats`] accounting).
    fn run_kernel(
        &self,
        plan: &ExecPlan,
        phase: Phase,
        index: usize,
        spec: &KernelSpec,
        ctx: &mut ExecCtx<'_>,
    ) -> bool;
}

/// Instantiates the backend for `kind`.
pub(crate) fn create(kind: BackendKind) -> Arc<dyn Backend> {
    match kind {
        BackendKind::Interp => Arc::new(interp::InterpBackend),
        BackendKind::Specialized => Arc::new(spec::SpecializedBackend),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_round_trip() {
        for kind in [BackendKind::Interp, BackendKind::Specialized] {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(BackendKind::from_name(""), Some(BackendKind::Interp));
        assert_eq!(BackendKind::from_name("wgpu"), None);
    }

    #[test]
    fn created_backends_report_their_kind() {
        for kind in [BackendKind::Interp, BackendKind::Specialized] {
            let b = create(kind);
            assert_eq!(b.kind(), kind);
            assert_eq!(b.name(), kind.name());
            assert!(b.caps().parallel);
            assert!(b.caps().zero_alloc_warm);
            assert!(b.caps().trace_spans);
        }
    }
}
