//! The unified, fallible error surface of the public runtime API.
//!
//! Historically the handle API panicked on misuse (wrong graph, bad
//! shapes, unknown backend). A long-lived server cannot sit on top of a
//! panicking substrate, so the public entry points —
//! [`EngineBuilder::build`](crate::EngineBuilder::build),
//! [`Engine::bind`](crate::Engine::bind),
//! [`Bound::forward`](crate::Bound::forward),
//! [`Trainer::step`](crate::Trainer::step) /
//! [`Trainer::train_batch`](crate::Trainer::train_batch), and
//! [`Session::with_backend`](crate::Session::with_backend) — return
//! `Result<_, HectorError>` instead. *Internal invariant* checks (state
//! the library itself controls) remain panics: a broken invariant is a
//! bug in Hector, not a caller error.

use std::fmt;

use hector_device::OomError;

/// Everything the public runtime API can report as a recoverable error.
///
/// The enum is `#[non_exhaustive]`: new variants may appear in later
/// versions, so downstream `match`es need a catch-all arm.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum HectorError {
    /// The graph (or absence of one) is incompatible with the requested
    /// operation: binding an empty graph, running before
    /// [`Engine::bind`](crate::Engine::bind), or training on a subgraph
    /// whose node/edge type counts differ from the bound graph's.
    GraphMismatch {
        /// What was incompatible.
        detail: String,
    },
    /// A tensor (input binding, label vector) has the wrong shape for
    /// the program and graph it is being run against.
    ShapeMismatch {
        /// Which tensor mismatched (input name, "labels", …).
        what: String,
        /// The shape the program/graph requires.
        expected: String,
        /// The shape that was provided.
        got: String,
    },
    /// The model source cannot be compiled (e.g. it declares no
    /// outputs).
    CompileError {
        /// What the compiler rejected.
        detail: String,
    },
    /// The named execution backend does not exist in this build.
    BackendUnavailable {
        /// The unrecognised backend name.
        name: String,
    },
    /// A builder or session was configured inconsistently (classes
    /// beyond the output width, zero threads, a missing input binding,
    /// an untrained module asked to train, …).
    InvalidConfig {
        /// What was invalid.
        detail: String,
    },
    /// The run exceeded simulated device memory (wraps
    /// [`hector_device::OomError`]; these are the paper's legitimate
    /// OOM events, recorded rather than panicked).
    Oom(OomError),
}

impl HectorError {
    /// Short stable tag naming the variant ("graph_mismatch",
    /// "shape_mismatch", …) — used by serving front ends to classify
    /// failures without string-matching `Display` output.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            HectorError::GraphMismatch { .. } => "graph_mismatch",
            HectorError::ShapeMismatch { .. } => "shape_mismatch",
            HectorError::CompileError { .. } => "compile_error",
            HectorError::BackendUnavailable { .. } => "backend_unavailable",
            HectorError::InvalidConfig { .. } => "invalid_config",
            HectorError::Oom(_) => "oom",
        }
    }
}

impl fmt::Display for HectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HectorError::GraphMismatch { detail } => {
                write!(f, "graph mismatch: {detail}")
            }
            HectorError::ShapeMismatch {
                what,
                expected,
                got,
            } => {
                write!(
                    f,
                    "shape mismatch for {what}: expected {expected}, got {got}"
                )
            }
            HectorError::CompileError { detail } => {
                write!(f, "compile error: {detail}")
            }
            HectorError::BackendUnavailable { name } => {
                write!(
                    f,
                    "backend '{name}' is unavailable (expected 'interp' or 'specialized')"
                )
            }
            HectorError::InvalidConfig { detail } => {
                write!(f, "invalid configuration: {detail}")
            }
            HectorError::Oom(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HectorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HectorError::Oom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OomError> for HectorError {
    fn from(e: OomError) -> HectorError {
        HectorError::Oom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HectorError::ShapeMismatch {
            what: "input 'h'".into(),
            expected: "[6, 4]".into(),
            got: "[6, 8]".into(),
        };
        let s = e.to_string();
        assert!(s.contains("input 'h'") && s.contains("[6, 4]") && s.contains("[6, 8]"));
        assert_eq!(e.kind(), "shape_mismatch");
    }

    #[test]
    fn oom_converts_and_chains_source() {
        let oom = OomError {
            requested: 128,
            in_use: 64,
            capacity: 100,
            label: "weights".into(),
        };
        let e: HectorError = oom.clone().into();
        assert_eq!(e, HectorError::Oom(oom));
        assert_eq!(e.kind(), "oom");
        let src = std::error::Error::source(&e).expect("oom chains its source");
        assert!(src.to_string().contains("weights"));
    }
}
