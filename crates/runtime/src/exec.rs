//! Functional interpretation of kernel specs (real execution mode).
//!
//! Each kernel spec is executed exactly as the generated CUDA would run:
//! GEMM instances gather rows through their access schemes, apply the
//! per-type weight slab, and scatter (atomically, in the backward
//! direction) into the output; traversal instances iterate their domain
//! (edges, unique pairs, destination nodes with staged inner passes, or
//! plain nodes) executing the fused statement list per row.

use hector_ir::interop::LEAKY_RELU_SLOPE;
use hector_ir::{
    AggNorm, BinOp, Endpoint, GemmSpec, OpKind, Operand, Program, RowDomain, Scatter, Space,
    TraversalDomain, TraversalSpec, TypeIndex, UnOp, VarId,
};

use crate::{GraphData, ParamStore, VarStore};

/// A row position in one of the three iteration spaces.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Ctx {
    Edge(usize),
    Unique(usize),
    Node(usize),
}

/// Executes a GEMM-template instance.
///
/// # Panics
///
/// Panics on spec/program inconsistencies (compiler bugs).
pub(crate) fn exec_gemm(
    spec: &GemmSpec,
    program: &Program,
    graph: &GraphData,
    params: &mut ParamStore,
    vars: &mut VarStore,
) {
    let m = graph.rows_of(spec.rows);
    match &spec.op.kind {
        OpKind::TypedLinear {
            input,
            weight,
            transpose_w,
            scatter,
            fused_scale,
            out,
        } => {
            let wt = params.weight(*weight).clone();
            let (wrows, wcols) = (wt.shape()[1], wt.shape()[2]);
            let out_width = program.var(*out).width;
            for r in 0..m {
                let ctx = row_ctx(spec.rows, r);
                let x = read_operand(input, ctx, program, graph, params, vars);
                let ty = weight_type_index(wt.shape()[0], spec.weight_index, spec.rows, r, graph);
                let slab = wt.slab(ty);
                let mut y = vec![0.0f32; out_width];
                if *transpose_w {
                    // y = x · W^T where W is [wrows, wcols]: x has wcols elems.
                    debug_assert_eq!(x.len(), wcols);
                    for (j, yj) in y.iter_mut().enumerate().take(wrows) {
                        let row = &slab[j * wcols..(j + 1) * wcols];
                        let mut acc = 0.0;
                        for (p, &xv) in x.iter().enumerate() {
                            acc += xv * row[p];
                        }
                        *yj = acc;
                    }
                } else {
                    debug_assert_eq!(x.len(), wrows);
                    for (p, &xv) in x.iter().enumerate() {
                        if xv == 0.0 {
                            continue;
                        }
                        let row = &slab[p * wcols..(p + 1) * wcols];
                        for j in 0..wcols {
                            y[j] += xv * row[j];
                        }
                    }
                }
                if let Some(s) = fused_scale {
                    let sv = read_operand(s, ctx, program, graph, params, vars)[0];
                    for v in &mut y {
                        *v *= sv;
                    }
                }
                match scatter {
                    None => {
                        vars.get_mut(*out).tensor_mut().set_row(r, &y);
                    }
                    Some(ep) => {
                        let idx = scatter_index(spec.rows, *ep, r, graph);
                        let row = vars.get_mut(*out).tensor_mut().row_mut(idx);
                        for (a, b) in row.iter_mut().zip(y.iter()) {
                            *a += b;
                        }
                    }
                }
            }
        }
        OpKind::TypedLinearGradW { x, dy, out_w } => {
            let t_count = params.type_count(*out_w);
            for r in 0..m {
                let ctx = row_ctx(spec.rows, r);
                let xr = read_operand(x, ctx, program, graph, params, vars);
                let dyr = read_operand(dy, ctx, program, graph, params, vars);
                let ty = weight_type_index(t_count, spec.weight_index, spec.rows, r, graph);
                let (k, n) = (xr.len(), dyr.len());
                let g = params.grad_mut(*out_w);
                let slab = &mut g.data_mut()[ty * k * n..(ty + 1) * k * n];
                for (i, &xv) in xr.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let row = &mut slab[i * n..(i + 1) * n];
                    for (j, &dv) in dyr.iter().enumerate() {
                        row[j] += xv * dv;
                    }
                }
            }
        }
        other => unreachable!("not a GEMM op: {other:?}"),
    }
    debug_assert!(matches!(
        spec.scatter,
        Scatter::None | Scatter::AtomicNode(_)
    ));
}

pub(crate) fn row_ctx(rows: RowDomain, r: usize) -> Ctx {
    match rows {
        RowDomain::Edges => Ctx::Edge(r),
        RowDomain::UniquePairs => Ctx::Unique(r),
        RowDomain::Nodes => Ctx::Node(r),
    }
}

pub(crate) fn scatter_index(rows: RowDomain, ep: Endpoint, r: usize, graph: &GraphData) -> usize {
    match rows {
        RowDomain::Edges => match ep {
            Endpoint::Src => graph.graph().src()[r] as usize,
            Endpoint::Dst => graph.graph().dst()[r] as usize,
            Endpoint::This => r,
        },
        RowDomain::UniquePairs => {
            debug_assert_eq!(ep, Endpoint::Src, "unique pairs scatter to their source");
            graph.compact().unique_row_idx()[r] as usize
        }
        RowDomain::Nodes => r,
    }
}

pub(crate) fn weight_type_index(
    t_count: usize,
    per: TypeIndex,
    rows: RowDomain,
    r: usize,
    graph: &GraphData,
) -> usize {
    let idx = match per {
        TypeIndex::Shared => 0,
        TypeIndex::EdgeType => match rows {
            RowDomain::Edges => graph.graph().etype()[r] as usize,
            RowDomain::UniquePairs => graph.unique_etype()[r] as usize,
            RowDomain::Nodes => unreachable!("edge-typed weight in node rows"),
        },
        TypeIndex::NodeType => match rows {
            RowDomain::Nodes => graph.graph().node_type()[r] as usize,
            _ => unreachable!("node-typed weight outside node rows"),
        },
        TypeIndex::NodeEdgePair => graph.pair_type_of(rows, r),
    };
    debug_assert!(idx < t_count, "type index out of range");
    idx
}

pub(crate) fn read_operand(
    o: &Operand,
    ctx: Ctx,
    program: &Program,
    graph: &GraphData,
    params: &ParamStore,
    vars: &VarStore,
) -> Vec<f32> {
    match o {
        Operand::Const(c) => vec![*c],
        Operand::WeightVec(w) => {
            let ty = match ctx {
                Ctx::Edge(e) => graph.graph().etype()[e] as usize,
                Ctx::Unique(u) => graph.unique_etype()[u] as usize,
                Ctx::Node(_) => unreachable!("weight vectors need edge context"),
            };
            params.weight(*w).slab(ty).to_vec()
        }
        Operand::Node(v, ep) => {
            let row = match (ctx, ep) {
                (Ctx::Edge(e), Endpoint::Src) => graph.graph().src()[e] as usize,
                (Ctx::Edge(e), Endpoint::Dst) => graph.graph().dst()[e] as usize,
                (Ctx::Unique(u), Endpoint::Src) => graph.compact().unique_row_idx()[u] as usize,
                (Ctx::Node(n), Endpoint::This | Endpoint::Dst) => n,
                (c, e) => unreachable!("node read {e:?} in context {c:?}"),
            };
            vars.tensor(*v).row(row).to_vec()
        }
        Operand::Edge(v) => {
            let space = program.var(*v).space;
            let row = match (ctx, space) {
                (Ctx::Edge(e), Space::Edge) => e,
                (Ctx::Edge(e), Space::Compact) => graph.compact().edge_to_unique()[e] as usize,
                (Ctx::Unique(u), Space::Compact) => u,
                (c, s) => unreachable!("edge read of {s:?} var in context {c:?}"),
            };
            vars.tensor(*v).row(row).to_vec()
        }
    }
}

pub(crate) fn apply_unary(op: UnOp, x: &[f32]) -> Vec<f32> {
    x.iter()
        .map(|&v| match op {
            UnOp::LeakyRelu => {
                if v >= 0.0 {
                    v
                } else {
                    LEAKY_RELU_SLOPE * v
                }
            }
            UnOp::Relu => v.max(0.0),
            UnOp::Exp => v.exp(),
            UnOp::Copy => v,
            UnOp::Neg => -v,
            UnOp::LeakyReluGrad => {
                if v >= 0.0 {
                    1.0
                } else {
                    LEAKY_RELU_SLOPE
                }
            }
            UnOp::ReluGrad => {
                if v >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        })
        .collect()
}

pub(crate) fn apply_binary(op: BinOp, a: &[f32], b: &[f32]) -> Vec<f32> {
    let n = a.len().max(b.len());
    debug_assert!(a.len() == n || a.len() == 1);
    debug_assert!(b.len() == n || b.len() == 1);
    (0..n)
        .map(|i| {
            let x = a[if a.len() == 1 { 0 } else { i }];
            let y = b[if b.len() == 1 { 0 } else { i }];
            match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
            }
        })
        .collect()
}

/// Stage assignment for a dst-node kernel: edgewise ops reading
/// node-space values produced in-kernel must run one inner-loop pass
/// later than the producer.
pub(crate) fn stages(spec: &TraversalSpec, program: &Program) -> Vec<usize> {
    use std::collections::HashMap;
    let mut def_stage: HashMap<VarId, (usize, bool)> = HashMap::new(); // (stage, node-level)
    let mut out = Vec::with_capacity(spec.ops.len());
    for op in &spec.ops {
        let is_node_op = op
            .kind
            .out_var()
            .is_some_and(|v| program.var(v).space == Space::Node)
            && !matches!(op.kind, OpKind::NodeAggregate { .. });
        let is_agg = matches!(op.kind, OpKind::NodeAggregate { .. });
        let mut s = 0;
        for operand in op.kind.operands() {
            if let Some(v) = operand.var() {
                if let Some(&(ds, node_level)) = def_stage.get(&v) {
                    if node_level && !is_node_op {
                        s = s.max(ds + 1);
                    } else {
                        s = s.max(ds);
                    }
                }
            }
        }
        if let Some(v) = op.kind.out_var() {
            def_stage.insert(v, (s, is_node_op || is_agg));
        }
        out.push(s);
    }
    out
}

/// Executes a traversal-template instance.
///
/// # Panics
///
/// Panics on spec/program inconsistencies (compiler bugs).
/// Max-aggregate outputs of a kernel: seeded to `-inf` before execution so
/// the true maximum survives all-negative inputs, and swept back to `0`
/// afterwards for groups no edge touched (those rows are never read, but
/// `-inf` must not leak into later whole-tensor consumers).
pub(crate) fn max_agg_outputs(spec: &TraversalSpec) -> impl Iterator<Item = VarId> + '_ {
    spec.ops.iter().filter_map(|op| match op.kind {
        OpKind::NodeAggregate {
            norm: AggNorm::Max,
            out,
            ..
        } => Some(out),
        _ => None,
    })
}

pub(crate) fn exec_traversal(
    spec: &TraversalSpec,
    program: &Program,
    graph: &GraphData,
    params: &mut ParamStore,
    vars: &mut VarStore,
) {
    for v in max_agg_outputs(spec) {
        vars.get_mut(v)
            .tensor_mut()
            .data_mut()
            .fill(f32::NEG_INFINITY);
    }
    match spec.domain {
        TraversalDomain::Edges => {
            for e in 0..graph.graph().num_edges() {
                for op in &spec.ops {
                    exec_op(&op.kind, Ctx::Edge(e), program, graph, params, vars);
                }
            }
        }
        TraversalDomain::UniquePairs => {
            for u in 0..graph.compact().num_unique() {
                for op in &spec.ops {
                    exec_op(&op.kind, Ctx::Unique(u), program, graph, params, vars);
                }
            }
        }
        TraversalDomain::Nodes => {
            for n in 0..graph.graph().num_nodes() {
                for op in &spec.ops {
                    exec_op(&op.kind, Ctx::Node(n), program, graph, params, vars);
                }
            }
        }
        TraversalDomain::DstNodes => {
            let st = stages(spec, program);
            let max_stage = st.iter().copied().max().unwrap_or(0);
            let csc = graph.csc();
            for v in 0..graph.graph().num_nodes() {
                for pass in 0..=max_stage {
                    for &eidx in csc.in_edges(v) {
                        let e = eidx as usize;
                        for (i, op) in spec.ops.iter().enumerate() {
                            if st[i] != pass || spec.hoisted.contains(&op.id) {
                                continue;
                            }
                            exec_op(&op.kind, Ctx::Edge(e), program, graph, params, vars);
                        }
                    }
                    for (i, op) in spec.ops.iter().enumerate() {
                        if st[i] != pass || !spec.hoisted.contains(&op.id) {
                            continue;
                        }
                        exec_op(&op.kind, Ctx::Node(v), program, graph, params, vars);
                    }
                }
            }
        }
    }
    for v in max_agg_outputs(spec) {
        for x in vars.get_mut(v).tensor_mut().data_mut() {
            if *x == f32::NEG_INFINITY {
                *x = 0.0;
            }
        }
    }
}

/// Sequential op interpreter. Has a parallel twin (`exec_op_par` in
/// `par_exec`) that must mirror these numerics exactly; divergence is
/// caught by `tests/par_determinism.rs`, which CI runs on every push.
fn exec_op(
    kind: &OpKind,
    ctx: Ctx,
    program: &Program,
    graph: &GraphData,
    params: &ParamStore,
    vars: &mut VarStore,
) {
    match kind {
        OpKind::DotProduct { a, b, out } => {
            let av = read_operand(a, ctx, program, graph, params, vars);
            let bv = read_operand(b, ctx, program, graph, params, vars);
            debug_assert_eq!(av.len(), bv.len());
            let mut acc = 0.0;
            for (x, y) in av.iter().zip(bv.iter()) {
                acc += x * y;
            }
            write_row(*out, ctx, &[acc], program, graph, vars);
        }
        OpKind::Binary { op, a, b, out } => {
            let av = read_operand(a, ctx, program, graph, params, vars);
            let bv = read_operand(b, ctx, program, graph, params, vars);
            let y = apply_binary(*op, &av, &bv);
            write_row(*out, ctx, &y, program, graph, vars);
        }
        OpKind::Unary { op, a, out } => {
            let av = read_operand(a, ctx, program, graph, params, vars);
            let y = apply_unary(*op, &av);
            write_row(*out, ctx, &y, program, graph, vars);
        }
        OpKind::NodeAggregate {
            edge_val,
            scale,
            norm,
            out,
            endpoint,
            ..
        } => {
            let val = read_operand(edge_val, ctx, program, graph, params, vars);
            let s = match scale {
                Some(sc) => read_operand(sc, ctx, program, graph, params, vars)[0],
                None => 1.0,
            };
            let out_space = program.var(*out).space;
            let idx = match (ctx, out_space) {
                (Ctx::Edge(e), Space::Node) => match endpoint {
                    Endpoint::Dst => graph.graph().dst()[e] as usize,
                    Endpoint::Src => graph.graph().src()[e] as usize,
                    Endpoint::This => unreachable!(),
                },
                (Ctx::Edge(e), Space::Compact) => graph.compact().edge_to_unique()[e] as usize,
                (Ctx::Unique(u), Space::Node) => graph.compact().unique_row_idx()[u] as usize,
                (c, s0) => unreachable!("aggregate {s0:?} in context {c:?}"),
            };
            let row = vars.get_mut(*out).tensor_mut().row_mut(idx);
            if *norm == AggNorm::Max {
                // Rows are seeded with -inf before the kernel runs (see
                // `exec_traversal`) so the true maximum survives even when
                // every contribution is negative.
                for (acc, x) in row.iter_mut().zip(val.iter()) {
                    *acc = acc.max(*x);
                }
            } else {
                for (acc, x) in row.iter_mut().zip(val.iter()) {
                    *acc += x * s;
                }
            }
        }
        other => unreachable!("traversal cannot execute {other:?}"),
    }
}

fn write_row(
    out: VarId,
    ctx: Ctx,
    y: &[f32],
    program: &Program,
    _graph: &GraphData,
    vars: &mut VarStore,
) {
    let space = program.var(out).space;
    let idx = match (ctx, space) {
        (Ctx::Edge(e), Space::Edge) => e,
        (Ctx::Unique(u), Space::Compact) => u,
        (Ctx::Node(n), Space::Node) => n,
        // Nodewise riders in a dst-node kernel write per-node rows.
        (Ctx::Edge(_), Space::Node) | (Ctx::Unique(_), Space::Node) => {
            unreachable!("node-space write from row context")
        }
        (c, s) => unreachable!("write of {s:?} var in context {c:?}"),
    };
    vars.get_mut(out).tensor_mut().set_row(idx, y);
}
