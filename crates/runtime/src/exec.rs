//! Functional interpretation of kernel specs (real execution mode).
//!
//! Each kernel spec is executed exactly as the generated CUDA would run:
//! GEMM instances gather rows through their access schemes, apply the
//! per-type weight slab, and scatter (atomically, in the backward
//! direction) into the output; traversal instances iterate their domain
//! (edges, unique pairs, destination nodes with staged inner passes, or
//! plain nodes) executing the fused statement list per row.
//!
//! # Zero-allocation hot path
//!
//! The per-row loops never touch the heap in steady state: operand reads
//! return borrowed [`OperandRef`] views, op results are computed into a
//! reusable [`Scratch`] arena owned by the executor, and the GEMM inner
//! loops run over `chunks_exact` windows of the weight slab (no per-row
//! `Vec`, no bounds checks in the multiply-accumulate). See the
//! [`crate::scratch`] module docs for the operand-view lifetime contract.

use hector_ir::interop::LEAKY_RELU_SLOPE;
use hector_ir::{
    AggNorm, BinOp, Endpoint, GemmSpec, KernelSpec, OpKind, Operand, Program, RowDomain, Scatter,
    Space, TraversalDomain, TraversalSpec, TypeIndex, UnOp, VarId,
};
use hector_tensor::microkernel;

use crate::scratch::Scratch;
use crate::{GraphData, ParamStore, VarStore};

/// A row position in one of the three iteration spaces.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Ctx {
    Edge(usize),
    Unique(usize),
    Node(usize),
}

/// A borrowed view of one operand row: either a slice into a variable,
/// parameter, or weight-vector store, or an inline broadcast constant.
///
/// Views stay valid only while the stores they borrow from are not
/// mutated — ops compute into [`Scratch`] slots first and write outputs
/// back only after every operand view is dropped (the lifetime contract
/// documented in [`crate::scratch`]).
#[derive(Clone, Copy, Debug)]
pub(crate) enum OperandRef<'a> {
    /// Borrowed row data.
    Slice(&'a [f32]),
    /// An inline scalar (an IR constant), broadcast over the row.
    Scalar(f32),
}

impl OperandRef<'_> {
    /// The view as a slice (scalars become one-element slices).
    pub(crate) fn as_slice(&self) -> &[f32] {
        match self {
            OperandRef::Slice(s) => s,
            OperandRef::Scalar(v) => std::slice::from_ref(v),
        }
    }

    /// First element — for operands contractually scalar (fused scales,
    /// aggregate scales).
    pub(crate) fn scalar(&self) -> f32 {
        self.as_slice()[0]
    }
}

/// Computes one `TypedLinear` output row into `y`: `y = x · W` (or
/// `x · Wᵀ`), the shared inner loop of the sequential and parallel GEMM
/// executors, running on the register-blocked
/// [`hector_tensor::microkernel`]s (`f32x8`-style column panels with a
/// scalar tail; bit-identical to the scalar loops they replaced).
///
/// `slab_finite` gates the `xv == 0.0` skip: skipping a zero input
/// element is only IEEE-sound when the weight slab holds no `inf`/`NaN`
/// (`0 × inf` must produce `NaN`). Callers check the slab once per
/// kernel ([`Scratch::set_slab_finite`]), not per element.
pub(crate) fn gemm_row_into(
    x: &[f32],
    slab: &[f32],
    wrows: usize,
    wcols: usize,
    transpose_w: bool,
    slab_finite: bool,
    y: &mut [f32],
) {
    if transpose_w {
        // y = x · Wᵀ where W is [wrows, wcols]: x has wcols elems.
        debug_assert_eq!(x.len(), wcols);
        debug_assert_eq!(y.len(), wrows);
        microkernel::gemm_row_tb_blocked(x, slab, wcols, y);
    } else {
        debug_assert_eq!(x.len(), wrows);
        microkernel::gemm_row_blocked(x, slab, wcols, slab_finite, y);
    }
}

/// Executes a GEMM-template instance.
///
/// # Panics
///
/// Panics on spec/program inconsistencies (compiler bugs).
pub(crate) fn exec_gemm(
    spec: &GemmSpec,
    program: &Program,
    graph: &GraphData,
    params: &mut ParamStore,
    vars: &mut VarStore,
    scratch: &mut Scratch,
) {
    let m = graph.rows_of(spec.rows);
    match &spec.op.kind {
        OpKind::TypedLinear {
            input,
            weight,
            transpose_w,
            scatter,
            fused_scale,
            out,
        } => {
            let params: &ParamStore = params;
            let wt = params.weight(*weight);
            let (wrows, wcols) = (wt.shape()[1], wt.shape()[2]);
            let out_width = program.var(*out).width;
            if !*transpose_w {
                scratch.set_slab_finite(wt);
            }
            for r in 0..m {
                let ctx = row_ctx(spec.rows, r);
                let ty = weight_type_index(wt.shape()[0], spec.weight_index, spec.rows, r, graph);
                let slab_finite = *transpose_w || scratch.slab_finite(ty);
                {
                    let x = read_operand(input, ctx, program, graph, params, vars);
                    let y = scratch.y_zeroed(out_width);
                    gemm_row_into(
                        x.as_slice(),
                        wt.slab(ty),
                        wrows,
                        wcols,
                        *transpose_w,
                        slab_finite,
                        y,
                    );
                }
                if let Some(s) = fused_scale {
                    let sv = read_operand(s, ctx, program, graph, params, vars).scalar();
                    for v in scratch.y_mut(out_width) {
                        *v *= sv;
                    }
                }
                match scatter {
                    None => {
                        vars.get_mut(*out)
                            .tensor_mut()
                            .set_row(r, scratch.y(out_width));
                    }
                    Some(ep) => {
                        let idx = scatter_index(spec.rows, *ep, r, graph);
                        let row = vars.get_mut(*out).tensor_mut().row_mut(idx);
                        for (a, b) in row.iter_mut().zip(scratch.y(out_width)) {
                            *a += b;
                        }
                    }
                }
            }
        }
        OpKind::TypedLinearGradW { x, dy, out_w } => {
            let t_count = params.type_count(*out_w);
            for r in 0..m {
                let ctx = row_ctx(spec.rows, r);
                let (k, n) = {
                    let xr = read_operand(x, ctx, program, graph, params, vars);
                    let dyr = read_operand(dy, ctx, program, graph, params, vars);
                    scratch.stage_a(xr.as_slice());
                    scratch.stage_b(dyr.as_slice());
                    (xr.as_slice().len(), dyr.as_slice().len())
                };
                let ty = weight_type_index(t_count, spec.weight_index, spec.rows, r, graph);
                let g = params.grad_mut(*out_w);
                let slab = &mut g.data_mut()[ty * k * n..(ty + 1) * k * n];
                grad_w_row(scratch.a(k), scratch.b(n), slab);
            }
        }
        other => unreachable!("not a GEMM op: {other:?}"),
    }
    debug_assert!(matches!(
        spec.scatter,
        Scatter::None | Scatter::AtomicNode(_)
    ));
}

/// Accumulates one row's outer product `xᵀ · dy` into a weight-gradient
/// slab — the shared `TypedLinearGradW` inner loop of both executors,
/// running on the register-blocked outer-product microkernel (the `dy`
/// panel stays in vector registers across all slab rows).
/// The `xv == 0.0` skip is gated on `dy` being finite, checked once per
/// row: skipping `0 × inf` would hide the IEEE-mandated `NaN`.
pub(crate) fn grad_w_row(x: &[f32], dy: &[f32], slab: &mut [f32]) {
    let dy_finite = dy.iter().all(|v| v.is_finite());
    microkernel::outer_accum_blocked(x, dy, slab, dy_finite);
}

/// Trace-span name and row count for one kernel spec — the per-kernel
/// metadata `Session::run_kernels` attaches to the span wrapping each
/// invocation (sequential and parallel executors alike). Names are
/// stable `category/domain` strings so profile aggregation and the
/// chrome-trace golden schema stay deterministic.
pub(crate) fn kernel_trace_meta(spec: &KernelSpec, graph: &GraphData) -> (&'static str, u64) {
    match spec {
        KernelSpec::Gemm(g) => {
            let name = match &g.op.kind {
                OpKind::TypedLinearGradW { .. } => "gemm/grad_w",
                _ => "gemm/typed_linear",
            };
            (name, graph.rows_of(g.rows) as u64)
        }
        KernelSpec::Traversal(t) => {
            let (name, rows) = match t.domain {
                TraversalDomain::Edges => ("traversal/edges", graph.graph().num_edges()),
                TraversalDomain::DstNodes => ("traversal/dst_nodes", graph.graph().num_nodes()),
                TraversalDomain::UniquePairs => {
                    ("traversal/unique_pairs", graph.compact().num_unique())
                }
                TraversalDomain::Nodes => ("traversal/nodes", graph.graph().num_nodes()),
            };
            (name, rows as u64)
        }
        KernelSpec::Fallback(_) => ("fallback/prep", 0),
    }
}

pub(crate) fn row_ctx(rows: RowDomain, r: usize) -> Ctx {
    match rows {
        RowDomain::Edges => Ctx::Edge(r),
        RowDomain::UniquePairs => Ctx::Unique(r),
        RowDomain::Nodes => Ctx::Node(r),
    }
}

pub(crate) fn scatter_index(rows: RowDomain, ep: Endpoint, r: usize, graph: &GraphData) -> usize {
    match rows {
        RowDomain::Edges => match ep {
            Endpoint::Src => graph.graph().src()[r] as usize,
            Endpoint::Dst => graph.graph().dst()[r] as usize,
            Endpoint::This => r,
        },
        RowDomain::UniquePairs => {
            debug_assert_eq!(ep, Endpoint::Src, "unique pairs scatter to their source");
            graph.compact().unique_row_idx()[r] as usize
        }
        RowDomain::Nodes => r,
    }
}

pub(crate) fn weight_type_index(
    t_count: usize,
    per: TypeIndex,
    rows: RowDomain,
    r: usize,
    graph: &GraphData,
) -> usize {
    let idx = match per {
        TypeIndex::Shared => 0,
        TypeIndex::EdgeType => match rows {
            RowDomain::Edges => graph.graph().etype()[r] as usize,
            RowDomain::UniquePairs => graph.unique_etype()[r] as usize,
            RowDomain::Nodes => unreachable!("edge-typed weight in node rows"),
        },
        TypeIndex::NodeType => match rows {
            RowDomain::Nodes => graph.graph().node_type()[r] as usize,
            _ => unreachable!("node-typed weight outside node rows"),
        },
        TypeIndex::NodeEdgePair => graph.pair_type_of(rows, r),
    };
    debug_assert!(idx < t_count, "type index out of range");
    idx
}

/// Resolves one operand to a borrowed row view — no copy, no allocation.
/// See [`OperandRef`] for the lifetime contract.
pub(crate) fn read_operand<'a>(
    o: &Operand,
    ctx: Ctx,
    program: &Program,
    graph: &GraphData,
    params: &'a ParamStore,
    vars: &'a VarStore,
) -> OperandRef<'a> {
    match o {
        Operand::Const(c) => OperandRef::Scalar(*c),
        Operand::WeightVec(w) => {
            let ty = match ctx {
                Ctx::Edge(e) => graph.graph().etype()[e] as usize,
                Ctx::Unique(u) => graph.unique_etype()[u] as usize,
                Ctx::Node(_) => unreachable!("weight vectors need edge context"),
            };
            OperandRef::Slice(params.weight(*w).slab(ty))
        }
        Operand::Node(v, ep) => {
            let row = match (ctx, ep) {
                (Ctx::Edge(e), Endpoint::Src) => graph.graph().src()[e] as usize,
                (Ctx::Edge(e), Endpoint::Dst) => graph.graph().dst()[e] as usize,
                (Ctx::Unique(u), Endpoint::Src) => graph.compact().unique_row_idx()[u] as usize,
                (Ctx::Node(n), Endpoint::This | Endpoint::Dst) => n,
                (c, e) => unreachable!("node read {e:?} in context {c:?}"),
            };
            OperandRef::Slice(vars.tensor(*v).row(row))
        }
        Operand::Edge(v) => {
            let space = program.var(*v).space;
            let row = match (ctx, space) {
                (Ctx::Edge(e), Space::Edge) => e,
                (Ctx::Edge(e), Space::Compact) => graph.compact().edge_to_unique()[e] as usize,
                (Ctx::Unique(u), Space::Compact) => u,
                (c, s) => unreachable!("edge read of {s:?} var in context {c:?}"),
            };
            OperandRef::Slice(vars.tensor(*v).row(row))
        }
    }
}

/// Applies a unary op elementwise, writing into `out` (same length).
pub(crate) fn apply_unary_into(op: UnOp, x: &[f32], out: &mut [f32]) {
    debug_assert_eq!(x.len(), out.len());
    for (o, &v) in out.iter_mut().zip(x) {
        *o = match op {
            UnOp::LeakyRelu => {
                if v >= 0.0 {
                    v
                } else {
                    LEAKY_RELU_SLOPE * v
                }
            }
            UnOp::Relu => v.max(0.0),
            UnOp::Exp => v.exp(),
            UnOp::Copy => v,
            UnOp::Neg => -v,
            UnOp::LeakyReluGrad => {
                if v >= 0.0 {
                    1.0
                } else {
                    LEAKY_RELU_SLOPE
                }
            }
            UnOp::ReluGrad => {
                if v >= 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        };
    }
}

#[inline]
fn binary_scalar(op: BinOp, x: f32, y: f32) -> f32 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        // `0/0` yields `0` instead of the IEEE `NaN`: a zero denominator
        // with a zero numerator is a normalization group no edge touched
        // (e.g. a softmax/mean read at a zero-in-degree destination), and
        // the convention mirrors the `AggNorm::Max` sweep-back — untouched
        // groups produce a finite default, never a poisoned row. Any
        // other division keeps IEEE semantics (`x/0 = ±inf`, `NaN`
        // operands propagate). Pinned by `tests/numeric_edge_cases.rs`.
        BinOp::Div => {
            if x == 0.0 && y == 0.0 {
                0.0
            } else {
                x / y
            }
        }
    }
}

/// Applies a binary op elementwise with scalar broadcasting, writing the
/// `max(a.len(), b.len())`-wide result into `out`.
pub(crate) fn apply_binary_into(op: BinOp, a: &[f32], b: &[f32], out: &mut [f32]) {
    let n = out.len();
    debug_assert_eq!(n, a.len().max(b.len()));
    debug_assert!(a.len() == n || a.len() == 1);
    debug_assert!(b.len() == n || b.len() == 1);
    if a.len() == n && b.len() == n {
        for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *o = binary_scalar(op, x, y);
        }
    } else if a.len() == 1 {
        let x = a[0];
        for (o, &y) in out.iter_mut().zip(b) {
            *o = binary_scalar(op, x, y);
        }
    } else {
        let y = b[0];
        for (o, &x) in out.iter_mut().zip(a) {
            *o = binary_scalar(op, x, y);
        }
    }
}

/// Executes a traversal-template instance.
///
/// # Panics
///
/// Panics on spec/program inconsistencies (compiler bugs).
/// Max-aggregate outputs of a kernel: seeded to `-inf` before execution so
/// the true maximum survives all-negative inputs, and swept back to `0`
/// afterwards for groups no edge touched (those rows are never read, but
/// `-inf` must not leak into later whole-tensor consumers).
pub(crate) fn max_agg_outputs(spec: &TraversalSpec) -> impl Iterator<Item = VarId> + '_ {
    spec.ops.iter().filter_map(|op| match op.kind {
        OpKind::NodeAggregate {
            norm: AggNorm::Max,
            out,
            ..
        } => Some(out),
        _ => None,
    })
}

/// Max-aggregates of a dst-node kernel at stage `pass` that write the
/// iterated destination's own node row. Their row for node `v` is final
/// once `v`'s in-edge loop for `pass` completes, so a zero-in-degree
/// destination must have its `-inf` seed swept back to `0` *there* —
/// later stages of the same fused kernel (hoisted node ops, per-edge
/// consumers) read the row mid-kernel, before the end-of-kernel sweep.
pub(crate) fn dst_private_max_aggs<'a>(
    spec: &'a TraversalSpec,
    program: &'a Program,
    pass: usize,
) -> impl Iterator<Item = VarId> + 'a {
    spec.ops
        .iter()
        .zip(&spec.stages)
        .filter_map(move |(op, &st)| match op.kind {
            OpKind::NodeAggregate {
                norm: AggNorm::Max,
                out,
                endpoint: Endpoint::Dst,
                ..
            } if st == pass && program.var(out).space == Space::Node => Some(out),
            _ => None,
        })
}

pub(crate) fn exec_traversal(
    spec: &TraversalSpec,
    program: &Program,
    graph: &GraphData,
    params: &mut ParamStore,
    vars: &mut VarStore,
    scratch: &mut Scratch,
) {
    for v in max_agg_outputs(spec) {
        vars.get_mut(v)
            .tensor_mut()
            .data_mut()
            .fill(f32::NEG_INFINITY);
    }
    match spec.domain {
        TraversalDomain::Edges => {
            for e in 0..graph.graph().num_edges() {
                for op in &spec.ops {
                    exec_op(
                        &op.kind,
                        Ctx::Edge(e),
                        program,
                        graph,
                        params,
                        vars,
                        scratch,
                    );
                }
            }
        }
        TraversalDomain::UniquePairs => {
            for u in 0..graph.compact().num_unique() {
                for op in &spec.ops {
                    exec_op(
                        &op.kind,
                        Ctx::Unique(u),
                        program,
                        graph,
                        params,
                        vars,
                        scratch,
                    );
                }
            }
        }
        TraversalDomain::Nodes => {
            for n in 0..graph.graph().num_nodes() {
                for op in &spec.ops {
                    exec_op(
                        &op.kind,
                        Ctx::Node(n),
                        program,
                        graph,
                        params,
                        vars,
                        scratch,
                    );
                }
            }
        }
        TraversalDomain::DstNodes => {
            // Stage assignments are precomputed at lowering
            // (`hector_ir::stage_assignments`) so executing a kernel
            // allocates nothing.
            let st = &spec.stages;
            let max_stage = st.iter().copied().max().unwrap_or(0);
            let csc = graph.csc();
            for v in 0..graph.graph().num_nodes() {
                for pass in 0..=max_stage {
                    for &eidx in csc.in_edges(v) {
                        let e = eidx as usize;
                        for (i, op) in spec.ops.iter().enumerate() {
                            if st[i] != pass || spec.hoisted.contains(&op.id) {
                                continue;
                            }
                            exec_op(
                                &op.kind,
                                Ctx::Edge(e),
                                program,
                                graph,
                                params,
                                vars,
                                scratch,
                            );
                        }
                    }
                    // Zero-in-degree destinations: the in-edge loop above
                    // never touched `v`'s row of a max-aggregate at this
                    // stage, so it still holds the `-inf` seed. Pin the
                    // 0-neighbor convention to `0` *now* — hoisted node
                    // ops below and later passes read the row mid-kernel,
                    // long before the end-of-kernel sweep.
                    for out in dst_private_max_aggs(spec, program, pass) {
                        for x in vars.get_mut(out).tensor_mut().row_mut(v) {
                            if *x == f32::NEG_INFINITY {
                                *x = 0.0;
                            }
                        }
                    }
                    for (i, op) in spec.ops.iter().enumerate() {
                        if st[i] != pass || !spec.hoisted.contains(&op.id) {
                            continue;
                        }
                        exec_op(
                            &op.kind,
                            Ctx::Node(v),
                            program,
                            graph,
                            params,
                            vars,
                            scratch,
                        );
                    }
                }
            }
        }
    }
    for v in max_agg_outputs(spec) {
        for x in vars.get_mut(v).tensor_mut().data_mut() {
            if *x == f32::NEG_INFINITY {
                *x = 0.0;
            }
        }
    }
}

/// Sequential op interpreter. Has a parallel twin (`exec_op_par` in
/// `par_exec`) that must mirror these numerics exactly; divergence is
/// caught by `tests/par_determinism.rs`, which CI runs on every push.
///
/// Results are computed into `scratch` while the operand views borrow
/// `vars`, then written back — see the scratch-arena lifetime contract.
pub(crate) fn exec_op(
    kind: &OpKind,
    ctx: Ctx,
    program: &Program,
    graph: &GraphData,
    params: &ParamStore,
    vars: &mut VarStore,
    scratch: &mut Scratch,
) {
    match kind {
        OpKind::DotProduct { a, b, out } => {
            let acc = {
                let av = read_operand(a, ctx, program, graph, params, vars);
                let bv = read_operand(b, ctx, program, graph, params, vars);
                dot(av.as_slice(), bv.as_slice())
            };
            write_row(*out, ctx, &[acc], program, graph, vars);
        }
        OpKind::Binary { op, a, b, out } => {
            let n = {
                let av = read_operand(a, ctx, program, graph, params, vars);
                let bv = read_operand(b, ctx, program, graph, params, vars);
                let (av, bv) = (av.as_slice(), bv.as_slice());
                let n = av.len().max(bv.len());
                apply_binary_into(*op, av, bv, scratch.y_uninit(n));
                n
            };
            write_row(*out, ctx, scratch.y(n), program, graph, vars);
        }
        OpKind::Unary { op, a, out } => {
            let n = {
                let av = read_operand(a, ctx, program, graph, params, vars);
                let av = av.as_slice();
                apply_unary_into(*op, av, scratch.y_uninit(av.len()));
                av.len()
            };
            write_row(*out, ctx, scratch.y(n), program, graph, vars);
        }
        OpKind::NodeAggregate {
            edge_val,
            scale,
            norm,
            out,
            endpoint,
            ..
        } => {
            let (n, s) = {
                let val = read_operand(edge_val, ctx, program, graph, params, vars);
                scratch.stage_a(val.as_slice());
                let s = match scale {
                    Some(sc) => read_operand(sc, ctx, program, graph, params, vars).scalar(),
                    None => 1.0,
                };
                (val.as_slice().len(), s)
            };
            let out_space = program.var(*out).space;
            let idx = match (ctx, out_space) {
                (Ctx::Edge(e), Space::Node) => match endpoint {
                    Endpoint::Dst => graph.graph().dst()[e] as usize,
                    Endpoint::Src => graph.graph().src()[e] as usize,
                    Endpoint::This => unreachable!(),
                },
                (Ctx::Edge(e), Space::Compact) => graph.compact().edge_to_unique()[e] as usize,
                (Ctx::Unique(u), Space::Node) => graph.compact().unique_row_idx()[u] as usize,
                (c, s0) => unreachable!("aggregate {s0:?} in context {c:?}"),
            };
            let row = vars.get_mut(*out).tensor_mut().row_mut(idx);
            if *norm == AggNorm::Max {
                // Rows are seeded with -inf before the kernel runs (see
                // `exec_traversal`) so the true maximum survives even when
                // every contribution is negative.
                for (acc, x) in row.iter_mut().zip(scratch.a(n)) {
                    *acc = acc.max(*x);
                }
            } else {
                for (acc, x) in row.iter_mut().zip(scratch.a(n)) {
                    *acc += x * s;
                }
            }
        }
        other => unreachable!("traversal cannot execute {other:?}"),
    }
}

/// Sequential dot product — shared with the parallel twin so both fold
/// in the identical order.
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).fold(0.0f32, |acc, (&x, &y)| acc + x * y)
}

fn write_row(
    out: VarId,
    ctx: Ctx,
    y: &[f32],
    program: &Program,
    _graph: &GraphData,
    vars: &mut VarStore,
) {
    let space = program.var(out).space;
    let idx = match (ctx, space) {
        (Ctx::Edge(e), Space::Edge) => e,
        (Ctx::Unique(u), Space::Compact) => u,
        (Ctx::Node(n), Space::Node) => n,
        // Nodewise riders in a dst-node kernel write per-node rows.
        (Ctx::Edge(_), Space::Node) | (Ctx::Unique(_), Space::Node) => {
            unreachable!("node-space write from row context")
        }
        (c, s) => unreachable!("write of {s:?} var in context {c:?}"),
    };
    vars.get_mut(out).tensor_mut().set_row(idx, y);
}
