//! Derivation of [`KernelCost`]s from kernel specs and graph statistics.
//!
//! This is the bridge between the compiler's output and the simulated
//! GPU: each spec's FLOP count, memory traffic, atomic-update count, and
//! parallelism are computed from the graph's row counts and the program's
//! tensor widths. Both execution modes charge identical costs, so modeled
//! runs reproduce real runs' timing exactly.

use hector_device::{KernelCategory, KernelCost, Phase};
use hector_ir::{
    Gather, GemmSpec, KernelSpec, OpKind, Operand, Program, Scatter, Space, TraversalDomain,
    TraversalSpec, WeightPrep,
};

use crate::GraphData;

/// Cost of one kernel launch of `spec` for `program` on `graph`.
#[must_use]
pub fn kernel_cost(
    spec: &KernelSpec,
    program: &Program,
    graph: &GraphData,
    phase: Phase,
) -> KernelCost {
    match spec {
        KernelSpec::Gemm(g) => gemm_cost(g, program, graph, phase),
        KernelSpec::Traversal(t) => traversal_cost(t, program, graph, phase),
        KernelSpec::Fallback(f) => fallback_cost(f.prep_index, program, graph, phase),
    }
}

/// Cost of a GEMM-template instance.
#[must_use]
pub fn gemm_cost(g: &GemmSpec, program: &Program, graph: &GraphData, phase: Phase) -> KernelCost {
    let m = graph.rows_of(g.rows) as f64;
    let (k, n) = (g.k as f64, g.n as f64);
    let mut c = KernelCost::new(KernelCategory::Gemm, phase);
    c.flops = 2.0 * m * k * n;
    // X rows (gathered or contiguous) + gather index + weight stack.
    let w = program.weight(match &g.op.kind {
        OpKind::TypedLinear { weight, .. } => *weight,
        OpKind::TypedLinearGradW { out_w, .. } => *out_w,
        _ => unreachable!(),
    });
    let t_slabs = graph.type_count(w.per) as f64;
    // Each weight slab is streamed once per segment thanks to type-sorted
    // rows; smaller shared-memory tiles re-stream the weight more often
    // (schedule knob, paper §3.4.1). Cap at total work in degenerate cases.
    let tile_restream = (16.0 / g.schedule.tile as f64).max(1.0);
    let weight_bytes = (t_slabs * k * n * 4.0 * tile_restream).min(m * k * n * 4.0);
    c.bytes_read = m * k * 4.0 + weight_bytes;
    if g.gather != Gather::None {
        c.bytes_read += m * 4.0;
    }
    match g.scatter {
        Scatter::None => {
            c.bytes_written = m * n * 4.0;
        }
        Scatter::AtomicNode(_) => {
            // Read-modify-write with atomics on every output element.
            c.bytes_written = 2.0 * m * n * 4.0;
            c.atomic_ops = m * n;
        }
    }
    if matches!(g.op.kind, OpKind::TypedLinearGradW { .. }) {
        // Outer-product accumulation: per-warp partial results still
        // contend on the (small) dW output — the paper's backward GEMM
        // throughput loss (§4.4).
        c.bytes_written = t_slabs * k * n * 4.0 * 2.0;
        c.atomic_ops += m * n / 32.0;
    }
    if g.fused_scale {
        c.bytes_read += m * 4.0;
    }
    // Parallelism in warp-equivalents: one warp per 32 output elements.
    // Thread coarsening trades active warps for register-level reuse
    // (§3.4.1): fewer resident warps, slightly higher per-warp throughput.
    c.items = m * n / 32.0 / g.schedule.coarsen as f64;
    if g.schedule.coarsen > 1 {
        c.flops /= 1.0 + 0.05 * (g.schedule.coarsen as f64 - 1.0);
    }
    if g.schedule.launch_bounds {
        // Capping registers buys a few percent more active warps.
        c.flops /= 1.02;
    }
    c
}

/// Width of a variable, or of the row vector an operand contributes.
fn operand_width(program: &Program, o: &Operand) -> f64 {
    program.operand_width(o) as f64
}

/// Whether the operand reads a local (register) variable of this kernel.
fn is_local(t: &TraversalSpec, o: &Operand) -> bool {
    o.var().is_some_and(|v| t.local_vars.contains(&v))
}

/// Cost of a traversal-template instance.
#[must_use]
pub fn traversal_cost(
    t: &TraversalSpec,
    program: &Program,
    graph: &GraphData,
    phase: Phase,
) -> KernelCost {
    let num_nodes = graph.graph().num_nodes() as f64;
    let rows = match t.domain {
        TraversalDomain::Edges | TraversalDomain::DstNodes => graph.graph().num_edges() as f64,
        TraversalDomain::UniquePairs => graph.compact().num_unique() as f64,
        TraversalDomain::Nodes => num_nodes,
    };
    let mut c = KernelCost::new(KernelCategory::Traversal, phase);
    // Adjacency access per row; CSR-encoded lookups pay binary-search
    // probes where COO uses direct subscripts (§3.3.2).
    let adj_extra = match t.adjacency {
        hector_ir::AdjacencyAccess::Coo => 0.0,
        hector_ir::AdjacencyAccess::Csr => 16.0,
    };
    c.bytes_read += match t.domain {
        TraversalDomain::Edges => rows * (12.0 + adj_extra),
        TraversalDomain::DstNodes => rows * 12.0 + num_nodes * 8.0,
        TraversalDomain::UniquePairs => rows * 8.0,
        TraversalDomain::Nodes => 0.0,
    };
    for op in &t.ops {
        let node_level = t.hoisted.contains(&op.id);
        let mult = if node_level { num_nodes } else { rows };
        // Reads.
        for operand in op.kind.operands() {
            if matches!(operand, Operand::Const(_)) || is_local(t, operand) {
                continue;
            }
            // Row-vector reads hit L2 heavily (neighbouring edges share
            // sources/destinations); charge a reuse-discounted volume.
            let w = operand_width(program, operand);
            let reuse = if w > 1.0 { 0.25 } else { 1.0 };
            c.bytes_read += mult * w * 4.0 * reuse;
            // Reading a compact tensor from an edge-domain kernel adds the
            // edge→unique indirection.
            if let Operand::Edge(v) = operand {
                if program.var(*v).space == Space::Compact
                    && matches!(t.domain, TraversalDomain::Edges | TraversalDomain::DstNodes)
                {
                    c.bytes_read += mult * 4.0;
                }
            }
        }
        // Compute + writes.
        match &op.kind {
            OpKind::NodeAggregate { edge_val, out, .. } => {
                let w = operand_width(program, edge_val);
                c.flops += rows * w * 2.0;
                if t.atomic {
                    c.atomic_ops += rows * w;
                    // Warp-aggregated read-modify-write traffic.
                    c.bytes_written += 2.0 * rows * w * 4.0 / 4.0;
                } else {
                    // Private per-node accumulators, one store per node.
                    let out_rows = graph.rows_of_space(program.var(*out).space) as f64;
                    c.bytes_written += out_rows * w * 4.0;
                }
            }
            OpKind::DotProduct { a, .. } => {
                c.flops += mult * operand_width(program, a) * 2.0;
                if let Some(v) = op.kind.out_var() {
                    if !t.local_vars.contains(&v) {
                        c.bytes_written += mult * 4.0;
                    }
                }
            }
            _ => {
                if let Some(v) = op.kind.out_var() {
                    let w = program.var(v).width as f64;
                    c.flops += mult * w;
                    if !t.local_vars.contains(&v) {
                        c.bytes_written += mult * w * 4.0;
                    }
                }
            }
        }
    }
    if t.partial_agg && c.atomic_ops > 0.0 {
        // Thread- and warp-level partial aggregation before global atomics
        // (§3.4.1) cuts the atomic count substantially when consecutive
        // edges share a destination; credit a factor of 8.
        c.atomic_ops /= 8.0;
    }
    c.items = rows.max(1.0);
    c
}

/// Cost of a framework-fallback kernel (weight preps and unsupported
/// operators). Prep costs are weight-space only — independent of the
/// graph's edge count, which is exactly why reordering pays off.
#[must_use]
pub fn fallback_cost(
    prep_index: Option<usize>,
    program: &Program,
    graph: &GraphData,
    phase: Phase,
) -> KernelCost {
    let mut c = KernelCost::new(KernelCategory::Fallback, phase);
    if let Some(i) = prep_index {
        match &program.preps[i] {
            WeightPrep::MatVec { w, .. } => {
                let info = program.weight(*w);
                let t = graph.type_count(info.per) as f64;
                let (k, n) = (info.rows as f64, info.cols as f64);
                c.flops = 2.0 * t * k * n;
                c.bytes_read = t * (k * n + n) * 4.0;
                c.bytes_written = t * k * 4.0;
                c.items = t * k / 32.0;
            }
            WeightPrep::MatMulPairs { a, b, .. } => {
                let ia = program.weight(*a);
                let ib = program.weight(*b);
                let nt = graph.type_count(ia.per) as f64;
                let et = graph.type_count(ib.per) as f64;
                let (k, m, n) = (ia.rows as f64, ia.cols as f64, ib.cols as f64);
                c.flops = 2.0 * nt * et * k * m * n;
                c.bytes_read = (nt * k * m + et * m * n) * 4.0;
                c.bytes_written = nt * et * k * n * 4.0;
                c.items = nt * et * k * n / 32.0;
            }
        }
    }
    c
}

/// Total cost of the row domain a variable materialises over, in bytes —
/// used by the memory accounting when allocating variable buffers.
#[must_use]
pub fn var_bytes(program: &Program, graph: &GraphData, v: hector_ir::VarId) -> usize {
    let info = program.var(v);
    graph.rows_of_space(info.space) * info.width * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_compiler::lower::{lower_program, LowerOptions};
    use hector_graph::{generate, DatasetSpec};
    use hector_ir::{AggNorm, ModelBuilder};

    fn graph(ratio: f64) -> GraphData {
        GraphData::new(generate(&DatasetSpec {
            name: "t".into(),
            num_nodes: 200,
            num_node_types: 2,
            num_edges: 1000,
            num_edge_types: 4,
            compaction_ratio: ratio,
            type_skew: 1.0,
            seed: 5,
        }))
    }

    fn rgat_kernels(compact: bool) -> (Program, Vec<KernelSpec>) {
        let mut m = ModelBuilder::new("rgat", 32);
        let h = m.node_input("h", 32);
        let w = m.weight_per_etype("W", 32, 32);
        let w_s = m.weight_vec_per_etype("w_s", 32);
        let hs = m.typed_linear("hs", m.src(h), w);
        let atts = m.dot("atts", m.edge(hs), m.wvec(w_s));
        let att = m.edge_softmax("att", atts);
        let out = m.aggregate("out", m.edge(hs), Some(m.edge(att)), AggNorm::None);
        m.output(out);
        let mut p = m.finish().program;
        if compact {
            hector_compiler::compact::compact_materialization(&mut p);
        }
        let ks = lower_program(&p, &LowerOptions::default());
        (p, ks)
    }

    #[test]
    fn compaction_reduces_gemm_flops() {
        let g = graph(0.3);
        let (pv, kv) = rgat_kernels(false);
        let (pc, kc) = rgat_kernels(true);
        let flops = |p: &Program, ks: &[KernelSpec]| -> f64 {
            ks.iter()
                .map(|k| kernel_cost(k, p, &g, Phase::Forward).flops)
                .sum()
        };
        let vanilla = flops(&pv, &kv);
        let compact = flops(&pc, &kc);
        assert!(
            compact < 0.6 * vanilla,
            "compaction at ratio 0.3 should cut GEMM work: {compact} vs {vanilla}"
        );
    }

    #[test]
    fn gemm_cost_scales_with_rows() {
        let g_small = graph(1.0);
        let g2 = GraphData::new(generate(&DatasetSpec {
            name: "t2".into(),
            num_nodes: 200,
            num_node_types: 2,
            num_edges: 4000,
            num_edge_types: 4,
            compaction_ratio: 1.0,
            type_skew: 1.0,
            seed: 5,
        }));
        let (p, ks) = rgat_kernels(false);
        let gemm = ks
            .iter()
            .find(|k| matches!(k, KernelSpec::Gemm(_)))
            .unwrap();
        let c1 = kernel_cost(gemm, &p, &g_small, Phase::Forward);
        let c2 = kernel_cost(gemm, &p, &g2, Phase::Forward);
        assert!((c2.flops / c1.flops - 4.0).abs() < 0.01);
    }

    #[test]
    fn local_vars_save_traffic() {
        let g = graph(1.0);
        let (p, ks) = rgat_kernels(false);
        let trav = ks
            .iter()
            .find_map(|k| match k {
                KernelSpec::Traversal(t) => Some(t.clone()),
                _ => None,
            })
            .unwrap();
        let with_locals = traversal_cost(&trav, &p, &g, Phase::Forward);
        let mut no_locals = trav.clone();
        no_locals.local_vars.clear();
        let without = traversal_cost(&no_locals, &p, &g, Phase::Forward);
        assert!(with_locals.bytes() < without.bytes());
    }

    #[test]
    fn backward_phase_is_tagged() {
        let g = graph(1.0);
        let (p, ks) = rgat_kernels(false);
        let c = kernel_cost(&ks[0], &p, &g, Phase::Backward);
        assert_eq!(c.phase, Phase::Backward);
    }

    #[test]
    fn var_bytes_by_space() {
        let g = graph(0.5);
        let (p, _) = rgat_kernels(true);
        // h: node space, width 32 → 200 * 32 * 4.
        let h = hector_ir::VarId(0);
        assert_eq!(var_bytes(&p, &g, h), 200 * 32 * 4);
    }
}
