//! Mini-batch sampled training: batch materialisation and the prefetch
//! pipeline behind [`Trainer::minibatch`](crate::Trainer::minibatch).
//!
//! The sampling math lives in `hector-graph`
//! ([`NeighborSampler`] / [`Subgraph`]); this module turns a sampled
//! batch into everything a training step consumes — a [`GraphData`]
//! instance (CSC, compaction map), input bindings sliced from the
//! full-graph bindings through the node/edge remap tables (the RGCN
//! `cnorm` constants are *recomputed* on the subgraph: normalisation
//! denominators are subgraph in-degrees, not sliced full-graph ones),
//! and labels gathered through the node map — and streams those batches
//! to the consumer, optionally producing them on a background
//! [`Prefetcher`] so batch `k+1` is sampled while batch `k` trains.
//!
//! # Determinism
//!
//! A batch's content is a pure function of `(engine seed, epoch, batch
//! index)` plus the trainer's current bindings/labels: the sampler's RNG
//! streams are derived per batch (`hector_graph::batch_stream_seed`),
//! production order is index order on a single producer, and the
//! training step itself replays through the deterministic executor. So
//! the batch sequence — and every trained loss — is bitwise identical
//! across `HECTOR_THREADS` values and pipeline on/off (pinned by
//! `tests/minibatch.rs`).

use std::sync::Arc;
use std::time::Instant;

use hector_graph::{HeteroGraph, NeighborSampler, SamplerConfig, Subgraph};
use hector_ir::VarInfo;
use hector_par::Prefetcher;

use crate::session::{gather_bindings, Bindings, Mode};
use crate::GraphData;

/// How many batches the background producer may run ahead of training.
/// Two is enough to hide sampling (the consumer always finds batch `k+1`
/// ready) without tripling peak batch memory.
const PREFETCH_DEPTH: usize = 2;

/// One ready-to-train mini-batch: the extracted subgraph with its remap
/// tables, the derived [`GraphData`], sliced bindings and labels, and
/// the host time that went into producing it.
#[derive(Debug)]
pub struct Batch {
    /// Batch index within the epoch.
    pub index: usize,
    /// Remap tables tying local ids to the full graph.
    pub subgraph: Subgraph,
    /// The batch graph with derived structures (CSC, compaction map).
    pub graph: GraphData,
    /// Input bindings in batch-local row order.
    pub bindings: Bindings,
    /// Labels in batch-local node order (empty in modeled mode).
    pub labels: Vec<usize>,
    /// Host wall-clock time spent producing this batch, µs.
    pub sample_wall_us: f64,
    /// Host wall-clock time the consumer spent blocked on this batch's
    /// arrival, µs (set by the iterator; equals `sample_wall_us` when no
    /// pipeline hides production).
    pub wait_wall_us: f64,
}

/// Everything batch production needs, shared immutably with the
/// producer thread. Construction snapshots the trainer's state, so a
/// later `set_labels`/`set_bindings` does not affect an iterator already
/// in flight.
pub(crate) struct BatchSource {
    full: HeteroGraph,
    sampler: NeighborSampler,
    inputs: Vec<VarInfo>,
    full_bindings: Bindings,
    full_labels: Vec<usize>,
    mode: Mode,
}

impl BatchSource {
    pub(crate) fn new(
        full: &HeteroGraph,
        cfg: &SamplerConfig,
        seed: u64,
        inputs: Vec<VarInfo>,
        full_bindings: Bindings,
        full_labels: Vec<usize>,
        mode: Mode,
    ) -> BatchSource {
        BatchSource {
            full: full.clone(),
            sampler: NeighborSampler::new(full, cfg, seed),
            inputs,
            full_bindings,
            full_labels,
            mode,
        }
    }

    pub(crate) fn num_batches(&self) -> usize {
        self.sampler.num_batches()
    }

    /// Produces batch `k` — pure in `k` (see module docs).
    fn make(&self, k: usize) -> Batch {
        // The sample span runs on whichever thread produces the batch
        // (the prefetcher's producer thread when pipelined), so the
        // trace timeline shows sampling overlapping training.
        let tr = hector_trace::span_start();
        let t0 = Instant::now();
        let sampled = self.sampler.sample(&self.full, k);
        let subgraph = Subgraph::extract(&self.full, &sampled);
        let graph = GraphData::new(subgraph.graph().clone());
        let bindings = if self.mode == Mode::Real {
            // The slicing (node/edge gathers, subgraph-local cnorm) is
            // the shared rebind helper, also used by sharded execution.
            gather_bindings(
                &self.inputs,
                &graph,
                &self.full_bindings,
                subgraph.node_map(),
                subgraph.edge_map(),
            )
        } else {
            Bindings::new()
        };
        let labels = if self.mode == Mode::Real {
            subgraph.gather_node_values(&self.full_labels)
        } else {
            Vec::new()
        };
        let sample_wall_us = t0.elapsed().as_secs_f64() * 1e6;
        if let Some(ts) = tr {
            hector_trace::record_span(
                "pipeline/sample",
                hector_trace::SpanCat::Pipeline,
                ts,
                subgraph.graph().num_edges() as u64,
                u32::try_from(k).unwrap_or(u32::MAX),
                0.0,
            );
        }
        Batch {
            index: k,
            subgraph,
            graph,
            bindings,
            labels,
            sample_wall_us,
            // Provisional: the iterator overwrites this with the time the
            // consumer actually spent blocked.
            wait_wall_us: sample_wall_us,
        }
    }
}

enum Producer {
    /// The consumer samples each batch inline when asked for it.
    Sync(Arc<BatchSource>),
    /// A background thread samples ahead through a bounded channel.
    Pipelined(Prefetcher<Batch>),
}

/// Iterator over one epoch of mini-batches, returned by
/// [`Trainer::minibatch`](crate::Trainer::minibatch).
///
/// Owns its snapshot of the trainer state (graph, bindings, labels) and
/// does not borrow the trainer, so the natural loop works:
///
/// ```ignore
/// for batch in trainer.minibatch(&cfg) {
///     trainer.train_batch(&batch)?;
/// }
/// ```
///
/// With `cfg.pipeline` on, batches are produced on a background thread
/// up to two ahead of the consumer; contents are bit-identical to the
/// synchronous path (see module docs). Each yielded [`Batch`] carries
/// its production time and the time the consumer actually waited —
/// [`Trainer::train_batch`](crate::Trainer::train_batch) feeds both into
/// the device's [`hector_device::SamplerStats`].
pub struct Minibatches {
    producer: Producer,
    total: usize,
    consumed: usize,
}

impl std::fmt::Debug for Minibatches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Minibatches")
            .field("total", &self.total)
            .field("consumed", &self.consumed)
            .field(
                "pipelined",
                &matches!(self.producer, Producer::Pipelined(_)),
            )
            .finish()
    }
}

impl Minibatches {
    pub(crate) fn new(source: BatchSource, pipeline: bool) -> Minibatches {
        let total = source.num_batches();
        let source = Arc::new(source);
        let producer = if pipeline && total > 1 {
            let src = Arc::clone(&source);
            Producer::Pipelined(Prefetcher::new(PREFETCH_DEPTH, move |k| {
                (k < src.num_batches()).then(|| src.make(k))
            }))
        } else {
            Producer::Sync(source)
        };
        Minibatches {
            producer,
            total,
            consumed: 0,
        }
    }

    /// Total batches in the epoch.
    #[must_use]
    pub fn num_batches(&self) -> usize {
        self.total
    }

    /// Whether a background producer is running.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        matches!(self.producer, Producer::Pipelined(_))
    }
}

impl Iterator for Minibatches {
    type Item = Batch;

    fn next(&mut self) -> Option<Batch> {
        if self.consumed >= self.total {
            return None;
        }
        let k = self.consumed;
        self.consumed += 1;
        let tr = hector_trace::span_start();
        let t0 = Instant::now();
        let mut batch = match &mut self.producer {
            Producer::Sync(src) => src.make(k),
            Producer::Pipelined(p) => p.next()?,
        };
        debug_assert_eq!(batch.index, k);
        batch.wait_wall_us = t0.elapsed().as_secs_f64() * 1e6;
        if let Some(ts) = tr {
            // Consumer-side span: how long `next()` blocked for this
            // batch (≈ sample time when synchronous, ≈ 0 when the
            // pipeline hid production behind training).
            hector_trace::record_span(
                "pipeline/wait",
                hector_trace::SpanCat::Pipeline,
                ts,
                0,
                u32::try_from(k).unwrap_or(u32::MAX),
                0.0,
            );
        }
        Some(batch)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.total - self.consumed;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Minibatches {}
