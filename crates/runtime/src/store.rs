//! Variable buffers for one run: real tensors or shape-only records.

use std::collections::HashMap;

use hector_ir::VarId;
use hector_tensor::Tensor;

/// Storage for one variable.
#[derive(Clone, Debug)]
pub enum Buffer {
    /// Materialised data (real execution mode).
    Real(Tensor),
    /// Shape-only record (modeled execution mode): `rows × width` floats.
    Modeled {
        /// Row count.
        rows: usize,
        /// Elements per row.
        width: usize,
    },
}

impl Buffer {
    /// Bytes of device memory this buffer occupies.
    #[must_use]
    pub fn byte_size(&self) -> usize {
        match self {
            Buffer::Real(t) => t.byte_size(),
            Buffer::Modeled { rows, width } => rows * width * 4,
        }
    }

    /// The tensor, if real.
    ///
    /// # Panics
    ///
    /// Panics on modeled buffers.
    #[must_use]
    pub fn tensor(&self) -> &Tensor {
        match self {
            Buffer::Real(t) => t,
            Buffer::Modeled { .. } => panic!("modeled buffer has no data"),
        }
    }

    /// Mutable tensor access.
    ///
    /// # Panics
    ///
    /// Panics on modeled buffers.
    pub fn tensor_mut(&mut self) -> &mut Tensor {
        match self {
            Buffer::Real(t) => t,
            Buffer::Modeled { .. } => panic!("modeled buffer has no data"),
        }
    }
}

/// Per-run variable storage, keyed by [`VarId`].
#[derive(Clone, Debug, Default)]
pub struct VarStore {
    bufs: HashMap<VarId, Buffer>,
}

impl VarStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> VarStore {
        VarStore::default()
    }

    /// Inserts a buffer for `v`, replacing any previous one.
    pub fn insert(&mut self, v: VarId, buf: Buffer) {
        self.bufs.insert(v, buf);
    }

    /// Whether `v` has a buffer.
    #[must_use]
    pub fn contains(&self, v: VarId) -> bool {
        self.bufs.contains_key(&v)
    }

    /// Buffer lookup.
    ///
    /// # Panics
    ///
    /// Panics if `v` has no buffer (an executor ordering bug).
    #[must_use]
    pub fn get(&self, v: VarId) -> &Buffer {
        self.bufs
            .get(&v)
            .unwrap_or_else(|| panic!("no buffer for {v:?}"))
    }

    /// Optional buffer lookup.
    #[must_use]
    pub fn try_get(&self, v: VarId) -> Option<&Buffer> {
        self.bufs.get(&v)
    }

    /// Mutable buffer lookup.
    ///
    /// # Panics
    ///
    /// Panics if `v` has no buffer.
    pub fn get_mut(&mut self, v: VarId) -> &mut Buffer {
        self.bufs
            .get_mut(&v)
            .unwrap_or_else(|| panic!("no buffer for {v:?}"))
    }

    /// Tensor of a real buffer.
    ///
    /// # Panics
    ///
    /// Panics if missing or modeled.
    #[must_use]
    pub fn tensor(&self, v: VarId) -> &Tensor {
        self.get(v).tensor()
    }

    /// Removes a buffer (e.g. to hand an output to the caller).
    pub fn remove(&mut self, v: VarId) -> Option<Buffer> {
        self.bufs.remove(&v)
    }

    /// Total bytes held across all buffers (real payloads and modeled
    /// footprints alike).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.bufs.values().map(Buffer::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut s = VarStore::new();
        let v = VarId(0);
        s.insert(v, Buffer::Real(Tensor::zeros(&[2, 3])));
        assert!(s.contains(v));
        assert_eq!(s.tensor(v).shape(), &[2, 3]);
        assert_eq!(s.get(v).byte_size(), 24);
    }

    #[test]
    fn modeled_buffer_sizes() {
        let b = Buffer::Modeled { rows: 10, width: 4 };
        assert_eq!(b.byte_size(), 160);
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn modeled_buffer_has_no_tensor() {
        let b = Buffer::Modeled { rows: 1, width: 1 };
        let _ = b.tensor();
    }

    #[test]
    #[should_panic(expected = "no buffer")]
    fn missing_buffer_panics() {
        let s = VarStore::new();
        let _ = s.get(VarId(9));
    }
}
