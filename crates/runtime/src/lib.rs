//! Runtime for compiled Hector modules.
//!
//! The primary surface is a pair of owning handles:
//! [`Engine`] (built via [`EngineBuilder`]: one call from model kind +
//! options to a compiled, cached, session-backed handle; `bind` a graph,
//! then `forward()`) and [`Trainer`] (an engine plus optimizer and the
//! paper's NLL training recipe; `step()` / `epoch(n)`). Both route every
//! run through the session's persistent run plan, so warm runs are
//! allocation-free by construction.
//!
//! Underneath, a [`Session`] executes the kernel sequence of a
//! `hector_compiler::CompiledModule` against a [`GraphData`] instance on a
//! simulated GPU ([`hector_device::Device`]), in one of two modes:
//!
//! * [`Mode::Real`] — kernels are interpreted functionally on the CPU
//!   (exact numerics, usable for correctness tests, small graphs);
//! * [`Mode::Modeled`] — only shapes, allocations, and the analytical
//!   cost model run, letting paper-scale experiments finish in
//!   milliseconds while producing the same simulated timings, memory
//!   footprints, OOM events, and architectural counters.
//!
//! Both modes charge the device identically: every kernel launch derives
//! a [`hector_device::KernelCost`] from its spec and the graph statistics
//! (see [`cost`]), and every tensor materialisation allocates device
//! memory (locals excluded — fused temporaries stay in registers,
//! §3.4.2).
//!
//! Training support follows the paper's recipe (§4.1): negative
//! log-likelihood against a seeded random label tensor, full-graph steps,
//! SGD/Adam updates, with derived (reorder-fused) weights recomputed from
//! their base weights each step and their gradients distributed back
//! through the weight-prep chain rule.

#![warn(missing_docs)]

pub mod backend;
pub mod cost;
mod engine;
mod error;
mod exec;
mod graphdata;
mod loss;
mod minibatch;
mod optim;
mod par_exec;
mod params;
mod scratch;
mod session;
mod store;

pub use backend::{Backend, BackendCaps, BackendKind, ExecCtx, ExecPlan};
pub use engine::{Bound, Engine, EngineBuilder, EpochReport, Trainer};
pub use error::HectorError;
pub use graphdata::GraphData;
pub use hector_graph::{NeighborSampler, SampledBatch, SamplerConfig, Subgraph};
pub use hector_par::{chunk_ranges, ParallelConfig, PoolStats};
pub use hector_trace as trace;
pub use hector_trace::report::{ProfileReport, RelationAgg, ShardSummary, SpanAgg};
pub use hector_trace::TraceConfig;
pub use loss::{nll_loss_and_grad, nll_loss_and_grad_into, random_labels, LossResult};
pub use minibatch::{Batch, Minibatches};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::ParamStore;
pub use session::{cnorm_tensor, gather_bindings, Bindings, Mode, RunReport, Session};
pub use store::{Buffer, VarStore};
