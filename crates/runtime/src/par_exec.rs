//! Deterministic parallel interpretation of kernel specs (real mode).
//!
//! The sequential interpreter in [`crate::exec`] walks every row domain
//! in order. This module re-executes the same kernels across a
//! [`hector_par::ThreadPool`] while keeping the results **bit-identical**
//! to the sequential path, so `HECTOR_THREADS` can never change a single
//! output bit. The scheme:
//!
//! * **Row-aligned writes** (`write_row`-style stores where the output
//!   row *is* the domain row) go straight into the shared output tensor —
//!   chunks own disjoint row ranges, so the writes never alias.
//! * **Scatter/aggregate writes** (`NodeAggregate`, scatter-accumulating
//!   GEMMs) are *recorded* per chunk as `(output row, contribution)`
//!   pairs and applied on the calling thread afterwards, chunk by chunk
//!   in ascending chunk index and in row order within each chunk. That
//!   replay applies exactly the floating-point operations of the
//!   sequential loop, in exactly the sequential order — `Sum`, per-edge
//!   scaled (`Mean`), and `Max` (the edge-softmax stabiliser) aggregates
//!   all stay bit-identical, because the expensive per-row *computation*
//!   is what runs in parallel, never the order-sensitive accumulation.
//! * **Weight-gradient GEMMs** (`TypedLinearGradW`) parallelise over the
//!   per-type gradient slabs instead of rows: each worker owns a disjoint
//!   set of type slabs and accumulates its rows in ascending row order —
//!   the exact association order of the sequential loop per slab.
//! * **Dst-node kernels** parallelise over destination nodes. The staged
//!   inner passes (edge softmax and friends) run unchanged per node;
//!   aggregates into the owned destination row apply immediately (later
//!   passes read them), while cross-chunk aggregates (source-node or
//!   compact-row gradients) use the record-and-replay path.
//!
//! # Pooled worker arenas
//!
//! Like the sequential path, the parallel loops are allocation-free per
//! row — and, since the backend refactor, allocation-free per *run* as
//! well: the session owns a [`WorkerArenas`] pool holding one
//! [`WorkerSlot`] per chunk index ([`Scratch`] block, [`ContribBuf`],
//! scatter staging vectors), a reusable [`WriteTable`], and the GradW
//! type buckets. Kernels claim chunk slots through
//! [`hector_par::ThreadPool::for_each_chunk`] — each chunk index is
//! claimed exactly once per job, so slot access is race-free — and every
//! buffer's capacity persists across runs. Warm parallel runs perform
//! **zero** heap allocations (pinned by `tests/run_alloc.rs` at
//! `HECTOR_THREADS=4`); slot-arena growth events are folded into the
//! session arena's counter after each merge so the device's scratch
//! statistics see every allocation.
//!
//! A kernel whose fused op list *reads* a value that the parallel scheme
//! would defer (a buffered aggregate output) falls back to the sequential
//! interpreter — correctness first, parallelism where it is provably
//! safe. The safety verdict and the deferred-output set are computed once
//! per module at [`crate::Backend::prepare`] time
//! ([`crate::backend`]'s `TravPrep`), not per launch. `num_threads = 1`
//! never reaches this module at all.

use std::cell::UnsafeCell;
use std::collections::HashSet;

use hector_ir::{
    AggNorm, Endpoint, GemmSpec, OpKind, Operand, Program, RowDomain, Space, TraversalDomain,
    TraversalSpec, VarId,
};
use hector_par::{chunk_count, ThreadPool};
use hector_tensor::Tensor;

use crate::backend::TravPrep;
use crate::exec::{
    apply_binary_into, apply_unary_into, dot, dst_private_max_aggs, exec_gemm, exec_traversal,
    gemm_row_into, grad_w_row, max_agg_outputs, read_operand, row_ctx, scatter_index,
    weight_type_index, Ctx, OperandRef,
};
use crate::scratch::Scratch;
use crate::{GraphData, ParamStore, VarStore};

/// Records one worker-chunk span (runs on the pool worker that executed
/// the chunk, so the span lands in that worker's timeline lane). One
/// span per executed job means the trace cross-checks
/// `ParallelStats.chunks` exactly: both are derived from the pool's
/// per-kernel `executed` delta.
fn record_chunk_span(start: Option<u64>, rows: usize, chunk: usize) {
    if let Some(t0) = start {
        hector_trace::record_span(
            "worker/chunk",
            hector_trace::SpanCat::Worker,
            t0,
            rows as u64,
            u32::try_from(chunk).unwrap_or(u32::MAX),
            0.0,
        );
    }
}

/// Raw row-major view of a tensor shared across worker threads.
///
/// # Safety contract
///
/// The pointer stays valid for the whole parallel section (the owning
/// [`VarStore`] is borrowed for its duration), and callers only touch
/// rows their chunk owns — disjointness is what makes the concurrent
/// `row_mut` calls sound.
struct RawRows {
    ptr: *mut f32,
    rows: usize,
    width: usize,
}

unsafe impl Send for RawRows {}
unsafe impl Sync for RawRows {}

impl RawRows {
    fn of(t: &mut Tensor) -> RawRows {
        let rows = t.shape()[0];
        let width = t.width();
        RawRows {
            ptr: t.data_mut().as_mut_ptr(),
            rows,
            width,
        }
    }

    unsafe fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        std::slice::from_raw_parts(self.ptr.add(r * self.width), self.width)
    }

    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        std::slice::from_raw_parts_mut(self.ptr.add(r * self.width), self.width)
    }
}

/// Shared views of every variable this kernel writes, keyed by var id.
/// Reads of in-kernel-produced values go through the same views, so a
/// chunk always sees its own writes. Pooled inside [`WorkerArenas`]:
/// rebuilt (capacity retained) per kernel, cleared after the merge so no
/// stale pointer outlives its parallel section.
struct WriteTable(std::collections::HashMap<VarId, RawRows>);

impl WriteTable {
    /// Repopulates the table for one kernel's outputs. The map's
    /// capacity persists across kernels and runs — warm rebuilds are
    /// allocation-free.
    fn rebuild(&mut self, spec_outs: impl Iterator<Item = VarId>, vars: &mut VarStore) {
        self.0.clear();
        for v in spec_outs {
            self.0
                .entry(v)
                .or_insert_with(|| RawRows::of(vars.get_mut(v).tensor_mut()));
        }
    }
}

fn read_row<'a>(v: VarId, row: usize, table: &'a WriteTable, vars: &'a VarStore) -> &'a [f32] {
    match table.0.get(&v) {
        // SAFETY: reads of in-kernel rows are either the chunk's own rows
        // or (in dst-node kernels) the owned destination row — never a
        // row another chunk concurrently writes (`par_traversal_safe`).
        Some(rr) => unsafe { rr.row(row) },
        None => vars.tensor(v).row(row),
    }
}

/// Mirror of [`crate::exec::read_operand`] that resolves variables
/// written by the running kernel through the shared [`WriteTable`].
/// Returns the same borrowed [`OperandRef`] views — no copies.
fn read_operand_par<'a>(
    o: &Operand,
    ctx: Ctx,
    program: &Program,
    graph: &GraphData,
    params: &'a ParamStore,
    vars: &'a VarStore,
    table: &'a WriteTable,
) -> OperandRef<'a> {
    match o {
        Operand::Const(c) => OperandRef::Scalar(*c),
        Operand::WeightVec(w) => {
            let ty = match ctx {
                Ctx::Edge(e) => graph.graph().etype()[e] as usize,
                Ctx::Unique(u) => graph.unique_etype()[u] as usize,
                Ctx::Node(_) => unreachable!("weight vectors need edge context"),
            };
            OperandRef::Slice(params.weight(*w).slab(ty))
        }
        Operand::Node(v, ep) => {
            let row = match (ctx, ep) {
                (Ctx::Edge(e), Endpoint::Src) => graph.graph().src()[e] as usize,
                (Ctx::Edge(e), Endpoint::Dst) => graph.graph().dst()[e] as usize,
                (Ctx::Unique(u), Endpoint::Src) => graph.compact().unique_row_idx()[u] as usize,
                (Ctx::Node(n), Endpoint::This | Endpoint::Dst) => n,
                (c, e) => unreachable!("node read {e:?} in context {c:?}"),
            };
            OperandRef::Slice(read_row(*v, row, table, vars))
        }
        Operand::Edge(v) => {
            let space = program.var(*v).space;
            let row = match (ctx, space) {
                (Ctx::Edge(e), Space::Edge) => e,
                (Ctx::Edge(e), Space::Compact) => graph.compact().edge_to_unique()[e] as usize,
                (Ctx::Unique(u), Space::Compact) => u,
                (c, s) => unreachable!("edge read of {s:?} var in context {c:?}"),
            };
            OperandRef::Slice(read_row(*v, row, table, vars))
        }
    }
}

/// Metadata of one deferred scatter/aggregate write; the values live in
/// the owning [`ContribBuf`]'s flat vector.
struct Contribution {
    out: VarId,
    row: usize,
    /// Offset into [`ContribBuf::vals`].
    off: usize,
    len: usize,
    max: bool,
}

/// Flat per-chunk store of deferred contributions: one metadata record
/// per (output row, value run), all values in a single growable vector —
/// no per-row heap allocation, unlike a `Vec<Vec<f32>>`.
#[derive(Default)]
struct ContribBuf {
    meta: Vec<Contribution>,
    /// For sums the values are pre-scaled (`x * s`), so the replay's
    /// `acc += v` performs the identical f32 operations as the
    /// sequential `acc += x * s`.
    vals: Vec<f32>,
}

impl ContribBuf {
    fn push(&mut self, out: VarId, row: usize, vals: impl Iterator<Item = f32>, max: bool) {
        let off = self.vals.len();
        self.vals.extend(vals);
        self.meta.push(Contribution {
            out,
            row,
            off,
            len: self.vals.len() - off,
            max,
        });
    }

    /// Empties the buffer for the next kernel; capacity persists.
    fn clear(&mut self) {
        self.meta.clear();
        self.vals.clear();
    }

    /// Applies every recorded contribution in recorded order.
    fn replay(&self, vars: &mut VarStore) {
        for c in &self.meta {
            let vals = &self.vals[c.off..c.off + c.len];
            let row = vars.get_mut(c.out).tensor_mut().row_mut(c.row);
            if c.max {
                for (acc, x) in row.iter_mut().zip(vals) {
                    *acc = acc.max(*x);
                }
            } else {
                for (acc, x) in row.iter_mut().zip(vals) {
                    *acc += *x;
                }
            }
        }
    }
}

/// One chunk's pooled working state: the operand-staging scratch block,
/// the deferred-contribution buffer, and the scatter-GEMM staging
/// vectors. Owned by a [`WorkerArenas`] slot and reused across kernels
/// and runs — every buffer grows to its high-water mark once, then warm
/// runs never allocate.
struct WorkerSlot {
    scratch: Scratch,
    buf: ContribBuf,
    /// Scatter-GEMM target rows (ascending domain order within a chunk).
    idx: Vec<usize>,
    /// Scatter-GEMM staged output rows, `out_width` values each.
    vals: Vec<f32>,
    /// Scratch growth events already folded into the session counter.
    folded_grows: usize,
}

impl WorkerSlot {
    fn new() -> WorkerSlot {
        WorkerSlot {
            scratch: Scratch::new(),
            buf: ContribBuf::default(),
            idx: Vec::new(),
            vals: Vec::new(),
            folded_grows: 0,
        }
    }

    /// Growth events since the last fold (see `folded_grows`).
    fn take_grows(&mut self) -> usize {
        let total = self.scratch.grows();
        let delta = total - self.folded_grows;
        self.folded_grows = total;
        delta
    }
}

/// Interior-mutable slot cell.
///
/// # Safety
///
/// `Sync` is sound because slots are only accessed by chunk index inside
/// a [`ThreadPool::for_each_chunk`] job, which claims every chunk index
/// exactly once (an atomic `fetch_add` hands out indices): two threads
/// can never hold the same index, and distinct indices reach distinct
/// slots. The merge loop runs after `for_each_chunk` returns, which
/// happens-after every chunk completion.
struct SlotCell(UnsafeCell<WorkerSlot>);

unsafe impl Sync for SlotCell {}

/// Session-owned pool of per-chunk worker state for the parallel
/// executor — the reason warm threaded runs are as allocation-free as
/// sequential ones. See the module docs ("Pooled worker arenas").
pub(crate) struct WorkerArenas {
    slots: Vec<SlotCell>,
    table: WriteTable,
    /// Pooled per-type row buckets for the type-parallel GradW path.
    rows_by_type: Vec<Vec<u32>>,
}

impl std::fmt::Debug for WorkerArenas {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerArenas")
            .field("slots", &self.slots.len())
            .field("table_outs", &self.table.0.len())
            .field("type_buckets", &self.rows_by_type.len())
            .finish()
    }
}

impl WorkerArenas {
    pub(crate) fn new() -> WorkerArenas {
        WorkerArenas {
            slots: Vec::new(),
            table: WriteTable(std::collections::HashMap::new()),
            rows_by_type: Vec::new(),
        }
    }

    /// Grows the slot pool to cover `chunks` chunk indices (cold path:
    /// the chunk count of a kernel is stable across warm runs).
    fn ensure_slots(&mut self, chunks: usize) {
        while self.slots.len() < chunks {
            self.slots
                .push(SlotCell(UnsafeCell::new(WorkerSlot::new())));
        }
    }
}

/// Aggregate outputs whose target row can belong to a different chunk
/// than the one producing the contribution — these must be deferred.
/// In dst-node kernels, aggregation into the owned destination row is
/// chunk-private and applies immediately (staged passes read it back).
/// Computed once per module at backend prepare time.
pub(crate) fn buffered_agg_outs(spec: &TraversalSpec, program: &Program) -> HashSet<VarId> {
    let mut set = HashSet::new();
    for op in &spec.ops {
        if let OpKind::NodeAggregate { out, endpoint, .. } = &op.kind {
            let dst_private = spec.domain == TraversalDomain::DstNodes
                && program.var(*out).space == Space::Node
                && *endpoint == Endpoint::Dst;
            if !dst_private {
                set.insert(*out);
            }
        }
    }
    set
}

/// Whether the kernel's dataflow permits the chunked execution scheme.
/// Falls back to sequential when an op would *read* a deferred aggregate
/// (its value would still be a partial sum), when a dst-node op reads an
/// in-kernel value at a source endpoint (a row another chunk owns), or
/// when a variable mixes aggregate and direct writes (replay would
/// reorder them). Computed once per module at backend prepare time.
pub(crate) fn par_traversal_safe(spec: &TraversalSpec, program: &Program) -> bool {
    let buffered = buffered_agg_outs(spec, program);
    let mut agg_outs = HashSet::new();
    let mut direct_outs = HashSet::new();
    for op in &spec.ops {
        if let Some(v) = op.kind.out_var() {
            if matches!(op.kind, OpKind::NodeAggregate { .. }) {
                agg_outs.insert(v);
            } else {
                direct_outs.insert(v);
            }
        }
    }
    if agg_outs.intersection(&direct_outs).next().is_some() {
        return false;
    }
    let all_outs: HashSet<VarId> = agg_outs.union(&direct_outs).copied().collect();
    for op in &spec.ops {
        for o in op.kind.operands() {
            if let Some(v) = o.var() {
                if buffered.contains(&v) {
                    return false;
                }
                if spec.domain == TraversalDomain::DstNodes {
                    if let Operand::Node(nv, Endpoint::Src) = o {
                        if all_outs.contains(nv) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

fn write_row_par(out: VarId, ctx: Ctx, y: &[f32], program: &Program, table: &WriteTable) {
    let space = program.var(out).space;
    let idx = match (ctx, space) {
        (Ctx::Edge(e), Space::Edge) => e,
        (Ctx::Unique(u), Space::Compact) => u,
        (Ctx::Node(n), Space::Node) => n,
        (c, s) => unreachable!("write of {s:?} var in context {c:?}"),
    };
    let rr = &table.0[&out];
    // SAFETY: `idx` equals the domain row (edge/unique/node contexts map
    // 1:1 onto their spaces here), and chunks own disjoint domain rows.
    // Length mismatch panics, matching the sequential `set_row` assert.
    unsafe { rr.row_mut(idx) }.copy_from_slice(y);
}

/// Parallel twin of [`crate::exec`]'s `exec_op`: identical numerics,
/// with deferred scatter targets recorded instead of applied. Any
/// numeric change there MUST be mirrored here — the contract is
/// enforced mechanically, not just by discipline: CI runs the whole
/// test pyramid at `HECTOR_THREADS=4`, so an unmirrored tweak fails
/// `tests/par_determinism.rs` (1-thread vs N-thread bit equality).
#[allow(clippy::too_many_arguments)]
fn exec_op_par(
    kind: &OpKind,
    ctx: Ctx,
    program: &Program,
    graph: &GraphData,
    params: &ParamStore,
    vars: &VarStore,
    table: &WriteTable,
    buffered: &[VarId],
    buf: &mut ContribBuf,
    scratch: &mut Scratch,
) {
    match kind {
        OpKind::DotProduct { a, b, out } => {
            let acc = {
                let av = read_operand_par(a, ctx, program, graph, params, vars, table);
                let bv = read_operand_par(b, ctx, program, graph, params, vars, table);
                dot(av.as_slice(), bv.as_slice())
            };
            write_row_par(*out, ctx, &[acc], program, table);
        }
        OpKind::Binary { op, a, b, out } => {
            let n = {
                let av = read_operand_par(a, ctx, program, graph, params, vars, table);
                let bv = read_operand_par(b, ctx, program, graph, params, vars, table);
                let (av, bv) = (av.as_slice(), bv.as_slice());
                let n = av.len().max(bv.len());
                apply_binary_into(*op, av, bv, scratch.y_uninit(n));
                n
            };
            write_row_par(*out, ctx, scratch.y(n), program, table);
        }
        OpKind::Unary { op, a, out } => {
            let n = {
                let av = read_operand_par(a, ctx, program, graph, params, vars, table);
                let av = av.as_slice();
                apply_unary_into(*op, av, scratch.y_uninit(av.len()));
                av.len()
            };
            write_row_par(*out, ctx, scratch.y(n), program, table);
        }
        OpKind::NodeAggregate {
            edge_val,
            scale,
            norm,
            out,
            endpoint,
            ..
        } => {
            let out_space = program.var(*out).space;
            let idx = match (ctx, out_space) {
                (Ctx::Edge(e), Space::Node) => match endpoint {
                    Endpoint::Dst => graph.graph().dst()[e] as usize,
                    Endpoint::Src => graph.graph().src()[e] as usize,
                    Endpoint::This => unreachable!(),
                },
                (Ctx::Edge(e), Space::Compact) => graph.compact().edge_to_unique()[e] as usize,
                (Ctx::Unique(u), Space::Node) => graph.compact().unique_row_idx()[u] as usize,
                (c, s0) => unreachable!("aggregate {s0:?} in context {c:?}"),
            };
            let is_max = *norm == AggNorm::Max;
            let (n, s) = {
                let val = read_operand_par(edge_val, ctx, program, graph, params, vars, table);
                let s = match scale {
                    Some(sc) => {
                        read_operand_par(sc, ctx, program, graph, params, vars, table).scalar()
                    }
                    None => 1.0,
                };
                let v = val.as_slice();
                if buffered.contains(out) {
                    if is_max {
                        buf.push(*out, idx, v.iter().copied(), true);
                    } else {
                        buf.push(*out, idx, v.iter().map(|x| x * s), false);
                    }
                    return;
                }
                scratch.stage_a(v);
                (v.len(), s)
            };
            // Dst-private aggregate in a dst-node kernel: the row
            // belongs exclusively to this chunk's node.
            let rr = &table.0[out];
            // SAFETY: `idx` is the destination node of an incoming
            // edge of the chunk-owned node, i.e. the owned node.
            let row = unsafe { rr.row_mut(idx) };
            if is_max {
                for (acc, x) in row.iter_mut().zip(scratch.a(n)) {
                    *acc = acc.max(*x);
                }
            } else {
                for (acc, x) in row.iter_mut().zip(scratch.a(n)) {
                    *acc += x * s;
                }
            }
        }
        other => unreachable!("traversal cannot execute {other:?}"),
    }
}

/// Executes a traversal-template instance across the pool. Bit-identical
/// to [`crate::exec`]'s `exec_traversal` (see module docs for why).
/// `prep` carries the prepare-time parallel-safety analysis. Returns
/// whether the kernel actually ran across multiple chunks (`false` for
/// safety fallbacks and domains too small to split).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_traversal_par(
    spec: &TraversalSpec,
    prep: &TravPrep,
    program: &Program,
    graph: &GraphData,
    params: &mut ParamStore,
    vars: &mut VarStore,
    pool: &ThreadPool,
    min_chunk: usize,
    scratch: &mut Scratch,
    arenas: &mut WorkerArenas,
) -> bool {
    if !prep.par_safe {
        exec_traversal(spec, program, graph, params, vars, scratch);
        return false;
    }
    for v in max_agg_outputs(spec) {
        vars.get_mut(v)
            .tensor_mut()
            .data_mut()
            .fill(f32::NEG_INFINITY);
    }
    let buffered: &[VarId] = &prep.buffered;
    let m = match spec.domain {
        TraversalDomain::Edges => graph.rows_of(RowDomain::Edges),
        TraversalDomain::UniquePairs => graph.rows_of(RowDomain::UniquePairs),
        TraversalDomain::DstNodes | TraversalDomain::Nodes => graph.graph().num_nodes(),
    };
    let chunks = chunk_count(m, min_chunk, pool.parallelism());
    arenas.ensure_slots(chunks);
    let WorkerArenas { slots, table, .. } = arenas;
    table.rebuild(spec.ops.iter().filter_map(|op| op.kind.out_var()), vars);
    for cell in &mut slots[..chunks] {
        cell.0.get_mut().buf.clear();
    }
    let params_ro: &ParamStore = params;
    let vars_ro: &VarStore = vars;
    let table_ro: &WriteTable = table;
    let slots_ro: &[SlotCell] = slots;

    let executed = match spec.domain {
        TraversalDomain::Edges | TraversalDomain::UniquePairs | TraversalDomain::Nodes => {
            let rows = match spec.domain {
                TraversalDomain::Edges => RowDomain::Edges,
                TraversalDomain::UniquePairs => RowDomain::UniquePairs,
                _ => RowDomain::Nodes,
            };
            pool.for_each_chunk(m, min_chunk, |ci, range| {
                let tw = hector_trace::span_start();
                let n = range.len();
                // SAFETY: `for_each_chunk` claims each chunk index exactly
                // once, so this slot is accessed by one thread only.
                let slot = unsafe { &mut *slots_ro[ci].0.get() };
                for r in range {
                    let ctx = row_ctx(rows, r);
                    for op in &spec.ops {
                        exec_op_par(
                            &op.kind,
                            ctx,
                            program,
                            graph,
                            params_ro,
                            vars_ro,
                            table_ro,
                            buffered,
                            &mut slot.buf,
                            &mut slot.scratch,
                        );
                    }
                }
                record_chunk_span(tw, n, ci);
            })
        }
        TraversalDomain::DstNodes => {
            let st = &spec.stages;
            let max_stage = st.iter().copied().max().unwrap_or(0);
            let csc = graph.csc();
            pool.for_each_chunk(m, min_chunk, |ci, range| {
                let tw = hector_trace::span_start();
                let n = range.len();
                // SAFETY: see the row-domain arm above.
                let slot = unsafe { &mut *slots_ro[ci].0.get() };
                for v in range {
                    for pass in 0..=max_stage {
                        for &eidx in csc.in_edges(v) {
                            let e = eidx as usize;
                            for (i, op) in spec.ops.iter().enumerate() {
                                if st[i] != pass || spec.hoisted.contains(&op.id) {
                                    continue;
                                }
                                exec_op_par(
                                    &op.kind,
                                    Ctx::Edge(e),
                                    program,
                                    graph,
                                    params_ro,
                                    vars_ro,
                                    table_ro,
                                    buffered,
                                    &mut slot.buf,
                                    &mut slot.scratch,
                                );
                            }
                        }
                        // Mirror of the sequential executor's mid-kernel
                        // sweep: a zero-in-degree `v` still has the
                        // `-inf` seed in its dst-private max-aggregate
                        // rows, and hoisted ops below read them. Row `v`
                        // is chunk-owned, so the in-place fix is sound.
                        for out in dst_private_max_aggs(spec, program, pass) {
                            let rr = &table_ro.0[&out];
                            // SAFETY: `v` is the chunk-owned node row.
                            for x in unsafe { rr.row_mut(v) } {
                                if *x == f32::NEG_INFINITY {
                                    *x = 0.0;
                                }
                            }
                        }
                        for (i, op) in spec.ops.iter().enumerate() {
                            if st[i] != pass || !spec.hoisted.contains(&op.id) {
                                continue;
                            }
                            exec_op_par(
                                &op.kind,
                                Ctx::Node(v),
                                program,
                                graph,
                                params_ro,
                                vars_ro,
                                table_ro,
                                buffered,
                                &mut slot.buf,
                                &mut slot.scratch,
                            );
                        }
                    }
                }
                record_chunk_span(tw, n, ci);
            })
        }
    };
    debug_assert_eq!(executed, chunks);
    table.0.clear();

    // Deterministic merge: ascending chunk index, recorded order within
    // each chunk — exactly the sequential accumulation order.
    let mut worker_grows = 0;
    for cell in &mut slots[..executed] {
        let slot = cell.0.get_mut();
        slot.buf.replay(vars);
        worker_grows += slot.take_grows();
    }
    scratch.note_external_grows(worker_grows);
    for v in max_agg_outputs(spec) {
        for x in vars.get_mut(v).tensor_mut().data_mut() {
            if *x == f32::NEG_INFINITY {
                *x = 0.0;
            }
        }
    }
    executed > 1
}

/// Raw per-type slab view of a gradient stack for the type-parallel
/// `TypedLinearGradW` path. Workers own disjoint type slabs.
struct RawSlabs {
    ptr: *mut f32,
    slabs: usize,
    slab_elems: usize,
}

unsafe impl Send for RawSlabs {}
unsafe impl Sync for RawSlabs {}

impl RawSlabs {
    #[allow(clippy::mut_from_ref)]
    unsafe fn slab_mut(&self, ty: usize) -> &mut [f32] {
        debug_assert!(ty < self.slabs);
        std::slice::from_raw_parts_mut(self.ptr.add(ty * self.slab_elems), self.slab_elems)
    }
}

/// Computes one output row of a forward/backward `TypedLinear` GEMM into
/// the worker's scratch `y` slot — the same inner loops as the
/// sequential interpreter ([`gemm_row_into`]), factored out so both the
/// direct-store and the scatter-accumulate parallel paths share them.
/// `flags` is the session arena holding the per-slab finiteness bits
/// computed once per kernel.
#[allow(clippy::too_many_arguments)]
fn typed_linear_row(
    r: usize,
    rows: RowDomain,
    input: &Operand,
    fused_scale: Option<&Operand>,
    transpose_w: bool,
    wt: &Tensor,
    weight_index: hector_ir::TypeIndex,
    out_width: usize,
    program: &Program,
    graph: &GraphData,
    params: &ParamStore,
    vars: &VarStore,
    flags: &Scratch,
    ws: &mut Scratch,
) {
    let ctx = row_ctx(rows, r);
    let (wrows, wcols) = (wt.shape()[1], wt.shape()[2]);
    let ty = weight_type_index(wt.shape()[0], weight_index, rows, r, graph);
    let slab_finite = transpose_w || flags.slab_finite(ty);
    {
        let x = read_operand(input, ctx, program, graph, params, vars);
        let y = ws.y_zeroed(out_width);
        gemm_row_into(
            x.as_slice(),
            wt.slab(ty),
            wrows,
            wcols,
            transpose_w,
            slab_finite,
            y,
        );
    }
    if let Some(s) = fused_scale {
        let sv = read_operand(s, ctx, program, graph, params, vars).scalar();
        for v in ws.y_mut(out_width) {
            *v *= sv;
        }
    }
}

/// Executes a GEMM-template instance across the pool. Bit-identical to
/// [`crate::exec`]'s `exec_gemm`: direct stores use disjoint row tiles,
/// scatter-accumulates replay in row order, and weight gradients
/// parallelise over type slabs (each slab accumulates its rows in the
/// sequential order). Returns whether the work actually split across
/// multiple chunks (`false` for fallbacks and unsplittable domains).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_gemm_par(
    spec: &GemmSpec,
    program: &Program,
    graph: &GraphData,
    params: &mut ParamStore,
    vars: &mut VarStore,
    pool: &ThreadPool,
    min_chunk: usize,
    scratch: &mut Scratch,
    arenas: &mut WorkerArenas,
) -> bool {
    let m = graph.rows_of(spec.rows);
    match &spec.op.kind {
        OpKind::TypedLinear {
            input,
            weight,
            transpose_w,
            scatter,
            fused_scale,
            out,
        } => {
            let out_width = program.var(*out).width;
            let chunks = chunk_count(m, min_chunk, pool.parallelism());
            arenas.ensure_slots(chunks);
            let slots: &[SlotCell] = &arenas.slots;
            match scatter {
                None => {
                    let raw = RawRows::of(vars.get_mut(*out).tensor_mut());
                    let params_ro: &ParamStore = params;
                    let vars_ro: &VarStore = vars;
                    let wt = params_ro.weight(*weight);
                    if !*transpose_w {
                        scratch.set_slab_finite(wt);
                    }
                    let flags: &Scratch = scratch;
                    let executed = pool.for_each_chunk(m, min_chunk, |ci, range| {
                        let tw = hector_trace::span_start();
                        let n = range.len();
                        // SAFETY: each chunk index is claimed exactly once.
                        let slot = unsafe { &mut *slots[ci].0.get() };
                        for r in range {
                            typed_linear_row(
                                r,
                                spec.rows,
                                input,
                                fused_scale.as_ref(),
                                *transpose_w,
                                wt,
                                spec.weight_index,
                                out_width,
                                program,
                                graph,
                                params_ro,
                                vars_ro,
                                flags,
                                &mut slot.scratch,
                            );
                            // SAFETY: output rows are 1:1 with domain
                            // rows here; chunks are disjoint.
                            unsafe { raw.row_mut(r) }.copy_from_slice(slot.scratch.y(out_width));
                        }
                        record_chunk_span(tw, n, ci);
                    });
                    debug_assert_eq!(executed, chunks);
                    let mut worker_grows = 0;
                    for cell in &mut arenas.slots[..executed] {
                        worker_grows += cell.0.get_mut().take_grows();
                    }
                    scratch.note_external_grows(worker_grows);
                    executed > 1
                }
                Some(ep) => {
                    for cell in &mut arenas.slots[..chunks] {
                        let slot = cell.0.get_mut();
                        slot.idx.clear();
                        slot.vals.clear();
                    }
                    let slots: &[SlotCell] = &arenas.slots;
                    let params_ro: &ParamStore = params;
                    let vars_ro: &VarStore = vars;
                    let wt = params_ro.weight(*weight);
                    if !*transpose_w {
                        scratch.set_slab_finite(wt);
                    }
                    let flags: &Scratch = scratch;
                    let executed = pool.for_each_chunk(m, min_chunk, |ci, range| {
                        let tw = hector_trace::span_start();
                        let n = range.len();
                        // SAFETY: each chunk index is claimed exactly once.
                        let slot = unsafe { &mut *slots[ci].0.get() };
                        for r in range {
                            typed_linear_row(
                                r,
                                spec.rows,
                                input,
                                fused_scale.as_ref(),
                                *transpose_w,
                                wt,
                                spec.weight_index,
                                out_width,
                                program,
                                graph,
                                params_ro,
                                vars_ro,
                                flags,
                                &mut slot.scratch,
                            );
                            slot.idx.push(scatter_index(spec.rows, *ep, r, graph));
                            slot.vals.extend_from_slice(slot.scratch.y(out_width));
                        }
                        record_chunk_span(tw, n, ci);
                    });
                    debug_assert_eq!(executed, chunks);
                    // Deterministic merge: chunk order == ascending row
                    // order == the sequential accumulation order.
                    let mut worker_grows = 0;
                    for cell in &mut arenas.slots[..executed] {
                        let slot = cell.0.get_mut();
                        worker_grows += slot.take_grows();
                        for (idx, y) in slot.idx.iter().zip(slot.vals.chunks_exact(out_width)) {
                            let row = vars.get_mut(*out).tensor_mut().row_mut(*idx);
                            for (a, b) in row.iter_mut().zip(y) {
                                *a += b;
                            }
                        }
                    }
                    scratch.note_external_grows(worker_grows);
                    executed > 1
                }
            }
        }
        OpKind::TypedLinearGradW { x, dy, out_w } => {
            let t_count = params.type_count(*out_w);
            if t_count < 2 || m == 0 {
                // A single shared slab has no type parallelism; the
                // sequential path is already the right association order.
                exec_gemm(spec, program, graph, params, vars, scratch);
                return false;
            }
            // One O(m) pass bucketing rows per type (ascending row order
            // within each bucket = the sequential association order per
            // slab); workers then walk only their own types' rows. The
            // buckets are pooled on the session (capacity persists).
            if arenas.rows_by_type.len() < t_count {
                arenas.rows_by_type.resize_with(t_count, Vec::new);
            }
            for bucket in &mut arenas.rows_by_type[..t_count] {
                bucket.clear();
            }
            for r in 0..m {
                let ty = weight_type_index(t_count, spec.weight_index, spec.rows, r, graph);
                arenas.rows_by_type[ty].push(r as u32);
            }
            let grad = params.grad_mut(*out_w);
            let slab_elems = grad.shape()[1] * grad.shape()[2];
            let raw = RawSlabs {
                ptr: grad.data_mut().as_mut_ptr(),
                slabs: t_count,
                slab_elems,
            };
            let params_ro: &ParamStore = params;
            let vars_ro: &VarStore = vars;
            let rows_by_type: &[Vec<u32>] = &arenas.rows_by_type;
            pool.for_each_chunk(t_count, 1, |ci, ty_range| {
                let tw = hector_trace::span_start();
                let n = ty_range.len();
                for ty in ty_range {
                    // SAFETY: each worker owns a disjoint range of type
                    // slabs; rows of other types are never touched.
                    let slab = unsafe { raw.slab_mut(ty) };
                    for &r32 in &rows_by_type[ty] {
                        let r = r32 as usize;
                        let ctx = row_ctx(spec.rows, r);
                        let xr = read_operand(x, ctx, program, graph, params_ro, vars_ro);
                        let dyr = read_operand(dy, ctx, program, graph, params_ro, vars_ro);
                        let (xr, dyr) = (xr.as_slice(), dyr.as_slice());
                        debug_assert_eq!(xr.len() * dyr.len(), slab_elems);
                        grad_w_row(xr, dyr, slab);
                    }
                }
                record_chunk_span(tw, n, ci);
            });
            t_count > 1
        }
        other => unreachable!("not a GEMM op: {other:?}"),
    }
}
