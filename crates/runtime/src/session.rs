//! Sessions: executing compiled modules on the simulated device.
//!
//! # Seed contract
//!
//! Every stochastic artifact of a run flows through explicitly seeded
//! host RNGs *before* any kernel executes: [`crate::ParamStore::init`]
//! draws weights in program order from the caller's RNG, and
//! [`Bindings::standard`] derives one independent stream per input
//! *name*. No kernel — sequential or parallel — ever draws randomness,
//! so `HECTOR_THREADS` (and the chunking of the parallel executor in
//! general) can never affect initialisation: parallel and sequential
//! runs start from bit-identical parameters and inputs.

use std::collections::HashMap;
use std::time::Instant;

use hector_compiler::CompiledModule;
use hector_device::{Device, DeviceConfig, KernelCategory, KernelCost, OomError, Phase};
use hector_ir::{KernelSpec, Program, VarId};
use hector_par::{ParallelConfig, ThreadPool};
use hector_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cost::{kernel_cost, var_bytes};
use crate::exec::{exec_gemm, exec_traversal};
use crate::loss::{nll_loss_and_grad, LossResult};
use crate::optim::Optimizer;
use crate::par_exec::{exec_gemm_par, exec_traversal_par};
use crate::scratch::Scratch;
use crate::store::{Buffer, VarStore};
use crate::{GraphData, ParamStore};

/// Execution mode of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Functional CPU interpretation of every kernel (exact numerics).
    Real,
    /// Shape/cost-only execution: same simulated timings, memory
    /// footprints, and OOM events, without touching data. Paper-scale
    /// graphs run in milliseconds.
    Modeled,
}

/// Summary of one inference or training run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Total simulated time, microseconds.
    pub elapsed_us: f64,
    /// Peak device-memory footprint, bytes.
    pub peak_bytes: usize,
    /// Total kernel launches.
    pub launches: usize,
    /// Time in GEMM-template kernels, microseconds.
    pub gemm_us: f64,
    /// Time in traversal-template kernels, microseconds.
    pub traversal_us: f64,
    /// Time in data-movement kernels, microseconds.
    pub copy_us: f64,
    /// Time in framework fallbacks (incl. API overhead), microseconds.
    pub fallback_us: f64,
    /// Forward-phase time, microseconds.
    pub forward_us: f64,
    /// Backward-phase time, microseconds.
    pub backward_us: f64,
    /// Training loss (real-mode training runs only).
    pub loss: Option<f32>,
}

/// Input tensors bound by name to a program's declared inputs.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    map: HashMap<String, Tensor>,
}

impl Bindings {
    /// Empty bindings (sufficient for modeled runs).
    #[must_use]
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Adds a named tensor.
    pub fn set(&mut self, name: &str, t: Tensor) {
        self.map.insert(name.to_string(), t);
    }

    /// Looks up a tensor by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.map.get(name)
    }

    /// Standard bindings for a program on a graph: seeded random features
    /// for every node/edge input, and the RGCN normalisation constants
    /// `1/c_{v,r}` for an edge input named `cnorm`.
    ///
    /// # Seed contract
    ///
    /// Exactly one `u64` is drawn from `rng`; each input tensor is then
    /// filled from a private `StdRng` seeded with `base ^ fnv1a(name)`.
    /// The produced features are a pure function of the incoming RNG
    /// state and the input *names* — independent of input declaration
    /// order (which can differ across optimization combos), of how many
    /// inputs exist, and of `HECTOR_THREADS` (see the module docs).
    #[must_use]
    pub fn standard(program: &Program, graph: &GraphData, rng: &mut StdRng) -> Bindings {
        let base: u64 = rng.gen();
        let mut b = Bindings::new();
        for &v in &program.inputs {
            let info = program.var(v);
            let rows = graph.rows_of_space(info.space);
            if info.name == "cnorm" {
                b.set(&info.name, cnorm_tensor(graph));
            } else {
                let mut sub = StdRng::seed_from_u64(base ^ fnv1a(&info.name));
                let data = (0..rows * info.width)
                    .map(|_| sub.gen_range(-1.0..1.0))
                    .collect();
                b.set(&info.name, Tensor::from_vec(data, &[rows, info.width]));
            }
        }
        b
    }
}

/// FNV-1a hash of an input name: the stable, order-independent component
/// of [`Bindings::standard`]'s per-input seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-edge `1/c_{v,r}` normalisation constants (c = in-degree of the
/// destination under the edge's relation).
#[must_use]
pub fn cnorm_tensor(graph: &GraphData) -> Tensor {
    let g = graph.graph();
    let mut count: HashMap<(u32, u32), u32> = HashMap::new();
    for e in 0..g.num_edges() {
        *count.entry((g.dst()[e], g.etype()[e])).or_insert(0) += 1;
    }
    let data: Vec<f32> = (0..g.num_edges())
        .map(|e| 1.0 / count[&(g.dst()[e], g.etype()[e])] as f32)
        .collect();
    Tensor::from_vec(data, &[g.num_edges(), 1])
}

/// An execution context over one simulated device.
#[derive(Debug)]
pub struct Session {
    device: Device,
    mode: Mode,
    par: ParallelConfig,
    /// Worker pool for the parallel real-mode executor. `None` when
    /// `num_threads == 1` (the exact sequential code path) or in modeled
    /// mode (nothing to execute).
    pool: Option<ThreadPool>,
    /// Reusable scratch arena for the real-mode interpreter hot path:
    /// buffers grow to the widest kernel row once, then every later
    /// kernel (and run) reuses them — zero per-row heap allocations in
    /// steady state. Growth events and footprint surface through
    /// [`hector_device::ScratchStats`] on the device counters.
    scratch: Scratch,
}

impl Session {
    /// Creates a session. Parallelism defaults from the environment
    /// ([`ParallelConfig::from_env`], i.e. `HECTOR_THREADS`, default 1).
    #[must_use]
    pub fn new(config: DeviceConfig, mode: Mode) -> Session {
        Session::with_parallel(config, mode, ParallelConfig::from_env())
    }

    /// Creates a session with an explicit parallel configuration.
    /// `num_threads = 1` takes the exact sequential code path (no pool
    /// is created); any higher count executes real-mode kernels across a
    /// work-stealing pool with outputs bit-identical to the sequential
    /// path (see the `par_exec` module docs for the merge-order scheme).
    #[must_use]
    pub fn with_parallel(config: DeviceConfig, mode: Mode, par: ParallelConfig) -> Session {
        let pool = if mode == Mode::Real {
            ThreadPool::from_config(&par)
        } else {
            None
        };
        Session {
            device: Device::new(config),
            mode,
            par,
            pool,
            scratch: Scratch::new(),
        }
    }

    /// The underlying device (counters, memory state).
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Execution mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The session's parallel configuration.
    #[must_use]
    pub fn parallel_config(&self) -> ParallelConfig {
        self.par
    }

    /// Pool activity counters, when a pool exists.
    #[must_use]
    pub fn pool_stats(&self) -> Option<hector_par::PoolStats> {
        self.pool.as_ref().map(ThreadPool::stats)
    }

    fn alloc_var(
        &mut self,
        program: &Program,
        graph: &GraphData,
        vars: &mut VarStore,
        v: VarId,
    ) -> Result<(), OomError> {
        if vars.contains(v) {
            return Ok(());
        }
        let info = program.var(v);
        let rows = graph.rows_of_space(info.space);
        self.device
            .alloc(var_bytes(program, graph, v), &info.name)?;
        let buf = match self.mode {
            Mode::Real => Buffer::Real(Tensor::zeros(&[rows, info.width])),
            Mode::Modeled => Buffer::Modeled {
                rows,
                width: info.width,
            },
        };
        vars.insert(v, buf);
        Ok(())
    }

    /// Inserts a register-local buffer (no device memory charged).
    fn insert_local(
        &mut self,
        program: &Program,
        graph: &GraphData,
        vars: &mut VarStore,
        v: VarId,
    ) {
        if vars.contains(v) || self.mode == Mode::Modeled {
            return;
        }
        let info = program.var(v);
        let rows = graph.rows_of_space(info.space);
        vars.insert(v, Buffer::Real(Tensor::zeros(&[rows, info.width])));
    }

    fn bind_inputs(
        &mut self,
        program: &Program,
        graph: &GraphData,
        vars: &mut VarStore,
        inputs: &Bindings,
    ) -> Result<(), OomError> {
        for &v in &program.inputs {
            if vars.contains(v) {
                continue;
            }
            let info = program.var(v).clone();
            match self.mode {
                Mode::Real => {
                    let t = inputs
                        .get(&info.name)
                        .unwrap_or_else(|| panic!("missing input binding '{}'", info.name))
                        .clone();
                    let rows = graph.rows_of_space(info.space);
                    assert_eq!(
                        t.shape(),
                        &[rows, info.width],
                        "binding '{}' has the wrong shape",
                        info.name
                    );
                    self.device.alloc(t.byte_size(), &info.name)?;
                    vars.insert(v, Buffer::Real(t));
                }
                Mode::Modeled => {
                    self.alloc_var(program, graph, vars, v)?;
                }
            }
        }
        Ok(())
    }

    fn run_kernels(
        &mut self,
        kernels: &[KernelSpec],
        program: &Program,
        graph: &GraphData,
        params: &mut ParamStore,
        vars: &mut VarStore,
        phase: Phase,
    ) -> Result<(), OomError> {
        for spec in kernels {
            // Materialise outputs (locals stay off-device).
            match spec {
                KernelSpec::Gemm(g) => {
                    if let Some(out) = g.op.kind.out_var() {
                        self.alloc_var(program, graph, vars, out)?;
                    }
                }
                KernelSpec::Traversal(t) => {
                    for op in &t.ops {
                        if let Some(out) = op.kind.out_var() {
                            if t.local_vars.contains(&out) {
                                self.insert_local(program, graph, vars, out);
                            } else {
                                self.alloc_var(program, graph, vars, out)?;
                            }
                        }
                    }
                }
                KernelSpec::Fallback(_) => {}
            }
            let cost = kernel_cost(spec, program, graph, phase);
            self.device.launch(&cost);
            if self.mode == Mode::Real {
                let stats_before = self.pool.as_ref().map(ThreadPool::stats);
                let grows_before = self.scratch.grows();
                let start = Instant::now();
                // Whether the kernel actually split across chunks —
                // safety fallbacks and unsplittable domains count as
                // sequential in the ParallelStats report.
                let mut ran_parallel = false;
                match (spec, &self.pool) {
                    (KernelSpec::Gemm(g), Some(pool)) => {
                        ran_parallel = exec_gemm_par(
                            g,
                            program,
                            graph,
                            params,
                            vars,
                            pool,
                            self.par.min_chunk_rows,
                            &mut self.scratch,
                        );
                    }
                    (KernelSpec::Gemm(g), None) => {
                        exec_gemm(g, program, graph, params, vars, &mut self.scratch);
                    }
                    (KernelSpec::Traversal(t), Some(pool)) => {
                        ran_parallel = exec_traversal_par(
                            t,
                            program,
                            graph,
                            params,
                            vars,
                            pool,
                            self.par.min_chunk_rows,
                            &mut self.scratch,
                        );
                    }
                    (KernelSpec::Traversal(t), None) => {
                        exec_traversal(t, program, graph, params, vars, &mut self.scratch);
                    }
                    (KernelSpec::Fallback(f), _) => {
                        if let Some(i) = f.prep_index {
                            let prep = program.preps[i].clone();
                            params.run_prep(&prep, program);
                        }
                    }
                }
                if !matches!(spec, KernelSpec::Fallback(_)) {
                    let wall_us = start.elapsed().as_secs_f64() * 1e6;
                    self.device
                        .record_scratch(self.scratch.grows() - grows_before, self.scratch.bytes());
                    let (chunks, steals) = match (stats_before, self.pool.as_ref()) {
                        (Some(before), Some(pool)) => {
                            let after = pool.stats();
                            (
                                usize::try_from(after.executed - before.executed)
                                    .unwrap_or(usize::MAX),
                                after.steals - before.steals,
                            )
                        }
                        _ => (0, 0),
                    };
                    let category = match spec {
                        KernelSpec::Gemm(_) => KernelCategory::Gemm,
                        _ => KernelCategory::Traversal,
                    };
                    self.device
                        .record_host_exec(category, ran_parallel, wall_us, chunks, steals);
                }
            }
        }
        Ok(())
    }

    fn base_allocations(
        &mut self,
        graph: &GraphData,
        params: &ParamStore,
        training: bool,
    ) -> Result<(), OomError> {
        self.device.alloc(graph.structure_bytes(), "graph")?;
        self.device.alloc(params.byte_size(), "weights")?;
        if training {
            self.device.alloc(params.byte_size(), "weight_grads")?;
        }
        Ok(())
    }

    /// Runs full-graph inference.
    ///
    /// Returns the variable store (holding the program outputs) and a
    /// run report.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the run exceeds device memory, matching
    /// the paper's OOM accounting.
    ///
    /// # Panics
    ///
    /// Panics in real mode if an input binding is missing or mis-shaped.
    pub fn run_inference(
        &mut self,
        module: &CompiledModule,
        graph: &GraphData,
        params: &mut ParamStore,
        inputs: &Bindings,
    ) -> Result<(VarStore, RunReport), OomError> {
        self.device.reset();
        self.base_allocations(graph, params, false)?;
        let mut vars = VarStore::new();
        self.bind_inputs(&module.forward, graph, &mut vars, inputs)?;
        self.run_kernels(
            &module.fw_kernels,
            &module.forward,
            graph,
            params,
            &mut vars,
            Phase::Forward,
        )?;
        let report = self.report(None);
        Ok((vars, report))
    }

    /// Runs one full-graph training step: forward, NLL loss against
    /// `labels`, backward, prep chain rule, optimizer update.
    ///
    /// `labels` may be empty in modeled mode.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the run exceeds device memory.
    ///
    /// # Panics
    ///
    /// Panics if the module was not compiled with training enabled, or in
    /// real mode if labels/bindings are inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn run_training_step(
        &mut self,
        module: &CompiledModule,
        graph: &GraphData,
        params: &mut ParamStore,
        inputs: &Bindings,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> Result<(VarStore, RunReport), OomError> {
        let bw_program = module
            .backward
            .as_ref()
            .expect("module was not compiled for training");
        self.device.reset();
        self.base_allocations(graph, params, true)?;
        params.zero_grads();
        let mut vars = VarStore::new();
        self.bind_inputs(&module.forward, graph, &mut vars, inputs)?;
        self.run_kernels(
            &module.fw_kernels,
            &module.forward,
            graph,
            params,
            &mut vars,
            Phase::Forward,
        )?;

        // Loss + output-gradient seeds.
        let out_var = *module.forward.outputs.first().expect("model has an output");
        let n_outputs = module.forward.outputs.len();
        let seeds: Vec<VarId> = bw_program.inputs[..n_outputs].to_vec();
        let mut loss_value = None;
        let loss_cost = self.loss_cost(&module.forward, graph, out_var);
        self.device.launch(&loss_cost);
        match self.mode {
            Mode::Real => {
                let logits = vars.tensor(out_var).clone();
                let LossResult { loss, grad } = nll_loss_and_grad(&logits, labels);
                loss_value = Some(loss);
                self.device.alloc(grad.byte_size(), "d_logits")?;
                vars.insert(seeds[0], Buffer::Real(grad));
                for &s in &seeds[1..] {
                    // Multi-output models: zero seed gradients beyond the
                    // loss-bearing first output.
                    self.alloc_var(bw_program, graph, &mut vars, s)?;
                }
            }
            Mode::Modeled => {
                for &s in &seeds {
                    self.alloc_var(bw_program, graph, &mut vars, s)?;
                }
            }
        }

        self.run_kernels(
            &module.bw_kernels,
            bw_program,
            graph,
            params,
            &mut vars,
            Phase::Backward,
        )?;
        if self.mode == Mode::Real {
            params.backprop_preps(&module.forward);
            optimizer.step(params, &module.forward);
        }
        // Prep backward + optimizer run as framework calls.
        self.device.charge_api_call();
        let report = self.report(loss_value);
        Ok((vars, report))
    }

    fn loss_cost(&self, program: &Program, graph: &GraphData, out: VarId) -> KernelCost {
        let info = program.var(out);
        let rows = graph.rows_of_space(info.space) as f64;
        let mut c = KernelCost::new(KernelCategory::Fallback, Phase::Backward);
        c.flops = rows * info.width as f64 * 4.0;
        c.bytes_read = rows * info.width as f64 * 4.0;
        c.bytes_written = rows * info.width as f64 * 4.0;
        c.items = rows * info.width as f64 / 32.0;
        c
    }

    fn report(&self, loss: Option<f32>) -> RunReport {
        let c = self.device.counters();
        RunReport {
            elapsed_us: self.device.elapsed_us(),
            peak_bytes: self.device.memory().peak(),
            launches: c.total_launches(),
            gemm_us: c.category_duration_us(KernelCategory::Gemm),
            traversal_us: c.category_duration_us(KernelCategory::Traversal),
            copy_us: c.category_duration_us(KernelCategory::Copy),
            fallback_us: c.category_duration_us(KernelCategory::Fallback)
                + self.device.host_api_us(),
            forward_us: c.phase_duration_us(Phase::Forward),
            backward_us: c.phase_duration_us(Phase::Backward),
            loss,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_compiler::{compile, CompileOptions};
    use hector_graph::HeteroGraphBuilder;
    use hector_ir::builder::ModelSource;
    use hector_ir::{AggNorm, ModelBuilder};
    use hector_tensor::seeded_rng;

    /// Fig. 6(a)-style toy graph.
    fn toy_graph() -> GraphData {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(6);
        b.add_edge(5, 3, 0);
        b.add_edge(5, 4, 0);
        b.add_edge(1, 0, 1);
        b.add_edge(2, 0, 1);
        b.add_edge(3, 0, 1);
        b.add_edge(4, 1, 1);
        b.add_edge(4, 2, 1);
        GraphData::new(b.build())
    }

    fn rgcn_source(dim: usize) -> ModelSource {
        let mut m = ModelBuilder::new("rgcn", dim);
        let h = m.node_input("h", dim);
        let c = m.edge_input("cnorm", 1);
        let w = m.weight_per_etype("W", dim, dim);
        let w0 = m.weight_shared("W0", dim, dim);
        let msg = m.typed_linear("msg", m.src(h), w);
        let agg = m.aggregate("agg", m.edge(msg), Some(m.edge(c)), AggNorm::None);
        let selfl = m.typed_linear("selfl", m.this(h), w0);
        let sum = m.add("sum", m.this(agg), m.this(selfl));
        let out = m.relu("out", m.this(sum));
        m.output(out);
        m.finish()
    }

    #[test]
    fn rgcn_inference_runs_and_matches_reference() {
        let graph = toy_graph();
        let src = rgcn_source(4);
        let module = compile(&src, &CompileOptions::unopt());
        let mut rng = seeded_rng(42);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let mut rng2 = seeded_rng(7);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);
        let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let (vars, report) = session
            .run_inference(&module, &graph, &mut params, &bindings)
            .unwrap();

        // Reference: dense per-node computation.
        let h = bindings.get("h").unwrap();
        let cn = bindings.get("cnorm").unwrap();
        let g = graph.graph();
        let out_var = module.forward.outputs[0];
        let got = vars.tensor(out_var);
        for v in 0..g.num_nodes() {
            let mut expect = [0.0f32; 4];
            // Self-loop W0.
            let w0 = params.weight(hector_ir::WeightId(1));
            for (j, e) in expect.iter_mut().enumerate() {
                for p in 0..4 {
                    *e += h.at2(v, p) * w0.at3(0, p, j);
                }
            }
            // Incoming messages.
            for e in 0..g.num_edges() {
                if g.dst()[e] as usize != v {
                    continue;
                }
                let s = g.src()[e] as usize;
                let ty = g.etype()[e] as usize;
                let w = params.weight(hector_ir::WeightId(0));
                for (j, ex) in expect.iter_mut().enumerate() {
                    let mut m = 0.0;
                    for p in 0..4 {
                        m += h.at2(s, p) * w.at3(ty, p, j);
                    }
                    *ex += m * cn.at2(e, 0);
                }
            }
            for (j, &e) in expect.iter().enumerate() {
                let want = e.max(0.0);
                let gotv = got.at2(v, j);
                assert!(
                    (gotv - want).abs() < 1e-4,
                    "node {v} col {j}: got {gotv}, want {want}"
                );
            }
        }
        assert!(report.elapsed_us > 0.0);
        assert!(report.launches >= 3);
        assert!(report.peak_bytes > 0);
    }

    #[test]
    fn modeled_mode_matches_real_mode_timing() {
        let graph = toy_graph();
        let src = rgcn_source(8);
        let module = compile(&src, &CompileOptions::unopt());
        let mut rng = seeded_rng(1);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let mut rng2 = seeded_rng(2);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);

        let mut real = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let (_, r1) = real
            .run_inference(&module, &graph, &mut params, &bindings)
            .unwrap();
        let mut modeled = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
        let (_, r2) = modeled
            .run_inference(&module, &graph, &mut params, &Bindings::new())
            .unwrap();
        assert!((r1.elapsed_us - r2.elapsed_us).abs() < 1e-9);
        assert_eq!(r1.peak_bytes, r2.peak_bytes);
        assert_eq!(r1.launches, r2.launches);
    }

    #[test]
    fn training_step_decreases_loss() {
        let graph = toy_graph();
        let src = rgcn_source(4);
        let module = compile(&src, &CompileOptions::unopt().with_training(true));
        let mut rng = seeded_rng(11);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let mut rng2 = seeded_rng(12);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);
        let labels = vec![0usize, 1, 2, 3, 0, 1];
        let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let mut opt = crate::Sgd::new(0.5);
        let mut losses = Vec::new();
        for _ in 0..20 {
            let (_, report) = session
                .run_training_step(&module, &graph, &mut params, &bindings, &labels, &mut opt)
                .unwrap();
            losses.push(report.loss.unwrap());
        }
        assert!(
            losses.last().unwrap() < &(losses[0] - 0.05),
            "training should reduce loss: {losses:?}"
        );
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let graph = toy_graph();
        let src = rgcn_source(8);
        let module = compile(&src, &CompileOptions::unopt());
        let mut rng = seeded_rng(3);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let tiny = DeviceConfig::rtx3090().with_capacity(64);
        let mut session = Session::new(tiny, Mode::Modeled);
        let err = session
            .run_inference(&module, &graph, &mut params, &Bindings::new())
            .unwrap_err();
        assert!(err.capacity == 64);
    }
}
