//! Sessions: executing compiled modules on the simulated device.
//!
//! # Seed contract
//!
//! Every stochastic artifact of a run flows through explicitly seeded
//! host RNGs *before* any kernel executes: [`crate::ParamStore::init`]
//! draws weights in program order from the caller's RNG, and
//! [`Bindings::standard`] derives one independent stream per input
//! *name*. No kernel — sequential or parallel — ever draws randomness,
//! so `HECTOR_THREADS` (and the chunking of the parallel executor in
//! general) can never affect initialisation: parallel and sequential
//! runs start from bit-identical parameters and inputs.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use hector_compiler::CompiledModule;
use hector_device::{Device, DeviceConfig, KernelCategory, KernelCost, OomError, Phase};
use hector_ir::{KernelSpec, Program, Space, VarId, VarInfo};
use hector_par::{ParallelConfig, ThreadPool};
use hector_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use hector_trace::{record_span, span_start, SpanCat};

use crate::backend::{self, Backend, BackendKind, ExecCtx, ExecPlan};
use crate::cost::{kernel_cost, var_bytes};
use crate::error::HectorError;
use crate::exec::kernel_trace_meta;
use crate::loss::nll_loss_and_grad_into;
use crate::optim::Optimizer;
use crate::par_exec::WorkerArenas;
use crate::scratch::Scratch;
use crate::store::{Buffer, VarStore};
use crate::{GraphData, ParamStore};

/// Execution mode of a session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Functional CPU interpretation of every kernel (exact numerics).
    Real,
    /// Shape/cost-only execution: same simulated timings, memory
    /// footprints, and OOM events, without touching data. Paper-scale
    /// graphs run in milliseconds.
    Modeled,
}

/// Summary of one inference or training run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Total simulated time, microseconds.
    pub elapsed_us: f64,
    /// Peak device-memory footprint, bytes.
    pub peak_bytes: usize,
    /// Total kernel launches.
    pub launches: usize,
    /// Time in GEMM-template kernels, microseconds.
    pub gemm_us: f64,
    /// Time in traversal-template kernels, microseconds.
    pub traversal_us: f64,
    /// Time in data-movement kernels, microseconds.
    pub copy_us: f64,
    /// Time in framework fallbacks (incl. API overhead), microseconds.
    pub fallback_us: f64,
    /// Forward-phase time, microseconds.
    pub forward_us: f64,
    /// Backward-phase time, microseconds.
    pub backward_us: f64,
    /// Training loss (real-mode training runs only).
    pub loss: Option<f32>,
}

/// Input tensors bound by name to a program's declared inputs.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    map: HashMap<String, Tensor>,
}

impl Bindings {
    /// Empty bindings (sufficient for modeled runs).
    #[must_use]
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Adds a named tensor.
    pub fn set(&mut self, name: &str, t: Tensor) {
        self.map.insert(name.to_string(), t);
    }

    /// Looks up a tensor by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Tensor> {
        self.map.get(name)
    }

    /// Standard bindings for a program on a graph: seeded random features
    /// for every node/edge input, and the RGCN normalisation constants
    /// `1/c_{v,r}` for an edge input named `cnorm`.
    ///
    /// # Seed contract
    ///
    /// Exactly one `u64` is drawn from `rng`; each input tensor is then
    /// filled from a private `StdRng` seeded with `base ^ fnv1a(name)`.
    /// The produced features are a pure function of the incoming RNG
    /// state and the input *names* — independent of input declaration
    /// order (which can differ across optimization combos), of how many
    /// inputs exist, and of `HECTOR_THREADS` (see the module docs).
    #[must_use]
    pub fn standard(program: &Program, graph: &GraphData, rng: &mut StdRng) -> Bindings {
        let base: u64 = rng.gen();
        let mut b = Bindings::new();
        for &v in &program.inputs {
            let info = program.var(v);
            let rows = graph.rows_of_space(info.space);
            if info.name == "cnorm" {
                b.set(&info.name, cnorm_tensor(graph));
            } else {
                let mut sub = StdRng::seed_from_u64(base ^ fnv1a(&info.name));
                let data = (0..rows * info.width)
                    .map(|_| sub.gen_range(-1.0..1.0))
                    .collect();
                b.set(&info.name, Tensor::from_vec(data, &[rows, info.width]));
            }
        }
        b
    }
}

/// FNV-1a hash of an input name: the stable, order-independent component
/// of [`Bindings::standard`]'s per-input seeds.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-edge `1/c_{v,r}` normalisation constants (c = in-degree of the
/// destination under the edge's relation).
#[must_use]
pub fn cnorm_tensor(graph: &GraphData) -> Tensor {
    let g = graph.graph();
    let mut count: HashMap<(u32, u32), u32> = HashMap::new();
    for e in 0..g.num_edges() {
        *count.entry((g.dst()[e], g.etype()[e])).or_insert(0) += 1;
    }
    let data: Vec<f32> = (0..g.num_edges())
        .map(|e| 1.0 / count[&(g.dst()[e], g.etype()[e])] as f32)
        .collect();
    Tensor::from_vec(data, &[g.num_edges(), 1])
}

/// Slices full-graph input bindings into extraction-local row order
/// through the node/edge remap tables of a
/// [`hector_graph::Extraction`] / [`hector_graph::Subgraph`]: node-space
/// inputs gather `node_map` rows, edge-space inputs gather `edge_map`
/// rows, and the RGCN `cnorm` constants are **recomputed on the
/// extracted graph** (normalisation denominators are local in-degrees;
/// slicing the full-graph constants would under-count destinations whose
/// edges were sampled or sharded away — for shard interiors, which keep
/// every in-edge, the recomputed values equal the full-graph ones
/// bitwise).
///
/// Shared by the mini-batch pipeline and sharded execution
/// (`hector-shard`), so both rebind paths stay one audited
/// implementation.
///
/// # Panics
///
/// Panics if a non-`cnorm` input is missing from `full`, or if a remap
/// entry indexes outside the full binding's rows.
#[must_use]
pub fn gather_bindings(
    inputs: &[VarInfo],
    graph: &GraphData,
    full: &Bindings,
    node_map: &[u32],
    edge_map: &[u32],
) -> Bindings {
    let mut bindings = Bindings::new();
    for info in inputs {
        let rows = graph.rows_of_space(info.space);
        if info.name == "cnorm" {
            bindings.set(&info.name, cnorm_tensor(graph));
            continue;
        }
        let src = full
            .get(&info.name)
            .unwrap_or_else(|| panic!("missing input binding '{}'", info.name));
        let mut data = vec![0.0f32; rows * info.width];
        let map = match info.space {
            Space::Node => node_map,
            Space::Edge => edge_map,
            Space::Compact => unreachable!("programs declare node/edge inputs only"),
        };
        for (local, &orig) in map.iter().enumerate() {
            let o = orig as usize * info.width;
            data[local * info.width..(local + 1) * info.width]
                .copy_from_slice(&src.data()[o..o + info.width]);
        }
        bindings.set(&info.name, Tensor::from_vec(data, &[rows, info.width]));
    }
    bindings
}

/// Run-level reuse plan: the variable store, device-charge flags, and
/// loss staging buffer that persist across successive [`Session::forward`]
/// / [`Session::train_step`] calls.
///
/// Buffers are keyed by variable id and shape and grow monotonically:
/// the first run materialises every output/gradient tensor, every later
/// run zero-fills and reuses them (a zeroed persistent buffer is
/// indistinguishable from a freshly allocated one, so results are
/// bit-identical to the fresh-store path). Simulated-device memory is
/// still charged per run through the `charged` flags, so timing, peak
/// footprint, and OOM behaviour exactly match a fresh run. Plan growth
/// events and footprint surface through
/// [`hector_device::ScratchStats::plan_grows`] on the device counters;
/// `tests/run_alloc.rs` pins that a warm sequential `train_step`
/// performs **zero** heap allocations.
#[derive(Debug, Default)]
struct RunPlan {
    vars: VarStore,
    /// Per-`VarId` device-charge flags for the current run (reset each
    /// run; capacity persists).
    charged: Vec<bool>,
    /// Reused NLL loss-gradient staging buffer.
    loss_grad: Vec<f32>,
    /// Buffer (re)materialisation events since construction.
    grows: usize,
}

impl RunPlan {
    /// Starts a run: clears the charge flags. Buffers are zero-filled
    /// lazily, at each variable's first charge of the run
    /// ([`RunPlan::ensure`]) — only the current program's variables pay
    /// the memset, input buffers (fully overwritten by `bind_inputs`)
    /// skip it, and stale buffers from other modules the session ran
    /// earlier are left untouched.
    fn begin(&mut self, var_count: usize) {
        if self.charged.len() < var_count {
            self.charged.resize(var_count, false);
        }
        self.charged.fill(false);
    }

    fn charged(&self, v: VarId) -> bool {
        self.charged.get(v.0 as usize).copied().unwrap_or(false)
    }

    fn set_charged(&mut self, v: VarId) {
        let i = v.0 as usize;
        if i >= self.charged.len() {
            self.charged.resize(i + 1, false);
        }
        self.charged[i] = true;
    }

    /// Makes sure `v` has a reusable buffer of the right mode and shape,
    /// materialising (and counting a growth event) only on mismatch. A
    /// reused real buffer is zero-filled here — its first charge of the
    /// run — making it indistinguishable from the freshly allocated
    /// zeros of the owned-store path. Callers guarantee at most one call
    /// per variable per run (the `charged` flags for device-backed vars;
    /// single assignment for register locals), so a mid-run re-zero of a
    /// scatter target can never happen.
    fn ensure(&mut self, v: VarId, rows: usize, width: usize, mode: Mode) {
        match (mode, self.vars.try_get(v)) {
            (Mode::Real, Some(Buffer::Real(t))) if t.shape() == [rows, width] => {
                self.vars.get_mut(v).tensor_mut().data_mut().fill(0.0);
            }
            (Mode::Real, Some(Buffer::Real(_))) => {
                // Shape changed — e.g. successive mini-batch subgraphs of
                // different sizes. Re-shape the buffer in place; the
                // allocation is reused whenever capacity suffices, and a
                // growth event counts only when it actually reallocates,
                // so warm batch steps whose shapes fit stay alloc-free.
                if self
                    .vars
                    .get_mut(v)
                    .tensor_mut()
                    .reset_shape_zeroed(&[rows, width])
                {
                    self.grows += 1;
                }
            }
            (Mode::Modeled, Some(Buffer::Modeled { rows: r, width: w }))
                if *r == rows && *w == width => {}
            (Mode::Modeled, Some(Buffer::Modeled { .. })) => {
                // Modeled buffers carry no storage: re-shape silently.
                self.vars.insert(v, Buffer::Modeled { rows, width });
            }
            _ => {
                self.grows += 1;
                let buf = match mode {
                    Mode::Real => Buffer::Real(Tensor::zeros(&[rows, width])),
                    Mode::Modeled => Buffer::Modeled { rows, width },
                };
                self.vars.insert(v, buf);
            }
        }
    }

    /// Current plan footprint in bytes (persistent buffers + staging).
    fn bytes(&self) -> usize {
        self.vars.byte_size() + self.loss_grad.capacity() * std::mem::size_of::<f32>()
    }
}

/// An execution context over one simulated device.
#[derive(Debug)]
pub struct Session {
    device: Device,
    mode: Mode,
    par: ParallelConfig,
    /// Worker pool for the parallel real-mode executor. `None` when
    /// `num_threads == 1` (the exact sequential code path) or in modeled
    /// mode (nothing to execute).
    pool: Option<ThreadPool>,
    /// Reusable scratch arena for the real-mode interpreter hot path:
    /// buffers grow to the widest kernel row once, then every later
    /// kernel (and run) reuses them — zero per-row heap allocations in
    /// steady state. Growth events and footprint surface through
    /// [`hector_device::ScratchStats`] on the device counters.
    scratch: Scratch,
    /// Pooled per-chunk worker state for the parallel executor (scratch
    /// blocks, contribution buffers, scatter staging) — the threaded
    /// twin of `scratch`, making warm parallel runs allocation-free too.
    arenas: WorkerArenas,
    /// The execution backend every real-mode kernel launch routes
    /// through — see [`crate::backend`].
    backend: Arc<dyn Backend>,
    /// The backend's prepared state for the module last run, rebuilt
    /// only when the module (or backend) changes — warm runs reuse it.
    exec_plan: Option<ExecPlan>,
    /// Persistent run plan backing [`Session::forward`] and
    /// [`Session::train_step`] — see [`RunPlan`].
    plan: RunPlan,
}

impl Session {
    /// Creates a session. Parallelism defaults from the environment
    /// ([`ParallelConfig::from_env`], i.e. `HECTOR_THREADS`, default 1).
    #[must_use]
    pub fn new(config: DeviceConfig, mode: Mode) -> Session {
        Session::with_parallel(config, mode, ParallelConfig::from_env())
    }

    /// Creates a session with an explicit parallel configuration.
    /// `num_threads = 1` takes the exact sequential code path (no pool
    /// is created); any higher count executes real-mode kernels across a
    /// work-stealing pool with outputs bit-identical to the sequential
    /// path (see the `par_exec` module docs for the merge-order scheme).
    ///
    /// # Panics
    ///
    /// Panics on an invalid `par` (zero threads / zero chunk rows — use
    /// [`Session::with_backend`] for the fallible form) or if
    /// `HECTOR_BACKEND` is set to an unrecognised value (see
    /// [`BackendKind::from_env`]).
    #[must_use]
    pub fn with_parallel(config: DeviceConfig, mode: Mode, par: ParallelConfig) -> Session {
        Session::with_backend(config, mode, par, BackendKind::from_env())
            .expect("valid parallel configuration")
    }

    /// Creates a session with an explicit parallel configuration and
    /// execution backend (overriding `HECTOR_BACKEND`).
    ///
    /// # Errors
    ///
    /// Returns [`HectorError::InvalidConfig`] for a [`ParallelConfig`]
    /// with zero worker threads or zero minimum chunk rows (both would
    /// deadlock or divide by zero downstream; environment-derived
    /// configurations are always valid — this guards hand-built ones).
    pub fn with_backend(
        config: DeviceConfig,
        mode: Mode,
        par: ParallelConfig,
        kind: BackendKind,
    ) -> Result<Session, HectorError> {
        if par.num_threads == 0 {
            return Err(HectorError::InvalidConfig {
                detail: "ParallelConfig.num_threads must be >= 1".into(),
            });
        }
        if par.min_chunk_rows == 0 {
            return Err(HectorError::InvalidConfig {
                detail: "ParallelConfig.min_chunk_rows must be >= 1".into(),
            });
        }
        let pool = if mode == Mode::Real {
            ThreadPool::from_config(&par)
        } else {
            None
        };
        hector_trace::set_backend_label(kind.name());
        Ok(Session {
            device: Device::new(config),
            mode,
            par,
            pool,
            scratch: Scratch::new(),
            arenas: WorkerArenas::new(),
            backend: backend::create(kind),
            exec_plan: None,
            plan: RunPlan::default(),
        })
    }

    /// The execution backend this session runs kernels on.
    #[must_use]
    pub fn backend_kind(&self) -> BackendKind {
        self.backend.kind()
    }

    /// Stable name of the session's execution backend ("interp",
    /// "specialized").
    #[must_use]
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Ensures `exec_plan` holds this backend's prepared state for
    /// `module`, rebuilding it on module or backend change. Returns
    /// whether an existing plan was reused (surfaced through
    /// [`hector_device::BackendStats`]).
    fn ensure_plan(&mut self, module: &CompiledModule) -> bool {
        if let Some(plan) = &self.exec_plan {
            if plan.matches(self.backend.kind(), module) {
                return true;
            }
        }
        self.exec_plan = Some(self.backend.prepare(module));
        false
    }

    /// The underlying device (counters, memory state).
    #[must_use]
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Mutable device access (host-side counter recording, resets).
    pub fn device_mut(&mut self) -> &mut Device {
        &mut self.device
    }

    /// Execution mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The session's parallel configuration.
    #[must_use]
    pub fn parallel_config(&self) -> ParallelConfig {
        self.par
    }

    /// Pool activity counters, when a pool exists.
    #[must_use]
    pub fn pool_stats(&self) -> Option<hector_par::PoolStats> {
        self.pool.as_ref().map(ThreadPool::stats)
    }

    /// The persistent run plan's variable store — the buffers
    /// [`Session::forward`] / [`Session::train_step`] write outputs and
    /// gradients into. Empty until the first plan-reusing run.
    #[must_use]
    pub fn plan_vars(&self) -> &VarStore {
        &self.plan.vars
    }

    fn alloc_var(
        &mut self,
        program: &Program,
        graph: &GraphData,
        plan: &mut RunPlan,
        v: VarId,
    ) -> Result<(), OomError> {
        if plan.charged(v) {
            return Ok(());
        }
        let info = program.var(v);
        let rows = graph.rows_of_space(info.space);
        self.device
            .alloc(var_bytes(program, graph, v), &info.name)?;
        plan.set_charged(v);
        plan.ensure(v, rows, info.width, self.mode);
        Ok(())
    }

    /// Materialises a register-local buffer (no device memory charged).
    fn insert_local(&mut self, program: &Program, graph: &GraphData, plan: &mut RunPlan, v: VarId) {
        if self.mode == Mode::Modeled {
            return;
        }
        let info = program.var(v);
        let rows = graph.rows_of_space(info.space);
        plan.ensure(v, rows, info.width, Mode::Real);
    }

    fn bind_inputs(
        &mut self,
        program: &Program,
        graph: &GraphData,
        plan: &mut RunPlan,
        inputs: &Bindings,
    ) -> Result<(), OomError> {
        for &v in &program.inputs {
            if plan.charged(v) {
                continue;
            }
            let info = program.var(v);
            match self.mode {
                Mode::Real => {
                    let t = inputs
                        .get(&info.name)
                        .unwrap_or_else(|| panic!("missing input binding '{}'", info.name));
                    let rows = graph.rows_of_space(info.space);
                    assert_eq!(
                        t.shape(),
                        &[rows, info.width],
                        "binding '{}' has the wrong shape",
                        info.name
                    );
                    self.device.alloc(t.byte_size(), &info.name)?;
                    plan.set_charged(v);
                    // Copy into the persistent buffer, re-shaping it in
                    // place on mismatch (batch inputs change shape every
                    // batch); a growth event counts only when the buffer
                    // actually reallocates.
                    match plan.vars.try_get(v) {
                        Some(Buffer::Real(prev)) => {
                            if prev.shape() != t.shape()
                                && plan
                                    .vars
                                    .get_mut(v)
                                    .tensor_mut()
                                    .reset_shape_zeroed(t.shape())
                            {
                                plan.grows += 1;
                            }
                            plan.vars
                                .get_mut(v)
                                .tensor_mut()
                                .data_mut()
                                .copy_from_slice(t.data());
                        }
                        _ => {
                            plan.grows += 1;
                            plan.vars.insert(v, Buffer::Real(t.clone()));
                        }
                    }
                }
                Mode::Modeled => {
                    self.alloc_var(program, graph, plan, v)?;
                }
            }
        }
        Ok(())
    }

    fn run_kernels(
        &mut self,
        kernels: &[KernelSpec],
        program: &Program,
        graph: &GraphData,
        params: &mut ParamStore,
        plan: &mut RunPlan,
        phase: Phase,
    ) -> Result<(), OomError> {
        for (ki, spec) in kernels.iter().enumerate() {
            // One trace span per kernel invocation (sequential and
            // parallel executors alike); a single relaxed load when
            // tracing is off, keeping the warm path allocation-free.
            let tr = span_start();
            // Materialise outputs (locals stay off-device).
            match spec {
                KernelSpec::Gemm(g) => {
                    if let Some(out) = g.op.kind.out_var() {
                        self.alloc_var(program, graph, plan, out)?;
                    }
                }
                KernelSpec::Traversal(t) => {
                    for op in &t.ops {
                        if let Some(out) = op.kind.out_var() {
                            if t.local_vars.contains(&out) {
                                self.insert_local(program, graph, plan, out);
                            } else {
                                self.alloc_var(program, graph, plan, out)?;
                            }
                        }
                    }
                }
                KernelSpec::Fallback(_) => {}
            }
            let cost = kernel_cost(spec, program, graph, phase);
            self.device.launch(&cost);
            if self.mode == Mode::Real {
                let vars = &mut plan.vars;
                let stats_before = self.pool.as_ref().map(ThreadPool::stats);
                let grows_before = self.scratch.grows();
                let start = Instant::now();
                let exec_plan = self
                    .exec_plan
                    .as_ref()
                    .expect("backend plan prepared before kernels run");
                let mut ctx = ExecCtx {
                    program,
                    graph,
                    params,
                    vars,
                    pool: self.pool.as_ref(),
                    min_chunk: self.par.min_chunk_rows,
                    scratch: &mut self.scratch,
                    arenas: &mut self.arenas,
                };
                // Whether the kernel actually split across chunks —
                // safety fallbacks and unsplittable domains count as
                // sequential in the ParallelStats report.
                let ran_parallel = self
                    .backend
                    .run_kernel(exec_plan, phase, ki, spec, &mut ctx);
                if !matches!(spec, KernelSpec::Fallback(_)) {
                    let wall_us = start.elapsed().as_secs_f64() * 1e6;
                    self.device
                        .record_scratch(self.scratch.grows() - grows_before, self.scratch.bytes());
                    let (chunks, steals) = match (stats_before, self.pool.as_ref()) {
                        (Some(before), Some(pool)) => {
                            let after = pool.stats();
                            (
                                usize::try_from(after.executed - before.executed)
                                    .unwrap_or(usize::MAX),
                                after.steals - before.steals,
                            )
                        }
                        _ => (0, 0),
                    };
                    let category = match spec {
                        KernelSpec::Gemm(_) => KernelCategory::Gemm,
                        _ => KernelCategory::Traversal,
                    };
                    self.device
                        .record_host_exec(category, ran_parallel, wall_us, chunks, steals);
                }
            }
            if let Some(t0) = tr {
                let (tname, trows) = kernel_trace_meta(spec, graph);
                record_span(
                    tname,
                    SpanCat::Kernel,
                    t0,
                    trows,
                    u32::try_from(ki).unwrap_or(u32::MAX),
                    cost.flops,
                );
            }
        }
        if self.mode == Mode::Real {
            self.device.record_backend_kernels(kernels.len() as u64);
        }
        Ok(())
    }

    fn base_allocations(
        &mut self,
        graph: &GraphData,
        params: &ParamStore,
        training: bool,
    ) -> Result<(), OomError> {
        self.device.alloc(graph.structure_bytes(), "graph")?;
        self.device.alloc(params.byte_size(), "weights")?;
        if training {
            self.device.alloc(params.byte_size(), "weight_grads")?;
        }
        Ok(())
    }

    /// Shared inference core: one forward pass into `plan`.
    fn infer_core(
        &mut self,
        plan: &mut RunPlan,
        module: &CompiledModule,
        graph: &GraphData,
        params: &mut ParamStore,
        inputs: &Bindings,
    ) -> Result<RunReport, OomError> {
        let run0 = span_start();
        let tr = span_start();
        self.device.reset();
        if self.mode == Mode::Real {
            let reused = self.ensure_plan(module);
            self.device.record_backend(self.backend.name(), reused);
        }
        self.base_allocations(graph, params, false)?;
        plan.begin(module.forward.vars.len());
        if let Some(t0) = tr {
            record_span("phase/setup", SpanCat::Phase, t0, 0, 0, 0.0);
        }
        let tr = span_start();
        self.bind_inputs(&module.forward, graph, plan, inputs)?;
        if let Some(t0) = tr {
            record_span("phase/bind_inputs", SpanCat::Phase, t0, 0, 0, 0.0);
        }
        self.run_kernels(
            &module.fw_kernels,
            &module.forward,
            graph,
            params,
            plan,
            Phase::Forward,
        )?;
        let report = self.report(None);
        if let Some(t0) = run0 {
            record_span("run/forward", SpanCat::Run, t0, 0, 0, 0.0);
        }
        Ok(report)
    }

    /// Shared training core: forward, NLL loss, backward, prep chain
    /// rule, optimizer update — all into `plan`.
    #[allow(clippy::too_many_arguments)]
    fn train_core(
        &mut self,
        plan: &mut RunPlan,
        module: &CompiledModule,
        graph: &GraphData,
        params: &mut ParamStore,
        inputs: &Bindings,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> Result<RunReport, OomError> {
        let bw_program = module
            .backward
            .as_ref()
            .expect("module was not compiled for training");
        let run0 = span_start();
        let tr = span_start();
        self.device.reset();
        if self.mode == Mode::Real {
            let reused = self.ensure_plan(module);
            self.device.record_backend(self.backend.name(), reused);
        }
        self.base_allocations(graph, params, true)?;
        params.zero_grads();
        plan.begin(module.forward.vars.len().max(bw_program.vars.len()));
        if let Some(t0) = tr {
            record_span("phase/setup", SpanCat::Phase, t0, 0, 0, 0.0);
        }
        let tr = span_start();
        self.bind_inputs(&module.forward, graph, plan, inputs)?;
        if let Some(t0) = tr {
            record_span("phase/bind_inputs", SpanCat::Phase, t0, 0, 0, 0.0);
        }
        self.run_kernels(
            &module.fw_kernels,
            &module.forward,
            graph,
            params,
            plan,
            Phase::Forward,
        )?;

        // Loss + output-gradient seeds.
        let out_var = *module.forward.outputs.first().expect("model has an output");
        let n_outputs = module.forward.outputs.len();
        let seeds = &bw_program.inputs[..n_outputs];
        let mut loss_value = None;
        let tr = span_start();
        let loss_cost = self.loss_cost(&module.forward, graph, out_var);
        self.device.launch(&loss_cost);
        match self.mode {
            Mode::Real => {
                // The gradient is staged in the plan's reusable buffer
                // while the logits borrow the store, then copied into
                // the seed variable once the borrow ends.
                {
                    let RunPlan {
                        vars,
                        loss_grad,
                        grows,
                        ..
                    } = &mut *plan;
                    let logits = vars.tensor(out_var);
                    let need = logits.len();
                    if loss_grad.len() < need {
                        loss_grad.resize(need, 0.0);
                        *grows += 1;
                    }
                    loss_value = Some(nll_loss_and_grad_into(
                        logits,
                        labels,
                        &mut loss_grad[..need],
                    ));
                }
                self.alloc_var(bw_program, graph, plan, seeds[0])?;
                let seed = plan.vars.get_mut(seeds[0]).tensor_mut();
                let need = seed.len();
                seed.data_mut().copy_from_slice(&plan.loss_grad[..need]);
                for &s in &seeds[1..] {
                    // Multi-output models: zero seed gradients beyond the
                    // loss-bearing first output.
                    self.alloc_var(bw_program, graph, plan, s)?;
                }
            }
            Mode::Modeled => {
                for &s in seeds {
                    self.alloc_var(bw_program, graph, plan, s)?;
                }
            }
        }
        if let Some(t0) = tr {
            record_span(
                "phase/loss",
                SpanCat::Phase,
                t0,
                labels.len() as u64,
                0,
                0.0,
            );
        }

        self.run_kernels(
            &module.bw_kernels,
            bw_program,
            graph,
            params,
            plan,
            Phase::Backward,
        )?;
        let tr = span_start();
        if self.mode == Mode::Real {
            params.backprop_preps(&module.forward);
            optimizer.step(params, &module.forward);
        }
        // Prep backward + optimizer run as framework calls.
        self.device.charge_api_call();
        if let Some(t0) = tr {
            record_span("phase/optimizer", SpanCat::Phase, t0, 0, 0, 0.0);
        }
        let report = self.report(loss_value);
        if let Some(t0) = run0 {
            record_span("run/train_step", SpanCat::Run, t0, 0, 0, 0.0);
        }
        Ok(report)
    }

    /// Runs full-graph inference.
    ///
    /// **Low-level API** — prefer the [`crate::Engine`] handle
    /// (`EngineBuilder → bind → forward`), which wires the module
    /// cache, seeding, and the allocation-free plan path for you; this
    /// method is kept (deprecated in spirit, stable in signature) for
    /// callers that manage modules, parameters, and bindings manually.
    ///
    /// Returns an owned variable store (holding the program outputs) and
    /// a run report; every buffer is freshly materialised. Training
    /// loops that care about allocator traffic should prefer
    /// [`Session::forward`], which reuses the session's run plan.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the run exceeds device memory, matching
    /// the paper's OOM accounting.
    ///
    /// # Panics
    ///
    /// Panics in real mode if an input binding is missing or mis-shaped.
    #[deprecated(
        since = "0.1.0",
        note = "use EngineBuilder: build() → bind() → forward() wires the module cache, \
                seeding, and the allocation-free plan path, and reports misuse as HectorError"
    )]
    pub fn run_inference(
        &mut self,
        module: &CompiledModule,
        graph: &GraphData,
        params: &mut ParamStore,
        inputs: &Bindings,
    ) -> Result<(VarStore, RunReport), OomError> {
        let mut plan = RunPlan::default();
        let report = self.infer_core(&mut plan, module, graph, params, inputs)?;
        Ok((plan.vars, report))
    }

    /// Runs full-graph inference through the session's persistent
    /// run plan: output tensors are reused across calls (zero-filled
    /// at run start), so after the first call a warm forward pass —
    /// sequential or threaded — performs no heap allocation. Results
    /// are bit-identical to
    /// [`Session::run_inference`].
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the run exceeds device memory.
    ///
    /// # Panics
    ///
    /// Panics in real mode if an input binding is missing or mis-shaped.
    pub fn forward(
        &mut self,
        module: &CompiledModule,
        graph: &GraphData,
        params: &mut ParamStore,
        inputs: &Bindings,
    ) -> Result<(&VarStore, RunReport), OomError> {
        let mut plan = std::mem::take(&mut self.plan);
        let grows_before = plan.grows;
        let res = self.infer_core(&mut plan, module, graph, params, inputs);
        self.device
            .record_plan(plan.grows - grows_before, plan.bytes());
        self.plan = plan;
        let report = res?;
        Ok((&self.plan.vars, report))
    }

    /// Runs one full-graph training step: forward, NLL loss against
    /// `labels`, backward, prep chain rule, optimizer update.
    ///
    /// **Low-level API** — prefer the [`crate::Trainer`] handle
    /// (`EngineBuilder → build_trainer → bind → step`), which wires the
    /// module cache, seeding, labels, and the allocation-free plan path
    /// for you; this method is kept for callers that manage every piece
    /// manually.
    ///
    /// Returns an owned variable store; every buffer is freshly
    /// materialised. Training loops should prefer
    /// [`Session::train_step`], which reuses the session's run plan and
    /// is allocation-free once warm.
    ///
    /// `labels` may be empty in modeled mode.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the run exceeds device memory.
    ///
    /// # Panics
    ///
    /// Panics if the module was not compiled with training enabled, or in
    /// real mode if labels/bindings are inconsistent.
    #[deprecated(
        since = "0.1.0",
        note = "use EngineBuilder: build_trainer() → bind() → step() wires the module \
                cache, seeding, labels, and the allocation-free plan path, and reports \
                misuse as HectorError"
    )]
    #[allow(clippy::too_many_arguments)]
    pub fn run_training_step(
        &mut self,
        module: &CompiledModule,
        graph: &GraphData,
        params: &mut ParamStore,
        inputs: &Bindings,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> Result<(VarStore, RunReport), OomError> {
        let mut plan = RunPlan::default();
        let report =
            self.train_core(&mut plan, module, graph, params, inputs, labels, optimizer)?;
        Ok((plan.vars, report))
    }

    /// Runs one training step through the session's persistent
    /// run plan: output/gradient tensors, the loss staging buffer,
    /// and the scratch arena are all reused, so after the first step a
    /// training loop performs **zero** heap allocations — sequential
    /// *and* threaded, which pools its per-chunk worker arenas on the
    /// session (pinned by `tests/run_alloc.rs`). Results are
    /// bit-identical to [`Session::run_training_step`].
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when the run exceeds device memory.
    ///
    /// # Panics
    ///
    /// Panics if the module was not compiled with training enabled, or in
    /// real mode if labels/bindings are inconsistent.
    #[allow(clippy::too_many_arguments)]
    pub fn train_step(
        &mut self,
        module: &CompiledModule,
        graph: &GraphData,
        params: &mut ParamStore,
        inputs: &Bindings,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> Result<(&VarStore, RunReport), OomError> {
        let mut plan = std::mem::take(&mut self.plan);
        let grows_before = plan.grows;
        let res = self.train_core(&mut plan, module, graph, params, inputs, labels, optimizer);
        self.device
            .record_plan(plan.grows - grows_before, plan.bytes());
        self.plan = plan;
        let report = res?;
        Ok((&self.plan.vars, report))
    }

    fn loss_cost(&self, program: &Program, graph: &GraphData, out: VarId) -> KernelCost {
        let info = program.var(out);
        let rows = graph.rows_of_space(info.space) as f64;
        let mut c = KernelCost::new(KernelCategory::Fallback, Phase::Backward);
        c.flops = rows * info.width as f64 * 4.0;
        c.bytes_read = rows * info.width as f64 * 4.0;
        c.bytes_written = rows * info.width as f64 * 4.0;
        c.items = rows * info.width as f64 / 32.0;
        c
    }

    fn report(&self, loss: Option<f32>) -> RunReport {
        let c = self.device.counters();
        RunReport {
            elapsed_us: self.device.elapsed_us(),
            peak_bytes: self.device.memory().peak(),
            launches: c.total_launches(),
            gemm_us: c.category_duration_us(KernelCategory::Gemm),
            traversal_us: c.category_duration_us(KernelCategory::Traversal),
            copy_us: c.category_duration_us(KernelCategory::Copy),
            fallback_us: c.category_duration_us(KernelCategory::Fallback)
                + self.device.host_api_us(),
            forward_us: c.phase_duration_us(Phase::Forward),
            backward_us: c.phase_duration_us(Phase::Backward),
            loss,
        }
    }
}

#[cfg(test)]
// These tests pin the legacy (deprecated) run_* surface on purpose.
#[allow(deprecated)]
mod tests {
    use super::*;
    use hector_compiler::{compile, CompileOptions};
    use hector_graph::HeteroGraphBuilder;
    use hector_ir::builder::ModelSource;
    use hector_ir::{AggNorm, ModelBuilder};
    use hector_tensor::seeded_rng;

    /// Fig. 6(a)-style toy graph.
    fn toy_graph() -> GraphData {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(6);
        b.add_edge(5, 3, 0);
        b.add_edge(5, 4, 0);
        b.add_edge(1, 0, 1);
        b.add_edge(2, 0, 1);
        b.add_edge(3, 0, 1);
        b.add_edge(4, 1, 1);
        b.add_edge(4, 2, 1);
        GraphData::new(b.build())
    }

    fn rgcn_source(dim: usize) -> ModelSource {
        let mut m = ModelBuilder::new("rgcn", dim);
        let h = m.node_input("h", dim);
        let c = m.edge_input("cnorm", 1);
        let w = m.weight_per_etype("W", dim, dim);
        let w0 = m.weight_shared("W0", dim, dim);
        let msg = m.typed_linear("msg", m.src(h), w);
        let agg = m.aggregate("agg", m.edge(msg), Some(m.edge(c)), AggNorm::None);
        let selfl = m.typed_linear("selfl", m.this(h), w0);
        let sum = m.add("sum", m.this(agg), m.this(selfl));
        let out = m.relu("out", m.this(sum));
        m.output(out);
        m.finish()
    }

    #[test]
    fn rgcn_inference_runs_and_matches_reference() {
        let graph = toy_graph();
        let src = rgcn_source(4);
        let module = compile(&src, &CompileOptions::unopt());
        let mut rng = seeded_rng(42);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let mut rng2 = seeded_rng(7);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);
        let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let (vars, report) = session
            .run_inference(&module, &graph, &mut params, &bindings)
            .unwrap();

        // Reference: dense per-node computation.
        let h = bindings.get("h").unwrap();
        let cn = bindings.get("cnorm").unwrap();
        let g = graph.graph();
        let out_var = module.forward.outputs[0];
        let got = vars.tensor(out_var);
        for v in 0..g.num_nodes() {
            let mut expect = [0.0f32; 4];
            // Self-loop W0.
            let w0 = params.weight(hector_ir::WeightId(1));
            for (j, e) in expect.iter_mut().enumerate() {
                for p in 0..4 {
                    *e += h.at2(v, p) * w0.at3(0, p, j);
                }
            }
            // Incoming messages.
            for e in 0..g.num_edges() {
                if g.dst()[e] as usize != v {
                    continue;
                }
                let s = g.src()[e] as usize;
                let ty = g.etype()[e] as usize;
                let w = params.weight(hector_ir::WeightId(0));
                for (j, ex) in expect.iter_mut().enumerate() {
                    let mut m = 0.0;
                    for p in 0..4 {
                        m += h.at2(s, p) * w.at3(ty, p, j);
                    }
                    *ex += m * cn.at2(e, 0);
                }
            }
            for (j, &e) in expect.iter().enumerate() {
                let want = e.max(0.0);
                let gotv = got.at2(v, j);
                assert!(
                    (gotv - want).abs() < 1e-4,
                    "node {v} col {j}: got {gotv}, want {want}"
                );
            }
        }
        assert!(report.elapsed_us > 0.0);
        assert!(report.launches >= 3);
        assert!(report.peak_bytes > 0);
    }

    #[test]
    fn standard_bindings_are_independent_of_declaration_and_output_order() {
        // Regression pin for the per-input seed contract: streams derive
        // from `base ^ fnv1a(name)` only, so reordering the program's
        // input declarations or outputs (which optimization combos do)
        // must not change any input tensor. A formulation that mixed the
        // iteration index into the seed would fail both assertions.
        let graph = toy_graph();
        let build = |flip: bool| {
            let mut m = ModelBuilder::new("order", 4);
            let (a, b) = if flip {
                let b = m.node_input("b_feat", 4);
                let a = m.node_input("a_feat", 4);
                (a, b)
            } else {
                let a = m.node_input("a_feat", 4);
                let b = m.node_input("b_feat", 4);
                (a, b)
            };
            let sum = m.add("sum", m.this(a), m.this(b));
            let out = m.relu("out", m.this(sum));
            let out2 = m.relu("out2", m.this(sum));
            if flip {
                m.output(out2);
                m.output(out);
            } else {
                m.output(out);
                m.output(out2);
            }
            m.finish().program
        };
        let fwd = build(false);
        let flipped = build(true);
        let mut rng1 = seeded_rng(99);
        let b1 = Bindings::standard(&fwd, &graph, &mut rng1);
        let mut rng2 = seeded_rng(99);
        let b2 = Bindings::standard(&flipped, &graph, &mut rng2);
        for name in ["a_feat", "b_feat"] {
            assert_eq!(
                b1.get(name).unwrap().data(),
                b2.get(name).unwrap().data(),
                "input '{name}' must be bit-identical regardless of declaration/output order"
            );
        }
    }

    #[test]
    fn modeled_mode_matches_real_mode_timing() {
        let graph = toy_graph();
        let src = rgcn_source(8);
        let module = compile(&src, &CompileOptions::unopt());
        let mut rng = seeded_rng(1);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let mut rng2 = seeded_rng(2);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);

        let mut real = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let (_, r1) = real
            .run_inference(&module, &graph, &mut params, &bindings)
            .unwrap();
        let mut modeled = Session::new(DeviceConfig::rtx3090(), Mode::Modeled);
        let (_, r2) = modeled
            .run_inference(&module, &graph, &mut params, &Bindings::new())
            .unwrap();
        assert!((r1.elapsed_us - r2.elapsed_us).abs() < 1e-9);
        assert_eq!(r1.peak_bytes, r2.peak_bytes);
        assert_eq!(r1.launches, r2.launches);
    }

    #[test]
    fn training_step_decreases_loss() {
        let graph = toy_graph();
        let src = rgcn_source(4);
        let module = compile(&src, &CompileOptions::unopt().with_training(true));
        let mut rng = seeded_rng(11);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let mut rng2 = seeded_rng(12);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng2);
        let labels = vec![0usize, 1, 2, 3, 0, 1];
        let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
        let mut opt = crate::Sgd::new(0.5);
        let mut losses = Vec::new();
        for _ in 0..20 {
            let (_, report) = session
                .run_training_step(&module, &graph, &mut params, &bindings, &labels, &mut opt)
                .unwrap();
            losses.push(report.loss.unwrap());
        }
        assert!(
            losses.last().unwrap() < &(losses[0] - 0.05),
            "training should reduce loss: {losses:?}"
        );
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let graph = toy_graph();
        let src = rgcn_source(8);
        let module = compile(&src, &CompileOptions::unopt());
        let mut rng = seeded_rng(3);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let tiny = DeviceConfig::rtx3090().with_capacity(64);
        let mut session = Session::new(tiny, Mode::Modeled);
        let err = session
            .run_inference(&module, &graph, &mut params, &Bindings::new())
            .unwrap_err();
        assert!(err.capacity == 64);
    }
}
