//! Graph-derived data bound into a session: adjacency views, compaction
//! maps, and the byte accounting for the structures a GPU run would hold
//! resident.

use hector_graph::{CompactionMap, Csc, HeteroGraph};

/// A heterogeneous graph plus every derived index structure the generated
/// kernels read: CSC (incoming edges), the compaction map of unique
/// `(src, etype)` pairs, and cached per-unique-pair edge types.
#[derive(Clone, Debug)]
pub struct GraphData {
    graph: HeteroGraph,
    csc: Csc,
    compact: CompactionMap,
    unique_etype: Vec<u32>,
}

impl GraphData {
    /// Precomputes all derived structures for `graph`.
    ///
    /// This is the preprocessing step the paper's generated host code
    /// performs ("a pass that scans all the functions generated to
    /// collect a list of preprocessing required for the input dataset",
    /// §3.6).
    #[must_use]
    pub fn new(graph: HeteroGraph) -> GraphData {
        let csc = graph.csc();
        let compact = graph.compaction_map();
        let unique_etype = compact.unique_etype();
        GraphData {
            graph,
            csc,
            compact,
            unique_etype,
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// Incoming-edge view (dst-node traversal kernels).
    #[must_use]
    pub fn csc(&self) -> &Csc {
        &self.csc
    }

    /// The compaction map.
    #[must_use]
    pub fn compact(&self) -> &CompactionMap {
        &self.compact
    }

    /// Edge type of each unique `(src, etype)` pair.
    #[must_use]
    pub fn unique_etype(&self) -> &[u32] {
        &self.unique_etype
    }

    /// Number of rows in each row domain.
    #[must_use]
    pub fn rows_of(&self, rows: hector_ir::RowDomain) -> usize {
        match rows {
            hector_ir::RowDomain::Edges => self.graph.num_edges(),
            hector_ir::RowDomain::UniquePairs => self.compact.num_unique(),
            hector_ir::RowDomain::Nodes => self.graph.num_nodes(),
        }
    }

    /// Number of rows a variable of the given space occupies.
    #[must_use]
    pub fn rows_of_space(&self, space: hector_ir::Space) -> usize {
        match space {
            hector_ir::Space::Node => self.graph.num_nodes(),
            hector_ir::Space::Edge => self.graph.num_edges(),
            hector_ir::Space::Compact => self.compact.num_unique(),
        }
    }

    /// Bytes of device memory the adjacency and compaction structures
    /// occupy on the GPU (counted toward the run's footprint).
    #[must_use]
    pub fn structure_bytes(&self) -> usize {
        let e = self.graph.num_edges();
        let n = self.graph.num_nodes();
        let u = self.compact.num_unique();
        // COO (src, dst, etype) + etype_ptr + CSC (ptr + edge idx)
        // + unique_row_idx + unique_etype_ptr + edge_to_unique.
        e * 4 * 3
            + (self.graph.num_edge_types() + 1) * 8
            + (n + 1) * 8
            + e * 4
            + u * 4
            + (self.graph.num_edge_types() + 1) * 8
            + e * 4
    }

    /// Number of type slabs a weight with the given index kind needs.
    #[must_use]
    pub fn type_count(&self, per: hector_ir::TypeIndex) -> usize {
        match per {
            hector_ir::TypeIndex::EdgeType => self.graph.num_edge_types(),
            hector_ir::TypeIndex::NodeType => self.graph.num_node_types(),
            hector_ir::TypeIndex::NodeEdgePair => {
                self.graph.num_node_types() * self.graph.num_edge_types()
            }
            hector_ir::TypeIndex::Shared => 1,
        }
    }

    /// Pair-type index (`ntype(src) * num_etypes + etype`) for a row of
    /// the given domain, used by reorder-fused pair weights.
    #[must_use]
    pub fn pair_type_of(&self, rows: hector_ir::RowDomain, row: usize) -> usize {
        let et = self.graph.num_edge_types();
        match rows {
            hector_ir::RowDomain::Edges => {
                let src = self.graph.src()[row] as usize;
                self.graph.node_type()[src] as usize * et + self.graph.etype()[row] as usize
            }
            hector_ir::RowDomain::UniquePairs => {
                let src = self.compact.unique_row_idx()[row] as usize;
                self.graph.node_type()[src] as usize * et + self.unique_etype[row] as usize
            }
            hector_ir::RowDomain::Nodes => unreachable!("pair weights need edge context"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_graph::HeteroGraphBuilder;

    fn toy() -> GraphData {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(3);
        b.add_node_type(2);
        b.add_edge(0, 3, 0);
        b.add_edge(0, 4, 0);
        b.add_edge(1, 3, 1);
        GraphData::new(b.build())
    }

    #[test]
    fn rows_of_domains() {
        let g = toy();
        assert_eq!(g.rows_of(hector_ir::RowDomain::Edges), 3);
        assert_eq!(g.rows_of(hector_ir::RowDomain::Nodes), 5);
        // Node 0 appears twice with etype 0 → 2 unique pairs overall.
        assert_eq!(g.rows_of(hector_ir::RowDomain::UniquePairs), 2);
    }

    #[test]
    fn type_counts() {
        let g = toy();
        assert_eq!(g.type_count(hector_ir::TypeIndex::EdgeType), 2);
        assert_eq!(g.type_count(hector_ir::TypeIndex::NodeType), 2);
        assert_eq!(g.type_count(hector_ir::TypeIndex::NodeEdgePair), 4);
        assert_eq!(g.type_count(hector_ir::TypeIndex::Shared), 1);
    }

    #[test]
    fn pair_type_index() {
        let g = toy();
        // Edge 0: src 0 (ntype 0), etype 0 → pair 0.
        assert_eq!(g.pair_type_of(hector_ir::RowDomain::Edges, 0), 0);
        // Edge 2: src 1 (ntype 0), etype 1 → pair 1.
        assert_eq!(g.pair_type_of(hector_ir::RowDomain::Edges, 2), 1);
    }

    #[test]
    fn structure_bytes_positive() {
        assert!(toy().structure_bytes() > 0);
    }
}
