//! Parameter optimizers (SGD, Adam).
//!
//! Derived weights (introduced by linear operator reordering) are skipped:
//! they are recomputed from their base weights by the prep kernels at the
//! start of every forward pass.

use hector_ir::{Program, WeightId};
use hector_tensor::Tensor;

use crate::ParamStore;

/// A parameter-update rule.
pub trait Optimizer {
    /// Applies one update step using the gradients in `params`.
    fn step(&mut self, params: &mut ParamStore, program: &Program);

    /// Clears accumulated state (moments, step counts) so the optimizer
    /// behaves as freshly constructed. Called by `Trainer::bind` when a
    /// graph is (re)bound — training restarts must be deterministic.
    /// Stateless rules (plain SGD) need not override the default no-op.
    fn reset(&mut self) {}
}

/// Plain stochastic gradient descent.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    #[must_use]
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamStore, program: &Program) {
        for i in 0..program.weights.len() {
            if program.weights[i].derived {
                continue;
            }
            let (w, g) = params.weight_and_grad_mut(WeightId(i as u32));
            for (wv, &gv) in w.data_mut().iter_mut().zip(g.data()) {
                *wv -= self.lr * gv;
            }
        }
    }
}

/// Adam optimizer with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical stabiliser.
    pub eps: f32,
    t: u32,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates Adam with standard defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    #[must_use]
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamStore, program: &Program) {
        self.t += 1;
        let n = program.weights.len();
        self.m.resize(n, None);
        self.v.resize(n, None);
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..n {
            if program.weights[i].derived {
                continue;
            }
            let id = WeightId(i as u32);
            // Moment tensors materialise on the first step and are
            // updated in place afterwards: a warm step is allocation-free.
            {
                let g = params.grad(id);
                let m = self.m[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
                for (mv, &gv) in m.data_mut().iter_mut().zip(g.data()) {
                    *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                }
                let v = self.v[i].get_or_insert_with(|| Tensor::zeros(g.shape()));
                for (vv, &gv) in v.data_mut().iter_mut().zip(g.data()) {
                    *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
                }
            }
            let (m, v) = (
                self.m[i].as_ref().expect("moment initialised above"),
                self.v[i].as_ref().expect("moment initialised above"),
            );
            let w = params.weight_mut(id);
            for ((wv, &mv), &vv) in w.data_mut().iter_mut().zip(m.data()).zip(v.data()) {
                let mhat = mv / bc1;
                let vhat = vv / bc2;
                *wv -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn reset(&mut self) {
        self.t = 0;
        self.m.clear();
        self.v.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphData;
    use hector_graph::HeteroGraphBuilder;
    use hector_ir::ModelBuilder;
    use hector_tensor::seeded_rng;

    fn setup() -> (Program, ParamStore, WeightId) {
        let mut m = ModelBuilder::new("t", 2);
        let h = m.node_input("h", 2);
        let w = m.weight_per_etype("W", 2, 2);
        let y = m.typed_linear("y", m.src(h), w);
        let out = m.aggregate("out", m.edge(y), None, hector_ir::AggNorm::None);
        m.output(out);
        let p = m.finish().program;
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(2);
        b.add_edge(0, 1, 0);
        let g = GraphData::new(b.build());
        let mut rng = seeded_rng(1);
        let ps = ParamStore::init(&p, &g, &mut rng);
        (p, ps, w)
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let (p, mut ps, w) = setup();
        let before = ps.weight(w).data()[0];
        ps.grad_mut(w).data_mut()[0] = 1.0;
        Sgd::new(0.1).step(&mut ps, &p);
        assert!((ps.weight(w).data()[0] - (before - 0.1)).abs() < 1e-6);
    }

    #[test]
    fn adam_moves_against_gradient() {
        let (p, mut ps, w) = setup();
        let before = ps.weight(w).data()[0];
        ps.grad_mut(w).data_mut()[0] = 1.0;
        Adam::new(0.01).step(&mut ps, &p);
        let after = ps.weight(w).data()[0];
        assert!(after < before, "Adam should decrease the weight");
    }

    #[test]
    fn zero_grad_is_noop_for_sgd() {
        let (p, mut ps, w) = setup();
        let before = ps.weight(w).clone();
        Sgd::new(0.5).step(&mut ps, &p);
        assert_eq!(ps.weight(w), &before);
    }
}
