//! The one-call model lifecycle: `Engine` and `Trainer` handles.
//!
//! The paper's pitch is a *concise programming model* backed by an
//! aggressive compiler; these handles make the runtime side match.
//! Instead of threading `compile → ParamStore::init → Bindings::standard
//! → Session::new → run_*` by hand, an [`EngineBuilder`] assembles the
//! whole stack — model, dimensions, [`CompileOptions`], device, mode,
//! parallelism, seed — and yields an [`Engine`] that owns the compiled
//! module (shared through the process-wide
//! [`hector_compiler::ModuleCache`]), the device session, the scratch
//! arena, and the run plan. [`Engine::bind`] attaches a graph (deriving
//! parameters and inputs from the engine seed), and every
//! [`Bound::forward`] / [`Trainer::step`] call goes through the
//! session's persistent run plan — the zero-allocation path — by
//! construction.
//!
//! Every entry point is fallible — misuse (wrong graph, bad shapes,
//! invalid configuration) comes back as a
//! [`HectorError`](crate::HectorError), never a panic:
//!
//! ```
//! use hector_graph::HeteroGraphBuilder;
//! use hector_models::ModelKind;
//! use hector_runtime::{Adam, EngineBuilder, GraphData, HectorError};
//!
//! # fn main() -> Result<(), HectorError> {
//! let mut b = HeteroGraphBuilder::new();
//! b.add_node_type(4);
//! b.add_edge(0, 1, 0);
//! b.add_edge(2, 1, 0);
//! b.add_edge(3, 2, 1);
//! let graph = GraphData::new(b.build());
//!
//! // Inference: build → bind → forward.
//! let mut engine = EngineBuilder::new(ModelKind::Rgcn).dims(4, 4).seed(7).build()?;
//! let mut bound = engine.bind(&graph)?;
//! let report = bound.forward()?;
//! assert!(report.elapsed_us > 0.0);
//! assert_eq!(bound.output().rows(), 4);
//!
//! // Training: build_trainer → bind → step/epoch.
//! let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
//!     .dims(4, 4)
//!     .seed(7)
//!     .build_trainer(Adam::new(0.01))?;
//! trainer.bind(&graph)?;
//! let epoch = trainer.epoch(3)?;
//! assert_eq!(epoch.losses.len(), 3);
//! # Ok(())
//! # }
//! ```
//!
//! # Seed contract
//!
//! [`Engine::bind`] derives every stochastic artifact from the engine
//! seed in a fixed order — exactly the order the legacy flow
//! conventionally used, so the handles are bit-identical to it (pinned
//! by `tests/api_parity.rs`):
//!
//! 1. `ParamStore::init(&module.forward, graph, &mut rng)`,
//! 2. `Bindings::standard(&module.forward, graph, &mut rng)`
//!    (real mode; modeled sessions bind nothing),
//! 3. `random_labels(&mut rng, num_nodes, classes)` (trainers only,
//!    real mode).

use std::sync::Arc;

use hector_compiler::{CompileOptions, CompiledModule, ModuleCache};
use hector_device::{Device, DeviceConfig};
use hector_ir::builder::ModelSource;
use hector_ir::Program;
use hector_models::{stacked, ModelKind};
use hector_par::ParallelConfig;
use hector_tensor::{seeded_rng, Tensor};
use hector_trace::report::{build_report, ProfileReport, RelationShare};
use hector_trace::{TraceConfig, TraceEvent};

use hector_graph::SamplerConfig;

use crate::backend::BackendKind;
use crate::error::HectorError;
use crate::loss::random_labels;
use crate::minibatch::{Batch, BatchSource, Minibatches};
use crate::optim::Optimizer;
use crate::session::{Bindings, Mode, RunReport, Session};
use crate::store::VarStore;
use crate::{GraphData, ParamStore};

/// What the builder compiles: a built-in model kind (optionally stacked
/// into multiple layers) or a custom DSL source.
#[derive(Clone, Debug)]
enum ModelSpec {
    Builtin(ModelKind),
    Custom(Box<ModelSource>),
}

/// Fluent configuration for an [`Engine`] (or [`Trainer`]).
///
/// Defaults: dims 64×64 (the paper's §4.1 setting), one layer, hidden =
/// `out_dim`, [`CompileOptions::best`], the simulated RTX 3090,
/// [`Mode::Real`], parallelism from the environment
/// ([`ParallelConfig::from_env`]), seed 0, `classes` = the model's
/// output width.
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    spec: ModelSpec,
    in_dim: usize,
    out_dim: usize,
    hidden: Option<usize>,
    layers: usize,
    options: CompileOptions,
    device: DeviceConfig,
    mode: Mode,
    par: Option<ParallelConfig>,
    backend: Option<BackendKind>,
    seed: u64,
    classes: Option<usize>,
    trace: Option<TraceConfig>,
}

impl EngineBuilder {
    /// Starts a builder for one of the built-in models.
    #[must_use]
    pub fn new(kind: ModelKind) -> EngineBuilder {
        EngineBuilder {
            spec: ModelSpec::Builtin(kind),
            in_dim: 64,
            out_dim: 64,
            hidden: None,
            layers: 1,
            options: CompileOptions::best(),
            device: DeviceConfig::rtx3090(),
            mode: Mode::Real,
            par: None,
            backend: None,
            seed: 0,
            classes: None,
            trace: None,
        }
    }

    /// Starts a builder from a custom DSL [`ModelSource`]. Dimensions
    /// are baked into the source, so [`EngineBuilder::dims`],
    /// [`EngineBuilder::hidden`], and [`EngineBuilder::layers`] are not
    /// available (stack inside the source instead). `classes` for
    /// trainer labels defaults to the source's output width unless
    /// [`EngineBuilder::classes`] overrides it.
    #[must_use]
    pub fn from_source(src: ModelSource) -> EngineBuilder {
        // A source with no outputs is rejected with `CompileError` at
        // `build()`, not here — builders must be constructible.
        let out_w = src
            .program
            .outputs
            .first()
            .map_or(0, |&v| src.program.var(v).width);
        EngineBuilder {
            spec: ModelSpec::Custom(Box::new(src)),
            in_dim: 0,
            out_dim: out_w,
            ..EngineBuilder::new(ModelKind::Rgcn)
        }
    }

    /// Input and output feature dimensions (built-in models only).
    ///
    /// # Panics
    ///
    /// Panics on a [`EngineBuilder::from_source`] builder — a custom
    /// source's dimensions are baked into the DSL and cannot be
    /// overridden here.
    #[must_use]
    pub fn dims(mut self, in_dim: usize, out_dim: usize) -> Self {
        assert!(
            matches!(self.spec, ModelSpec::Builtin(_)),
            "dims() applies to built-in model kinds; a custom source fixes its own dimensions"
        );
        self.in_dim = in_dim;
        self.out_dim = out_dim;
        self
    }

    /// Hidden dimension between stacked layers (defaults to `out_dim`).
    ///
    /// # Panics
    ///
    /// Panics on a [`EngineBuilder::from_source`] builder (stack custom
    /// sources in the DSL instead).
    #[must_use]
    pub fn hidden(mut self, hidden: usize) -> Self {
        assert!(
            matches!(self.spec, ModelSpec::Builtin(_)),
            "hidden() applies to built-in model kinds; stack custom sources in the DSL"
        );
        self.hidden = Some(hidden);
        self
    }

    /// Stacks the built-in model `n` layers deep
    /// (`in_dim → hidden → … → out_dim` through
    /// [`hector_models::stacked::stack`]); the whole stack is one
    /// inter-operator program, so inter-layer fusion stays visible to
    /// the compiler. `n = 1` (the default) is the plain single layer.
    #[must_use]
    pub fn layers(mut self, n: usize) -> Self {
        self.layers = n;
        self
    }

    /// Compile options (paper's U/C/R/C+R axes plus schedule knobs).
    #[must_use]
    pub fn options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Forces training (backward) compilation on or off. `build_trainer`
    /// sets this automatically.
    #[must_use]
    pub fn training(mut self, training: bool) -> Self {
        self.options.training = training;
        self
    }

    /// Simulated device configuration.
    #[must_use]
    pub fn device(mut self, device: DeviceConfig) -> Self {
        self.device = device;
        self
    }

    /// Execution mode (real CPU numerics vs. cost-model-only).
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Host-parallelism configuration for the real-mode executor
    /// (defaults to `HECTOR_THREADS` via [`ParallelConfig::from_env`]).
    #[must_use]
    pub fn parallel(mut self, par: ParallelConfig) -> Self {
        self.par = Some(par);
        self
    }

    /// Execution backend for real-mode kernels (defaults to
    /// `HECTOR_BACKEND` via [`BackendKind::from_env`], i.e. the
    /// reference interpreter). Backends are bit-identical; `specialized`
    /// trades a one-time prepare for faster warm launches.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Seed for parameter/input/label derivation (see the module-level
    /// seed contract).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of label classes for trainer label generation (defaults
    /// to the model's output width; must stay within it — NLL labels
    /// index the output logits, validated at [`EngineBuilder::build`]).
    #[must_use]
    pub fn classes(mut self, classes: usize) -> Self {
        self.classes = Some(classes);
        self
    }

    /// Tracing configuration for the engine's lifetime. When enabled,
    /// the process-global recorder turns on at [`EngineBuilder::build`]
    /// (in time to capture the compiler's pass spans on a module-cache
    /// miss), and a configured `out_path` is written as chrome-trace
    /// JSON when the engine drops (or explicitly via
    /// [`Engine::write_trace`]). Defaults to
    /// [`TraceConfig::from_env`] — the `HECTOR_TRACE=<out.json>`
    /// variable — so any binary can opt in without code changes.
    #[must_use]
    pub fn trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The model source this builder will compile.
    ///
    /// # Panics
    ///
    /// Panics if `layers > 1` was combined with a custom source, or
    /// `layers == 0`.
    #[must_use]
    pub fn source(&self) -> ModelSource {
        match &self.spec {
            ModelSpec::Builtin(kind) => stacked::stack(
                *kind,
                self.layers,
                self.in_dim,
                self.hidden.unwrap_or(self.out_dim),
                self.out_dim,
            ),
            ModelSpec::Custom(src) => {
                assert!(
                    self.layers == 1,
                    "layers(n) applies to built-in model kinds; stack custom sources in the DSL"
                );
                (**src).clone()
            }
        }
    }

    /// Builds the engine: compiles (or fetches from the process-wide
    /// [`ModuleCache`]) and assembles the device session. Building a
    /// second engine with identical `(source, dims, options)` performs
    /// zero compilations — check [`Engine::was_cache_hit`] or
    /// `counters().module_cache()`.
    ///
    /// # Errors
    ///
    /// Returns [`HectorError::InvalidConfig`] on invalid `layers`
    /// (zero, or `layers > 1` on a custom source) or when
    /// [`EngineBuilder::classes`] exceeds the model's output width (NLL
    /// labels index the output logits — failing here beats a confusing
    /// panic inside the first training step),
    /// [`HectorError::CompileError`] when a custom source declares no
    /// outputs, and the session's configuration errors (see
    /// [`Session::with_backend`]).
    ///
    /// # Panics
    ///
    /// Panics if the model source violates IR invariants (compiler
    /// contract — a malformed program is a bug in the source builder,
    /// not a recoverable condition).
    pub fn build(self) -> Result<Engine, HectorError> {
        if self.layers == 0 {
            return Err(HectorError::InvalidConfig {
                detail: "layers(0): a model needs at least one layer".into(),
            });
        }
        if let ModelSpec::Custom(src) = &self.spec {
            if self.layers != 1 {
                return Err(HectorError::InvalidConfig {
                    detail: format!(
                        "layers({}) applies to built-in model kinds; \
                         stack custom sources in the DSL",
                        self.layers
                    ),
                });
            }
            if src.program.outputs.is_empty() {
                return Err(HectorError::CompileError {
                    detail: format!("model '{}' declares no outputs", src.program.name),
                });
            }
        }
        let trace = self
            .trace
            .clone()
            .unwrap_or_else(hector_trace::TraceConfig::from_env);
        if trace.enabled {
            // Enabled before compilation so a module-cache miss records
            // the compiler's per-pass spans and fusion decisions.
            hector_trace::enable();
        }
        let src = self.source();
        let (module, cache_hit) = ModuleCache::get_or_compile(&src, &self.options);
        let out_width = module.forward.var(module.forward.outputs[0]).width;
        let classes = match self.classes {
            Some(c) => {
                if c < 1 || c > out_width {
                    return Err(HectorError::InvalidConfig {
                        detail: format!(
                            "classes ({c}) must be in 1..={out_width} (the model's output \
                             width): NLL labels index the output logits"
                        ),
                    });
                }
                c
            }
            None => out_width,
        };
        let par = self.par.unwrap_or_else(ParallelConfig::from_env);
        let backend = self.backend.unwrap_or_else(BackendKind::from_env);
        let session = Session::with_backend(self.device, self.mode, par, backend)?;
        Ok(Engine {
            module,
            session,
            seed: self.seed,
            classes,
            cache_hit,
            state: None,
            trace,
            last_trace: Vec::new(),
        })
    }

    /// Builds a [`Trainer`]: an engine compiled for training plus the
    /// optimizer. Loss is the paper's NLL against seeded random labels
    /// (§4.1); override the labels with [`Trainer::set_labels`].
    ///
    /// # Errors
    ///
    /// Propagates [`EngineBuilder::build`]'s errors.
    pub fn build_trainer<O: Optimizer + 'static>(
        self,
        optimizer: O,
    ) -> Result<Trainer, HectorError> {
        let engine = self.training(true).build()?;
        Ok(Trainer {
            engine,
            optimizer: Box::new(optimizer),
            labels: Vec::new(),
            labels_pinned: false,
            steps: 0,
            last_loss: None,
        })
    }
}

/// Graph-specific state created by [`Engine::bind`].
#[derive(Debug)]
struct BoundState {
    graph: GraphData,
    params: ParamStore,
    bindings: Bindings,
}

/// An owning handle over one compiled model and its execution stack:
/// the `Arc`-shared [`CompiledModule`], the device [`Session`] (which
/// owns the scratch arena and the persistent run plan), and the seed
/// that derives parameters and inputs at [`Engine::bind`] time.
///
/// Built by [`EngineBuilder`]; see the module docs for the lifecycle.
#[derive(Debug)]
pub struct Engine {
    module: Arc<CompiledModule>,
    session: Session,
    seed: u64,
    classes: usize,
    cache_hit: bool,
    state: Option<BoundState>,
    trace: TraceConfig,
    /// Events drained by the latest [`Engine::profile`] call, kept so
    /// [`Engine::write_trace`] can export the same run.
    last_trace: Vec<TraceEvent>,
}

impl Engine {
    /// The compiled module (shared with every other engine built from
    /// the same `(source, dims, options)` key).
    #[must_use]
    pub fn module(&self) -> &CompiledModule {
        &self.module
    }

    /// The underlying session.
    #[must_use]
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable session access (the low-level escape hatch).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// The simulated device (counters, memory state).
    #[must_use]
    pub fn device(&self) -> &Device {
        self.session.device()
    }

    /// Execution mode.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.session.mode()
    }

    /// The engine seed (parameter/input/label derivation).
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether [`EngineBuilder::build`] found the module already
    /// compiled in the process-wide [`ModuleCache`].
    #[must_use]
    pub fn was_cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// Whether a graph is currently bound.
    #[must_use]
    pub fn is_bound(&self) -> bool {
        self.state.is_some()
    }

    /// Binds a graph: clones its derived structures into the engine and
    /// (re)derives parameters and standard input bindings from the
    /// engine seed (see the module-level seed contract; modeled
    /// sessions skip input materialisation). Rebinding — the same graph
    /// or a new one — restarts from freshly seeded parameters; the
    /// session's run plan and scratch arena persist and are reused
    /// shape-compatibly.
    ///
    /// # Errors
    ///
    /// Returns [`HectorError::GraphMismatch`] for a graph this model
    /// cannot run on (no nodes — there is nothing to derive parameters
    /// or features over).
    pub fn bind(&mut self, graph: &GraphData) -> Result<Bound<'_>, HectorError> {
        let _ = self.bind_internal(graph)?;
        Ok(Bound { engine: self })
    }

    /// Seed-contract steps 1–2; returns the RNG so [`Trainer::bind`]
    /// can continue the same stream for label derivation (step 3).
    fn bind_internal(&mut self, graph: &GraphData) -> Result<rand::rngs::StdRng, HectorError> {
        if graph.graph().num_nodes() == 0 {
            return Err(HectorError::GraphMismatch {
                detail: "cannot bind an empty graph (zero nodes)".into(),
            });
        }
        let mut rng = seeded_rng(self.seed);
        let params = ParamStore::init(&self.module.forward, graph, &mut rng);
        let bindings = match self.session.mode() {
            Mode::Real => Bindings::standard(&self.module.forward, graph, &mut rng),
            Mode::Modeled => Bindings::new(),
        };
        self.state = Some(BoundState {
            graph: graph.clone(),
            params,
            bindings,
        });
        Ok(rng)
    }

    /// The current binding, if [`Engine::bind`] was called.
    pub fn bound(&mut self) -> Option<Bound<'_>> {
        if self.state.is_some() {
            Some(Bound { engine: self })
        } else {
            None
        }
    }

    /// Drops the graph-specific state (parameters, inputs).
    pub fn unbind(&mut self) {
        self.state = None;
    }

    /// Learnable parameters of the bound graph.
    ///
    /// # Panics
    ///
    /// Panics if no graph is bound.
    #[must_use]
    pub fn params(&self) -> &ParamStore {
        &self.expect_state().params
    }

    /// Mutable parameter access (custom initialisation, inspection).
    ///
    /// # Panics
    ///
    /// Panics if no graph is bound.
    pub fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.expect_state_mut().params
    }

    /// Input bindings derived at bind time.
    ///
    /// # Panics
    ///
    /// Panics if no graph is bound.
    #[must_use]
    pub fn bindings(&self) -> &Bindings {
        &self.expect_state().bindings
    }

    /// Replaces the input bindings (custom features).
    ///
    /// # Panics
    ///
    /// Panics if no graph is bound.
    pub fn set_bindings(&mut self, bindings: Bindings) {
        self.expect_state_mut().bindings = bindings;
    }

    /// The bound graph.
    ///
    /// # Panics
    ///
    /// Panics if no graph is bound.
    #[must_use]
    pub fn graph(&self) -> &GraphData {
        &self.expect_state().graph
    }

    /// Runs one forward pass through the session's persistent run plan
    /// (allocation-free once warm).
    ///
    /// # Errors
    ///
    /// Returns [`HectorError::GraphMismatch`] when no graph is bound,
    /// [`HectorError::InvalidConfig`] /
    /// [`HectorError::ShapeMismatch`] for missing or mis-shaped input
    /// bindings, and [`HectorError::Oom`] when the run exceeds device
    /// memory.
    pub fn forward(&mut self) -> Result<RunReport, HectorError> {
        let state = self.state.as_mut().ok_or_else(not_bound)?;
        if self.session.mode() == Mode::Real {
            validate_bindings(&self.module.forward, &state.graph, &state.bindings)?;
        }
        let (_, report) = self.session.forward(
            &self.module,
            &state.graph,
            &mut state.params,
            &state.bindings,
        )?;
        Ok(report)
    }

    /// Runs one training step (forward, NLL loss, backward, optimizer)
    /// through the persistent run plan.
    ///
    /// # Errors
    ///
    /// Returns [`HectorError::GraphMismatch`] when no graph is bound,
    /// [`HectorError::InvalidConfig`] when the module was not compiled
    /// for training or a label is out of class range,
    /// [`HectorError::ShapeMismatch`] for a label vector that does not
    /// cover the graph's nodes (real mode), and [`HectorError::Oom`]
    /// when the run exceeds device memory.
    pub fn train_step(
        &mut self,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> Result<RunReport, HectorError> {
        self.check_trainable()?;
        let state = self.state.as_mut().ok_or_else(not_bound)?;
        if self.session.mode() == Mode::Real {
            validate_bindings(&self.module.forward, &state.graph, &state.bindings)?;
            validate_labels(&self.module.forward, &state.graph, labels)?;
        }
        let (_, report) = self.session.train_step(
            &self.module,
            &state.graph,
            &mut state.params,
            &state.bindings,
            labels,
            optimizer,
        )?;
        Ok(report)
    }

    /// Runs one training step on an *alternate* graph — a sampled
    /// mini-batch subgraph — with caller-provided bindings and labels,
    /// while keeping the bound graph's parameters and the session's
    /// persistent run plan. The subgraph must declare the same node/edge
    /// type counts as the bound graph (guaranteed by
    /// `hector_graph::Subgraph::extract`) so the parameter shapes match.
    ///
    /// # Errors
    ///
    /// Everything [`Engine::train_step`] reports, plus
    /// [`HectorError::GraphMismatch`] when the subgraph's node/edge type
    /// counts differ from the bound graph's (the parameter shapes would
    /// not match).
    pub fn train_step_on(
        &mut self,
        graph: &GraphData,
        bindings: &Bindings,
        labels: &[usize],
        optimizer: &mut dyn Optimizer,
    ) -> Result<RunReport, HectorError> {
        self.check_trainable()?;
        let state = self.state.as_mut().ok_or_else(not_bound)?;
        let (bg, sg) = (state.graph.graph(), graph.graph());
        if sg.num_node_types() != bg.num_node_types() || sg.num_edge_types() != bg.num_edge_types()
        {
            return Err(HectorError::GraphMismatch {
                detail: format!(
                    "subgraph declares {}/{} node/edge types but the bound graph has {}/{} \
                     (parameter shapes would not match)",
                    sg.num_node_types(),
                    sg.num_edge_types(),
                    bg.num_node_types(),
                    bg.num_edge_types()
                ),
            });
        }
        if self.session.mode() == Mode::Real {
            validate_bindings(&self.module.forward, graph, bindings)?;
            validate_labels(&self.module.forward, graph, labels)?;
        }
        let (_, report) = self.session.train_step(
            &self.module,
            graph,
            &mut state.params,
            bindings,
            labels,
            optimizer,
        )?;
        Ok(report)
    }

    /// [`HectorError::InvalidConfig`] unless the module was compiled
    /// for training.
    fn check_trainable(&self) -> Result<(), HectorError> {
        if self.module.backward.is_none() {
            return Err(HectorError::InvalidConfig {
                detail: "module was not compiled for training \
                         (build with .training(true) or build_trainer)"
                    .into(),
            });
        }
        Ok(())
    }

    /// The run plan's variable store after the latest run (outputs live
    /// here in real mode).
    #[must_use]
    pub fn outputs(&self) -> &VarStore {
        self.session.plan_vars()
    }

    /// The model's first output tensor from the latest real-mode run.
    ///
    /// # Panics
    ///
    /// Panics before the first run or on modeled sessions (no data is
    /// materialised there).
    #[must_use]
    pub fn output(&self) -> &Tensor {
        self.session
            .plan_vars()
            .tensor(self.module.forward.outputs[0])
    }

    /// Label classes used when a trainer derives labels for this engine.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Profiles a closure over this engine: enables tracing for its
    /// duration (restoring the previous state afterwards), drains the
    /// recorded spans, and aggregates them into a [`ProfileReport`]
    /// (per-kernel-kind and per-relation breakdowns; pretty-print it
    /// with `{}`). The drained events are retained for
    /// [`Engine::write_trace`], so a profiled run can also be exported
    /// to Perfetto.
    ///
    /// Events already buffered before the call (earlier warm-up runs)
    /// are discarded so the report covers exactly the closure.
    pub fn profile<T>(&mut self, f: impl FnOnce(&mut Engine) -> T) -> (T, ProfileReport) {
        let was_on = hector_trace::is_enabled();
        let _stale = hector_trace::take_events();
        hector_trace::enable();
        let out = f(self);
        if !was_on {
            hector_trace::disable();
        }
        self.last_trace = hector_trace::take_events();
        let shares = self.relation_shares();
        let mut report = build_report(&self.last_trace, &shares);
        // The recorder's label is process-global; this engine's session
        // knows its own backend authoritatively.
        report.backend = self.session.backend_name().to_string();
        (out, report)
    }

    /// Writes the latest profiled run — or, if [`Engine::profile`] was
    /// never called, whatever the recorder has buffered — as
    /// chrome-trace JSON (open in Perfetto / `chrome://tracing`).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from writing the file.
    pub fn write_trace(&mut self, path: &str) -> std::io::Result<()> {
        if self.last_trace.is_empty() {
            self.last_trace = hector_trace::take_events();
        }
        hector_trace::chrome::write_chrome_trace(path, &self.last_trace)
    }

    /// Per-relation share of edges and unique `(src, etype)` pairs in
    /// the bound graph, used by [`Engine::profile`] to apportion fused
    /// kernel time into per-relation estimates. Empty when no graph is
    /// bound.
    fn relation_shares(&self) -> Vec<RelationShare> {
        let Some(state) = &self.state else {
            return Vec::new();
        };
        let g = state.graph.graph();
        let uptr = state.graph.compact().unique_etype_ptr();
        (0..g.num_edge_types())
            .map(|t| RelationShare {
                name: format!("etype{t}"),
                edges: g.edges_of_type(t) as u64,
                unique: (uptr[t + 1] - uptr[t]) as u64,
            })
            .collect()
    }

    fn expect_state(&self) -> &BoundState {
        self.state.as_ref().expect("Engine::bind a graph first")
    }

    fn expect_state_mut(&mut self) -> &mut BoundState {
        self.state.as_mut().expect("Engine::bind a graph first")
    }
}

/// The "run before bind" misuse error, shared by every run method.
fn not_bound() -> HectorError {
    HectorError::GraphMismatch {
        detail: "no graph is bound (call Engine::bind first)".into(),
    }
}

/// Pre-validates real-mode input bindings against the program and
/// graph, so misuse surfaces as a [`HectorError`] here instead of a
/// panic inside the session (whose own checks remain internal-invariant
/// panics — the engine path has already screened caller input).
fn validate_bindings(
    program: &Program,
    graph: &GraphData,
    bindings: &Bindings,
) -> Result<(), HectorError> {
    for &v in &program.inputs {
        let info = program.var(v);
        let rows = graph.rows_of_space(info.space);
        let Some(t) = bindings.get(&info.name) else {
            return Err(HectorError::InvalidConfig {
                detail: format!("missing input binding '{}'", info.name),
            });
        };
        if t.shape() != [rows, info.width] {
            return Err(HectorError::ShapeMismatch {
                what: format!("input '{}'", info.name),
                expected: format!("[{rows}, {}]", info.width),
                got: format!("{:?}", t.shape()),
            });
        }
    }
    Ok(())
}

/// Pre-validates a real-mode label vector: one label per node, each
/// indexing within the model's output logits.
fn validate_labels(
    program: &Program,
    graph: &GraphData,
    labels: &[usize],
) -> Result<(), HectorError> {
    let nodes = graph.graph().num_nodes();
    if labels.len() != nodes {
        return Err(HectorError::ShapeMismatch {
            what: "labels".into(),
            expected: format!("[{nodes}] (one label per node)"),
            got: format!("[{}]", labels.len()),
        });
    }
    let width = program.var(program.outputs[0]).width;
    if let Some(&bad) = labels.iter().find(|&&l| l >= width) {
        return Err(HectorError::InvalidConfig {
            detail: format!("label {bad} is out of range for {width} output logits"),
        });
    }
    Ok(())
}

impl Drop for Engine {
    /// Exports the configured trace on teardown: with
    /// `HECTOR_TRACE=<out.json>` (or a [`TraceConfig`] `out_path` on
    /// the builder), dropping the engine writes everything recorded —
    /// compilation through the last run — as chrome-trace JSON. Export
    /// failures are reported on stderr, not panicked: drop runs during
    /// unwinding too.
    fn drop(&mut self) {
        let Some(path) = self.trace.out_path.clone() else {
            return;
        };
        if let Err(e) = self.write_trace(&path) {
            eprintln!("HECTOR_TRACE export to {path} failed: {e}");
        }
    }
}

/// A typed view over an [`Engine`] with a graph bound — the receiver of
/// the one-liner run methods. Obtained from [`Engine::bind`] (or
/// [`Engine::bound`]); it borrows the engine, so it is cheap and
/// re-obtainable at any time.
#[derive(Debug)]
pub struct Bound<'e> {
    engine: &'e mut Engine,
}

impl Bound<'_> {
    /// Runs one forward pass (see [`Engine::forward`]).
    ///
    /// # Errors
    ///
    /// See [`Engine::forward`].
    pub fn forward(&mut self) -> Result<RunReport, HectorError> {
        self.engine.forward()
    }

    /// The model's first output tensor from the latest real-mode run
    /// (see [`Engine::output`]).
    ///
    /// # Panics
    ///
    /// Panics before the first run or on modeled sessions.
    #[must_use]
    pub fn output(&self) -> &Tensor {
        self.engine.output()
    }

    /// The run plan's variable store (all outputs).
    #[must_use]
    pub fn outputs(&self) -> &VarStore {
        self.engine.outputs()
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&mut self) -> &mut Engine {
        self.engine
    }
}

/// Summary of one [`Trainer::epoch`] or
/// [`Trainer::minibatch_epoch`] call.
///
/// `steps` counts the steps that actually executed; `losses` holds one
/// entry per step *that produced a loss*. The two deliberately
/// disagree in modeled mode — the cost model never computes numerics,
/// so `losses` stays empty ("no loss available") while `steps` still
/// counts the simulated steps. An all-steps-executed epoch with an
/// empty loss curve therefore means "modeled mode", never "zero steps"
/// (`epoch(0)` panics instead of returning an empty report).
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Per-step losses, in step order. One entry per executed step in
    /// real mode; empty in modeled mode (no loss is computed there —
    /// check `steps` for how many steps ran).
    pub losses: Vec<f32>,
    /// Number of training steps that executed (counted in both modes).
    pub steps: usize,
    /// Run report of the final step.
    pub last: RunReport,
}

impl EpochReport {
    /// Loss of the final step, when one was computed ([`None`] in
    /// modeled mode — distinguishable from "zero steps" because an
    /// epoch always runs at least one step).
    #[must_use]
    pub fn final_loss(&self) -> Option<f32> {
        self.losses.last().copied()
    }

    /// Mean loss across the epoch's steps ([`None`] in modeled mode).
    #[must_use]
    pub fn mean_loss(&self) -> Option<f32> {
        if self.losses.is_empty() {
            None
        } else {
            Some(self.losses.iter().sum::<f32>() / self.losses.len() as f32)
        }
    }
}

/// An [`Engine`] wrapped with an optimizer and the paper's NLL loss
/// recipe: seeded random labels (§4.1), full-graph steps. Built by
/// [`EngineBuilder::build_trainer`]; every step goes through the
/// session's persistent run plan, so a warm [`Trainer::step`] performs
/// zero heap allocations (pinned by `tests/run_alloc.rs`).
pub struct Trainer {
    engine: Engine,
    optimizer: Box<dyn Optimizer>,
    labels: Vec<usize>,
    /// Whether `labels` were installed by [`Trainer::set_labels`] (and
    /// must survive a rebind) rather than derived from the seed.
    labels_pinned: bool,
    steps: usize,
    last_loss: Option<f32>,
}

impl std::fmt::Debug for Trainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trainer")
            .field("engine", &self.engine)
            .field("labels", &self.labels.len())
            .field("steps", &self.steps)
            .field("last_loss", &self.last_loss)
            .finish_non_exhaustive()
    }
}

impl Trainer {
    /// Binds a graph: delegates to [`Engine::bind`], then derives the
    /// label tensor (`random_labels`, one class id per node) from the
    /// same seeded stream — step 3 of the module-level seed contract.
    /// Modeled sessions train label-free (loss is not computed there).
    ///
    /// # Label preservation
    ///
    /// Labels installed via [`Trainer::set_labels`] are **pinned**: a
    /// rebind keeps them as long as the new graph has the same node
    /// count (rebinding the same graph to restart training is the
    /// common case). Binding a graph with a different node count drops
    /// the pinned labels — they cannot index the new nodes — and falls
    /// back to seed-derived ones, un-pinning. Pinned by
    /// `set_labels_survive_rebind` / `rebind_different_size_rederives`.
    ///
    /// # Errors
    ///
    /// See [`Engine::bind`].
    pub fn bind(&mut self, graph: &GraphData) -> Result<&mut Trainer, HectorError> {
        let classes = self.engine.classes;
        let mut rng = self.engine.bind_internal(graph)?;
        let keep_pinned = self.labels_pinned
            && self.engine.mode() == Mode::Real
            && self.labels.len() == graph.graph().num_nodes();
        if !keep_pinned {
            self.labels = match self.engine.mode() {
                Mode::Real => random_labels(&mut rng, graph.graph().num_nodes(), classes),
                Mode::Modeled => Vec::new(),
            };
            self.labels_pinned = false;
        }
        self.optimizer.reset();
        self.steps = 0;
        self.last_loss = None;
        Ok(self)
    }

    /// Runs one training step.
    ///
    /// # Errors
    ///
    /// See [`Engine::train_step`] (binding a graph first is on the
    /// caller: an unbound trainer reports
    /// [`HectorError::GraphMismatch`]).
    pub fn step(&mut self) -> Result<RunReport, HectorError> {
        let report = self
            .engine
            .train_step(&self.labels, self.optimizer.as_mut())?;
        self.steps += 1;
        self.last_loss = report.loss;
        Ok(report)
    }

    /// Runs `n` training steps, collecting the loss curve.
    ///
    /// # Errors
    ///
    /// Returns [`HectorError::InvalidConfig`] for `n == 0`, plus
    /// everything [`Trainer::step`] reports.
    pub fn epoch(&mut self, n: usize) -> Result<EpochReport, HectorError> {
        if n == 0 {
            return Err(HectorError::InvalidConfig {
                detail: "an epoch needs at least one step".into(),
            });
        }
        let mut losses = Vec::with_capacity(n);
        let mut last = None;
        for _ in 0..n {
            let report = self.step()?;
            losses.extend(report.loss);
            last = Some(report);
        }
        Ok(EpochReport {
            losses,
            steps: n,
            last: last.expect("n > 0"),
        })
    }

    /// Runs one forward pass on the current parameters (evaluation
    /// between steps).
    ///
    /// # Errors
    ///
    /// See [`Engine::forward`].
    pub fn forward(&mut self) -> Result<RunReport, HectorError> {
        self.engine.forward()
    }

    /// Starts one epoch of sampled mini-batches over the bound graph
    /// (the PIGEON-style pipeline). The returned iterator owns a
    /// snapshot of the trainer's graph, bindings, and labels, so it does
    /// not borrow the trainer — drive it with
    /// [`Trainer::train_batch`]:
    ///
    /// ```ignore
    /// for batch in trainer.minibatch(&SamplerConfig::new(64)) {
    ///     trainer.train_batch(&batch)?;
    /// }
    /// ```
    ///
    /// Batch contents are a pure function of `(engine seed, cfg.epoch,
    /// batch index)` — bitwise identical across `HECTOR_THREADS` values
    /// and `cfg.pipeline` on/off. With the pipeline on, batch `k+1` is
    /// sampled on a background thread while batch `k` trains.
    ///
    /// # Panics
    ///
    /// Panics if no graph is bound.
    #[must_use]
    pub fn minibatch(&self, cfg: &SamplerConfig) -> Minibatches {
        let module = self.engine.module();
        let inputs: Vec<hector_ir::VarInfo> = module
            .forward
            .inputs
            .iter()
            .map(|&v| module.forward.var(v).clone())
            .collect();
        let state = self.engine.expect_state();
        let source = BatchSource::new(
            state.graph.graph(),
            cfg,
            self.engine.seed,
            inputs,
            state.bindings.clone(),
            self.labels.clone(),
            self.engine.mode(),
        );
        Minibatches::new(source, cfg.pipeline)
    }

    /// Trains one step on a sampled [`Batch`]: the full graph's
    /// parameters against the batch subgraph, bindings, and labels,
    /// through the session's persistent run plan (so warm same-shape
    /// batch steps are allocation-free). Also records the batch's
    /// sampling/wait times into the device's
    /// [`hector_device::SamplerStats`].
    ///
    /// # Errors
    ///
    /// See [`Engine::train_step_on`].
    pub fn train_batch(&mut self, batch: &Batch) -> Result<RunReport, HectorError> {
        let report = self.engine.train_step_on(
            &batch.graph,
            &batch.bindings,
            &batch.labels,
            self.optimizer.as_mut(),
        )?;
        let g = batch.graph.graph();
        self.engine.session_mut().device_mut().record_sampler_batch(
            g.num_nodes(),
            g.num_edges(),
            batch.sample_wall_us,
            batch.wait_wall_us,
        );
        self.steps += 1;
        self.last_loss = report.loss;
        Ok(report)
    }

    /// Runs one full epoch of sampled mini-batch training: every batch
    /// of [`Trainer::minibatch`], trained in order. The loss curve has
    /// one entry per batch (empty in modeled mode — see
    /// [`EpochReport`]).
    ///
    /// # Errors
    ///
    /// Everything [`Trainer::train_batch`] reports.
    ///
    /// # Panics
    ///
    /// Panics if no graph is bound (bound graphs are never empty —
    /// [`Engine::bind`] rejects zero-node graphs — so a mini-batch
    /// epoch always has at least one batch).
    pub fn minibatch_epoch(&mut self, cfg: &SamplerConfig) -> Result<EpochReport, HectorError> {
        let batches = self.minibatch(cfg);
        assert!(
            batches.num_batches() > 0,
            "a mini-batch epoch needs a non-empty graph"
        );
        let mut losses = Vec::with_capacity(batches.num_batches());
        let mut steps = 0;
        let mut last = None;
        for batch in batches {
            let report = self.train_batch(&batch)?;
            losses.extend(report.loss);
            steps += 1;
            last = Some(report);
        }
        Ok(EpochReport {
            losses,
            steps,
            last: last.expect("num_batches > 0"),
        })
    }

    /// Replaces the derived labels with caller-provided ones and pins
    /// them: they survive rebinds to graphs of the same node count (see
    /// [`Trainer::bind`]).
    ///
    /// # Panics
    ///
    /// Panics if the label count differs from the bound graph's node
    /// count.
    pub fn set_labels(&mut self, labels: Vec<usize>) {
        assert_eq!(
            labels.len(),
            self.engine.graph().graph().num_nodes(),
            "one label per node"
        );
        self.labels = labels;
        self.labels_pinned = true;
    }

    /// Whether the current labels were installed by
    /// [`Trainer::set_labels`] (as opposed to seed-derived).
    #[must_use]
    pub fn labels_pinned(&self) -> bool {
        self.labels_pinned
    }

    /// The current label tensor.
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Steps taken since the last bind.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Loss of the most recent step (real mode only).
    #[must_use]
    pub fn loss(&self) -> Option<f32> {
        self.last_loss
    }

    /// The wrapped engine.
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Mutable engine access.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Unwraps the engine, dropping the optimizer state.
    #[must_use]
    pub fn into_engine(self) -> Engine {
        self.engine
    }

    /// Profiles a closure over this trainer — the training-loop
    /// counterpart of [`Engine::profile`]: tracing is enabled for the
    /// closure's duration and the recorded spans (kernels, phases,
    /// minibatch pipeline) are aggregated into a [`ProfileReport`].
    /// Export the same run with `trainer.engine_mut().write_trace(..)`.
    pub fn profile<T>(&mut self, f: impl FnOnce(&mut Trainer) -> T) -> (T, ProfileReport) {
        let was_on = hector_trace::is_enabled();
        let _stale = hector_trace::take_events();
        hector_trace::enable();
        let out = f(self);
        if !was_on {
            hector_trace::disable();
        }
        self.engine.last_trace = hector_trace::take_events();
        let shares = self.engine.relation_shares();
        let mut report = build_report(&self.engine.last_trace, &shares);
        report.backend = self.engine.session.backend_name().to_string();
        (out, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Sgd};
    use hector_graph::{generate, DatasetSpec, HeteroGraphBuilder};

    fn graph() -> GraphData {
        GraphData::new(generate(&DatasetSpec {
            name: "engine".into(),
            num_nodes: 60,
            num_node_types: 2,
            num_edges: 400,
            num_edge_types: 3,
            compaction_ratio: 0.5,
            type_skew: 1.0,
            seed: 21,
        }))
    }

    #[test]
    // The legacy flow is exactly what this test pins the engine against.
    #[allow(deprecated)]
    fn engine_forward_matches_legacy_session_flow() {
        let graph = graph();
        let opts = CompileOptions::best();
        for kind in ModelKind::all() {
            let mut engine = EngineBuilder::new(kind)
                .dims(8, 8)
                .options(opts.clone())
                .parallel(ParallelConfig::sequential())
                .seed(3)
                .build()
                .unwrap();
            let report = engine.bind(&graph).unwrap().forward().expect("fits");
            assert!(report.elapsed_us > 0.0);

            // Legacy flow with the same seed discipline.
            let module = &engine.module;
            let mut rng = seeded_rng(3);
            let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
            let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
            let mut session = Session::with_parallel(
                DeviceConfig::rtx3090(),
                Mode::Real,
                ParallelConfig::sequential(),
            );
            let (vars, _) = session
                .run_inference(module, &graph, &mut params, &bindings)
                .unwrap();
            let out = module.forward.outputs[0];
            assert_eq!(
                vars.tensor(out).data(),
                engine.output().data(),
                "{kind:?}: engine must be bit-identical to the legacy flow"
            );
        }
    }

    #[test]
    fn trainer_loss_decreases_and_steps_count() {
        let graph = graph();
        let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .seed(5)
            .build_trainer(Sgd::new(0.3))
            .unwrap();
        trainer.bind(&graph).unwrap();
        let epoch = trainer.epoch(10).expect("fits");
        assert_eq!(epoch.losses.len(), 10);
        assert_eq!(trainer.steps(), 10);
        assert!(
            epoch.losses.last().unwrap() < &epoch.losses[0],
            "losses: {:?}",
            epoch.losses
        );
        assert_eq!(trainer.loss(), epoch.losses.last().copied());
    }

    #[test]
    fn rebind_restarts_training_deterministically() {
        let graph = graph();
        let mut trainer = EngineBuilder::new(ModelKind::Rgat)
            .dims(6, 6)
            .seed(11)
            .build_trainer(Adam::new(0.02))
            .unwrap();
        trainer.bind(&graph).unwrap();
        let first: Vec<f32> = trainer.epoch(3).unwrap().losses;
        trainer.bind(&graph).unwrap();
        let second: Vec<f32> = trainer.epoch(3).unwrap().losses;
        assert_eq!(first, second, "rebind must restart from the seed");
    }

    #[test]
    fn modeled_epoch_reports_steps_without_losses() {
        // Modeled mode never computes numerics, so the loss curve is
        // empty by design — the report must still say how many steps
        // ran, so "no loss available" and "zero steps" are
        // distinguishable.
        let graph = graph();
        let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .mode(Mode::Modeled)
            .build_trainer(Sgd::new(0.1))
            .unwrap();
        trainer.bind(&graph).unwrap();
        let epoch = trainer.epoch(4).expect("fits");
        assert_eq!(epoch.steps, 4, "steps count in modeled mode");
        assert!(epoch.losses.is_empty(), "no loss is computed there");
        assert_eq!(epoch.final_loss(), None);
        assert_eq!(epoch.mean_loss(), None);
        assert_eq!(trainer.steps(), 4);

        // Real mode: both views populated and consistent.
        let mut real = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .seed(3)
            .build_trainer(Sgd::new(0.1))
            .unwrap();
        real.bind(&graph).unwrap();
        let epoch = real.epoch(4).expect("fits");
        assert_eq!(epoch.steps, 4);
        assert_eq!(epoch.losses.len(), 4);
        assert_eq!(epoch.final_loss(), epoch.losses.last().copied());
    }

    #[test]
    fn set_labels_survive_rebind() {
        let graph = graph();
        let n = graph.graph().num_nodes();
        let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .seed(5)
            .build_trainer(Sgd::new(0.1))
            .unwrap();
        trainer.bind(&graph).unwrap();
        assert!(!trainer.labels_pinned(), "derived labels are not pinned");
        let custom: Vec<usize> = (0..n).map(|i| i % 3).collect();
        trainer.set_labels(custom.clone());
        assert!(trainer.labels_pinned());
        // Rebind to restart training: custom labels must survive.
        trainer.bind(&graph).unwrap();
        assert_eq!(
            trainer.labels(),
            &custom[..],
            "rebind silently discarded set_labels"
        );
        assert!(trainer.labels_pinned());
    }

    #[test]
    fn rebind_different_size_rederives_labels() {
        let graph = graph();
        let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .seed(5)
            .build_trainer(Sgd::new(0.1))
            .unwrap();
        trainer.bind(&graph).unwrap();
        trainer.set_labels(vec![0; graph.graph().num_nodes()]);
        // A graph with a different node count cannot keep the pinned
        // labels — they must be re-derived and un-pinned.
        let other = GraphData::new(generate(&DatasetSpec {
            name: "other".into(),
            num_nodes: 30,
            num_node_types: 2,
            num_edges: 100,
            num_edge_types: 3,
            compaction_ratio: 0.5,
            type_skew: 1.0,
            seed: 8,
        }));
        trainer.bind(&other).unwrap();
        assert_eq!(trainer.labels().len(), other.graph().num_nodes());
        assert!(!trainer.labels_pinned(), "mismatched rebind un-pins");
        assert!(trainer.labels().iter().any(|&l| l != 0), "re-derived");
    }

    #[test]
    fn minibatch_epoch_trains_and_records_sampler_stats() {
        let graph = graph();
        let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .seed(7)
            .parallel(ParallelConfig::sequential())
            .build_trainer(Adam::new(0.01))
            .unwrap();
        trainer.bind(&graph).unwrap();
        let cfg = SamplerConfig::new(16).fanouts(&[4, 3]);
        let report = trainer.minibatch_epoch(&cfg).expect("fits");
        let expected = graph.graph().num_nodes().div_ceil(16);
        assert_eq!(report.steps, expected);
        assert_eq!(report.losses.len(), expected);
        assert!(report.losses.iter().all(|l| l.is_finite()));
        let stats = *trainer.engine().device().counters().sampler();
        assert_eq!(stats.batches, expected);
        assert!(stats.nodes > 0 && stats.edges > 0);
        assert!(stats.sample_wall_us > 0.0);
    }

    #[test]
    fn layers_builds_a_stack() {
        let graph = graph();
        let mut engine = EngineBuilder::new(ModelKind::Rgcn)
            .dims(6, 4)
            .hidden(10)
            .layers(3)
            .seed(2)
            .build()
            .unwrap();
        assert_eq!(engine.module().forward.weights.len(), 6);
        let mut bound = engine.bind(&graph).unwrap();
        bound.forward().expect("fits");
        assert_eq!(bound.output().cols(), 4);
    }

    #[test]
    fn modeled_engine_runs_without_bindings() {
        let graph = graph();
        let mut engine = EngineBuilder::new(ModelKind::Hgt)
            .dims(16, 16)
            .mode(Mode::Modeled)
            .build()
            .unwrap();
        let report = engine.bind(&graph).unwrap().forward().expect("fits");
        assert!(report.elapsed_us > 0.0);
        assert!(report.peak_bytes > 0);
    }

    #[test]
    fn custom_source_engine() {
        use hector_ir::{AggNorm, ModelBuilder};
        let graph = graph();
        let mut m = ModelBuilder::new("custom", 8);
        let h = m.node_input("h", 8);
        let w = m.weight_per_etype("W", 8, 8);
        let y = m.typed_linear("y", m.src(h), w);
        let out = m.aggregate("out", m.edge(y), None, AggNorm::None);
        m.output(out);
        let mut engine = EngineBuilder::from_source(m.finish())
            .seed(9)
            .build()
            .unwrap();
        engine.bind(&graph).unwrap().forward().expect("fits");
        assert_eq!(engine.output().cols(), 8);
    }

    #[test]
    fn classes_beyond_output_width_fail_at_build() {
        let err = EngineBuilder::new(ModelKind::Rgcn)
            .dims(16, 4)
            .classes(8)
            .build()
            .unwrap_err();
        assert!(
            matches!(&err, HectorError::InvalidConfig { detail } if detail.contains("classes")),
            "want InvalidConfig about classes, got {err:?}"
        );
    }

    #[test]
    fn zero_layers_fail_at_build() {
        let err = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .layers(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, HectorError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn forward_before_bind_is_an_error_not_a_panic() {
        let mut engine = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .build()
            .unwrap();
        let err = engine.forward().unwrap_err();
        assert!(matches!(err, HectorError::GraphMismatch { .. }), "{err:?}");
        assert_eq!(err.kind(), "graph_mismatch");
    }

    #[test]
    fn binding_an_empty_graph_is_a_graph_mismatch() {
        let empty = GraphData::new(HeteroGraphBuilder::new().build());
        let mut engine = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .build()
            .unwrap();
        let err = engine.bind(&empty).unwrap_err();
        assert!(matches!(err, HectorError::GraphMismatch { .. }), "{err:?}");
        assert!(!engine.is_bound(), "a failed bind must not half-bind");
    }

    #[test]
    fn untrained_module_rejects_train_step() {
        let graph = graph();
        let mut engine = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .build()
            .unwrap();
        engine.bind(&graph).unwrap();
        let mut opt = Sgd::new(0.1);
        let labels = vec![0usize; graph.graph().num_nodes()];
        let err = engine.train_step(&labels, &mut opt).unwrap_err();
        assert!(matches!(err, HectorError::InvalidConfig { .. }), "{err:?}");
    }

    #[test]
    fn wrong_label_count_is_a_shape_mismatch() {
        let graph = graph();
        let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .build_trainer(Sgd::new(0.1))
            .unwrap();
        trainer.bind(&graph).unwrap();
        let err = trainer
            .engine_mut()
            .train_step(&[0usize; 3], &mut Sgd::new(0.1))
            .unwrap_err();
        assert!(matches!(err, HectorError::ShapeMismatch { .. }), "{err:?}");
    }

    #[test]
    fn misshapen_binding_is_a_shape_mismatch() {
        let graph = graph();
        let mut engine = EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .build()
            .unwrap();
        engine.bind(&graph).unwrap();
        let mut bad = engine.bindings().clone();
        bad.set("h", Tensor::zeros(&[3, 3]));
        engine.set_bindings(bad);
        let err = engine.forward().unwrap_err();
        assert!(matches!(err, HectorError::ShapeMismatch { .. }), "{err:?}");
    }

    #[test]
    #[should_panic(expected = "dims() applies to built-in model kinds")]
    fn dims_on_custom_source_fails_fast() {
        use hector_ir::{AggNorm, ModelBuilder};
        let mut m = ModelBuilder::new("custom_dims", 4);
        let h = m.node_input("h", 4);
        let w = m.weight_per_etype("W", 4, 4);
        let y = m.typed_linear("y", m.src(h), w);
        let out = m.aggregate("out", m.edge(y), None, AggNorm::None);
        m.output(out);
        let _ = EngineBuilder::from_source(m.finish()).dims(8, 8);
    }

    #[test]
    fn second_identical_engine_hits_the_module_cache() {
        let opts = CompileOptions::best();
        // Unique dims for this test so concurrent tests cannot warm the
        // key first: 13→13 RGAT is used nowhere else in this binary.
        let a = EngineBuilder::new(ModelKind::Rgat)
            .dims(13, 13)
            .options(opts.clone())
            .build()
            .unwrap();
        let b = EngineBuilder::new(ModelKind::Rgat)
            .dims(13, 13)
            .options(opts)
            .build()
            .unwrap();
        assert!(
            b.was_cache_hit(),
            "second identical engine must not compile"
        );
        assert!(Arc::ptr_eq(&a.module, &b.module), "one shared module");
    }
}
