//! Reusable scratch buffers for the interpreter hot path.
//!
//! The real-mode interpreter used to allocate a fresh `Vec<f32>` for
//! every operand read, every unary/binary op result, and every GEMM
//! output row — allocator traffic dominated arithmetic at every thread
//! count. A [`Scratch`] arena replaces all of that: the executor owns
//! one arena for its whole lifetime (the parallel executor hands one
//! block to each worker chunk), buffers grow to the widest row a kernel
//! produces and are then reused verbatim, so a steady-state forward pass
//! performs **zero per-row heap allocations** (pinned by
//! `tests/interp_alloc.rs` with a counting global allocator).
//!
//! # Lifetime contract
//!
//! Operand reads return borrowed [`OperandRef`] views into the variable
//! or parameter stores (see `exec::read_operand`); they stay valid only
//! while no buffer of those stores is mutated. Ops therefore compute
//! into the arena's slots *first*, drop the operand borrows, and only
//! then write the finished row back into the output tensor. The three
//! slots (`y`, `a`, `b`) are distinct fields precisely so an op can hold
//! the output slot mutably while staged operand copies stay readable.

/// Growable, reusable scratch slots owned by one executor (or one
/// parallel worker chunk).
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Output-row slot: GEMM rows and unary/binary/dot results.
    y: Vec<f32>,
    /// Staged operand copy A (aggregate values, `GradW` x rows).
    a: Vec<f32>,
    /// Staged operand copy B (`GradW` dy rows).
    b: Vec<f32>,
    /// Per-type-slab finiteness flags of the running GEMM's weight.
    finite: Vec<bool>,
    /// Buffer-growth (heap allocation) events since construction.
    grows: usize,
}

impl Scratch {
    /// Fresh, empty arena.
    pub(crate) fn new() -> Scratch {
        Scratch::default()
    }

    fn grow_to(buf: &mut Vec<f32>, n: usize, grows: &mut usize) {
        if n > buf.capacity() {
            *grows += 1;
        }
        if n > buf.len() {
            buf.resize(n, 0.0);
        }
    }

    /// The output slot, zero-filled, exactly `n` wide.
    pub(crate) fn y_zeroed(&mut self, n: usize) -> &mut [f32] {
        Self::grow_to(&mut self.y, n, &mut self.grows);
        let y = &mut self.y[..n];
        y.fill(0.0);
        y
    }

    /// The output slot, contents unspecified, exactly `n` wide (for ops
    /// that overwrite every element).
    pub(crate) fn y_uninit(&mut self, n: usize) -> &mut [f32] {
        Self::grow_to(&mut self.y, n, &mut self.grows);
        &mut self.y[..n]
    }

    /// The first `n` finished elements of the output slot.
    pub(crate) fn y(&self, n: usize) -> &[f32] {
        &self.y[..n]
    }

    /// Mutable view of the first `n` elements of the output slot (e.g.
    /// for a fused scale applied after the GEMM inner loop).
    pub(crate) fn y_mut(&mut self, n: usize) -> &mut [f32] {
        &mut self.y[..n]
    }

    /// Copies `src` into staged slot A; read it back via [`Scratch::a`].
    pub(crate) fn stage_a(&mut self, src: &[f32]) {
        Self::grow_to(&mut self.a, src.len(), &mut self.grows);
        self.a[..src.len()].copy_from_slice(src);
    }

    /// Copies `src` into staged slot B; read it back via [`Scratch::b`].
    pub(crate) fn stage_b(&mut self, src: &[f32]) {
        Self::grow_to(&mut self.b, src.len(), &mut self.grows);
        self.b[..src.len()].copy_from_slice(src);
    }

    /// The first `n` elements of staged slot A.
    pub(crate) fn a(&self, n: usize) -> &[f32] {
        &self.a[..n]
    }

    /// The first `n` elements of staged slot B.
    pub(crate) fn b(&self, n: usize) -> &[f32] {
        &self.b[..n]
    }

    /// Recomputes the per-slab finiteness flags for a `[t, rows, cols]`
    /// weight stack — one scan per kernel launch, so the `x == 0.0` GEMM
    /// fast path can be gated per slab instead of per element.
    pub(crate) fn set_slab_finite(&mut self, weight: &hector_tensor::Tensor) {
        let t = weight.shape()[0];
        if t > self.finite.capacity() {
            self.grows += 1;
        }
        self.finite.clear();
        self.finite
            .extend((0..t).map(|ty| weight.slab(ty).iter().all(|v| v.is_finite())));
    }

    /// Whether slab `ty` of the last [`Scratch::set_slab_finite`] weight
    /// was entirely finite.
    pub(crate) fn slab_finite(&self, ty: usize) -> bool {
        self.finite[ty]
    }

    /// Buffer-growth (allocation) events since construction.
    pub(crate) fn grows(&self) -> usize {
        self.grows
    }

    /// Adds externally observed growth events (worker-chunk arenas of
    /// the parallel executor report theirs through the owning session's
    /// arena so the device counters see every allocation).
    pub(crate) fn note_external_grows(&mut self, n: usize) {
        self.grows += n;
    }

    /// Current arena footprint in bytes (all slots' capacities).
    pub(crate) fn bytes(&self) -> usize {
        (self.y.capacity() + self.a.capacity() + self.b.capacity()) * std::mem::size_of::<f32>()
            + self.finite.capacity() * std::mem::size_of::<bool>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_tensor::Tensor;

    #[test]
    fn slots_grow_then_reuse() {
        let mut s = Scratch::new();
        assert_eq!(s.grows(), 0);
        s.y_zeroed(8);
        let after_first = s.grows();
        assert!(after_first >= 1);
        // Same or smaller width: no further growth, contents rewritten.
        s.y_uninit(8)[0] = 3.0;
        assert_eq!(s.y(8)[0], 3.0);
        s.y_zeroed(4);
        assert_eq!(s.y(4), &[0.0; 4]);
        assert_eq!(s.grows(), after_first);
        // Wider row: exactly one more growth event.
        s.y_zeroed(16);
        assert_eq!(s.grows(), after_first + 1);
    }

    #[test]
    fn staged_slots_are_independent() {
        let mut s = Scratch::new();
        s.stage_a(&[1.0, 2.0]);
        s.stage_b(&[3.0]);
        assert_eq!(s.a(2), &[1.0, 2.0]);
        assert_eq!(s.b(1), &[3.0]);
        assert!(s.bytes() >= 3 * 4);
    }

    #[test]
    fn slab_finite_flags() {
        let mut s = Scratch::new();
        let mut w = Tensor::zeros(&[2, 2, 2]);
        w.data_mut()[5] = f32::INFINITY;
        s.set_slab_finite(&w);
        assert!(s.slab_finite(0));
        assert!(!s.slab_finite(1));
        // Refreshing with a finite weight flips the flag back.
        s.set_slab_finite(&Tensor::zeros(&[2, 2, 2]));
        assert!(s.slab_finite(1));
    }

    #[test]
    fn external_grows_accumulate() {
        let mut s = Scratch::new();
        s.note_external_grows(3);
        assert_eq!(s.grows(), 3);
    }
}
