//! Parameter storage: per-type weight stacks, gradients, and the derived
//! (reorder-fused) weight machinery.

use hector_ir::{Program, TypeIndex, WeightId, WeightPrep};
use hector_tensor::{matmul_into, microkernel, xavier_uniform, Tensor};
use rand::rngs::StdRng;

use crate::GraphData;

/// Learnable parameters of one compiled module, shaped for a particular
/// graph (the type dimension depends on the graph's type counts).
///
/// Weights are stored as `[T, rows, cols]` stacks. Weights flagged
/// `derived` in the program were introduced by linear operator reordering;
/// they are recomputed from their base weights through the program's
/// [`WeightPrep`] list at the start of every forward pass, and their
/// gradients are distributed back to the base weights by
/// [`ParamStore::backprop_preps`] (the chain rule through the weight-space
/// product).
#[derive(Clone, Debug)]
pub struct ParamStore {
    weights: Vec<Tensor>,
    grads: Vec<Tensor>,
    type_counts: Vec<usize>,
    /// Reusable staging buffers for the prep chain rule
    /// ([`ParamStore::backprop_preps`]): grown monotonically on first
    /// use, then reused — warm training steps never touch the heap.
    prep_a: Vec<f32>,
    prep_b: Vec<f32>,
}

impl ParamStore {
    /// Initialises parameters for `program` on `graph`, Xavier-uniform,
    /// from the given RNG (derived weights start at zero and are filled
    /// by [`ParamStore::run_preps`]).
    #[must_use]
    pub fn init(program: &Program, graph: &GraphData, rng: &mut StdRng) -> ParamStore {
        let mut weights = Vec::with_capacity(program.weights.len());
        let mut grads = Vec::with_capacity(program.weights.len());
        let mut type_counts = Vec::with_capacity(program.weights.len());
        for info in &program.weights {
            let t = graph.type_count(info.per);
            let shape = [t, info.rows, info.cols];
            if info.derived {
                weights.push(Tensor::zeros(&shape));
            } else {
                weights.push(xavier_uniform(rng, &shape));
            }
            grads.push(Tensor::zeros(&shape));
            type_counts.push(t);
        }
        ParamStore {
            weights,
            grads,
            type_counts,
            prep_a: Vec::new(),
            prep_b: Vec::new(),
        }
    }

    /// The weight stack of `w`.
    #[must_use]
    pub fn weight(&self, w: WeightId) -> &Tensor {
        &self.weights[w.0 as usize]
    }

    /// Mutable weight access (tests, manual initialisation).
    pub fn weight_mut(&mut self, w: WeightId) -> &mut Tensor {
        &mut self.weights[w.0 as usize]
    }

    /// The gradient stack of `w`.
    #[must_use]
    pub fn grad(&self, w: WeightId) -> &Tensor {
        &self.grads[w.0 as usize]
    }

    /// Mutable gradient access (the executor accumulates into this).
    pub fn grad_mut(&mut self, w: WeightId) -> &mut Tensor {
        &mut self.grads[w.0 as usize]
    }

    /// Simultaneous mutable weight + shared gradient access — weights
    /// and gradients live in separate stores, so optimizers can update
    /// in place without cloning the gradient first.
    pub fn weight_and_grad_mut(&mut self, w: WeightId) -> (&mut Tensor, &Tensor) {
        let i = w.0 as usize;
        (&mut self.weights[i], &self.grads[i])
    }

    /// Number of type slabs of `w`.
    #[must_use]
    pub fn type_count(&self, w: WeightId) -> usize {
        self.type_counts[w.0 as usize]
    }

    /// Number of weights.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total parameter bytes (device-resident).
    #[must_use]
    pub fn byte_size(&self) -> usize {
        self.weights.iter().map(Tensor::byte_size).sum()
    }

    /// Zeroes all gradients (start of a training step).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            for v in g.data_mut() {
                *v = 0.0;
            }
        }
    }

    /// Executes one weight prep (called by the fallback kernels at the
    /// start of every forward pass, since base weights change between
    /// steps). Writes into the derived weight's existing storage — the
    /// tensor was shaped at [`ParamStore::init`] — so a warm prep run
    /// performs no heap allocation.
    pub fn run_prep(&mut self, prep: &WeightPrep, program: &Program) {
        match prep {
            WeightPrep::MatVec { w, v, out } => {
                let (t, k, n) = {
                    let ws = self.weight(*w);
                    (ws.shape()[0], ws.shape()[1], ws.shape()[2])
                };
                debug_assert_eq!(program.weight(*out).rows, k);
                // Detach the derived tensor so the base weights stay
                // readable while we fill it (disjoint indices of the
                // same store).
                let mut fused = std::mem::take(&mut self.weights[out.0 as usize]);
                debug_assert_eq!(fused.shape(), &[t, k, 1]);
                for ty in 0..t {
                    let wslab = self.weight(*w).slab(ty);
                    let vslab = self.weight(*v).slab(ty); // [n, 1]
                    let dst = &mut fused.data_mut()[ty * k..(ty + 1) * k];
                    for (i, d) in dst.iter_mut().enumerate() {
                        let mut acc = 0.0;
                        for j in 0..n {
                            acc += wslab[i * n + j] * vslab[j];
                        }
                        *d = acc;
                    }
                }
                self.weights[out.0 as usize] = fused;
            }
            WeightPrep::MatMulPairs { a, b, out } => {
                let (nt, k, m) = {
                    let ws = self.weight(*a);
                    (ws.shape()[0], ws.shape()[1], ws.shape()[2])
                };
                let (et, m2, n) = {
                    let ws = self.weight(*b);
                    (ws.shape()[0], ws.shape()[1], ws.shape()[2])
                };
                assert_eq!(m, m2, "prep inner dims must agree");
                debug_assert_eq!(program.weight(*out).per, TypeIndex::NodeEdgePair);
                let mut fused = std::mem::take(&mut self.weights[out.0 as usize]);
                debug_assert_eq!(fused.shape(), &[nt * et, k, n]);
                for i in 0..nt {
                    for j in 0..et {
                        let idx = i * et + j;
                        let dst = &mut fused.data_mut()[idx * k * n..(idx + 1) * k * n];
                        dst.fill(0.0);
                        matmul_into(
                            self.weight(*a).slab(i),
                            self.weight(*b).slab(j),
                            dst,
                            k,
                            m,
                            n,
                        );
                    }
                }
                self.weights[out.0 as usize] = fused;
            }
        }
    }

    /// Runs every prep of `program` (forward-pass entry).
    pub fn run_preps(&mut self, program: &Program) {
        for prep in &program.preps {
            self.run_prep(prep, program);
        }
    }

    /// Distributes gradients accumulated on derived weights back to their
    /// base weights (chain rule through the weight-space products), then
    /// clears the derived gradients. Staging goes through the store's
    /// reusable `prep_a`/`prep_b` buffers (preserving the exact
    /// accumulation order of the former temporary-tensor formulation),
    /// so warm steps are allocation-free.
    pub fn backprop_preps(&mut self, program: &Program) {
        for prep in program.preps.iter().rev() {
            match prep {
                WeightPrep::MatVec { w, v, out } => {
                    // out[t][i] = Σ_j W[t][i,j] · v[t][j]
                    // dW[t][i,j] += dout[t][i] · v[t][j]
                    // dv[t][j]   += Σ_i dout[t][i] · W[t][i,j]
                    let mut dout = std::mem::take(&mut self.grads[out.0 as usize]);
                    let (t, k) = (dout.shape()[0], dout.shape()[1]);
                    let n = self.weight(*w).shape()[2];
                    for ty in 0..t {
                        let dslab = dout.slab(ty); // [k]
                        {
                            let vslab = self.weights[v.0 as usize].slab(ty); // [n]
                            let gw = &mut self.grads[w.0 as usize].data_mut()
                                [ty * k * n..(ty + 1) * k * n];
                            for i in 0..k {
                                for j in 0..n {
                                    gw[i * n + j] += dslab[i] * vslab[j];
                                }
                            }
                        }
                        {
                            let wslab = self.weights[w.0 as usize].slab(ty); // [k, n]
                            let gv = &mut self.grads[v.0 as usize].data_mut()[ty * n..(ty + 1) * n];
                            for (j, g) in gv.iter_mut().enumerate() {
                                let mut acc = 0.0;
                                for i in 0..k {
                                    acc += dslab[i] * wslab[i * n + j];
                                }
                                *g += acc;
                            }
                        }
                    }
                    dout.data_mut().fill(0.0);
                    self.grads[out.0 as usize] = dout;
                }
                WeightPrep::MatMulPairs { a, b, out } => {
                    // out[(i,j)] = A[i]·B[j]
                    // dA[i] += Σ_j dout[(i,j)]·B[j]^T ; dB[j] += Σ_i A[i]^T·dout[(i,j)]
                    let mut dout = std::mem::take(&mut self.grads[out.0 as usize]);
                    let (nt, k, m) = {
                        let ws = self.weight(*a);
                        (ws.shape()[0], ws.shape()[1], ws.shape()[2])
                    };
                    let (et, _, n) = {
                        let ws = self.weight(*b);
                        (ws.shape()[0], ws.shape()[1], ws.shape()[2])
                    };
                    if self.prep_a.len() < k * m {
                        self.prep_a.resize(k * m, 0.0);
                    }
                    if self.prep_b.len() < m * n {
                        self.prep_b.resize(m * n, 0.0);
                    }
                    let mut da_buf = std::mem::take(&mut self.prep_a);
                    let mut db_buf = std::mem::take(&mut self.prep_b);
                    for i in 0..nt {
                        for j in 0..et {
                            let idx = i * et + j;
                            let d = dout.slab(idx); // [k, n]
                            let da = &mut da_buf[..k * m];
                            {
                                // da = d · Bᵀ, row by row through the
                                // transposed microkernel (≡ matmul_tb).
                                let bslab = self.weights[b.0 as usize].slab(j); // [m, n]
                                for (drow, darow) in d.chunks_exact(n).zip(da.chunks_exact_mut(m)) {
                                    microkernel::gemm_row_tb_blocked(drow, bslab, n, darow);
                                }
                            }
                            let db = &mut db_buf[..m * n];
                            {
                                // db = Aᵀ · d: one rank-1 update per
                                // shared row (≡ matmul_ta).
                                db.fill(0.0);
                                let aslab = self.weights[a.0 as usize].slab(i); // [k, m]
                                for p in 0..k {
                                    microkernel::outer_accum_blocked(
                                        &aslab[p * m..(p + 1) * m],
                                        &d[p * n..(p + 1) * n],
                                        db,
                                        true,
                                    );
                                }
                            }
                            let ga = &mut self.grads[a.0 as usize].data_mut()
                                [i * k * m..(i + 1) * k * m];
                            for (g, &x) in ga.iter_mut().zip(&*da) {
                                *g += x;
                            }
                            let gb = &mut self.grads[b.0 as usize].data_mut()
                                [j * m * n..(j + 1) * m * n];
                            for (g, &x) in gb.iter_mut().zip(&*db) {
                                *g += x;
                            }
                        }
                    }
                    self.prep_a = da_buf;
                    self.prep_b = db_buf;
                    dout.data_mut().fill(0.0);
                    self.grads[out.0 as usize] = dout;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_graph::HeteroGraphBuilder;
    use hector_ir::ModelBuilder;
    use hector_tensor::seeded_rng;

    fn toy_graph() -> GraphData {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(2);
        b.add_node_type(2);
        b.add_edge(0, 2, 0);
        b.add_edge(1, 3, 1);
        b.add_edge(1, 2, 1);
        GraphData::new(b.build())
    }

    #[test]
    fn init_shapes_follow_type_counts() {
        let mut m = ModelBuilder::new("t", 4);
        let h = m.node_input("h", 4);
        let we = m.weight_per_etype("We", 4, 4);
        let wn = m.weight_per_ntype("Wn", 4, 4);
        let w0 = m.weight_shared("W0", 4, 4);
        let y = m.typed_linear("y", m.src(h), we);
        let out = m.aggregate("out", m.edge(y), None, hector_ir::AggNorm::None);
        m.output(out);
        let p = m.finish().program;
        let g = toy_graph();
        let mut rng = seeded_rng(1);
        let ps = ParamStore::init(&p, &g, &mut rng);
        assert_eq!(ps.weight(we).shape(), &[2, 4, 4]);
        assert_eq!(ps.weight(wn).shape(), &[2, 4, 4]);
        assert_eq!(ps.weight(w0).shape(), &[1, 4, 4]);
        assert!(ps.byte_size() > 0);
    }

    #[test]
    fn matvec_prep_matches_manual() {
        let mut m = ModelBuilder::new("t", 2);
        let h = m.node_input("h", 2);
        let w = m.weight_per_etype("W", 2, 2);
        let v = m.weight_vec_per_etype("v", 2);
        let ht = m.typed_linear("ht", m.dst(h), w);
        let att = m.dot("att", m.edge(ht), m.wvec(v));
        let s = m.aggregate("s", m.edge(att), None, hector_ir::AggNorm::None);
        m.output(s);
        let mut p = m.finish().program;
        hector_compiler::reorder::linear_operator_reordering(&mut p);
        let g = toy_graph();
        let mut rng = seeded_rng(2);
        let mut ps = ParamStore::init(&p, &g, &mut rng);
        ps.run_preps(&p);
        let fused = hector_ir::WeightId((p.weights.len() - 1) as u32);
        // fused[t][i] = Σ_j W[t][i,j] v[t][j]
        for ty in 0..2 {
            for i in 0..2 {
                let mut acc = 0.0;
                for j in 0..2 {
                    acc += ps.weight(w).at3(ty, i, j) * ps.weight(v).at3(ty, j, 0);
                }
                assert!((ps.weight(fused).at3(ty, i, 0) - acc).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn matvec_prep_backward_chain_rule() {
        // Finite-difference check of backprop through the fused weight.
        let mut m = ModelBuilder::new("t", 2);
        let h = m.node_input("h", 2);
        let w = m.weight_per_etype("W", 2, 2);
        let v = m.weight_vec_per_etype("v", 2);
        let ht = m.typed_linear("ht", m.dst(h), w);
        let att = m.dot("att", m.edge(ht), m.wvec(v));
        let s = m.aggregate("s", m.edge(att), None, hector_ir::AggNorm::None);
        m.output(s);
        let mut p = m.finish().program;
        hector_compiler::reorder::linear_operator_reordering(&mut p);
        let g = toy_graph();
        let mut rng = seeded_rng(3);
        let mut ps = ParamStore::init(&p, &g, &mut rng);
        ps.run_preps(&p);
        let fused = hector_ir::WeightId((p.weights.len() - 1) as u32);
        // Pretend dLoss/dfused = 1 everywhere; then dW[t][i][j] = v[t][j].
        for x in ps.grad_mut(fused).data_mut() {
            *x = 1.0;
        }
        ps.backprop_preps(&p);
        for ty in 0..2 {
            for i in 0..2 {
                for j in 0..2 {
                    let expect = ps.weight(v).at3(ty, j, 0);
                    assert!((ps.grad(w).at3(ty, i, j) - expect).abs() < 1e-6);
                }
            }
        }
        // Derived grad cleared.
        assert!(ps.grad(fused).data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn zero_grads_clears() {
        let mut m = ModelBuilder::new("t", 2);
        let h = m.node_input("h", 2);
        let w = m.weight_per_etype("W", 2, 2);
        let y = m.typed_linear("y", m.src(h), w);
        let out = m.aggregate("out", m.edge(y), None, hector_ir::AggNorm::None);
        m.output(out);
        let p = m.finish().program;
        let g = toy_graph();
        let mut rng = seeded_rng(4);
        let mut ps = ParamStore::init(&p, &g, &mut rng);
        ps.grad_mut(w).data_mut()[0] = 5.0;
        ps.zero_grads();
        assert!(ps.grad(w).data().iter().all(|&x| x == 0.0));
    }
}
