//! `hector-par`: a vendored, zero-dependency scoped work-stealing
//! threadpool.
//!
//! The build environment has no crates.io access, so the rayon-style
//! work splitting the parallel real-mode executor needs is vendored here,
//! like the `rand`/`proptest`/`criterion` stand-ins under `crates/vendor/`.
//! The API surface is the small slice Hector uses:
//!
//! * [`ThreadPool::scope`] — structured task spawning borrowing stack
//!   data (crossbeam-style scoped lifetimes, panic propagation);
//! * [`ThreadPool::parallel_for`] — run a closure over contiguous index
//!   chunks of `0..n`;
//! * [`ThreadPool::for_each_chunk`] — the allocation-free core of
//!   `parallel_for`: the chunk job is published through pool-owned
//!   atomics and workers claim chunk indices with a `fetch_add`, so a
//!   warm parallel run performs zero heap allocations (callers keep
//!   per-chunk state in pooled slots indexed by the chunk index);
//! * [`ThreadPool::parallel_chunks`] — same split, collecting one result
//!   per chunk **in chunk order** (the primitive the deterministic merge
//!   of scatter/aggregate partials is built on);
//! * [`ParallelConfig`] — `num_threads` / `min_chunk_rows`, defaulted
//!   from the `HECTOR_THREADS` and `HECTOR_MIN_CHUNK_ROWS` environment
//!   variables;
//! * [`Prefetcher`] — a bounded background producer for pipelines that
//!   must keep work in flight *across* the caller's returns (mini-batch
//!   prefetch), which the structured `scope` cannot express.
//!
//! # Scheduling
//!
//! A pool of `num_threads` means `num_threads - 1` background workers
//! plus the caller, which helps execute tasks while it waits for a scope
//! to drain — `ThreadPool::new(1)` is a valid pool with zero workers
//! where every task runs inline on the caller. Tasks are distributed
//! round-robin across per-worker deques; idle workers (and the helping
//! caller) steal from the back of other workers' deques. Steal and
//! execution counts are exposed through [`ThreadPool::stats`] and are
//! surfaced per-kernel by the runtime through the device counters.
//!
//! # Determinism
//!
//! The pool itself makes no ordering promises — chunks run whenever a
//! worker picks them up. Deterministic numerics are the *callers'*
//! contract: chunk boundaries are a pure function of `(n, min_chunk,
//! parallelism)` via [`chunk_ranges`], and [`ThreadPool::parallel_chunks`]
//! returns results indexed by chunk, so callers can merge partial results
//! in fixed chunk order regardless of execution interleaving.

#![warn(missing_docs)]

mod pipeline;

pub use pipeline::Prefetcher;

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// A type-erased unit of work. Lifetimes are erased by [`Scope::spawn`];
/// soundness rests on [`ThreadPool::scope`] not returning until every
/// spawned job has finished.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Type-erased entry point for the allocation-free chunk dispatcher:
/// `(closure, chunk_index, row_range)`. Monomorphized per closure type by
/// [`chunk_harness`].
type ChunkHarness = unsafe fn(*const (), usize, Range<usize>);

/// Calls the published `Fn(usize, Range<usize>)` closure through its
/// type-erased pointer.
///
/// # Safety
///
/// `ctx` must point to a live `F` for the duration of the call — upheld
/// by [`ThreadPool::for_each_chunk`], which does not return until every
/// claimed chunk has finished.
unsafe fn chunk_harness<F: Fn(usize, Range<usize>) + Sync>(
    ctx: *const (),
    i: usize,
    range: Range<usize>,
) {
    let f = &*(ctx as *const F);
    f(i, range);
}

/// Low half of the packed chunk-claim word (the next unclaimed index);
/// the high half holds the active job's total chunk count.
const CHUNK_IDX_MASK: u64 = 0xffff_ffff;

/// Parallel-execution settings threaded through a `Session`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Total parallelism (caller + workers). `1` means strictly
    /// sequential execution — the runtime takes the exact sequential
    /// code path, no pool is created at all.
    pub num_threads: usize,
    /// Minimum rows per chunk when splitting a row domain; domains
    /// smaller than `2 * min_chunk_rows` run as a single inline chunk.
    pub min_chunk_rows: usize,
}

impl ParallelConfig {
    /// Strictly sequential execution.
    #[must_use]
    pub fn sequential() -> ParallelConfig {
        ParallelConfig {
            num_threads: 1,
            min_chunk_rows: 128,
        }
    }

    /// Reads `HECTOR_THREADS` (default 1) and `HECTOR_MIN_CHUNK_ROWS`
    /// (default 128). Invalid or zero values fall back to the defaults.
    #[must_use]
    pub fn from_env() -> ParallelConfig {
        let threads = std::env::var("HECTOR_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t >= 1)
            .unwrap_or(1);
        let min_chunk = std::env::var("HECTOR_MIN_CHUNK_ROWS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c >= 1)
            .unwrap_or(128);
        ParallelConfig {
            num_threads: threads,
            min_chunk_rows: min_chunk,
        }
    }

    /// Returns a copy with `num_threads` replaced.
    #[must_use]
    pub fn with_threads(mut self, n: usize) -> ParallelConfig {
        self.num_threads = n.max(1);
        self
    }

    /// Returns a copy with `min_chunk_rows` replaced.
    #[must_use]
    pub fn with_min_chunk_rows(mut self, rows: usize) -> ParallelConfig {
        self.min_chunk_rows = rows.max(1);
        self
    }

    /// Whether this configuration ever runs anything in parallel.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.num_threads > 1
    }
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig::from_env()
    }
}

/// Snapshot of pool activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed (by workers, the helping caller, or inline
    /// single-chunk fast paths).
    pub executed: u64,
    /// Jobs obtained by stealing from another queue.
    pub steals: u64,
    /// Background worker threads the pool was built with.
    pub workers: usize,
    /// Worker threads currently alive (0 after drop — the no-leak
    /// invariant the unit tests pin).
    pub live_workers: usize,
}

struct Shared {
    /// One deque per background worker. Jobs are pushed round-robin;
    /// idle workers steal from the back of others' deques.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow queue used when the pool has no workers (pure
    /// caller-inline mode) and by external pushes racing a busy pool.
    injector: Mutex<VecDeque<Job>>,
    idle_lock: Mutex<()>,
    work_cv: Condvar,
    /// Workers that have reached their run loop. [`ThreadPool::new`]
    /// blocks until every worker checks in, so thread-startup work (the
    /// runtime allocates per-thread state in the spawn prologue) is done
    /// before the pool is handed to the caller — warm-path allocation
    /// accounting never sees a straggling worker's startup.
    started: Mutex<usize>,
    started_cv: Condvar,
    shutdown: AtomicBool,
    next_queue: AtomicUsize,
    executed: AtomicU64,
    steals: AtomicU64,
    live_workers: AtomicUsize,

    // --- Allocation-free chunk dispatcher (`for_each_chunk`) state. ---
    // One chunk job can be live at a time (`chunk_active` guards it);
    // concurrent/nested publishers fall back to the boxed scope path.
    /// Packed claim word: `(total_chunks << 32) | next_index`. Zero when
    /// idle; claimed by `fetch_add(1)`, so each index is handed out once.
    chunk_claim: AtomicU64,
    /// Chunks published but not yet finished. The publisher blocks until
    /// this reaches zero, which is what pins the closure pointed to by
    /// `chunk_ctx` for the workers.
    chunk_pending: AtomicUsize,
    /// Domain size `n` of the active job (for `chunk_range`).
    chunk_n: AtomicUsize,
    /// Type-erased pointer to the publisher's `Fn(usize, Range<usize>)`.
    chunk_ctx: AtomicPtr<()>,
    /// Monomorphized [`ChunkHarness`] for `chunk_ctx`'s concrete type.
    chunk_harness: AtomicPtr<()>,
    /// Publisher exclusivity flag for the chunk dispatcher.
    chunk_active: AtomicBool,
    chunk_done_lock: Mutex<()>,
    chunk_done_cv: Condvar,
    /// First panic payload from a chunk (allocates only when panicking).
    chunk_panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Shared {
    fn push(&self, job: Job) {
        if self.queues.is_empty() {
            self.injector.lock().unwrap().push_back(job);
        } else {
            let i = self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len();
            self.queues[i].lock().unwrap().push_back(job);
        }
        // Take the idle lock so a worker between its last queue check and
        // its condvar wait cannot miss this wakeup.
        let _g = self.idle_lock.lock().unwrap();
        self.work_cv.notify_all();
    }

    /// Pops a job: own queue front first (`me`), then the injector, then
    /// steal from the back of another worker's deque.
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(m) = me {
            if let Some(j) = self.queues[m].lock().unwrap().pop_front() {
                return Some(j);
            }
        }
        if let Some(j) = self.injector.lock().unwrap().pop_front() {
            return Some(j);
        }
        let n = self.queues.len();
        if n == 0 {
            return None;
        }
        let start = self.next_queue.load(Ordering::Relaxed);
        for k in 0..n {
            let v = (start + k) % n;
            if me == Some(v) {
                continue;
            }
            if let Some(j) = self.queues[v].lock().unwrap().pop_back() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(j);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        if self.chunk_work_available() {
            return true;
        }
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.queues.iter().any(|q| !q.lock().unwrap().is_empty())
    }

    /// Whether the active chunk job (if any) still has unclaimed chunks.
    fn chunk_work_available(&self) -> bool {
        let w = self.chunk_claim.load(Ordering::Acquire);
        (w >> 32) > (w & CHUNK_IDX_MASK)
    }

    /// Claims and runs chunks of the active chunk job until none remain.
    /// Returns whether any chunk was run. Safe to call at any time — an
    /// idle dispatcher hands out a claim index past the (zero) total.
    fn run_chunk_jobs(&self) -> bool {
        let mut ran = false;
        loop {
            let word = self.chunk_claim.fetch_add(1, Ordering::AcqRel);
            let total = (word >> 32) as usize;
            let i = (word & CHUNK_IDX_MASK) as usize;
            if i >= total {
                return ran;
            }
            ran = true;
            // SAFETY: a successful claim (`i < total`) pins the
            // publishing `for_each_chunk` frame: `chunk_pending` cannot
            // reach zero before this chunk's decrement below, and the
            // publisher does not return (or rewrite these fields) until
            // `chunk_pending == 0`. The `AcqRel` claim synchronizes with
            // the publisher's `Release` store of `chunk_claim` (release
            // sequences survive intervening RMWs), so the relaxed loads
            // below observe the published ctx/harness/n.
            let harness: ChunkHarness =
                unsafe { std::mem::transmute(self.chunk_harness.load(Ordering::Relaxed)) };
            let ctx = self.chunk_ctx.load(Ordering::Relaxed) as *const ();
            let n = self.chunk_n.load(Ordering::Relaxed);
            self.executed.fetch_add(1, Ordering::Relaxed);
            let result = panic::catch_unwind(AssertUnwindSafe(|| unsafe {
                harness(ctx, i, chunk_range(n, total, i))
            }));
            if let Err(p) = result {
                self.chunk_panic.lock().unwrap().get_or_insert(p);
            }
            if self.chunk_pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = self.chunk_done_lock.lock().unwrap();
                self.chunk_done_cv.notify_all();
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, me: usize) {
    {
        let mut started = shared.started.lock().unwrap();
        *started += 1;
        shared.started_cv.notify_one();
    }
    loop {
        if shared.run_chunk_jobs() {
            continue;
        }
        if let Some(job) = shared.find_job(Some(me)) {
            shared.executed.fetch_add(1, Ordering::Relaxed);
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        let guard = shared.idle_lock.lock().unwrap();
        if shared.has_work() || shared.shutdown.load(Ordering::Acquire) {
            continue;
        }
        // Timeout bounds the cost of any wakeup race to one tick.
        let _ = shared
            .work_cv
            .wait_timeout(guard, Duration::from_millis(5))
            .unwrap();
    }
    shared.live_workers.fetch_sub(1, Ordering::AcqRel);
}

/// Per-scope completion state: outstanding job count plus the first
/// captured panic payload.
struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    done_lock: Mutex<()>,
    done_cv: Condvar,
}

/// Handle for spawning tasks that may borrow data living at least as
/// long as `'scope` (crossbeam-style structured concurrency).
pub struct Scope<'pool, 'scope> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    /// Invariant over `'scope` so the borrow checker pins the lifetime.
    _scope: PhantomData<std::cell::Cell<&'scope mut ()>>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Spawns a task onto the pool. The task may borrow anything that
    /// outlives the enclosing [`ThreadPool::scope`] call. A panicking
    /// task does not abort the others; the first panic payload is
    /// re-raised on the caller once the scope has fully drained.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let task = move || {
            if let Err(p) = panic::catch_unwind(AssertUnwindSafe(f)) {
                let mut slot = state.panic.lock().unwrap();
                slot.get_or_insert(p);
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = state.done_lock.lock().unwrap();
                state.done_cv.notify_all();
            }
        };
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        // SAFETY: `ThreadPool::scope` does not return (normally or by
        // unwinding) until `pending` reaches zero, i.e. until this job has
        // run to completion, so every borrow with lifetime `'scope` is
        // still live whenever the job executes.
        let job: Job = unsafe { std::mem::transmute(job) };
        self.pool.shared.push(job);
    }
}

/// A scoped work-stealing threadpool.
///
/// Dropping the pool shuts the workers down and joins them — no worker
/// threads outlive the pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("parallelism", &self.parallelism())
            .field("stats", &self.stats())
            .finish()
    }
}

impl ThreadPool {
    /// Creates a pool with total parallelism `num_threads` (the caller
    /// plus `num_threads - 1` background workers).
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` is zero.
    #[must_use]
    pub fn new(num_threads: usize) -> ThreadPool {
        assert!(num_threads >= 1, "a pool needs at least one thread");
        let n_workers = num_threads - 1;
        let shared = Arc::new(Shared {
            queues: (0..n_workers)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            idle_lock: Mutex::new(()),
            work_cv: Condvar::new(),
            started: Mutex::new(0),
            started_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            next_queue: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            live_workers: AtomicUsize::new(n_workers),
            chunk_claim: AtomicU64::new(0),
            chunk_pending: AtomicUsize::new(0),
            chunk_n: AtomicUsize::new(0),
            chunk_ctx: AtomicPtr::new(std::ptr::null_mut()),
            chunk_harness: AtomicPtr::new(std::ptr::null_mut()),
            chunk_active: AtomicBool::new(false),
            chunk_done_lock: Mutex::new(()),
            chunk_done_cv: Condvar::new(),
            chunk_panic: Mutex::new(None),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hector-par-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("spawning pool worker")
            })
            .collect();
        // Rendezvous: wait for every worker to reach its run loop (see
        // `Shared::started`).
        let mut started = shared.started.lock().unwrap();
        while *started < n_workers {
            started = shared.started_cv.wait(started).unwrap();
        }
        drop(started);
        ThreadPool { shared, workers }
    }

    /// Creates a pool for `config`, or `None` when the configuration is
    /// sequential (callers take the exact sequential code path).
    #[must_use]
    pub fn from_config(config: &ParallelConfig) -> Option<ThreadPool> {
        config
            .is_parallel()
            .then(|| ThreadPool::new(config.num_threads))
    }

    /// Total parallelism: background workers plus the helping caller.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.workers.len() + 1
    }

    /// Activity counters (cumulative over the pool's lifetime).
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            executed: self.shared.executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            workers: self.workers.len(),
            live_workers: self.shared.live_workers.load(Ordering::Acquire),
        }
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing stack data can
    /// be spawned, then blocks until every spawned task has finished.
    /// The caller helps execute queued tasks while it waits. If `f` or
    /// any task panicked, the (first) panic resumes on the caller after
    /// the scope has drained — tasks never outlive their borrows.
    pub fn scope<'pool, 'scope, R>(&'pool self, f: impl FnOnce(&Scope<'pool, 'scope>) -> R) -> R {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _scope: PhantomData,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));

        // Drain: help run jobs; park only when nothing is runnable.
        loop {
            while let Some(job) = self.shared.find_job(None) {
                self.shared.executed.fetch_add(1, Ordering::Relaxed);
                job();
            }
            let guard = state.done_lock.lock().unwrap();
            if state.pending.load(Ordering::Acquire) == 0 {
                break;
            }
            if self.shared.has_work() {
                continue; // new work appeared; go help instead of waiting
            }
            let _ = state
                .done_cv
                .wait_timeout(guard, Duration::from_millis(5))
                .unwrap();
        }

        let task_panic = state.panic.lock().unwrap().take();
        match result {
            Err(p) => panic::resume_unwind(p),
            Ok(r) => {
                if let Some(p) = task_panic {
                    panic::resume_unwind(p);
                }
                r
            }
        }
    }

    /// Splits `0..n` into contiguous chunks (the exact split of
    /// [`chunk_ranges`]) and runs `f(chunk_index, range)` for each, in
    /// parallel, **without allocating**: no boxed jobs, no scope state,
    /// no range vector. The chunk job is published through pool-owned
    /// atomics, workers claim indices with a `fetch_add`, and the caller
    /// helps until every chunk has run. Returns the number of chunks
    /// (what [`chunk_count`] predicts), so callers can index
    /// caller-owned per-chunk slots — the primitive the runtime's pooled
    /// worker arenas are built on. A single-chunk split runs inline on
    /// the caller; empty domains (`n == 0`) are a no-op returning 0.
    ///
    /// Chunk panics are captured and the first one resumes on the caller
    /// after every chunk has finished, like [`ThreadPool::scope`].
    /// Nested or concurrent calls fall back to an equivalent (allocating)
    /// scope-based dispatch — only one lock-free chunk job is live at a
    /// time per pool.
    pub fn for_each_chunk<F>(&self, n: usize, min_chunk: usize, f: F) -> usize
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let chunks = chunk_count(n, min_chunk, self.parallelism());
        if chunks == 0 {
            return 0;
        }
        if chunks == 1 {
            self.shared.executed.fetch_add(1, Ordering::Relaxed);
            f(0, 0..n);
            return 1;
        }
        let s = &*self.shared;
        if s.chunk_active
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Another chunk job is live (nested use, or a second thread
            // driving the same pool): take the boxed scope path instead.
            self.scoped_chunks(n, chunks, &f);
            return chunks;
        }
        s.chunk_ctx
            .store(&f as *const F as *const () as *mut (), Ordering::Relaxed);
        s.chunk_harness
            .store(chunk_harness::<F> as *mut (), Ordering::Relaxed);
        s.chunk_n.store(n, Ordering::Relaxed);
        s.chunk_pending.store(chunks, Ordering::Relaxed);
        // Publish: the Release store pairs with the AcqRel claims in
        // `run_chunk_jobs`, making the stores above visible to claimers.
        s.chunk_claim
            .store((chunks as u64) << 32, Ordering::Release);
        {
            let _g = s.idle_lock.lock().unwrap();
            s.work_cv.notify_all();
        }
        // The caller is one of the pool's threads: claim chunks too.
        s.run_chunk_jobs();
        // Wait for straggler workers still running claimed chunks.
        {
            let mut guard = s.chunk_done_lock.lock().unwrap();
            while s.chunk_pending.load(Ordering::Acquire) != 0 {
                guard = s
                    .chunk_done_cv
                    .wait_timeout(guard, Duration::from_millis(5))
                    .unwrap()
                    .0;
            }
        }
        // Retire the job before releasing publisher exclusivity.
        s.chunk_claim.store(0, Ordering::Release);
        s.chunk_ctx.store(std::ptr::null_mut(), Ordering::Relaxed);
        s.chunk_active.store(false, Ordering::Release);
        // Bind before unwinding so the guard drops first (an `if let`
        // scrutinee guard would stay held across `resume_unwind` and
        // poison the mutex).
        let chunk_panic = s.chunk_panic.lock().unwrap().take();
        if let Some(p) = chunk_panic {
            panic::resume_unwind(p);
        }
        chunks
    }

    /// Scope-based fallback for [`ThreadPool::for_each_chunk`] when the
    /// lock-free dispatcher is already in use. Same split, same
    /// semantics, one boxed job per chunk.
    fn scoped_chunks<F>(&self, n: usize, chunks: usize, f: &F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        self.scope(|s| {
            for i in 0..chunks {
                let range = chunk_range(n, chunks, i);
                s.spawn(move || f(i, range));
            }
        });
    }

    /// Splits `0..n` into contiguous chunks (see [`chunk_ranges`]) and
    /// runs `f(chunk_index, range)` for each, in parallel. A single-chunk
    /// split runs inline on the caller with no pool round-trip. Empty
    /// domains (`n == 0`) are a no-op. Allocation-free — a thin wrapper
    /// over [`ThreadPool::for_each_chunk`].
    pub fn parallel_for<F>(&self, n: usize, min_chunk: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Send + Sync,
    {
        self.for_each_chunk(n, min_chunk, f);
    }

    /// Like [`ThreadPool::parallel_for`], but collects each chunk's
    /// return value and hands them back **ordered by chunk index** —
    /// execution order never leaks into the result, which is what lets
    /// callers merge floating-point partials deterministically. Allocates
    /// one slot per chunk; use [`ThreadPool::for_each_chunk`] with
    /// caller-pooled slots on allocation-free paths.
    pub fn parallel_chunks<R, F>(&self, n: usize, min_chunk: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Send + Sync,
    {
        let chunks = chunk_count(n, min_chunk, self.parallelism());
        let slots: Vec<Mutex<Option<R>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
        self.for_each_chunk(n, min_chunk, |i, range| {
            *slots[i].lock().unwrap() = Some(f(i, range));
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("for_each_chunk returned, so every chunk completed")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _g = self.shared.idle_lock.lock().unwrap();
            self.shared.work_cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Splits `0..n` into contiguous, balanced chunks of at least
/// `min_chunk` items (except when `n < min_chunk`, which yields one
/// undersized chunk). At most `4 × parallelism` chunks are produced so
/// per-chunk overhead stays bounded while still leaving slack for work
/// stealing. Pure function of its arguments — chunk boundaries never
/// depend on scheduling, which the determinism tests rely on.
#[must_use]
pub fn chunk_ranges(n: usize, min_chunk: usize, parallelism: usize) -> Vec<Range<usize>> {
    let chunks = chunk_count(n, min_chunk, parallelism);
    (0..chunks).map(|i| chunk_range(n, chunks, i)).collect()
}

/// Number of chunks [`chunk_ranges`] splits `0..n` into — O(1), for
/// callers that size per-chunk state without materialising the ranges.
/// Zero for an empty domain.
#[must_use]
pub fn chunk_count(n: usize, min_chunk: usize, parallelism: usize) -> usize {
    if n == 0 {
        return 0;
    }
    (n / min_chunk.max(1)).clamp(1, parallelism.max(1) * 4)
}

/// The `i`-th of `chunks` balanced contiguous ranges over `0..n` — O(1),
/// identical to `chunk_ranges(..)[i]` when `chunks` came from
/// [`chunk_count`] with the same `n`. Requires `i < chunks` and
/// `chunks >= 1`.
#[must_use]
pub fn chunk_range(n: usize, chunks: usize, i: usize) -> Range<usize> {
    debug_assert!(i < chunks);
    let base = n / chunks;
    let rem = n % chunks;
    let start = i * base + i.min(rem);
    start..start + base + usize::from(i < rem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for n in [0usize, 1, 7, 128, 1000, 1001] {
            for min_chunk in [1usize, 16, 128, 4096] {
                for par in [1usize, 2, 4, 8] {
                    let ranges = chunk_ranges(n, min_chunk, par);
                    let mut seen = vec![0u8; n];
                    for r in &ranges {
                        for i in r.clone() {
                            seen[i] += 1;
                        }
                    }
                    assert!(seen.iter().all(|&c| c == 1), "n={n} min={min_chunk}");
                    assert!(ranges.len() <= par * 4);
                    if n > 0 {
                        assert!(!ranges.is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_for_visits_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        pool.parallel_for(1000, 16, |_c, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_empty_and_single_item() {
        let pool = ThreadPool::new(4);
        let calls = AtomicU32::new(0);
        pool.parallel_for(0, 8, |_c, _r| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 0, "empty domain: no calls");
        pool.parallel_for(1, 8, |c, r| {
            assert_eq!((c, r), (0, 0..1));
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "single item: one inline call"
        );
    }

    #[test]
    fn parallel_chunks_results_are_in_chunk_order() {
        let pool = ThreadPool::new(4);
        let out = pool.parallel_chunks(1024, 8, |ci, range| (ci, range.start));
        assert!(out.len() > 1, "1024 rows at min_chunk 8 must split");
        for (i, (ci, _)) in out.iter().enumerate() {
            assert_eq!(i, *ci);
        }
        let starts: Vec<usize> = out.iter().map(|(_, s)| *s).collect();
        let mut sorted = starts.clone();
        sorted.sort_unstable();
        assert_eq!(starts, sorted, "chunk order == ascending range order");
    }

    #[test]
    fn zero_worker_pool_runs_everything_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.stats().workers, 0);
        let sum: u64 = pool
            .parallel_chunks(100, 1, |_c, range| range.map(|i| i as u64).sum::<u64>())
            .into_iter()
            .sum();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn scope_tasks_borrow_stack_data() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..256).collect();
        let partial: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        pool.scope(|s| {
            for (i, chunk) in data.chunks(64).enumerate() {
                let partial = &partial;
                s.spawn(move || {
                    *partial[i].lock().unwrap() = chunk.iter().sum::<u64>();
                });
            }
        });
        let total: u64 = partial.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, (0..256).sum::<u64>());
    }

    #[test]
    fn task_panic_propagates_after_scope_drains() {
        let pool = ThreadPool::new(4);
        let completed = AtomicU32::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                for i in 0..8 {
                    let completed = &completed;
                    s.spawn(move || {
                        if i == 3 {
                            panic!("task 3 exploded");
                        }
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let p = result.expect_err("panic must propagate to the scope caller");
        let msg = p
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("task 3 exploded"), "payload preserved: {msg}");
        // Every non-panicking task still ran: the scope drained fully.
        assert_eq!(completed.load(Ordering::Relaxed), 7);
        // The pool survives a panicked scope and stays usable.
        let mut v = vec![0u32; 64];
        let slots: Vec<Mutex<u32>> = (0..64).map(|_| Mutex::new(0)).collect();
        pool.parallel_for(64, 1, |_c, range| {
            for i in range {
                *slots[i].lock().unwrap() = i as u32 + 1;
            }
        });
        for (i, s) in slots.iter().enumerate() {
            v[i] = *s.lock().unwrap();
            assert_eq!(v[i], i as u32 + 1);
        }
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = ThreadPool::new(6);
        assert_eq!(pool.stats().workers, 5);
        // Give the workers something to chew on before shutdown.
        pool.parallel_for(500, 1, |_c, _r| {});
        let shared = Arc::clone(&pool.shared);
        drop(pool);
        assert_eq!(
            shared.live_workers.load(Ordering::Acquire),
            0,
            "drop must join every worker (no leaked threads)"
        );
    }

    #[test]
    fn executed_counter_tracks_chunks() {
        let pool = ThreadPool::new(2);
        let before = pool.stats().executed;
        pool.parallel_for(1000, 10, |_c, _r| {});
        let after = pool.stats().executed;
        let chunks = chunk_ranges(1000, 10, pool.parallelism()).len() as u64;
        assert_eq!(after - before, chunks);
    }

    #[test]
    fn chunk_count_and_range_agree_with_chunk_ranges() {
        for n in [0usize, 1, 7, 128, 1000, 1001] {
            for min_chunk in [1usize, 16, 128, 4096] {
                for par in [1usize, 2, 4, 8] {
                    let ranges = chunk_ranges(n, min_chunk, par);
                    let count = chunk_count(n, min_chunk, par);
                    assert_eq!(ranges.len(), count, "n={n} min={min_chunk} par={par}");
                    for (i, r) in ranges.iter().enumerate() {
                        assert_eq!(*r, chunk_range(n, count, i));
                    }
                }
            }
        }
    }

    #[test]
    fn for_each_chunk_visits_every_index_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        let chunks = pool.for_each_chunk(1000, 16, |_c, range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(chunks, chunk_count(1000, 16, pool.parallelism()));
        assert!(chunks > 1, "1000 rows at min_chunk 16 must split");
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_chunk_counts_executed_per_chunk() {
        let pool = ThreadPool::new(2);
        let before = pool.stats().executed;
        let chunks = pool.for_each_chunk(1000, 10, |_c, _r| {}) as u64;
        assert_eq!(pool.stats().executed - before, chunks);
        // Single-chunk inline fast path still counts one job.
        let before = pool.stats().executed;
        assert_eq!(pool.for_each_chunk(5, 128, |_c, _r| {}), 1);
        assert_eq!(pool.stats().executed - before, 1);
        // Empty domain: nothing runs, nothing counted.
        let before = pool.stats().executed;
        assert_eq!(pool.for_each_chunk(0, 128, |_c, _r| {}), 0);
        assert_eq!(pool.stats().executed - before, 0);
    }

    #[test]
    fn for_each_chunk_repeated_runs_stay_correct() {
        // The dispatcher state is pool-owned and reused; stale claim
        // attempts from a previous job must never corrupt the next one.
        let pool = ThreadPool::new(4);
        for round in 0..50usize {
            let n = 64 + round;
            let sum = AtomicU64::new(0);
            pool.for_each_chunk(n, 4, |_c, range| {
                sum.fetch_add(range.map(|i| i as u64).sum::<u64>(), Ordering::Relaxed);
            });
            let expect = (n as u64 * (n as u64 - 1)) / 2;
            assert_eq!(sum.load(Ordering::Relaxed), expect, "round {round}");
        }
    }

    #[test]
    fn nested_for_each_chunk_falls_back_and_completes() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..256).map(|_| AtomicU32::new(0)).collect();
        pool.for_each_chunk(4, 1, |outer, _r| {
            // Nested call while the dispatcher is busy: scope fallback.
            pool.for_each_chunk(64, 8, |_c, range| {
                for i in range {
                    hits[outer * 64 + i].fetch_add(1, Ordering::Relaxed);
                }
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_each_chunk_panic_propagates_after_drain() {
        let pool = ThreadPool::new(4);
        let completed = AtomicU32::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.for_each_chunk(64, 1, |c, _r| {
                if c == 3 {
                    panic!("chunk 3 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            });
        }));
        let p = result.expect_err("panic must reach the publisher");
        let msg = p
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("chunk 3 exploded"), "payload preserved: {msg}");
        // The pool stays usable after a panicked chunk job.
        let sum = AtomicU64::new(0);
        pool.for_each_chunk(100, 1, |_c, range| {
            sum.fetch_add(range.count() as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_scopes_on_caller_complete() {
        // A scope used while another scope is draining (sequentially on
        // the caller) must not deadlock.
        let pool = ThreadPool::new(2);
        let outer = pool.parallel_chunks(4, 1, |ci, _r| ci);
        assert_eq!(outer, vec![0, 1, 2, 3]);
        let inner = pool.parallel_chunks(4, 1, |ci, _r| ci * 2);
        assert_eq!(inner, vec![0, 2, 4, 6]);
    }
}
