//! Bounded single-producer prefetch pipeline.
//!
//! [`ThreadPool::scope`](crate::ThreadPool::scope) is *structured*: it
//! blocks until every spawned task finishes, so it cannot keep work in
//! flight across the caller's returns — exactly what a mini-batch
//! prefetcher needs (sample batch `k+1` on a worker while the caller
//! trains on batch `k`). [`Prefetcher`] fills that gap with one detached
//! producer thread and a bounded channel.
//!
//! Determinism note: the producer calls `make(0), make(1), …` in order
//! and the channel preserves that order, so the consumer observes the
//! exact sequence a synchronous `(0..n).map(make)` would produce. With a
//! `make` that is pure per index — the sampler's contract — pipelining
//! changes *when* batches are produced, never *what* they contain.

use std::sync::mpsc::{Receiver, SyncSender};
use std::thread::JoinHandle;

/// Messages travel producer → consumer; a drop of the consumer side
/// closes the channel, which the producer observes as a send error and
/// exits on.
enum Item<T> {
    Value(T),
    Panic(String),
}

/// A bounded background producer: runs `make(k)` for `k = 0, 1, …` on a
/// dedicated thread, up to `depth` items ahead of the consumer, until
/// `make` returns `None` or the consumer is dropped.
///
/// Items arrive strictly in index order. Dropping the prefetcher wakes
/// and joins the producer, so no thread outlives it.
#[derive(Debug)]
pub struct Prefetcher<T: Send + 'static> {
    rx: Option<Receiver<Item<T>>>,
    handle: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> Prefetcher<T> {
    /// Spawns the producer. `depth` bounds how many finished items may
    /// wait unconsumed (clamped to ≥ 1); `make(k)` produces item `k` and
    /// signals exhaustion with `None`.
    pub fn new<F>(depth: usize, mut make: F) -> Prefetcher<T>
    where
        F: FnMut(usize) -> Option<T> + Send + 'static,
    {
        let (tx, rx): (SyncSender<Item<T>>, _) = std::sync::mpsc::sync_channel(depth.max(1));
        let handle = std::thread::Builder::new()
            .name("hector-prefetch".into())
            .spawn(move || {
                for k in 0.. {
                    let item =
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| make(k))) {
                            Ok(Some(v)) => Item::Value(v),
                            Ok(None) => return,
                            Err(p) => {
                                let msg = panic_message(&p);
                                // Forward the panic, then stop producing; the
                                // consumer re-raises it on next().
                                let _ = tx.send(Item::Panic(msg));
                                return;
                            }
                        };
                    if tx.send(item).is_err() {
                        return; // consumer dropped — stop early
                    }
                }
            })
            .expect("spawn prefetch thread");
        Prefetcher {
            rx: Some(rx),
            handle: Some(handle),
        }
    }
}

impl<T: Send + 'static> Iterator for Prefetcher<T> {
    type Item = T;

    /// Blocks for the next item; `None` once the producer is exhausted.
    ///
    /// # Panics
    ///
    /// Re-raises a panic that occurred inside `make` on the producer.
    fn next(&mut self) -> Option<T> {
        match self.rx.as_ref()?.recv() {
            Ok(Item::Value(v)) => Some(v),
            Ok(Item::Panic(msg)) => panic!("prefetch producer panicked: {msg}"),
            Err(_) => None,
        }
    }
}

impl<T: Send + 'static> Drop for Prefetcher<T> {
    fn drop(&mut self) {
        // Closing the receiver fails the producer's next send, waking it
        // if it is parked on a full channel.
        drop(self.rx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_items_in_order_and_terminates() {
        let mut p = Prefetcher::new(2, |k| if k < 5 { Some(k * k) } else { None });
        let got: Vec<usize> = std::iter::from_fn(|| p.next()).collect();
        assert_eq!(got, vec![0, 1, 4, 9, 16]);
        assert!(p.next().is_none(), "stays exhausted");
    }

    #[test]
    fn early_drop_unblocks_producer() {
        // depth 1, 1000 items: the producer must park on the full
        // channel; dropping after two items has to wake and join it.
        let mut p = Prefetcher::new(1, |k| if k < 1000 { Some(vec![k; 64]) } else { None });
        assert_eq!(p.next().unwrap()[0], 0);
        assert_eq!(p.next().unwrap()[0], 1);
        drop(p); // must not hang
    }

    #[test]
    fn producer_panic_is_reraised_on_consumer() {
        let mut p = Prefetcher::new(2, |k| {
            assert!(k < 2, "boom at {k}");
            Some(k)
        });
        assert_eq!(p.next(), Some(0));
        assert_eq!(p.next(), Some(1));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.next()));
        assert!(err.is_err(), "panic must propagate");
    }

    #[test]
    fn pipeline_overlaps_production_with_consumption() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let produced = Arc::new(AtomicUsize::new(0));
        let pc = Arc::clone(&produced);
        let mut p = Prefetcher::new(3, move |k| {
            if k < 6 {
                pc.fetch_add(1, Ordering::SeqCst);
                Some(k)
            } else {
                None
            }
        });
        // Consume the first item, then give the producer time to run
        // ahead: with depth 3 it should produce beyond item 0 while the
        // consumer sits idle.
        assert_eq!(p.next(), Some(0));
        for _ in 0..200 {
            if produced.load(Ordering::SeqCst) >= 3 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert!(
            produced.load(Ordering::SeqCst) >= 3,
            "producer failed to run ahead of the consumer"
        );
        let rest: Vec<usize> = std::iter::from_fn(|| p.next()).collect();
        assert_eq!(rest, vec![1, 2, 3, 4, 5]);
    }
}
