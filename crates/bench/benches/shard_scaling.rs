//! shard_scaling: what destination-sharding costs and buys. One synthetic
//! graph is partitioned at shard counts {1, 2, 4, 8} with each
//! partitioner (range / hash / greedy), then driven through the
//! [`ShardedEngine`](hector::ShardedEngine):
//!
//! * **partition quality** — edge-cut fraction and halo bytes per
//!   partitioner (greedy must not cut more than hash at every count;
//!   asserted).
//! * **execution** — merged forwards per second (`shards/s` column is
//!   shard-forwards per second: shards × forwards/s), bit-checked
//!   against the unsharded oracle before timing.
//! * **streaming deltas** — mean latency of applying a small edge
//!   [`DeltaBatch`](hector::DeltaBatch) incl. affected-shard re-plans.
//!
//! With `HECTOR_BENCH_JSON=<path>` the rows are written as a JSON
//! fragment for the perf-regression lane's artifact; wall-clock fields
//! are informational — the lane gates only on the structural columns
//! (edge cut, halo bytes), which are deterministic.

use std::time::Instant;

use hector::prelude::*;
use hector::{
    BindSharded, DeltaBatch, GreedyEdgeCut, HashPartitioner, Partitioner, RangePartitioner,
    ShardConfig, ShardedGraph,
};
use hector_bench::json::JsonWriter;
use hector_bench::{banner, scale};

const DIMS: usize = 16;

fn graph(s: f64) -> hector::HeteroGraph {
    hector::generate(&DatasetSpec {
        name: "shard_scaling".into(),
        num_nodes: ((1_500f64 * s) as usize).max(96),
        num_node_types: 3,
        num_edges: ((9_000f64 * s) as usize).max(480),
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.2,
        seed: 47,
    })
}

fn partitioner(name: &str) -> Box<dyn Partitioner> {
    match name {
        "range" => Box::new(RangePartitioner),
        "hash" => Box::new(HashPartitioner::new(5)),
        _ => Box::new(GreedyEdgeCut),
    }
}

fn main() {
    let s = scale();
    banner(
        "shard_scaling: partition quality, execution, delta latency",
        s,
    );
    let g = graph(s);
    let reps = ((12f64 * s) as usize).max(3);
    println!(
        "{} nodes, {} edges; {} timed forwards per config\n",
        g.num_nodes(),
        g.num_edges(),
        reps
    );

    let builder = EngineBuilder::new(ModelKind::Rgcn)
        .dims(DIMS, DIMS)
        .options(CompileOptions::best())
        .seed(7);
    let data = GraphData::new(g.clone());
    let mut oracle = builder.clone().build().expect("oracle builds");
    oracle.bind(&data).expect("oracle binds");
    oracle.forward().expect("oracle fits");

    println!(
        "{:>7} {:>7} {:>10} {:>12} {:>11} {:>10} {:>12}",
        "part", "shards", "edge_cut", "halo_bytes", "forwards/s", "shards/s", "delta_us"
    );
    let mut json = JsonWriter::from_env("shard_scaling");
    let mut cuts: std::collections::HashMap<(String, usize), f64> = Default::default();
    for part in ["range", "hash", "greedy"] {
        for k in [1usize, 2, 4, 8] {
            let sharded =
                ShardedGraph::partition(g.clone(), partitioner(part), ShardConfig::new(k));
            let edge_cut = sharded.edge_cut_fraction();
            let halo_bytes = sharded.halo_bytes();
            cuts.insert((part.to_string(), k), edge_cut);

            let mut eng = builder
                .clone()
                .bind_sharded(sharded)
                .expect("sharded engine builds");
            eng.forward().expect("fits");
            assert_eq!(
                eng.output().data(),
                oracle.output().data(),
                "{part} k={k}: sharded forward must be bit-identical before timing"
            );
            let t0 = Instant::now();
            for _ in 0..reps {
                eng.forward().expect("fits");
            }
            let fwd_per_s = reps as f64 / t0.elapsed().as_secs_f64();

            // Delta latency: add + remove one edge, restoring the graph
            // each round so every apply sees the same structure size.
            let (src, dst, et) = (g.src()[0], g.dst()[0], g.etype()[0]);
            let t0 = Instant::now();
            let delta_rounds = 4;
            for _ in 0..delta_rounds {
                eng.apply_delta(&DeltaBatch::new().remove_edge(src, dst, et))
                    .expect("removes");
                eng.apply_delta(&DeltaBatch::new().add_edge(src, dst, et))
                    .expect("re-adds");
            }
            let delta_us = t0.elapsed().as_secs_f64() * 1e6 / (2.0 * delta_rounds as f64);

            println!(
                "{:>7} {:>7} {:>9.1}% {:>12} {:>11.1} {:>10.1} {:>12.0}",
                part,
                k,
                edge_cut * 100.0,
                halo_bytes,
                fwd_per_s,
                fwd_per_s * k as f64,
                delta_us
            );
            json.record(
                &format!("{part}_k{k}"),
                &[
                    ("edge_cut_fraction", edge_cut),
                    ("halo_bytes", halo_bytes as f64),
                    ("forwards_per_s", fwd_per_s),
                    ("shards_per_s", fwd_per_s * k as f64),
                    ("delta_apply_us", delta_us),
                ],
            );
        }
    }
    for k in [2usize, 4, 8] {
        let (greedy, hash) = (cuts[&("greedy".into(), k)], cuts[&("hash".into(), k)]);
        assert!(
            greedy <= hash + 1e-9,
            "greedy edge cut ({greedy:.3}) must not exceed hash ({hash:.3}) at k={k}"
        );
    }
    println!(
        "\nEdge cut and halo bytes are deterministic partition-quality\n\
         metrics; greedy placement never cuts more than hash. Forwards\n\
         stay bit-identical to the unsharded engine at every shard count."
    );
    json.finish();
}
