//! trace_overhead: the cost of the structured-tracing subsystem, on and
//! off.
//!
//! The tracing hot path is compiled into every executor
//! (`span_start()` at the top of each kernel/chunk/phase), so the
//! zero-overhead-when-off claim needs a measurement, not an assertion:
//!
//! * `span_start ns` — direct cost of the disabled fast path (one
//!   relaxed atomic load returning `None`), measured over 10M calls.
//! * `off A/A %` — the same tracing-off training workload timed twice
//!   in alternation; their delta is the measurement noise floor. The
//!   off-mode instrumentation cost is bounded by this line: if the
//!   tracing branches cost anything measurable, it would appear
//!   equally in both halves and cancel — what remains is jitter.
//! * `on vs off %` — tracing *enabled* (spans recorded into the
//!   per-thread rings, drained once per round like `Engine::profile`
//!   does) against the off baseline. This is the real price of
//!   profiling a run, expected low single digits.
//!
//! Rounds alternate off/off/on to decorrelate thermal and cache drift.
//! With `HECTOR_BENCH_JSON=<path>` the rows land in the perf-regression
//! artifact; all fields are wall-clock-derived, hence informational
//! (the lane never gates on them — `ci/check_bench_baseline.py` prints
//! the tracing-off-overhead line for review).

use std::time::Instant;

use hector::prelude::*;
use hector_bench::json::JsonWriter;
use hector_bench::{banner, scale};

const DIMS: usize = 32;
const ROUNDS: usize = 5;
const STEPS_PER_ROUND: usize = 3;

fn graph(s: f64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "trace_overhead_bench".into(),
        num_nodes: ((4_000f64 * s) as usize).max(256),
        num_node_types: 3,
        num_edges: ((32_000f64 * s) as usize).max(1024),
        num_edge_types: 8,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 23,
    }))
}

/// Times `STEPS_PER_ROUND` training steps, returning wall seconds.
fn steps(t: &mut Trainer) -> f64 {
    let t0 = Instant::now();
    for _ in 0..STEPS_PER_ROUND {
        t.step().expect("fits");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let s = scale();
    banner("trace_overhead: tracing subsystem cost, off and on", s);

    // Direct cost of the disabled fast path.
    hector::trace::disable();
    let calls = 10_000_000u64;
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..calls {
        if std::hint::black_box(hector::trace::span_start()).is_some() {
            hits += 1;
        }
    }
    let span_start_ns = t0.elapsed().as_secs_f64() * 1e9 / calls as f64;
    assert_eq!(hits, 0);
    println!("span_start() disabled fast path: {span_start_ns:.2} ns/call");

    let g = graph(s);
    let mut t = EngineBuilder::new(ModelKind::Rgcn)
        .dims(DIMS, DIMS)
        .options(CompileOptions::best())
        .seed(9)
        .build_trainer(Adam::new(0.01))
        .unwrap();
    t.bind(&g).unwrap();
    // Warm run: materialise the run plan so every timed step runs the
    // allocation-free steady state.
    t.step().expect("warm step fits");

    let (mut off_a, mut off_b, mut on) = (0.0f64, 0.0f64, 0.0f64);
    let mut recorded = 0usize;
    for _ in 0..ROUNDS {
        hector::trace::disable();
        hector::trace::clear();
        off_a += steps(&mut t);
        off_b += steps(&mut t);
        hector::trace::enable();
        on += steps(&mut t);
        hector::trace::disable();
        recorded += hector::trace::take_events().len();
    }

    let per_step = 1e3 / (ROUNDS * STEPS_PER_ROUND) as f64;
    let off = (off_a + off_b) / 2.0;
    let aa_delta_pct = (off_b - off_a).abs() / off_a * 100.0;
    let on_overhead_pct = (on - off) / off * 100.0;
    println!(
        "graph: {} nodes, {} edges; {} rounds x {} steps",
        g.graph().num_nodes(),
        g.graph().num_edges(),
        ROUNDS,
        STEPS_PER_ROUND
    );
    println!(
        "tracing off: {:.2} ms/step (A/A delta {:.2}% = noise floor)",
        off * per_step,
        aa_delta_pct
    );
    println!(
        "tracing on:  {:.2} ms/step ({:+.2}% vs off, {} events recorded)",
        on * per_step,
        on_overhead_pct,
        recorded
    );
    println!("target: off-mode cost indistinguishable from noise; on-mode < a few %");

    let mut json = JsonWriter::from_env("trace_overhead");
    json.record(
        "train",
        &[
            ("span_start_ns", span_start_ns),
            ("off_ms_per_step", off * per_step),
            ("on_ms_per_step", on * per_step),
            ("off_aa_delta_pct", aa_delta_pct),
            ("on_overhead_pct", on_overhead_pct),
            ("events_recorded", recorded as f64),
        ],
    );
    json.finish();
}
