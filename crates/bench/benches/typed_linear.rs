//! Criterion microbenchmark of the §2.3 case study: three ways to run an
//! edgewise typed linear layer, measured as real CPU work.
//!
//! * `replicate_bmm` — PyTorch-style: materialise `W'[i] = W[T[i]]`, then
//!   batched matrix multiply (the `FastRGCNConv` strategy);
//! * `segment_mm` — DGL-style: pre-sorted rows, per-segment GEMM;
//! * `gather_typed_mm` — Hector-style: gather rows and select weight
//!   slabs on the fly, no materialisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hector_tensor::segment::{bmm_rowwise, gather_typed_mm, replicate_weights, segment_mm};
use hector_tensor::{seeded_rng, xavier_uniform, Tensor};
use rand::Rng;

fn setup(rows: usize, d: usize, types: usize) -> (Tensor, Tensor, Vec<u32>, Vec<usize>) {
    let mut rng = seeded_rng(7);
    let x = xavier_uniform(&mut rng, &[rows, d]);
    let w = xavier_uniform(&mut rng, &[types, d, d]);
    // Sorted types (enables segment MM) with a matching segment pointer.
    let mut tys: Vec<u32> = (0..rows).map(|_| rng.gen_range(0..types as u32)).collect();
    tys.sort_unstable();
    let mut seg = vec![0usize; types + 1];
    for &t in &tys {
        seg[t as usize + 1] += 1;
    }
    for i in 0..types {
        seg[i + 1] += seg[i];
    }
    (x, w, tys, seg)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("typed_linear");
    group.sample_size(10);
    for &rows in &[512usize, 4096] {
        let d = 32;
        let types = 8;
        let (x, w, tys, seg) = setup(rows, d, types);
        group.bench_with_input(BenchmarkId::new("replicate_bmm", rows), &rows, |b, _| {
            b.iter(|| {
                let rep = replicate_weights(&w, &tys);
                std::hint::black_box(bmm_rowwise(&x, &rep))
            });
        });
        group.bench_with_input(BenchmarkId::new("segment_mm", rows), &rows, |b, _| {
            b.iter(|| std::hint::black_box(segment_mm(&x, &w, &seg)));
        });
        let gather: Vec<u32> = (0..rows as u32).collect();
        group.bench_with_input(BenchmarkId::new("gather_typed_mm", rows), &rows, |b, _| {
            b.iter(|| std::hint::black_box(gather_typed_mm(&x, &w, &gather, &tys)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
