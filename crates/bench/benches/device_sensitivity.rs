//! §6 extension: device-microarchitecture sensitivity.
//!
//! The paper's future work notes that "the specific microarchitecture of
//! each GPU model also makes a difference … it is meaningful to
//! investigate their impact and incorporate them into decision making."
//! This harness runs Hector's four configurations on three device models
//! (RTX 3090, A100 80GB, a laptop-class part) and shows that the winning
//! configuration — and the value of compaction — shifts with the
//! compute/bandwidth balance, plus how the A100's 80 GB absorbs the
//! footprints that OOM a 24 GB card.

use hector::prelude::*;
use hector_bench::{banner, load_dataset, run_hector, scale};

fn main() {
    let s = scale();
    banner(
        "Device sensitivity: Hector configurations across GPU models",
        s,
    );
    let devices = [
        DeviceConfig::rtx3090(),
        DeviceConfig::a100_80gb(),
        DeviceConfig::laptop_4gb(),
    ];
    let combos = [
        ("U", CompileOptions::unopt()),
        ("C", CompileOptions::compact_only()),
        ("R", CompileOptions::reorder_only()),
        ("C+R", CompileOptions::best()),
    ];
    for name in ["fb15k", "biokg"] {
        let d = load_dataset(name, s);
        println!("\n--- RGAT inference on {} ---", name);
        print!("{:<12}", "device");
        for (l, _) in &combos {
            print!("{l:>10}");
        }
        println!("{:>10}", "winner");
        for cfg in &devices {
            // Scale only the capacity of the laptop card with the dataset
            // so its OOM column stays meaningful at reduced scales.
            let mut cfg = cfg.clone();
            if s < 1.0 {
                cfg.memory_capacity =
                    ((cfg.memory_capacity as f64) * s).max(64.0 * (1 << 20) as f64) as usize;
            }
            print!("{:<12}", cfg.name);
            let mut best: Option<(&str, f64)> = None;
            for (label, opts) in &combos {
                let o = run_hector(ModelKind::Rgat, &d.graph, 64, 64, opts, false, &cfg);
                match o.time_ms {
                    Some(t) => {
                        print!("{t:>10.2}");
                        if best.is_none_or(|(_, b)| t < b) {
                            best = Some((label, t));
                        }
                    }
                    None => print!("{:>10}", "OOM"),
                }
            }
            println!("{:>10}", best.map_or("-", |(l, _)| l));
        }
    }
    println!("\nThe A100's 2x bandwidth shrinks traversal time while its lower");
    println!("plain-fp32 rate stretches GEMMs — compaction (which attacks GEMM");
    println!("rows) matters relatively more there; the laptop part shows the");
    println!("OOM rescues compaction provides on capacity-limited devices.");
}
