//! The programming-effort result (§4.1): "Hector takes in 51 lines of
//! code expressing the three models and generates a total of 8K lines of
//! CUDA and C++ code" (3K CUDA kernel code, 5K host C++, plus 2K Python
//! autograd definitions).

use hector::prelude::*;

fn main() {
    println!();
    println!("================================================================");
    println!("Programming effort: model lines in vs. generated lines out");
    println!("================================================================");
    println!(
        "{:<8} {:>10} {:>12} {:>11} {:>11} {:>11}",
        "model", "DSL lines", "CUDA lines", "host lines", "py lines", "total out"
    );
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    for kind in ModelKind::all() {
        // Training modules generate both forward and backward kernels,
        // matching the paper's end-to-end counting.
        let module =
            hector::compile_model_cached(kind, 64, 64, &CompileOptions::best().with_training(true));
        let cuda = module.code.cuda_lines();
        let host = module
            .code
            .host
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        let py = module
            .code
            .python
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count();
        println!(
            "{:<8} {:>10} {:>12} {:>11} {:>11} {:>11}",
            kind.name(),
            module.source_lines,
            cuda,
            host,
            py,
            cuda + host + py,
        );
        total_in += module.source_lines;
        total_out += cuda + host + py;
    }
    println!(
        "{:<8} {:>10} {:>12} {:>11} {:>11} {:>11}",
        "TOTAL", total_in, "", "", "", total_out
    );
    println!();
    println!(
        "Expansion factor (C+R configuration): {:.0}x",
        total_out as f64 / total_in as f64
    );
    // The paper's artifact ships kernels for its full configuration set;
    // count all four optimization combinations for the comparable figure.
    let mut all_combos = 0usize;
    for kind in ModelKind::all() {
        for opts in [
            CompileOptions::unopt(),
            CompileOptions::compact_only(),
            CompileOptions::reorder_only(),
            CompileOptions::best(),
        ] {
            let m = hector::compile_model_cached(kind, 64, 64, &opts.with_training(true));
            all_combos += m.code.total_lines();
        }
    }
    println!(
        "All four option combinations (U/C/R/C+R), training: {} generated lines",
        all_combos
    );
    println!("Paper reference: 51 model lines -> 3K CUDA + 5K host C++ + 2K Python.");
}
