//! engine_reuse: what the `Engine` handle and the process-wide module
//! cache buy, measured three ways per model:
//!
//! * `cold_build_us` — `EngineBuilder::build` with an empty module
//!   cache: the full compiler pipeline runs (reorder, compaction,
//!   backward generation, lowering, codegen).
//! * `cached_build_us` — the identical build again: the module comes
//!   out of the `ModuleCache` (`was_cache_hit`), so the only work is
//!   source construction, fingerprinting, and session assembly. This is
//!   the cost a stacked-model sweep or the autotuner's thread axis pays
//!   per extra engine.
//! * `rebind_us` — `bind` + `forward` on one persistent engine across
//!   several distinct graphs: module, session, scratch arena, and run
//!   plan all survive; only parameters/inputs re-derive.
//!
//! With `HECTOR_BENCH_JSON=<path>` the rows are written as a JSON
//! fragment for the perf-regression lane's artifact (wall-clock fields
//! are informational — the lane never gates on them — but
//! `cache_hits`/`cache_misses` are deterministic).

use std::time::Instant;

use hector::prelude::*;
use hector_bench::json::JsonWriter;
use hector_bench::{banner, scale};

const DIMS: usize = 32;

fn graph(seed: u64, s: f64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: format!("engine_reuse_{seed}"),
        num_nodes: ((2_000f64 * s) as usize).max(48),
        num_node_types: 3,
        num_edges: ((16_000f64 * s) as usize).max(192),
        num_edge_types: 6,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed,
    }))
}

fn builder(kind: ModelKind) -> EngineBuilder {
    EngineBuilder::new(kind)
        .dims(DIMS, DIMS)
        .options(CompileOptions::best().with_training(true))
        .parallel(ParallelConfig::sequential())
        .seed(3)
}

fn main() {
    let s = scale();
    banner("engine_reuse: cold build vs cached rebuild vs rebind", s);
    let graphs: Vec<GraphData> = (0..3).map(|i| graph(90 + i, s)).collect();
    println!(
        "{:>6} {:>14} {:>16} {:>12} {:>12}",
        "model", "cold_build_us", "cached_build_us", "rebind_us", "speedup"
    );
    let mut json = JsonWriter::from_env("engine_reuse");
    for kind in ModelKind::all() {
        // Cold: a cleared cache forces the full pipeline.
        ModuleCache::clear();
        let t0 = Instant::now();
        let engine = builder(kind).build().unwrap();
        let cold_us = t0.elapsed().as_secs_f64() * 1e6;
        assert!(!engine.was_cache_hit(), "cleared cache cannot hit");
        drop(engine);

        // Cached: the identical build again, repeated for a stable
        // median-free average (hits are cheap enough to be noisy).
        const REPS: usize = 5;
        let t1 = Instant::now();
        let mut hits = 0usize;
        for _ in 0..REPS {
            let e = builder(kind).build().unwrap();
            hits += usize::from(e.was_cache_hit());
        }
        let cached_us = t1.elapsed().as_secs_f64() * 1e6 / REPS as f64;
        assert_eq!(hits, REPS, "every rebuild must hit the cache");

        // Rebind: one engine carried across distinct graphs.
        let mut engine = builder(kind).build().unwrap();
        engine
            .bind(&graphs[0])
            .unwrap()
            .forward()
            .expect("warm-up fits");
        let t2 = Instant::now();
        for g in &graphs {
            engine.bind(g).unwrap().forward().expect("fits");
        }
        let rebind_us = t2.elapsed().as_secs_f64() * 1e6 / graphs.len() as f64;

        let stats = ModuleCache::stats();
        println!(
            "{:>6} {:>14.1} {:>16.1} {:>12.1} {:>11.1}x",
            kind.name(),
            cold_us,
            cached_us,
            rebind_us,
            cold_us / cached_us.max(1e-9),
        );
        json.record(
            kind.name(),
            &[
                ("cold_build_us", cold_us),
                ("cached_build_us", cached_us),
                ("rebind_fwd_us", rebind_us),
                ("cache_hits", stats.hits as f64),
                ("cache_misses", stats.misses as f64),
            ],
        );
    }
    println!(
        "\nA cached rebuild skips the whole compiler pipeline; rebinding skips\n\
         session assembly too — the engine's run plan and scratch arena are\n\
         reused shape-compatibly across graphs."
    );
    json.finish();
}
