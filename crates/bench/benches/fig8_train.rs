//! Figure 8(a): single-layer full-graph training time of DGL, PyG,
//! Seastar, HGL, and Hector (best-optimized) across the three models and
//! eight datasets. Dimensions 64, NLL loss vs. random labels (§4.1).

use hector::baselines::all_systems;
use hector::prelude::*;
use hector_bench::{banner, device_config, load_datasets, run_hector, scale, Outcome};

fn main() {
    let s = scale();
    banner("Figure 8(a): Training time (ms)", s);
    let cfg = device_config(s);
    let datasets = load_datasets(s);
    let systems = all_systems();
    for kind in ModelKind::all() {
        println!("\n--- {} Training ---", kind.name());
        print!("{:<10}", "dataset");
        for sys in &systems {
            if sys.supports(kind, true) {
                print!("{:>12}", sys.name());
            }
        }
        println!("{:>12}{:>10}", "Hector", "speedup");
        for d in &datasets {
            print!("{:<10}", d.name);
            let mut best_baseline: Option<f64> = None;
            for sys in &systems {
                if !sys.supports(kind, true) {
                    continue;
                }
                let o: Outcome = sys.run(kind, &d.graph, 64, &cfg, true).into();
                if let Some(t) = o.time_ms {
                    best_baseline = Some(best_baseline.map_or(t, |b: f64| b.min(t)));
                }
                print!("{:>12}", o.fmt());
            }
            let h = run_hector(kind, &d.graph, 64, 64, &CompileOptions::best(), true, &cfg);
            print!("{:>12}", h.fmt());
            match (best_baseline, h.time_ms) {
                (Some(b), Some(t)) => println!("{:>9.2}x", b / t),
                _ => println!("{:>10}", "-"),
            }
        }
    }
    println!("\nPaper shape: Hector wins everywhere; geomean speedups 2.59x (RGCN),");
    println!("11.34x (RGAT), 8.02x (HGT); max 43.7x (RGAT).");
}
