//! serve_throughput: what request coalescing buys the multi-tenant
//! server. The same client load — several threads firing single-node
//! inference requests at one resident RGCN engine — runs twice:
//!
//! * `naive` — `max_coalesce = 1`: every request pays a full graph
//!   traversal, the one-request-per-dispatch strawman.
//! * `coalesced` — `max_coalesce = 64`: requests for the same
//!   deployment arriving within one dispatch tick fold into a single
//!   batched traversal; each ticket gets its rows scattered back.
//!
//! Reported per mode: requests/s, p50/p99 ticket latency, traversal
//! count, and the per-tenant coalescing factor (requests per forward).
//! With `HECTOR_BENCH_JSON=<path>` the rows are written as a JSON
//! fragment for the perf-regression lane's artifact; wall-clock fields
//! are informational — the lane never gates on them — but the
//! coalescing factor contrast (>= 1.5x) is asserted here.

use std::time::{Duration, Instant};

use hector::prelude::*;
use hector::serve::{ServeConfig, ServeHandle};
use hector_bench::json::JsonWriter;
use hector_bench::{banner, scale};

const CLIENTS: usize = 4;
const DIMS: usize = 16;

fn graph(s: f64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "serve_throughput".into(),
        num_nodes: ((1_200f64 * s) as usize).max(64),
        num_node_types: 3,
        num_edges: ((6_000f64 * s) as usize).max(320),
        num_edge_types: 4,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 41,
    }))
}

struct ModeResult {
    req_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    forwards: u64,
    coalescing: f64,
}

fn run_mode(max_coalesce: usize, g: &GraphData, per_client: usize) -> ModeResult {
    let srv = ServeHandle::start(
        ServeConfig::default()
            .with_queue_capacity(CLIENTS * per_client + 16)
            .with_max_coalesce(max_coalesce)
            .with_timeout(Duration::from_secs(60))
            .with_workers(2),
    );
    srv.deploy(
        "rgcn",
        EngineBuilder::new(ModelKind::Rgcn)
            .dims(DIMS, DIMS)
            .options(CompileOptions::best())
            .mode(Mode::Real)
            .seed(7),
        g,
    )
    .expect("deploys");
    // Warm up: first traversal pays binding-derived one-time costs.
    srv.submit("rgcn", 0)
        .unwrap()
        .wait()
        .expect("warm-up serves");

    let nodes = g.graph().num_nodes();
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let srv = srv.clone();
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let node = (c * 131 + i * 17) % nodes;
                        let t = Instant::now();
                        srv.submit("rgcn", node)
                            .expect("queue sized for the full load")
                            .wait()
                            .expect("request serves");
                        lat.push(t.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = srv.stats("rgcn").expect("deployed");
    srv.shutdown();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    let total = (CLIENTS * per_client) as f64;
    ModeResult {
        req_per_s: total / wall_s,
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        forwards: stats.forwards,
        coalescing: stats.coalescing_factor(),
    }
}

fn main() {
    let s = scale();
    banner("serve_throughput: naive vs coalescing dispatch", s);
    let g = graph(s);
    let per_client = ((60f64 * s) as usize).max(12);
    println!(
        "{} clients x {} requests over {} nodes\n",
        CLIENTS,
        per_client,
        g.graph().num_nodes()
    );
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>12}",
        "mode", "req/s", "p50_us", "p99_us", "forwards", "coalescing"
    );

    let mut json = JsonWriter::from_env("serve_throughput");
    let mut factors = Vec::new();
    for (label, max_coalesce) in [("naive", 1usize), ("coalesced", 64)] {
        let r = run_mode(max_coalesce, &g, per_client);
        println!(
            "{:>10} {:>12.0} {:>10.0} {:>10.0} {:>10} {:>11.1}x",
            label, r.req_per_s, r.p50_us, r.p99_us, r.forwards, r.coalescing
        );
        json.record(
            label,
            &[
                ("req_per_s", r.req_per_s),
                ("p50_us", r.p50_us),
                ("p99_us", r.p99_us),
                ("forwards", r.forwards as f64),
                ("coalescing_factor", r.coalescing),
            ],
        );
        factors.push(r.coalescing);
    }
    assert!(
        factors[1] >= 1.5 * factors[0],
        "coalescing dispatch must fold >= 1.5x more requests per traversal \
         than naive ({:.2}x vs {:.2}x)",
        factors[1],
        factors[0]
    );
    println!(
        "\nCoalescing amortises one batched traversal across every request\n\
         that arrived within the dispatch tick; naive dispatch pays a full\n\
         traversal per request."
    );
    json.finish();
}
