//! Figure 8(b): single-layer inference time of DGL, PyG, Seastar,
//! Graphiler, and Hector (best-optimized) across the three models and
//! eight datasets. Input/output dimensions 64, one head (paper §4.1).

use hector::baselines::all_systems;
use hector::prelude::*;
use hector_bench::{banner, device_config, load_datasets, run_hector, scale, Outcome};

fn main() {
    let s = scale();
    banner("Figure 8(b): Inference time (ms)", s);
    let cfg = device_config(s);
    let datasets = load_datasets(s);
    let systems = all_systems();
    for kind in ModelKind::all() {
        println!("\n--- {} Inference ---", kind.name());
        print!("{:<10}", "dataset");
        for sys in &systems {
            if sys.supports(kind, false) {
                print!("{:>12}", sys.name());
            }
        }
        println!("{:>12}{:>10}", "Hector", "speedup");
        for d in &datasets {
            print!("{:<10}", d.name);
            let mut best_baseline: Option<f64> = None;
            for sys in &systems {
                if !sys.supports(kind, false) {
                    continue;
                }
                let o: Outcome = sys.run(kind, &d.graph, 64, &cfg, false).into();
                if let Some(t) = o.time_ms {
                    best_baseline = Some(best_baseline.map_or(t, |b: f64| b.min(t)));
                }
                print!("{:>12}", o.fmt());
            }
            let h = run_hector(kind, &d.graph, 64, 64, &CompileOptions::best(), false, &cfg);
            print!("{:>12}", h.fmt());
            match (best_baseline, h.time_ms) {
                (Some(b), Some(t)) => println!("{:>9.2}x", b / t),
                _ => println!("{:>10}", "-"),
            }
        }
    }
    println!("\nPaper shape: Hector wins everywhere; geomean speedups 1.79x (RGCN),");
    println!("8.56x (RGAT), 2.87x (HGT); max 9.9x; margins larger on small graphs.");
}
