//! Execution-backend comparison: reference interpreter vs the
//! specialized compiled-kernel backend.
//!
//! The specialized backend monomorphizes every lowered kernel into a
//! dispatch-free closure at prepare time — shapes, stage assignments,
//! aggregation kinds, and the fusion plan are resolved once instead of
//! per launch — while performing the identical floating-point work in
//! the identical order (pinned by `tests/backend_parity.rs`). This
//! bench measures what that buys on warm forward passes and full
//! training steps for all three built-in models, sequentially (the
//! dispatch overhead the specialization removes is per-kernel host
//! work, so the sequential path shows it undiluted).
//!
//! Every row first asserts bit-identity between the two backends, so a
//! speedup can never come from diverging numerics. The headline row is
//! the HGT train step — the deepest kernel pipeline of the three
//! models — with a ≥1.2× speedup target.
//!
//! With `HECTOR_BENCH_JSON=<path>` the measurements are appended to the
//! perf-regression artifact (`backend_compare` fragment; wall clock is
//! informational there — CI machines are too noisy to gate on it).

use std::time::Instant;

use hector::prelude::*;
use hector_bench::{banner, json::JsonWriter, scale};

const DIMS: usize = 32;

fn generated(s: f64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "backend_compare".into(),
        num_nodes: ((4_000.0 * s) as usize).max(128),
        num_node_types: 4,
        num_edges: ((32_000.0 * s) as usize).max(512),
        num_edge_types: 8,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 61,
    }))
}

struct Run {
    wall_ms: f64,
    /// Output bits (forward) or loss+weight bits (training) for the
    /// bit-identity check between backends.
    bits: Vec<u32>,
}

fn forward_run(kind: ModelKind, g: &GraphData, backend: BackendKind, iters: usize) -> Run {
    let module = hector::compile_model_cached(kind, DIMS, DIMS, &CompileOptions::best());
    let mut rng = seeded_rng(42);
    let mut params = ParamStore::init(&module.forward, g, &mut rng);
    let bindings = Bindings::standard(&module.forward, g, &mut rng);
    let mut session = Session::with_backend(
        DeviceConfig::rtx3090(),
        Mode::Real,
        ParallelConfig::sequential(),
        backend,
    )
    .expect("backend is available");
    session
        .forward(&module, g, &mut params, &bindings)
        .expect("warm-up fits");
    let start = Instant::now();
    for _ in 0..iters {
        session
            .forward(&module, g, &mut params, &bindings)
            .expect("forward fits");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    let (vars, _) = session
        .forward(&module, g, &mut params, &bindings)
        .expect("forward fits");
    let out = module.forward.outputs[0];
    let bits = vars
        .tensor(out)
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    Run { wall_ms, bits }
}

fn train_run(kind: ModelKind, g: &GraphData, backend: BackendKind, iters: usize) -> Run {
    let module = hector::compile_model_cached(
        kind,
        DIMS,
        DIMS,
        &CompileOptions::best().with_training(true),
    );
    let mut rng = seeded_rng(42);
    let mut params = ParamStore::init(&module.forward, g, &mut rng);
    let bindings = Bindings::standard(&module.forward, g, &mut rng);
    let labels: Vec<usize> = (0..g.graph().num_nodes()).map(|i| i % 4).collect();
    let mut opt = Adam::new(0.01);
    let mut session = Session::with_backend(
        DeviceConfig::rtx3090(),
        Mode::Real,
        ParallelConfig::sequential(),
        backend,
    )
    .expect("backend is available");
    session
        .train_step(&module, g, &mut params, &bindings, &labels, &mut opt)
        .expect("warm-up fits");
    let mut bits = Vec::new();
    let start = Instant::now();
    for _ in 0..iters {
        let (_, report) = session
            .train_step(&module, g, &mut params, &bindings, &labels, &mut opt)
            .expect("train step fits");
        bits.push(report.loss.expect("real mode reports loss").to_bits());
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    for w in 0..params.len() {
        let wid = hector_ir::WeightId(w as u32);
        bits.extend(params.weight(wid).data().iter().map(|v| v.to_bits()));
    }
    Run { wall_ms, bits }
}

fn main() {
    let s = scale();
    banner("backend_compare: interpreter vs specialized backend", s);
    let g = generated(s);
    println!(
        "graph: {} nodes, {} edges; dims {DIMS}; sequential\n",
        g.graph().num_nodes(),
        g.graph().num_edges()
    );
    let iters = if s >= 1.0 { 3 } else { 5 };
    let mut out = JsonWriter::from_env("backend_compare");

    println!(
        "{:<16}{:>12}{:>14}{:>10}  bit-identical",
        "workload", "interp ms", "specialized", "speedup"
    );
    let mut hgt_train_speedup = 0.0;
    for kind in ModelKind::all() {
        for training in [false, true] {
            let run = if training { train_run } else { forward_run };
            let interp = run(kind, &g, BackendKind::Interp, iters);
            let spec = run(kind, &g, BackendKind::Specialized, iters);
            assert_eq!(
                interp.bits,
                spec.bits,
                "{} {}: backends diverged — a speedup from different numerics is meaningless",
                kind.name(),
                if training { "train" } else { "fwd" }
            );
            let speedup = interp.wall_ms / spec.wall_ms;
            let row = format!(
                "{}_{}",
                kind.name().to_lowercase(),
                if training { "train" } else { "fwd" }
            );
            println!(
                "{row:<16}{:>12.3}{:>14.3}{:>9.2}x  yes",
                interp.wall_ms, spec.wall_ms, speedup
            );
            out.record(
                &row,
                &[
                    ("interp_ms", interp.wall_ms),
                    ("specialized_ms", spec.wall_ms),
                    ("speedup", speedup),
                ],
            );
            if kind == ModelKind::Hgt && training {
                hgt_train_speedup = speedup;
            }
        }
    }
    out.finish();
    println!(
        "\nheadline: HGT train step {hgt_train_speedup:.2}x (target >=1.2x; \
         every row asserted bit-identical before timing was compared)"
    );
}
