//! Figure 10: device-memory footprint of Hector running HGT, inference
//! and training, per dataset — and the footprint ratio achieved by
//! compact materialization, against the entity compaction ratio.

use hector::prelude::*;
use hector_bench::{banner, device_config, human_bytes, load_datasets, run_hector, scale};

fn main() {
    let s = scale();
    banner("Figure 10: HGT memory footprint and compaction ratio", s);
    // Memory measurement wants footprints even when they exceed the
    // 24 GB card, so lift the capacity for this experiment.
    let mut cfg = device_config(s);
    cfg.memory_capacity = usize::MAX / 2;
    let mut datasets = load_datasets(s);
    datasets.sort_by(|a, b| {
        a.graph
            .graph()
            .num_edges()
            .cmp(&b.graph.graph().num_edges())
    });
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10} {:>10} {:>9}",
        "dataset", "edges", "infer mem", "train mem", "C/U infer", "C/U train", "entity"
    );
    for d in &datasets {
        let iu = run_hector(
            ModelKind::Hgt,
            &d.graph,
            64,
            64,
            &CompileOptions::unopt(),
            false,
            &cfg,
        );
        let tu = run_hector(
            ModelKind::Hgt,
            &d.graph,
            64,
            64,
            &CompileOptions::unopt(),
            true,
            &cfg,
        );
        let ic = run_hector(
            ModelKind::Hgt,
            &d.graph,
            64,
            64,
            &CompileOptions::compact_only(),
            false,
            &cfg,
        );
        let tc = run_hector(
            ModelKind::Hgt,
            &d.graph,
            64,
            64,
            &CompileOptions::compact_only(),
            true,
            &cfg,
        );
        println!(
            "{:<10} {:>10} {:>12} {:>12} {:>10.2} {:>10.2} {:>9.2}",
            d.name,
            d.graph.graph().num_edges(),
            human_bytes(iu.peak_bytes),
            human_bytes(tu.peak_bytes),
            ic.peak_bytes as f64 / iu.peak_bytes as f64,
            tc.peak_bytes as f64 / tu.peak_bytes as f64,
            d.graph.compact().ratio(),
        );
    }
    println!();
    println!("Paper shape (Fig. 10): footprint is highly proportional to the edge");
    println!("count; the compact/unopt memory ratio correlates with — and stays");
    println!("above — the entity compaction ratio, approaching it as the average");
    println!("degree grows (edgewise data dominates).");
}
