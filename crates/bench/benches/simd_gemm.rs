//! simd_gemm: throughput of the register-blocked GEMM microkernels
//! versus the scalar loops they replaced (PR 3's inner loops).
//!
//! Measures the three kernels the interpreter hot path runs —
//! `TypedLinear` rows (`y += x·W`), transposed rows (`y = x·Wᵀ`), and
//! the `TypedLinearGradW` outer-product accumulate — at the square dims
//! the paper's models use. The acceptance bar for the blocked kernels is
//! ≥ 1.5× on the `TypedLinear` path at dims 32/64.
//!
//! With `HECTOR_BENCH_JSON=<path>` the numbers are also written as a
//! machine-readable JSON fragment for the `perf-regression` CI lane's
//! `BENCH_PR4.json` artifact (wall-clock fields are informational there;
//! only deterministic allocation counts gate the lane).

use std::time::Instant;

use hector_bench::json::JsonWriter;
use hector_bench::{banner, scale};
use hector_tensor::microkernel::{
    gemm_row_blocked, gemm_row_scalar, gemm_row_tb_blocked, gemm_row_tb_scalar,
    outer_accum_blocked, outer_accum_scalar,
};

const DIMS: &[usize] = &[16, 32, 64, 128];

/// Deterministic non-zero pseudo-data (no RNG dependency; zeros would
/// trip the skip path and understate arithmetic throughput).
fn pattern(n: usize, seed: f32) -> Vec<f32> {
    (0..n)
        .map(|i| ((i as f32).mul_add(0.618, seed).sin() * 0.9) + 0.05)
        .collect()
}

struct Measure {
    gflops: f64,
}

/// Times `f` over `rows` kernel invocations, repeated until ≥ `min_ms`
/// of wall clock accumulates, and returns achieved GFLOP/s.
fn time_kernel(flops_per_row: f64, rows: usize, min_ms: f64, mut f: impl FnMut(usize)) -> Measure {
    // Warm-up.
    for r in 0..rows.min(64) {
        f(r);
    }
    let mut total = 0.0f64;
    let mut done = 0u64;
    while total * 1e3 < min_ms {
        let t0 = Instant::now();
        for r in 0..rows {
            f(r);
        }
        total += t0.elapsed().as_secs_f64();
        done += rows as u64;
    }
    Measure {
        gflops: flops_per_row * done as f64 / total / 1e9,
    }
}

fn main() {
    let s = scale();
    banner(
        "simd_gemm: blocked vs scalar GEMM microkernel throughput",
        s,
    );
    let rows = ((2_000f64 * s) as usize).max(256);
    let min_ms = if s >= 1.0 { 120.0 } else { 60.0 };
    println!("{rows} rows per invocation batch; speedup = blocked / scalar GFLOP/s\n");
    println!(
        "{:>6} {:>22} {:>10} {:>10} {:>9}",
        "dims", "kernel", "scalar", "blocked", "speedup"
    );

    let mut json = JsonWriter::from_env("simd_gemm");
    for &n in DIMS {
        let x = pattern(rows * n, 0.3);
        let w = pattern(n * n, 0.7);
        let mut y = vec![0.0f32; n];
        let flops = 2.0 * n as f64 * n as f64;

        let sc = time_kernel(flops, rows, min_ms, |r| {
            y.fill(0.0);
            gemm_row_scalar(&x[r * n..(r + 1) * n], &w, n, true, &mut y);
            std::hint::black_box(&y);
        });
        let bl = time_kernel(flops, rows, min_ms, |r| {
            y.fill(0.0);
            gemm_row_blocked(&x[r * n..(r + 1) * n], &w, n, true, &mut y);
            std::hint::black_box(&y);
        });
        report(&mut json, n, "typed_linear", &sc, &bl);

        let sc = time_kernel(flops, rows, min_ms, |r| {
            gemm_row_tb_scalar(&x[r * n..(r + 1) * n], &w, n, &mut y);
            std::hint::black_box(&y);
        });
        let bl = time_kernel(flops, rows, min_ms, |r| {
            gemm_row_tb_blocked(&x[r * n..(r + 1) * n], &w, n, &mut y);
            std::hint::black_box(&y);
        });
        report(&mut json, n, "typed_linear_tb", &sc, &bl);

        let dy = pattern(n, 0.9);
        let mut slab = vec![0.0f32; n * n];
        let sc = time_kernel(flops, rows, min_ms, |r| {
            outer_accum_scalar(&x[r * n..(r + 1) * n], &dy, &mut slab, true);
            std::hint::black_box(&slab);
        });
        let bl = time_kernel(flops, rows, min_ms, |r| {
            outer_accum_blocked(&x[r * n..(r + 1) * n], &dy, &mut slab, true);
            std::hint::black_box(&slab);
        });
        report(&mut json, n, "grad_w_outer", &sc, &bl);
    }
    json.finish();
    println!(
        "\nblocked and scalar kernels are bit-identical (pinned by \
         crates/tensor/tests/simd_gemm.rs); only the register layout differs."
    );
}

fn report(json: &mut JsonWriter, n: usize, kernel: &str, sc: &Measure, bl: &Measure) {
    let speedup = bl.gflops / sc.gflops;
    println!(
        "{n:>6} {kernel:>22} {:>10.2} {:>10.2} {speedup:>8.2}x",
        sc.gflops, bl.gflops
    );
    json.record(
        &format!("{kernel}_{n}"),
        &[
            ("scalar_gflops", sc.gflops),
            ("blocked_gflops", bl.gflops),
            ("speedup", speedup),
        ],
    );
}
