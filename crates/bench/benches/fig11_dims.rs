//! Figure 11: unoptimized Hector inference and training time for
//! (input, output) dimensions (32,32), (64,64), (128,128) across all
//! models and datasets. The sublinear growth with dimension is the
//! paper's evidence of rising computation throughput at larger sizes.

use hector::prelude::*;
use hector_bench::{banner, device_config, load_datasets, run_hector, scale};

fn main() {
    let s = scale();
    banner(
        "Figure 11: Hector unoptimized time vs. hidden dimension (ms)",
        s,
    );
    let cfg = device_config(s);
    let mut datasets = load_datasets(s);
    datasets.sort_by(|a, b| a.name.cmp(&b.name));
    let dims = [32usize, 64, 128];
    for kind in ModelKind::all() {
        println!("\n--- {} ---", kind.name());
        println!(
            "{:<10} | {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} | growth 32->128",
            "dataset", "32", "64", "128", "32", "64", "128"
        );
        println!("{:<10} | {:^26} | {:^26} |", "", "Inference", "Training");
        for d in &datasets {
            print!("{:<10} |", d.name);
            let mut first_last: Vec<Option<f64>> = Vec::new();
            for training in [false, true] {
                for &dim in &dims {
                    let o = run_hector(
                        kind,
                        &d.graph,
                        dim,
                        dim,
                        &CompileOptions::unopt(),
                        training,
                        &cfg,
                    );
                    match o.time_ms {
                        Some(t) => print!(" {t:>8.2}"),
                        None => print!(" {:>8}", "OOM"),
                    }
                    if dim == 32 || dim == 128 {
                        first_last.push(o.time_ms);
                    }
                }
                print!(" |");
            }
            // 16x the multiply-accumulate work from 32 -> 128.
            if let (Some(a), Some(b)) = (first_last[0], first_last[1]) {
                print!(" {:>5.1}x", b / a);
            }
            println!();
        }
    }
    println!();
    println!("Paper shape (Fig. 11): quadrupling both dimensions (16x the MACs)");
    println!("increases time far less than 16x — typically under 4x — because");
    println!("larger inputs lift GPU computation throughput. Vacant cells are OOM.");
}
