//! Thread-scaling of the parallel real-mode executor (`hector-par`).
//!
//! Sweeps `HECTOR_THREADS ∈ {1, 2, 4, 8}` over RGCN / RGAT / HGT forward
//! passes and full training steps (forward + backward + optimizer) on
//! three generated graphs, reporting host wall-clock time and the speedup
//! over the 1-thread baseline. The 1-thread run takes the exact
//! sequential code path; every other column is bit-identical to it (see
//! `tests/par_determinism.rs`), so the columns differ *only* in wall
//! time. `HECTOR_SCALE` shrinks the graphs; the largest graph is listed
//! last — that is the row the ≥2× @ 4-threads scaling target refers to
//! (given ≥4 physical cores; steal counters are reported to show the
//! pool was actually exercised).

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use std::time::Instant;

use hector::prelude::*;
use hector_bench::{banner, scale};

const DIMS: usize = 32;
const THREADS: [usize; 4] = [1, 2, 4, 8];

struct Measured {
    fwd_ms: f64,
    train_ms: f64,
    steals: u64,
}

fn generated(name: &str, nodes: usize, edges: usize, s: f64) -> (String, GraphData) {
    let spec = DatasetSpec {
        name: name.into(),
        num_nodes: ((nodes as f64 * s) as usize).max(32),
        num_node_types: 4,
        num_edges: ((edges as f64 * s) as usize).max(128),
        num_edge_types: 8,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 97,
    };
    let g = GraphData::new(hector::generate(&spec));
    let label = format!(
        "{} ({} nodes, {} edges)",
        name,
        g.graph().num_nodes(),
        g.graph().num_edges()
    );
    (label, g)
}

fn measure(kind: ModelKind, graph: &GraphData, threads: usize, iters: usize) -> Measured {
    let par = ParallelConfig::from_env().with_threads(threads);
    let infer = hector::compile_model(kind, DIMS, DIMS, &CompileOptions::best());
    let train = hector::compile_model(
        kind,
        DIMS,
        DIMS,
        &CompileOptions::best().with_training(true),
    );
    let mut rng = seeded_rng(42);
    let mut params = ParamStore::init(&infer.forward, graph, &mut rng);
    let bindings = Bindings::standard(&infer.forward, graph, &mut rng);
    let mut tparams = ParamStore::init(&train.forward, graph, &mut rng);
    let tbindings = Bindings::standard(&train.forward, graph, &mut rng);
    let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();
    let cfg = DeviceConfig::rtx3090();

    let mut session = Session::with_parallel(cfg.clone(), Mode::Real, par);
    // Warm-up, then timed iterations.
    session
        .run_inference(&infer, graph, &mut params, &bindings)
        .expect("inference fits");
    let start = Instant::now();
    for _ in 0..iters {
        session
            .run_inference(&infer, graph, &mut params, &bindings)
            .expect("inference fits");
    }
    let fwd_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let mut opt = Sgd::new(0.01);
    session
        .run_training_step(&train, graph, &mut tparams, &tbindings, &labels, &mut opt)
        .expect("training fits");
    let start = Instant::now();
    for _ in 0..iters {
        session
            .run_training_step(&train, graph, &mut tparams, &tbindings, &labels, &mut opt)
            .expect("training fits");
    }
    let train_ms = start.elapsed().as_secs_f64() * 1e3 / iters as f64;

    let steals = session.pool_stats().map_or(0, |s| s.steals);
    Measured {
        fwd_ms,
        train_ms,
        steals,
    }
}

fn main() {
    let s = scale();
    banner("par_scaling: real-mode executor thread scaling", s);
    println!(
        "host cores: {}",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    let graphs = [
        generated("gen-small", 1_000, 8_000, s),
        generated("gen-medium", 4_000, 32_000, s),
        generated("gen-large", 16_000, 128_000, s),
    ];
    let iters = if s >= 1.0 { 2 } else { 3 };
    for (label, graph) in &graphs {
        println!("\n=== {label} ===");
        for kind in ModelKind::all() {
            println!("--- {} (dims {DIMS}) ---", kind.name());
            println!(
                "{:>8}{:>12}{:>9}{:>12}{:>9}{:>9}",
                "threads", "fwd ms", "fwd x", "train ms", "train x", "steals"
            );
            let mut base: Option<(f64, f64)> = None;
            for t in THREADS {
                let m = measure(kind, graph, t, iters);
                let (bf, bt) = *base.get_or_insert((m.fwd_ms, m.train_ms));
                println!(
                    "{:>8}{:>12.2}{:>8.2}x{:>12.2}{:>8.2}x{:>9}",
                    t,
                    m.fwd_ms,
                    bf / m.fwd_ms,
                    m.train_ms,
                    bt / m.train_ms,
                    m.steals
                );
            }
        }
    }
    println!("\nSpeedups are relative to the 1-thread (exact sequential path) row.");
    println!("All rows compute bit-identical outputs; see tests/par_determinism.rs.");
}
