//! interp_alloc: allocator traffic and wall clock of the real-mode
//! interpreter's scratch-arena hot path.
//!
//! A counting global allocator wraps `System` for this binary and
//! reports heap-allocation *events* per forward pass and per training
//! step for RGCN / RGAT / HGT on a generated graph — through both run
//! APIs:
//!
//! * `run_*` rows: the owned-`VarStore` API; per-run setup (fresh output
//!   tensors, bindings clones) still allocates, but the count is
//!   graph-size-invariant (scratch arena absorbs all per-row traffic).
//! * `plan_*` rows: the run-plan API (`Session::forward` /
//!   `Session::train_step`); after warm-up these pin at **zero**
//!   allocations per run (`tests/run_alloc.rs` asserts it; this target
//!   makes the magnitude visible, and the `perf-regression` CI lane
//!   gates the JSON below against `ci/alloc_baseline.json`).
//!
//! With `HECTOR_BENCH_JSON=<path>` the table is also written as a
//! machine-readable JSON fragment for the CI lane's `BENCH_PR4.json`
//! artifact. Allocation counts are deterministic (unlike wall clock), so
//! they are the only fields the lane fails on.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use std::time::Instant;

use hector::prelude::*;
use hector_bench::alloc_counter::{alloc_events, CountingAlloc};
use hector_bench::json::JsonWriter;
use hector_bench::{banner, scale};

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const DIMS: usize = 32;

fn main() {
    let s = scale();
    banner(
        "interp_alloc: interpreter allocator traffic (scratch arena + run plan)",
        s,
    );
    let spec = DatasetSpec {
        name: "interp_alloc".into(),
        num_nodes: ((4_000f64 * s) as usize).max(64),
        num_node_types: 4,
        num_edges: ((32_000f64 * s) as usize).max(256),
        num_edge_types: 8,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 61,
    };
    let graph = GraphData::new(hector::generate(&spec));
    let edges = graph.graph().num_edges();
    println!(
        "graph: {} nodes, {edges} edges; dims {DIMS}; sequential executor\n",
        graph.graph().num_nodes()
    );
    println!(
        "{:>6} {:>11} {:>12} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "model", "pass", "ms/pass", "allocs/pass", "allocs/krow", "grows", "arena KiB", "steady %"
    );
    let iters = if s >= 1.0 { 3 } else { 5 };
    let mut json = JsonWriter::from_env("interp_alloc");
    for kind in ModelKind::all() {
        let infer = hector::compile_model(kind, DIMS, DIMS, &CompileOptions::best());
        let train = hector::compile_model(
            kind,
            DIMS,
            DIMS,
            &CompileOptions::best().with_training(true),
        );
        let mut rng = seeded_rng(23);
        let mut params = ParamStore::init(&infer.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&infer.forward, &graph, &mut rng);
        let mut tparams = ParamStore::init(&train.forward, &graph, &mut rng);
        let tbindings = Bindings::standard(&train.forward, &graph, &mut rng);
        let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();
        let mut session = Session::with_parallel(
            DeviceConfig::rtx3090(),
            Mode::Real,
            ParallelConfig::sequential(),
        );

        // Forward passes, owned-store API.
        session
            .run_inference(&infer, &graph, &mut params, &bindings)
            .expect("warm-up inference fits");
        let (ms, allocs) = timed(iters, || {
            session
                .run_inference(&infer, &graph, &mut params, &bindings)
                .expect("inference fits");
        });
        let sc = *session.device().counters().scratch();
        report(&mut json, kind.name(), "run_fwd", ms, allocs, edges, &sc);

        // Forward passes, run-plan API (zero once warm).
        session
            .forward(&infer, &graph, &mut params, &bindings)
            .expect("warm-up forward fits");
        let (ms, allocs) = timed(iters, || {
            session
                .forward(&infer, &graph, &mut params, &bindings)
                .expect("forward fits");
        });
        let sc = *session.device().counters().scratch();
        report(&mut json, kind.name(), "plan_fwd", ms, allocs, edges, &sc);

        // Training steps, owned-store API.
        let mut opt = Sgd::new(0.01);
        session
            .run_training_step(&train, &graph, &mut tparams, &tbindings, &labels, &mut opt)
            .expect("warm-up step fits");
        let (ms, allocs) = timed(iters, || {
            session
                .run_training_step(&train, &graph, &mut tparams, &tbindings, &labels, &mut opt)
                .expect("training step fits");
        });
        let sc = *session.device().counters().scratch();
        report(&mut json, kind.name(), "run_train", ms, allocs, edges, &sc);

        // Training steps, run-plan API (zero once warm).
        session
            .train_step(&train, &graph, &mut tparams, &tbindings, &labels, &mut opt)
            .expect("warm-up plan step fits");
        let (ms, allocs) = timed(iters, || {
            session
                .train_step(&train, &graph, &mut tparams, &tbindings, &labels, &mut opt)
                .expect("plan training step fits");
        });
        let sc = *session.device().counters().scratch();
        report(&mut json, kind.name(), "plan_train", ms, allocs, edges, &sc);
    }
    json.finish();
    println!(
        "\nallocs/pass counts every heap allocation event in the pass; run_* rows \
         include per-run\nsetup (owned stores), plan_* rows reuse the session's run \
         plan and pin at zero once warm."
    );
}

/// Times `iters` calls of `f`, returning (ms per call, allocation events
/// per call).
fn timed(iters: u32, mut f: impl FnMut()) -> (f64, f64) {
    let a0 = alloc_events();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
    let allocs = (alloc_events() - a0) as f64 / f64::from(iters);
    (ms, allocs)
}

#[allow(clippy::too_many_arguments)]
fn report(
    json: &mut JsonWriter,
    model: &str,
    pass: &str,
    ms: f64,
    allocs: f64,
    edges: usize,
    sc: &hector::ScratchStats,
) {
    println!(
        "{model:>6} {pass:>11} {ms:>12.3} {allocs:>12.1} {:>12.3} {:>10} {:>12.1} {:>11.1}%",
        allocs / (edges as f64 / 1e3),
        sc.grows,
        sc.bytes as f64 / 1024.0,
        sc.steady_fraction() * 100.0
    );
    json.record(
        &format!("{model}_{pass}"),
        &[
            ("ms_per_pass", ms),
            ("allocs_per_pass", allocs),
            ("scratch_grows", sc.grows as f64),
            ("plan_grows", sc.plan_grows as f64),
        ],
    );
}
