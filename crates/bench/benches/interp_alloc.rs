//! interp_alloc: allocator traffic and wall clock of the real-mode
//! interpreter's scratch-arena hot path.
//!
//! A counting global allocator wraps `System` for this binary and
//! reports heap-allocation *events* per forward pass and per training
//! step for RGCN / RGAT / HGT on a generated graph, alongside host wall
//! clock and the session's scratch-arena counters
//! (`counters().scratch()`). In steady state the interpreter performs
//! zero per-row allocations — the "allocs/krow" column stays pinned
//! near zero no matter how `HECTOR_SCALE` grows the graph, and the
//! wall-clock column guards against hot-path regressions
//! (`tests/interp_alloc.rs` pins the invariant; this target makes the
//! magnitude visible).

use std::time::Instant;

use hector::prelude::*;
use hector_bench::alloc_counter::{alloc_events, CountingAlloc};
use hector_bench::{banner, scale};

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const DIMS: usize = 32;

fn main() {
    let s = scale();
    banner(
        "interp_alloc: interpreter allocator traffic (scratch arena)",
        s,
    );
    let spec = DatasetSpec {
        name: "interp_alloc".into(),
        num_nodes: ((4_000f64 * s) as usize).max(64),
        num_node_types: 4,
        num_edges: ((32_000f64 * s) as usize).max(256),
        num_edge_types: 8,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 61,
    };
    let graph = GraphData::new(hector::generate(&spec));
    let edges = graph.graph().num_edges();
    println!(
        "graph: {} nodes, {edges} edges; dims {DIMS}; sequential executor\n",
        graph.graph().num_nodes()
    );
    println!(
        "{:>6} {:>7} {:>12} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "model", "pass", "ms/pass", "allocs/pass", "allocs/krow", "grows", "arena KiB", "steady %"
    );
    let iters = if s >= 1.0 { 3 } else { 5 };
    for kind in ModelKind::all() {
        let infer = hector::compile_model(kind, DIMS, DIMS, &CompileOptions::best());
        let train = hector::compile_model(
            kind,
            DIMS,
            DIMS,
            &CompileOptions::best().with_training(true),
        );
        let mut rng = seeded_rng(23);
        let mut params = ParamStore::init(&infer.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&infer.forward, &graph, &mut rng);
        let mut tparams = ParamStore::init(&train.forward, &graph, &mut rng);
        let tbindings = Bindings::standard(&train.forward, &graph, &mut rng);
        let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();
        let mut session = Session::with_parallel(
            DeviceConfig::rtx3090(),
            Mode::Real,
            ParallelConfig::sequential(),
        );

        // Forward passes.
        session
            .run_inference(&infer, &graph, &mut params, &bindings)
            .expect("warm-up inference fits");
        let a0 = alloc_events();
        let t0 = Instant::now();
        for _ in 0..iters {
            session
                .run_inference(&infer, &graph, &mut params, &bindings)
                .expect("inference fits");
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
        let allocs = (alloc_events() - a0) as f64 / f64::from(iters);
        let sc = *session.device().counters().scratch();
        report(kind.name(), "fwd", ms, allocs, edges, &sc);

        // Training steps.
        let mut opt = Sgd::new(0.01);
        session
            .run_training_step(&train, &graph, &mut tparams, &tbindings, &labels, &mut opt)
            .expect("warm-up step fits");
        let a0 = alloc_events();
        let t0 = Instant::now();
        for _ in 0..iters {
            session
                .run_training_step(&train, &graph, &mut tparams, &tbindings, &labels, &mut opt)
                .expect("training step fits");
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(iters);
        let allocs = (alloc_events() - a0) as f64 / f64::from(iters);
        let sc = *session.device().counters().scratch();
        report(kind.name(), "train", ms, allocs, edges, &sc);
    }
    println!(
        "\nallocs/pass counts every heap allocation event in the pass \
         (per-run setup included);\nthe scratch arena keeps it constant as \
         HECTOR_SCALE grows, so allocs/krow falls toward zero."
    );
}

fn report(model: &str, pass: &str, ms: f64, allocs: f64, edges: usize, sc: &hector::ScratchStats) {
    println!(
        "{model:>6} {pass:>7} {ms:>12.3} {allocs:>12.1} {:>12.3} {:>10} {:>12.1} {:>11.1}%",
        allocs / (edges as f64 / 1e3),
        sc.grows,
        sc.bytes as f64 / 1024.0,
        sc.steady_fraction() * 100.0
    );
}
