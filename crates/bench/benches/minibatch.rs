//! minibatch: sampled mini-batch training throughput and the prefetch
//! pipeline's win over sample-then-train.
//!
//! For each model × thread count, runs one epoch of seeded neighbor
//! sampling + subgraph training two ways on the same trainer:
//!
//! * `sync` — `cfg.pipeline(false)`: every batch is sampled inline,
//!   then trained (sample-then-train; epoch wall = sample + train).
//! * `pipelined` — `cfg.pipeline(true)`: a background producer samples
//!   batch `k+1` while batch `k` trains (epoch wall ≈ max of the two).
//!
//! Both orders produce bit-identical batches and losses (pinned by
//! `tests/minibatch.rs`), so the columns differ only in wall time.
//! Reported per row: seed-nodes-per-second throughput, pure sampling
//! time (the part the pipeline can hide), the device's measured overlap
//! fraction (time the consumer did *not* wait for a batch, out of total
//! production time), and the pipeline speedup. The scaling target —
//! ≥1.2× at 4 threads on the default scale — assumes a spare physical
//! core for the producer thread (like `par_scaling`'s target assumes ≥4
//! cores); on a single-core host producer and trainer timeslice one CPU
//! and the speedup degenerates to ~1×, so the host core count is printed
//! with the results.
//!
//! With `HECTOR_BENCH_JSON=<path>` the rows land in the perf-regression
//! artifact; all fields are wall-clock-derived, hence informational
//! (the lane never gates on them).

use std::time::Instant;

use hector::prelude::*;
use hector_bench::json::JsonWriter;
use hector_bench::{banner, scale};

const DIMS: usize = 32;
const THREADS: [usize; 3] = [1, 2, 4];
const BATCH: usize = 64;

fn graph(s: f64) -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "minibatch_bench".into(),
        num_nodes: ((6_000f64 * s) as usize).max(256),
        num_node_types: 4,
        num_edges: ((48_000f64 * s) as usize).max(1024),
        num_edge_types: 8,
        compaction_ratio: 0.4,
        type_skew: 1.0,
        seed: 71,
    }))
}

fn trainer(kind: ModelKind, threads: usize, g: &GraphData) -> Trainer {
    let mut t = EngineBuilder::new(kind)
        .dims(DIMS, DIMS)
        .options(CompileOptions::best())
        .parallel(ParallelConfig::from_env().with_threads(threads))
        .seed(7)
        .build_trainer(Adam::new(0.01))
        .unwrap();
    t.bind(g).unwrap();
    t
}

struct EpochRun {
    wall_s: f64,
    sample_s: f64,
    overlap: f64,
    seeds_per_sec: f64,
}

fn epoch(t: &mut Trainer, cfg: &SamplerConfig, seeds: usize) -> EpochRun {
    t.engine_mut().session_mut().device_mut().reset_sampler();
    let t0 = Instant::now();
    t.minibatch_epoch(cfg).expect("epoch fits");
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = t.engine().device().counters().sampler();
    EpochRun {
        wall_s,
        sample_s: stats.sample_wall_us / 1e6,
        overlap: stats.overlap_fraction(),
        seeds_per_sec: seeds as f64 / wall_s,
    }
}

fn main() {
    let s = scale();
    banner(
        "minibatch: sampled training pipeline vs sample-then-train",
        s,
    );
    let g = graph(s);
    let seeds = g.graph().num_nodes();
    println!(
        "graph: {} nodes, {} edges; batch {BATCH}, fanouts [10, 5]",
        seeds,
        g.graph().num_edges()
    );
    println!(
        "host cores: {}",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );
    println!(
        "{:>6} {:>8} {:>12} {:>14} {:>11} {:>12} {:>9} {:>9}",
        "model", "threads", "sync ms", "pipelined ms", "sample ms", "seeds/s", "overlap", "speedup"
    );
    let mut json = JsonWriter::from_env("minibatch");
    for kind in ModelKind::all() {
        for threads in THREADS {
            let mut t = trainer(kind, threads, &g);
            let cfg = SamplerConfig::new(BATCH);
            // Warm epoch: materialises the run plan so both timed
            // epochs run the allocation-free steady state.
            t.minibatch_epoch(&cfg.clone().pipeline(false))
                .expect("warm epoch fits");
            let sync = epoch(&mut t, &cfg.clone().pipeline(false), seeds);
            let pipe = epoch(&mut t, &cfg.clone().pipeline(true), seeds);
            let speedup = sync.wall_s / pipe.wall_s.max(1e-12);
            println!(
                "{:>6} {:>8} {:>12.1} {:>14.1} {:>11.1} {:>12.0} {:>9.2} {:>8.2}x",
                kind.name(),
                threads,
                sync.wall_s * 1e3,
                pipe.wall_s * 1e3,
                pipe.sample_s * 1e3,
                pipe.seeds_per_sec,
                pipe.overlap,
                speedup
            );
            json.record(
                &format!("{}_t{}", kind.name(), threads),
                &[
                    ("sync_ms", sync.wall_s * 1e3),
                    ("pipelined_ms", pipe.wall_s * 1e3),
                    ("sample_ms", pipe.sample_s * 1e3),
                    ("seeds_per_sec", pipe.seeds_per_sec),
                    ("overlap_fraction", pipe.overlap),
                    ("speedup", speedup),
                ],
            );
        }
    }
    println!(
        "\nPipelined and sync epochs train bit-identical batch sequences\n\
         (tests/minibatch.rs); the speedup is pure sampling/training overlap,\n\
         bounded by the 'sample ms' column the producer can hide. Target:\n\
         >= 1.2x at 4 threads at the default scale, given a spare physical\n\
         core for the producer (single-core hosts degenerate to ~1x)."
    );
    json.finish();
}
