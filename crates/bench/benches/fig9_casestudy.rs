//! Figure 9: breakdown of Hector RGAT inference time into GEMM-template,
//! traversal-template, and other kernels on AM and FB15k, for each of the
//! U / C / R / C+R configurations (dimensions 64).

use hector::prelude::*;
use hector_bench::{banner, device_config, load_dataset, run_hector, scale};

fn main() {
    let s = scale();
    banner("Figure 9: Hector RGAT inference breakdown (ms)", s);
    let cfg = device_config(s);
    let combos = [
        ("U", CompileOptions::unopt()),
        ("C", CompileOptions::compact_only()),
        ("R", CompileOptions::reorder_only()),
        ("C+R", CompileOptions::best()),
    ];
    for name in ["am", "fb15k"] {
        let d = load_dataset(name, s);
        let ratio = d.graph.compact().ratio();
        println!("\n--- {} (entity compaction ratio {:.2}) ---", name, ratio);
        println!(
            "{:<6} {:>9} {:>11} {:>9} {:>9}",
            "cfg", "GEMM", "Traversal", "Others", "Total"
        );
        for (label, opts) in &combos {
            let o = run_hector(ModelKind::Rgat, &d.graph, 64, 64, opts, false, &cfg);
            println!(
                "{:<6} {:>9.3} {:>11.3} {:>9.3} {:>9.3}",
                label,
                o.gemm_ms,
                o.traversal_ms,
                (o.copy_ms + o.other_ms).abs(),
                o.time_ms.unwrap_or(f64::NAN),
            );
        }
    }
    println!();
    println!("Paper shape (Fig. 9): on AM (ratio 0.57) compaction cuts GEMM time");
    println!("substantially; on FB15k (ratio 0.26) the GEMM reduction is larger");
    println!("still, but GEMM is a smaller share, so the total gain is smaller.");
}
