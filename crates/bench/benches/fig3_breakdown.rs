//! Figure 3: breakdown of inference time by Graphiler and Hector on
//! HGT and RGAT over FB15k and MUTAG — the motivating evidence that
//! indexing/copying and framework overhead dominate existing stacks.

use hector::baselines::{Graphiler, System};
use hector::prelude::*;
use hector_bench::{banner, device_config, load_dataset, run_hector, scale, Outcome};

fn main() {
    let s = scale();
    banner(
        "Figure 3: inference-time breakdown, Graphiler vs. Hector (ms)",
        s,
    );
    let cfg = device_config(s);
    println!(
        "{:<18} {:>9} {:>11} {:>12} {:>10} {:>9}",
        "case", "MM", "OtherComp", "Index/Copy", "API/Other", "Total"
    );
    for name in ["fb15k", "mutag"] {
        let d = load_dataset(name, s);
        for kind in [ModelKind::Hgt, ModelKind::Rgat] {
            let g: Outcome = Graphiler.run(kind, &d.graph, 64, &cfg, false).into();
            println!(
                "{:<18} {:>9.3} {:>11.3} {:>12.3} {:>10.3} {:>9.3}",
                format!("Graphiler {} {}", kind.name(), name),
                g.gemm_ms,
                g.traversal_ms,
                g.copy_ms.abs(),
                g.other_ms.abs(),
                g.time_ms.unwrap_or(f64::NAN),
            );
            let h = run_hector(kind, &d.graph, 64, 64, &CompileOptions::best(), false, &cfg);
            println!(
                "{:<18} {:>9.3} {:>11.3} {:>12.3} {:>10.3} {:>9.3}",
                format!("Hector    {} {}", kind.name(), name),
                h.gemm_ms,
                h.traversal_ms,
                h.copy_ms.abs(),
                h.other_ms.abs(),
                h.time_ms.unwrap_or(f64::NAN),
            );
        }
    }
    println!();
    println!("Paper shape (Fig. 3): indexing and copying take a significant share");
    println!("of Graphiler's time (plus ~22% CUDA API overhead on its critical");
    println!("path); Hector eliminates the dedicated data-movement kernels by");
    println!("gathering and scattering inside its GEMM/traversal templates.");
}
