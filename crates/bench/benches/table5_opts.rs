//! Table 5: speedups over unoptimized Hector from compact
//! materialization (C), linear operator reordering (R), and both (C+R),
//! for RGAT and HGT, training and inference, dimensions 64.

use hector::prelude::*;
use hector_bench::{banner, device_config, geomean, load_datasets, run_hector, scale};

fn main() {
    let s = scale();
    banner(
        "Table 5: Speedup over unoptimized Hector from C / R / C+R",
        s,
    );
    let cfg = device_config(s);
    let mut datasets = load_datasets(s);
    datasets.sort_by(|a, b| a.name.cmp(&b.name));
    let combos = [
        ("C", CompileOptions::compact_only()),
        ("R", CompileOptions::reorder_only()),
        ("C+R", CompileOptions::best()),
    ];
    for kind in [ModelKind::Rgat, ModelKind::Hgt] {
        println!("\n--- {} ---", kind.name());
        println!(
            "{:<10} | {:>7} {:>7} {:>7} | {:>7} {:>7} {:>7}",
            "dataset", "C", "R", "C+R", "C", "R", "C+R"
        );
        println!("{:<10} | {:^23} | {:^23}", "", "Training", "Inference");
        let mut geo: Vec<Vec<f64>> = vec![Vec::new(); 6];
        for d in &datasets {
            print!("{:<10} |", d.name);
            for (col, training) in [(0usize, true), (3usize, false)] {
                let u = run_hector(
                    kind,
                    &d.graph,
                    64,
                    64,
                    &CompileOptions::unopt(),
                    training,
                    &cfg,
                );
                // When the unoptimized version OOMs, the paper normalises
                // by the compacted version (Table 5 footnote).
                let base = u.time_ms.or_else(|| {
                    run_hector(
                        kind,
                        &d.graph,
                        64,
                        64,
                        &CompileOptions::compact_only(),
                        training,
                        &cfg,
                    )
                    .time_ms
                });
                for (i, (_, opts)) in combos.iter().enumerate() {
                    let o = run_hector(kind, &d.graph, 64, 64, opts, training, &cfg);
                    match (base, o.time_ms) {
                        (Some(b), Some(t)) => {
                            let ratio = b / t;
                            geo[col + i].push(ratio);
                            print!(" {ratio:>6.2} ");
                        }
                        _ => print!("  OOM   "),
                    }
                }
                print!("|");
            }
            println!();
        }
        print!("{:<10} |", "GEOMEAN");
        for v in &geo {
            print!(" {:>6.2} ", geomean(v));
        }
        println!();
    }
    println!();
    println!("Paper reference (Table 5 averages):");
    println!("  RGAT train C/R/C+R = 1.13/1.17/1.18   infer = 1.36/1.28/1.49");
    println!("  HGT  train C/R/C+R = 1.08/1.16/1.26   infer = 1.07/1.31/1.40");
    println!("Shape to hold: big C wins on low-compaction-ratio graphs (biokg, mag),");
    println!("mild C losses on small graphs; C+R best fixed strategy on average.");
}
