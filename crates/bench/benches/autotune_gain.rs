//! §4.3's closing observation, made executable: "If Hector presumably
//! chooses the best configuration in every run, it could further get
//! 1.06×, 1.33×, 1.02×, and 1.08× speed-up" over the fixed C+R strategy
//! in {RGAT, HGT} × {training, inference}. This harness runs the
//! exhaustive cost-model autotuner (the paper's future work) per model ×
//! dataset and reports the realised per-scenario geomean gains.

use hector::prelude::*;
use hector_bench::{banner, device_config, geomean, load_datasets, scale};

fn main() {
    let s = scale();
    banner("Autotuning gain over the fixed C+R strategy", s);
    let cfg = device_config(s);
    let mut datasets = load_datasets(s);
    datasets.sort_by(|a, b| a.name.cmp(&b.name));
    for kind in [ModelKind::Rgat, ModelKind::Hgt] {
        for training in [true, false] {
            let mode = if training { "training" } else { "inference" };
            println!("\n--- {} {} ---", kind.name(), mode);
            println!("{:<10} {:>24} {:>9}", "dataset", "winner", "gain");
            let mut gains = Vec::new();
            for d in &datasets {
                let r = hector::autotune(kind, 64, 64, &d.graph, &cfg, training);
                let gain = r.gain_over_fixed();
                gains.push(gain);
                println!(
                    "{:<10} {:>24} {:>8.2}x",
                    d.name,
                    format!(
                        "{} tile={} coarsen={}",
                        r.options.label(),
                        r.options.schedule.tile,
                        r.options.schedule.coarsen
                    ),
                    gain
                );
            }
            println!("{:<10} {:>24} {:>8.2}x", "GEOMEAN", "", geomean(&gains));
        }
    }
    println!("\nPaper reference (§4.3): per-run best configuration would add");
    println!("1.06x (RGAT train), 1.33x (HGT train), 1.02x (RGAT infer),");
    println!("1.08x (HGT infer) over always running C+R.");
}
