//! Table 4: worst/average/best speedups of Hector (unoptimized and
//! best-optimized) over the best state-of-the-art system per task, plus
//! the number of OOM events Hector triggers.

use hector::baselines::all_systems;
use hector::prelude::*;
use hector_bench::{banner, device_config, geomean, load_datasets, run_hector, scale};

fn main() {
    let s = scale();
    banner("Table 4: Hector speedups vs. best prior system", s);
    let cfg = device_config(s);
    let datasets = load_datasets(s);
    let systems = all_systems();

    println!(
        "{:<8} {:<10} | {:>7} {:>7} {:>7} {:>4} | {:>7} {:>7} {:>7} {:>4}",
        "", "", "W", "M(geo)", "B", "#E", "W", "M(geo)", "B", "#E"
    );
    println!(
        "{:<8} {:<10} | {:^28} | {:^28}",
        "mode", "model", "Hector unoptimized", "Hector best-optimized"
    );
    for training in [true, false] {
        let mode = if training { "Train" } else { "Infer" };
        for kind in ModelKind::all() {
            let mut ratios_u = Vec::new();
            let mut ratios_b = Vec::new();
            let mut oom_u = 0usize;
            let mut oom_b = 0usize;
            for d in &datasets {
                let mut best: Option<f64> = None;
                for sys in &systems {
                    if !sys.supports(kind, training) {
                        continue;
                    }
                    let r = sys.run(kind, &d.graph, 64, &cfg, training);
                    if !r.oom {
                        let t = r.time_us / 1e3;
                        best = Some(best.map_or(t, |b: f64| b.min(t)));
                    }
                }
                let hu = run_hector(
                    kind,
                    &d.graph,
                    64,
                    64,
                    &CompileOptions::unopt(),
                    training,
                    &cfg,
                );
                let hb = run_hector(
                    kind,
                    &d.graph,
                    64,
                    64,
                    &CompileOptions::best(),
                    training,
                    &cfg,
                );
                if hu.time_ms.is_none() {
                    oom_u += 1;
                }
                if hb.time_ms.is_none() {
                    oom_b += 1;
                }
                if let Some(b) = best {
                    if let Some(t) = hu.time_ms {
                        ratios_u.push(b / t);
                    }
                    if let Some(t) = hb.time_ms {
                        ratios_b.push(b / t);
                    }
                }
            }
            let stats = |v: &[f64]| -> (f64, f64, f64) {
                let w = v.iter().copied().fold(f64::INFINITY, f64::min);
                let b = v.iter().copied().fold(0.0f64, f64::max);
                (w, geomean(v), b)
            };
            let (wu, mu, bu) = stats(&ratios_u);
            let (wb, mb, bb) = stats(&ratios_b);
            println!(
                "{:<8} {:<10} | {:>7.2} {:>7.2} {:>7.2} {:>4} | {:>7.2} {:>7.2} {:>7.2} {:>4}",
                mode,
                kind.name(),
                wu,
                mu,
                bu,
                oom_u,
                wb,
                mb,
                bb,
                oom_b
            );
        }
    }
    println!();
    println!("Paper reference (Table 4):");
    println!(
        "  Train  unopt: RGCN 2.02/2.59/3.47 #0 | RGAT 1.72/9.14/43.7 #2 | HGT 1.53/6.62/28.3 #0"
    );
    println!(
        "  Train  b.opt: RGCN 2.02/2.76/3.48 #0 | RGAT 4.61/11.3/55.4 #0 | HGT 2.17/8.02/43.1 #0"
    );
    println!(
        "  Infer  unopt: RGCN 1.51/1.79/2.19 #0 | RGAT 1.41/5.02/9.89 #2 | HGT 1.20/1.90/4.31 #0"
    );
    println!(
        "  Infer  b.opt: RGCN 1.51/1.91/3.20 #0 | RGAT 5.29/8.56/15.5 #0 | HGT 1.40/2.87/7.42 #0"
    );
}
