//! Table 3: heterogeneous graph datasets used in the evaluation.
//!
//! Regenerates the dataset-statistics table, comparing each synthetic
//! dataset's realised statistics against the paper's published counts.

use hector::GraphStats;
use hector_bench::{banner, load_datasets, scale};

fn main() {
    let s = scale();
    banner("Table 3: Heterogeneous graph datasets", s);
    println!(
        "{:<10} {:>12} {:>8} {:>12} {:>8} {:>8} {:>9}",
        "Name", "#nodes", "(types)", "#edges", "(types)", "avg deg", "compact"
    );
    let mut datasets = load_datasets(s);
    datasets.sort_by(|a, b| a.name.cmp(&b.name));
    for d in &datasets {
        let st = GraphStats::of(&d.name, d.graph.graph());
        println!(
            "{:<10} {:>12} {:>8} {:>12} {:>8} {:>8.1} {:>8.2}",
            st.name,
            GraphStats::humanize(st.num_nodes),
            format!("({})", st.num_node_types),
            GraphStats::humanize(st.num_edges),
            format!("({})", st.num_edge_types),
            st.avg_degree,
            st.compaction_ratio,
        );
    }
    println!();
    println!("Paper reference (Table 3, full scale):");
    println!("  aifb 7.3K (7) / 49K (104)    fb15k  15K (1) / 620K (474)");
    println!("  am   1.9M (7) / 5.7M (108)   mag    1.9M (4) / 21M (4)");
    println!("  bgs  95K (27) / 673K (122)   mutag  27K (5) / 148K (50)");
    println!("  biokg 94K (5) / 4.8M (51)    wikikg2 2.5M (1) / 16M (535)");
    println!("Entity compaction ratios stated in the paper: am 0.57, fb15k 0.26.");
}
