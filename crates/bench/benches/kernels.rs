//! Criterion wall-clock benchmarks of the real (functional) execution
//! path: compilation, inference, and one training step for each model on
//! a small synthetic graph. These measure the Rust interpreter, not the
//! simulated GPU; they guard against regressions in the hot paths.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hector::prelude::*;

fn small_graph() -> GraphData {
    GraphData::new(hector::generate(&DatasetSpec {
        name: "bench".into(),
        num_nodes: 300,
        num_node_types: 3,
        num_edges: 1500,
        num_edge_types: 6,
        compaction_ratio: 0.5,
        type_skew: 1.0,
        seed: 42,
    }))
}

fn bench(c: &mut Criterion) {
    let graph = small_graph();
    let mut group = c.benchmark_group("real_execution");
    group.sample_size(10);

    for kind in ModelKind::all() {
        group.bench_with_input(BenchmarkId::new("compile", kind.name()), &kind, |b, &k| {
            b.iter(|| {
                std::hint::black_box(hector::compile_model(
                    k,
                    32,
                    32,
                    &CompileOptions::best().with_training(true),
                ))
            });
        });

        let module = hector::compile_model(kind, 32, 32, &CompileOptions::best());
        let mut rng = seeded_rng(1);
        let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
        let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
        group.bench_with_input(BenchmarkId::new("inference", kind.name()), &kind, |b, _| {
            b.iter(|| {
                let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
                std::hint::black_box(
                    session
                        .run_inference(&module, &graph, &mut params, &bindings)
                        .unwrap()
                        .1
                        .elapsed_us,
                )
            });
        });

        let tmodule =
            hector::compile_model(kind, 32, 32, &CompileOptions::best().with_training(true));
        let mut tparams = ParamStore::init(&tmodule.forward, &graph, &mut rng);
        let tbindings = Bindings::standard(&tmodule.forward, &graph, &mut rng);
        let labels: Vec<usize> = (0..graph.graph().num_nodes()).map(|i| i % 4).collect();
        group.bench_with_input(
            BenchmarkId::new("train_step", kind.name()),
            &kind,
            |b, _| {
                let mut sgd = Sgd::new(0.01);
                b.iter(|| {
                    let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
                    std::hint::black_box(
                        session
                            .run_training_step(
                                &tmodule,
                                &graph,
                                &mut tparams,
                                &tbindings,
                                &labels,
                                &mut sgd,
                            )
                            .unwrap()
                            .1
                            .elapsed_us,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
