//! Figure 12: architectural metrics of Hector's generated kernels
//! running RGAT on bgs and am with and without compact materialization,
//! dimensions 32/64/128: per-category (GEMM vs traversal) and
//! per-direction (forward vs backward) duration, achieved GFLOP/s,
//! IPC proxy, and DRAM throughput.

// Exercises the deprecated five-piece Session flow on purpose: these
// suites pin the low-level substrate the handle API is built on.
#![allow(deprecated)]

use hector::prelude::*;
use hector_bench::{banner, device_config, load_dataset, scale};
use hector_device::{KernelCategory, Phase};

fn main() {
    let s = scale();
    banner("Figure 12: architectural metrics, Hector RGAT kernels", s);
    let cfg = device_config(s);
    for name in ["bgs", "am"] {
        let d = load_dataset(name, s);
        println!("\n===== {} =====", name);
        println!(
            "{:<5} {:<4} | {:<10} {:>10} {:>9} {:>6} {:>8} | {:<10} {:>10} {:>9} {:>6} {:>8}",
            "dim",
            "cfg",
            "",
            "dur(ms)",
            "GFLOP/s",
            "IPC",
            "DRAM%",
            "",
            "dur(ms)",
            "GFLOP/s",
            "IPC",
            "DRAM%"
        );
        for dim in [32usize, 64, 128] {
            for (label, opts) in [
                ("U", CompileOptions::unopt()),
                ("C", CompileOptions::compact_only()),
            ] {
                let module = hector::compile_model(
                    ModelKind::Rgat,
                    dim,
                    dim,
                    &opts.clone().with_training(true),
                );
                let mut rng = seeded_rng(3);
                let mut params = ParamStore::init(&module.forward, &d.graph, &mut rng);
                let mut session = Session::new(cfg.clone(), Mode::Modeled);
                let mut sgd = Sgd::new(0.01);
                let Ok(_) = session.run_training_step(
                    &module,
                    &d.graph,
                    &mut params,
                    &Bindings::new(),
                    &[],
                    &mut sgd,
                ) else {
                    println!("{dim:<5} {label:<4} | OOM");
                    continue;
                };
                for phase in [Phase::Forward, Phase::Backward] {
                    let dir = match phase {
                        Phase::Forward => "Fw",
                        Phase::Backward => "Bck",
                    };
                    let counters = session.device().counters();
                    let g = counters.get(KernelCategory::Gemm, phase);
                    let t = counters.get(KernelCategory::Traversal, phase);
                    println!(
                        "{:<5} {:<4} | {:<10} {:>10.3} {:>9.0} {:>6.2} {:>8.1} | {:<10} {:>10.3} {:>9.0} {:>6.2} {:>8.1}",
                        dim,
                        label,
                        format!("GEMM/{dir}"),
                        g.duration_us / 1e3,
                        g.achieved_gflops(),
                        g.avg_ipc(),
                        g.dram_throughput_pct(&cfg),
                        format!("Trav/{dir}"),
                        t.duration_us / 1e3,
                        t.achieved_gflops(),
                        t.avg_ipc(),
                        t.dram_throughput_pct(&cfg),
                    );
                }
            }
        }
    }
    println!();
    println!("Paper shape (Fig. 12): throughput rises with dimension and with graph");
    println!("scale (bgs -> am); traversal kernels are latency-bound (IPC well under");
    println!("the ideal 4); backward kernels have lower throughput than forward due");
    println!("to atomic updates and outer products.");
}
