//! Ablation of the intra-operator schedule knobs called out in §3.4.1:
//! GEMM tile size, thread coarsening factor, launch bounds, and the
//! adjacency encoding of traversal kernels.

use hector::prelude::*;
use hector_bench::{banner, device_config, load_dataset, run_hector, scale};
use hector_ir::{AdjacencyAccess, GemmSchedule};

fn main() {
    let s = scale();
    banner(
        "Ablation: intra-operator schedule knobs (RGAT inference, ms)",
        s,
    );
    let cfg = device_config(s);
    for name in ["fb15k", "bgs"] {
        let d = load_dataset(name, s);
        println!("\n--- {} ---", name);
        println!("{:<34} {:>10}", "configuration", "time (ms)");
        for tile in [8usize, 16, 32] {
            for coarsen in [1usize, 2, 4] {
                let mut opts = CompileOptions::best();
                opts.schedule = GemmSchedule {
                    tile,
                    coarsen,
                    launch_bounds: false,
                };
                let o = run_hector(ModelKind::Rgat, &d.graph, 64, 64, &opts, false, &cfg);
                println!(
                    "{:<34} {:>10.3}",
                    format!("tile={tile} coarsen={coarsen}"),
                    o.time_ms.unwrap_or(f64::NAN)
                );
            }
        }
        for adjacency in [AdjacencyAccess::Coo, AdjacencyAccess::Csr] {
            let mut opts = CompileOptions::best();
            opts.adjacency = adjacency;
            let o = run_hector(ModelKind::Rgat, &d.graph, 64, 64, &opts, false, &cfg);
            println!(
                "{:<34} {:>10.3}",
                format!("adjacency={adjacency:?}"),
                o.time_ms.unwrap_or(f64::NAN)
            );
        }
    }
    println!();
    println!("The paper's default schedule is tile_sz=16, coarsening 1; §3.4.1");
    println!("exposes these as per-instance options (autotuning left as future work).");
}
