//! Shared harness utilities for regenerating the paper's tables and
//! figures.
//!
//! Every `[[bench]] harness = false` binary in this crate reproduces one
//! table or figure of the paper's evaluation (see `DESIGN.md` §4 for the
//! index). They share the machinery here: dataset loading at a
//! configurable scale, a unified way to run Hector and the baselines, and
//! text-table formatting.
//!
//! # Scaling
//!
//! The environment variable `HECTOR_SCALE` (default `1.0`) scales every
//! dataset's node/edge counts. The simulated device's memory capacity is
//! scaled by the same factor, so out-of-memory behaviour is preserved at
//! reduced scale (footprints are dominated by edge-proportional tensors).
//! Runs use the cost-model-only [`Mode::Modeled`], so even paper scale
//! completes in seconds of host time.

#![warn(missing_docs)]

use hector::baselines::SystemReport;
use hector::prelude::*;

/// Dataset scale factor from `HECTOR_SCALE` (default 1.0 = paper scale).
#[must_use]
pub fn scale() -> f64 {
    std::env::var("HECTOR_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s.is_finite() && s > 0.0)
        .unwrap_or(1.0)
}

/// Device configuration with capacity scaled alongside the datasets.
#[must_use]
pub fn device_config(scale: f64) -> DeviceConfig {
    let base = DeviceConfig::rtx3090();
    let cap = (base.memory_capacity as f64 * scale).max(64.0 * 1024.0 * 1024.0) as usize;
    base.with_capacity(cap)
}

/// One generated dataset ready for experiments.
pub struct PreparedDataset {
    /// Dataset name (paper's label).
    pub name: String,
    /// Graph plus derived structures.
    pub graph: GraphData,
}

/// Generates all eight paper datasets (figure order: wikikg2, mutag, mag,
/// fb15k, biokg, bgs, am, aifb) at the given scale.
#[must_use]
pub fn load_datasets(scale: f64) -> Vec<PreparedDataset> {
    hector::datasets::all()
        .into_iter()
        .map(|spec| {
            let name = spec.name.clone();
            let graph = GraphData::new(hector::generate(&spec.scaled(scale)));
            PreparedDataset { name, graph }
        })
        .collect()
}

/// Generates a single named dataset at the given scale.
///
/// # Panics
///
/// Panics on an unknown dataset name.
#[must_use]
pub fn load_dataset(name: &str, scale: f64) -> PreparedDataset {
    let spec = hector::datasets::by_name(name).expect("unknown dataset");
    PreparedDataset {
        name: name.to_string(),
        graph: GraphData::new(hector::generate(&spec.scaled(scale))),
    }
}

/// Unified outcome of one system run (Hector or baseline).
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Simulated epoch time in milliseconds (`None` on OOM).
    pub time_ms: Option<f64>,
    /// Peak device memory in bytes.
    pub peak_bytes: usize,
    /// Kernel launches.
    pub launches: usize,
    /// GEMM time, ms.
    pub gemm_ms: f64,
    /// Traversal/sparse time, ms.
    pub traversal_ms: f64,
    /// Copy/indexing time, ms.
    pub copy_ms: f64,
    /// Framework/API time, ms.
    pub other_ms: f64,
}

impl Outcome {
    /// Formats the time, or "OOM".
    #[must_use]
    pub fn fmt(&self) -> String {
        match self.time_ms {
            Some(t) => format!("{t:.2}"),
            None => "OOM".to_string(),
        }
    }
}

impl From<SystemReport> for Outcome {
    fn from(r: SystemReport) -> Outcome {
        Outcome {
            time_ms: if r.oom { None } else { Some(r.time_us / 1e3) },
            peak_bytes: r.peak_bytes,
            launches: r.launches,
            gemm_ms: r.gemm_us / 1e3,
            traversal_ms: r.traversal_us / 1e3,
            copy_ms: r.copy_us / 1e3,
            other_ms: r.other_us / 1e3,
        }
    }
}

/// Runs Hector (modeled) and returns a unified outcome.
// Drives the deprecated Session flow directly: bench tables run with
// empty bindings in modeled mode, which the handle API rejects.
#[allow(deprecated)]
#[must_use]
pub fn run_hector(
    kind: ModelKind,
    graph: &GraphData,
    dim_in: usize,
    dim_out: usize,
    opts: &CompileOptions,
    training: bool,
    config: &DeviceConfig,
) -> Outcome {
    let module =
        hector::compile_model(kind, dim_in, dim_out, &opts.clone().with_training(training));
    let mut rng = seeded_rng(12345);
    let mut params = ParamStore::init(&module.forward, graph, &mut rng);
    let mut session = Session::new(config.clone(), Mode::Modeled);
    let result = if training {
        let mut sgd = Sgd::new(0.01);
        session
            .run_training_step(&module, graph, &mut params, &Bindings::new(), &[], &mut sgd)
            .map(|(_, r)| r)
    } else {
        session
            .run_inference(&module, graph, &mut params, &Bindings::new())
            .map(|(_, r)| r)
    };
    match result {
        Ok(r) => Outcome {
            time_ms: Some(r.elapsed_us / 1e3),
            peak_bytes: r.peak_bytes,
            launches: r.launches,
            gemm_ms: r.gemm_us / 1e3,
            traversal_ms: r.traversal_us / 1e3,
            copy_ms: r.copy_us / 1e3,
            other_ms: r.fallback_us / 1e3,
        },
        Err(_) => Outcome {
            time_ms: None,
            peak_bytes: session.device().memory().peak(),
            launches: 0,
            gemm_ms: 0.0,
            traversal_ms: 0.0,
            copy_ms: 0.0,
            other_ms: 0.0,
        },
    }
}

/// Geometric mean of a slice (ignores empties by returning 0).
#[must_use]
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Prints a header banner for a harness binary.
pub fn banner(title: &str, scale: f64) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!(
        "(simulated {}; dataset scale {scale}; set HECTOR_SCALE to change)",
        DeviceConfig::rtx3090().name
    );
    println!("================================================================");
}

/// Human-readable bytes.
#[must_use]
pub fn human_bytes(b: usize) -> String {
    if b >= 1 << 30 {
        format!("{:.2} GB", b as f64 / (1u64 << 30) as f64)
    } else if b >= 1 << 20 {
        format!("{:.1} MB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.0} KB", b as f64 / 1024.0)
    }
}

pub mod json {
    //! Minimal machine-readable output for the `perf-regression` CI
    //! lane: bench targets opt in via the `HECTOR_BENCH_JSON`
    //! environment variable and append a flat JSON object of numeric
    //! metrics. No serde — the environment is offline and the format is
    //! a plain two-level map: `{"<target>": {"<row>": {"<metric>": n}}}`.

    use std::io::Write;

    /// Collects `(row, metric, value)` triples and writes them as JSON
    /// on [`JsonWriter::finish`] when `HECTOR_BENCH_JSON` is set.
    pub struct JsonWriter {
        target: String,
        path: Option<String>,
        rows: Vec<(String, Vec<(String, f64)>)>,
    }

    impl JsonWriter {
        /// A writer for one bench target; inert unless
        /// `HECTOR_BENCH_JSON` names an output path.
        #[must_use]
        pub fn from_env(target: &str) -> JsonWriter {
            JsonWriter {
                target: target.to_string(),
                path: std::env::var("HECTOR_BENCH_JSON").ok(),
                rows: Vec::new(),
            }
        }

        /// Records one row of named numeric metrics.
        pub fn record(&mut self, row: &str, metrics: &[(&str, f64)]) {
            if self.path.is_none() {
                return;
            }
            self.rows.push((
                row.to_string(),
                metrics
                    .iter()
                    .map(|(k, v)| ((*k).to_string(), *v))
                    .collect(),
            ));
        }

        /// Serialises and writes the collected metrics (no-op when the
        /// env var is unset).
        ///
        /// # Panics
        ///
        /// Panics if the output file cannot be written — in CI a silent
        /// skip would mask a broken artifact.
        pub fn finish(self) {
            let Some(path) = self.path else { return };
            let mut out = String::from("{");
            out.push_str(&format!("\"{}\":{{", self.target));
            for (i, (row, metrics)) in self.rows.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{row}\":{{"));
                for (j, (k, v)) in metrics.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let v = if v.is_finite() { *v } else { -1.0 };
                    out.push_str(&format!("\"{k}\":{v}"));
                }
                out.push('}');
            }
            out.push_str("}}\n");
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| panic!("HECTOR_BENCH_JSON={path}: {e}"));
            f.write_all(out.as_bytes())
                .unwrap_or_else(|e| panic!("HECTOR_BENCH_JSON={path}: {e}"));
        }
    }
}

pub mod alloc_counter {
    //! Counting global allocator shared by the `interp_alloc` bench
    //! target and the root `tests/interp_alloc.rs` suite (via the
    //! `hector` crate's dev-dependency on this lib), so both measure
    //! allocation *events* with the identical instrument.
    //!
    //! Each binary opts in with:
    //!
    //! ```ignore
    //! #[global_allocator]
    //! static COUNTER: CountingAlloc = CountingAlloc;
    //! ```

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Delegates to [`System`], counting every allocation event
    /// (`alloc`, `alloc_zeroed`, `realloc` — frees are not events).
    pub struct CountingAlloc;

    static ALLOC_EVENTS: AtomicUsize = AtomicUsize::new(0);

    /// Allocation events observed so far in this process.
    #[must_use]
    pub fn alloc_events() -> usize {
        ALLOC_EVENTS.load(Ordering::Relaxed)
    }

    static ARMED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

    /// Debug aid: while armed, every allocation event prints a capture
    /// backtrace to stderr (reentrant captures are suppressed).
    pub fn arm_backtrace(on: bool) {
        ARMED.store(on, Ordering::SeqCst);
    }

    fn trace_alloc() {
        thread_local! {
            static IN_HOOK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
        }
        if ARMED.load(Ordering::Relaxed) {
            IN_HOOK.with(|h| {
                if !h.get() {
                    h.set(true);
                    let bt = std::backtrace::Backtrace::force_capture();
                    eprintln!("=== alloc event ===\n{bt}");
                    h.set(false);
                }
            });
        }
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
            trace_alloc();
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
            trace_alloc();
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
            trace_alloc();
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(2048), "2 KB");
        assert!(human_bytes(5 << 20).contains("MB"));
        assert!(human_bytes(3 << 30).contains("GB"));
    }

    #[test]
    fn scaled_device_keeps_oom_shape() {
        let c = device_config(0.1);
        assert!(c.memory_capacity < DeviceConfig::rtx3090().memory_capacity);
    }

    #[test]
    fn run_hector_small_outcome() {
        let d = load_dataset("aifb", 0.01);
        let cfg = device_config(0.01);
        let o = run_hector(
            ModelKind::Rgcn,
            &d.graph,
            64,
            64,
            &CompileOptions::best(),
            false,
            &cfg,
        );
        assert!(o.time_ms.is_some());
        assert!(o.launches > 0);
    }
}
