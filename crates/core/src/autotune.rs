//! Configuration autotuning — the paper's §6 future work, made concrete.
//!
//! "The best combination of options varies across models and datasets"
//! (§4.3): the paper reports that always picking the per-run best
//! configuration would gain a further 1.02–1.33× over the fixed C+R
//! strategy, and leaves the selection algorithm to future work. Because
//! this reproduction's cost model is deterministic and cheap, exhaustive
//! search over the configuration space is practical: compile each
//! candidate, dry-run it in modeled mode, keep the fastest.

use hector_compiler::{CompileOptions, CompiledModule};
use hector_device::DeviceConfig;
use hector_ir::GemmSchedule;
use hector_models::ModelKind;
use hector_runtime::{Bindings, GraphData, Mode, ParamStore, Session, Sgd};
use hector_tensor::seeded_rng;

/// Result of an autotuning sweep.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The winning options.
    pub options: CompileOptions,
    /// Simulated time of the winner, microseconds.
    pub best_us: f64,
    /// Simulated time of the fixed C+R strategy, microseconds.
    pub fixed_best_us: f64,
    /// Every candidate evaluated: (label, simulated µs or OOM).
    pub candidates: Vec<(String, Option<f64>)>,
}

impl TuneResult {
    /// Gain of per-run selection over the fixed C+R strategy (the §4.3
    /// "presumably chooses the best configuration" factor).
    #[must_use]
    pub fn gain_over_fixed(&self) -> f64 {
        if self.best_us > 0.0 {
            self.fixed_best_us / self.best_us
        } else {
            1.0
        }
    }
}

/// The candidate space: the four optimization combinations crossed with
/// the GEMM schedule knobs of §3.4.1.
#[must_use]
pub fn candidate_space(training: bool) -> Vec<CompileOptions> {
    let mut out = Vec::new();
    for (compact, reorder) in [(false, false), (true, false), (false, true), (true, true)] {
        for tile in [16usize, 32] {
            for coarsen in [1usize, 2] {
                out.push(CompileOptions {
                    compact,
                    reorder,
                    training,
                    schedule: GemmSchedule {
                        tile,
                        coarsen,
                        launch_bounds: false,
                    },
                    ..CompileOptions::default()
                });
            }
        }
    }
    out
}

fn dry_run(
    module: &CompiledModule,
    graph: &GraphData,
    config: &DeviceConfig,
    training: bool,
) -> Option<f64> {
    let mut rng = seeded_rng(1);
    let mut params = ParamStore::init(&module.forward, graph, &mut rng);
    let mut session = Session::new(config.clone(), Mode::Modeled);
    let report = if training {
        let mut sgd = Sgd::new(0.01);
        session
            .run_training_step(module, graph, &mut params, &Bindings::new(), &[], &mut sgd)
            .ok()?
            .1
    } else {
        session
            .run_inference(module, graph, &mut params, &Bindings::new())
            .ok()?
            .1
    };
    Some(report.elapsed_us)
}

/// Exhaustively tunes a built-in model for `graph` on `config`.
///
/// Returns the winning configuration plus the full candidate trace. OOM
/// candidates are recorded but never win.
///
/// # Panics
///
/// Panics if every candidate OOMs (no viable configuration).
#[must_use]
pub fn autotune(
    kind: ModelKind,
    in_dim: usize,
    out_dim: usize,
    graph: &GraphData,
    config: &DeviceConfig,
    training: bool,
) -> TuneResult {
    let mut best: Option<(CompileOptions, f64)> = None;
    let mut candidates = Vec::new();
    for opts in candidate_space(training) {
        let module = crate::compile_model(kind, in_dim, out_dim, &opts);
        let t = dry_run(&module, graph, config, training);
        candidates.push((
            format!(
                "{} tile={} coarsen={}",
                opts.label(),
                opts.schedule.tile,
                opts.schedule.coarsen
            ),
            t,
        ));
        if let Some(us) = t {
            if best.as_ref().is_none_or(|(_, b)| us < *b) {
                best = Some((opts, us));
            }
        }
    }
    let (options, best_us) = best.expect("at least one configuration must fit");
    let fixed = crate::compile_model(
        kind,
        in_dim,
        out_dim,
        &CompileOptions::best().with_training(training),
    );
    let fixed_best_us = dry_run(&fixed, graph, config, training).unwrap_or(f64::INFINITY);
    TuneResult {
        options,
        best_us,
        fixed_best_us,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_graph::{generate, DatasetSpec};

    fn graph(ratio: f64) -> GraphData {
        GraphData::new(generate(&DatasetSpec {
            name: "tune".into(),
            num_nodes: 2_000,
            num_node_types: 3,
            num_edges: 30_000,
            num_edge_types: 8,
            compaction_ratio: ratio,
            type_skew: 1.0,
            seed: 77,
        }))
    }

    #[test]
    fn candidate_space_covers_all_option_combos() {
        let c = candidate_space(false);
        assert_eq!(c.len(), 16);
        let labels: std::collections::HashSet<&str> = c.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn autotune_never_loses_to_the_fixed_strategy() {
        let g = graph(0.3);
        let cfg = DeviceConfig::rtx3090();
        for kind in ModelKind::all() {
            let r = autotune(kind, 64, 64, &g, &cfg, false);
            assert!(
                r.gain_over_fixed() >= 1.0 - 1e-9,
                "{kind:?}: best {} vs fixed {}",
                r.best_us,
                r.fixed_best_us
            );
            assert_eq!(r.candidates.len(), 16);
        }
    }

    #[test]
    fn low_ratio_graphs_tune_to_compaction() {
        let g = graph(0.15);
        let cfg = DeviceConfig::rtx3090();
        let r = autotune(ModelKind::Rgat, 64, 64, &g, &cfg, false);
        assert!(r.options.compact, "ratio 0.15 should pick compaction");
    }

    #[test]
    fn training_tuning_works() {
        let g = graph(0.5);
        let cfg = DeviceConfig::rtx3090();
        let r = autotune(ModelKind::Rgcn, 32, 32, &g, &cfg, true);
        assert!(r.best_us > 0.0);
        assert!(r.options.training);
    }
}
