//! Configuration autotuning — the paper's §6 future work, made concrete.
//!
//! "The best combination of options varies across models and datasets"
//! (§4.3): the paper reports that always picking the per-run best
//! configuration would gain a further 1.02–1.33× over the fixed C+R
//! strategy, and leaves the selection algorithm to future work. Because
//! this reproduction's cost model is deterministic and cheap, exhaustive
//! search over the configuration space is practical: compile each
//! candidate, dry-run it in modeled mode, keep the fastest.

use hector_compiler::CompileOptions;
use hector_device::DeviceConfig;
use hector_ir::GemmSchedule;
use hector_models::ModelKind;
use hector_runtime::{EngineBuilder, GraphData, Mode, ParallelConfig, Sgd};

/// Result of an autotuning sweep.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The winning options.
    pub options: CompileOptions,
    /// Simulated time of the winner, microseconds.
    pub best_us: f64,
    /// Simulated time of the fixed C+R strategy, microseconds.
    pub fixed_best_us: f64,
    /// Every candidate evaluated: (label, simulated µs or OOM).
    pub candidates: Vec<(String, Option<f64>)>,
}

impl TuneResult {
    /// Gain of per-run selection over the fixed C+R strategy (the §4.3
    /// "presumably chooses the best configuration" factor).
    #[must_use]
    pub fn gain_over_fixed(&self) -> f64 {
        if self.best_us > 0.0 {
            self.fixed_best_us / self.best_us
        } else {
            1.0
        }
    }
}

/// The candidate space: the four optimization combinations crossed with
/// the GEMM schedule knobs of §3.4.1.
#[must_use]
pub fn candidate_space(training: bool) -> Vec<CompileOptions> {
    let mut out = Vec::new();
    for (compact, reorder) in [(false, false), (true, false), (false, true), (true, true)] {
        for tile in [16usize, 32] {
            for coarsen in [1usize, 2] {
                out.push(CompileOptions {
                    compact,
                    reorder,
                    training,
                    schedule: GemmSchedule {
                        tile,
                        coarsen,
                        launch_bounds: false,
                    },
                    ..CompileOptions::default()
                });
            }
        }
    }
    out
}

/// Builds a modeled-mode engine for one candidate and dry-runs it.
/// Candidate modules flow through the process-wide `ModuleCache`, so
/// re-tuning the same model (or tuning after a normal run) recompiles
/// nothing.
fn dry_run(
    kind: ModelKind,
    in_dim: usize,
    out_dim: usize,
    opts: &CompileOptions,
    graph: &GraphData,
    config: &DeviceConfig,
    training: bool,
) -> Option<f64> {
    let builder = EngineBuilder::new(kind)
        .dims(in_dim, out_dim)
        .options(opts.clone())
        .device(config.clone())
        .mode(Mode::Modeled)
        .seed(1);
    let report = if training {
        let mut trainer = builder.build_trainer(Sgd::new(0.01)).ok()?;
        trainer.bind(graph).ok()?;
        trainer.step().ok()?
    } else {
        let mut engine = builder.build().ok()?;
        engine.bind(graph).ok()?.forward().ok()?
    };
    Some(report.elapsed_us)
}

/// Exhaustively tunes a built-in model for `graph` on `config`.
///
/// Returns the winning configuration plus the full candidate trace. OOM
/// candidates are recorded but never win.
///
/// # Panics
///
/// Panics if every candidate OOMs (no viable configuration).
#[must_use]
pub fn autotune(
    kind: ModelKind,
    in_dim: usize,
    out_dim: usize,
    graph: &GraphData,
    config: &DeviceConfig,
    training: bool,
) -> TuneResult {
    let mut best: Option<(CompileOptions, f64)> = None;
    let mut candidates = Vec::new();
    for opts in candidate_space(training) {
        let t = dry_run(kind, in_dim, out_dim, &opts, graph, config, training);
        candidates.push((
            format!(
                "{} tile={} coarsen={}",
                opts.label(),
                opts.schedule.tile,
                opts.schedule.coarsen
            ),
            t,
        ));
        if let Some(us) = t {
            if best.as_ref().is_none_or(|(_, b)| us < *b) {
                best = Some((opts, us));
            }
        }
    }
    let (options, best_us) = best.expect("at least one configuration must fit");
    let fixed = CompileOptions::best().with_training(training);
    let fixed_best_us =
        dry_run(kind, in_dim, out_dim, &fixed, graph, config, training).unwrap_or(f64::INFINITY);
    TuneResult {
        options,
        best_us,
        fixed_best_us,
        candidates,
    }
}

/// Result of a thread-count sweep over the real-mode executor.
#[derive(Clone, Debug)]
pub struct ThreadTuneResult {
    /// The fastest thread count measured.
    pub best_threads: usize,
    /// Host wall-clock microseconds at the winning thread count.
    pub best_wall_us: f64,
    /// Every `(num_threads, wall µs)` sample, in sweep order.
    pub samples: Vec<(usize, f64)>,
}

impl ThreadTuneResult {
    /// Speedup of the winner over the 1-thread sample (1.0 when the
    /// sweep did not include 1 thread).
    #[must_use]
    pub fn speedup_over_sequential(&self) -> f64 {
        let seq = self
            .samples
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, us)| *us);
        match seq {
            Some(us) if self.best_wall_us > 0.0 => us / self.best_wall_us,
            _ => 1.0,
        }
    }
}

/// The thread-count axis of the tuning space: unlike the option/schedule
/// axes, which are scored by the deterministic *simulated* cost model,
/// thread count only affects *host* wall-clock time of the real-mode
/// interpreter (the parallel executor is bit-deterministic, so the
/// simulated timings are identical across thread counts). This sweep
/// therefore runs each candidate for real and measures the host clock —
/// one discarded warm-up, then best-of-2 inferences (or training steps)
/// per thread count; lowest wall time wins.
///
/// # Panics
///
/// Panics if `thread_counts` is empty.
#[must_use]
pub fn autotune_threads(
    kind: ModelKind,
    in_dim: usize,
    out_dim: usize,
    graph: &GraphData,
    config: &DeviceConfig,
    training: bool,
    thread_counts: &[usize],
) -> ThreadTuneResult {
    assert!(
        !thread_counts.is_empty(),
        "thread sweep needs at least one candidate"
    );
    let opts = CompileOptions::best().with_training(training);
    let classes = out_dim.max(2);
    // One engine per thread count; the module itself compiles once for
    // the whole sweep (every engine after the first is a ModuleCache
    // hit — the cache is what makes a ten-engine sweep cheap).
    let run = |threads: usize| -> f64 {
        let par = ParallelConfig::from_env().with_threads(threads);
        let builder = EngineBuilder::new(kind)
            .dims(in_dim, out_dim)
            .options(opts.clone())
            .device(config.clone())
            .parallel(par)
            .classes(classes)
            .seed(1);
        if training {
            let mut trainer = builder
                .build_trainer(Sgd::new(0.01))
                .expect("thread sweep uses a valid builder");
            trainer.bind(graph).expect("thread sweep graph is valid");
            let start = std::time::Instant::now();
            trainer
                .step()
                .expect("thread sweep must fit in device memory");
            start.elapsed().as_secs_f64() * 1e6
        } else {
            let mut engine = builder.build().expect("thread sweep uses a valid builder");
            let mut bound = engine.bind(graph).expect("thread sweep graph is valid");
            let start = std::time::Instant::now();
            bound
                .forward()
                .expect("thread sweep must fit in device memory");
            start.elapsed().as_secs_f64() * 1e6
        }
    };
    // One discarded warm-up absorbs process-wide first-touch costs
    // (page faults, allocator growth, cold code) so they don't inflate
    // the first candidate; best-of-2 per candidate damps scheduler
    // noise. The runs themselves are bit-deterministic, so repetition
    // only affects the clock, never the numerics.
    run(thread_counts[0]);
    let mut samples = Vec::with_capacity(thread_counts.len());
    for &threads in thread_counts {
        samples.push((threads, run(threads).min(run(threads))));
    }
    let (best_threads, best_wall_us) = samples
        .iter()
        .copied()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty sweep");
    ThreadTuneResult {
        best_threads,
        best_wall_us,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_graph::{generate, DatasetSpec};

    fn graph(ratio: f64) -> GraphData {
        GraphData::new(generate(&DatasetSpec {
            name: "tune".into(),
            num_nodes: 2_000,
            num_node_types: 3,
            num_edges: 30_000,
            num_edge_types: 8,
            compaction_ratio: ratio,
            type_skew: 1.0,
            seed: 77,
        }))
    }

    #[test]
    fn candidate_space_covers_all_option_combos() {
        let c = candidate_space(false);
        assert_eq!(c.len(), 16);
        let labels: std::collections::HashSet<&str> = c.iter().map(|o| o.label()).collect();
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn autotune_never_loses_to_the_fixed_strategy() {
        let g = graph(0.3);
        let cfg = DeviceConfig::rtx3090();
        for kind in ModelKind::all() {
            let r = autotune(kind, 64, 64, &g, &cfg, false);
            assert!(
                r.gain_over_fixed() >= 1.0 - 1e-9,
                "{kind:?}: best {} vs fixed {}",
                r.best_us,
                r.fixed_best_us
            );
            assert_eq!(r.candidates.len(), 16);
        }
    }

    #[test]
    fn low_ratio_graphs_tune_to_compaction() {
        let g = graph(0.15);
        let cfg = DeviceConfig::rtx3090();
        let r = autotune(ModelKind::Rgat, 64, 64, &g, &cfg, false);
        assert!(r.options.compact, "ratio 0.15 should pick compaction");
    }

    #[test]
    fn thread_sweep_samples_every_candidate() {
        let g = graph(0.5);
        let cfg = DeviceConfig::rtx3090();
        let r = autotune_threads(ModelKind::Rgcn, 16, 16, &g, &cfg, false, &[1, 2, 4]);
        assert_eq!(r.samples.len(), 3);
        assert!(r.samples.iter().any(|(t, _)| *t == r.best_threads));
        assert!(r.samples.iter().all(|(_, us)| *us > 0.0));
        assert!([1, 2, 4].contains(&r.best_threads));
        assert!(r.speedup_over_sequential() > 0.0);
    }

    #[test]
    fn thread_sweep_supports_training() {
        let g = graph(0.5);
        let cfg = DeviceConfig::rtx3090();
        let r = autotune_threads(ModelKind::Rgcn, 8, 8, &g, &cfg, true, &[1, 2]);
        assert_eq!(r.samples.len(), 2);
        assert!(r.best_wall_us > 0.0);
    }

    #[test]
    fn training_tuning_works() {
        let g = graph(0.5);
        let cfg = DeviceConfig::rtx3090();
        let r = autotune(ModelKind::Rgcn, 32, 32, &g, &cfg, true);
        assert!(r.best_us > 0.0);
        assert!(r.options.training);
    }
}
