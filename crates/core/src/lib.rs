//! # Hector
//!
//! A programming and compilation framework for relational graph neural
//! networks (RGNNs) — a Rust reproduction of *"Hector: An Efficient
//! Programming and Compilation Framework for Implementing Relational
//! Graph Neural Networks in GPU Architectures"* (Wu et al., ASPLOS 2024).
//!
//! Hector compiles concise RGNN model definitions (RGCN, RGAT, HGT, or
//! your own, written in a small builder DSL) through a two-level IR into
//! kernel specifications derived from two templates — a **GEMM template**
//! with flexible gather/scatter access schemes and a **node/edge
//! traversal template** — plus CUDA-like source text. Kernels execute on
//! a simulated GPU: functionally on the CPU for exact numerics, or in a
//! cost-model-only mode that reproduces the paper's timing, memory, and
//! out-of-memory behaviour at full dataset scale.
//!
//! Two optimizations from the paper are implemented as IR passes:
//! **compact materialization** (§3.2.2) and **linear operator
//! reordering** (§3.2.3), toggled via [`CompileOptions`].
//!
//! ## Quickstart
//!
//! The one-call lifecycle: an [`EngineBuilder`] assembles model,
//! dimensions, options, device, and seed into an [`Engine`] (compilation
//! goes through the process-wide [`ModuleCache`], so identical engines
//! compile once per process); `bind` a graph, then run.
//!
//! ```
//! use hector::prelude::*;
//!
//! # fn main() -> Result<(), HectorError> {
//! // 1. A heterogeneous graph (here: a scaled-down AIFB).
//! let spec = hector::datasets::aifb().scaled(0.01);
//! let graph = GraphData::new(hector::generate(&spec));
//!
//! // 2-3. Compile RGAT with both optimizations (cached process-wide)
//! //      and run inference on the simulated RTX 3090. Every fallible
//! //      step reports misuse or exhaustion as a `HectorError`.
//! let mut engine = EngineBuilder::new(ModelKind::Rgat)
//!     .dims(32, 32)
//!     .options(CompileOptions::best())
//!     .seed(0)
//!     .build()?;
//! let mut bound = engine.bind(&graph)?;
//! let report = bound.forward()?;
//! assert!(report.elapsed_us > 0.0);
//! assert_eq!(bound.output().rows(), graph.graph().num_nodes());
//!
//! // Training is one more call: wrap the engine with an optimizer.
//! let mut trainer = EngineBuilder::new(ModelKind::Rgcn)
//!     .dims(16, 16)
//!     .seed(1)
//!     .build_trainer(Adam::new(0.01))?;
//! trainer.bind(&graph)?;
//! let epoch = trainer.epoch(3)?;
//! assert_eq!(epoch.losses.len(), 3);
//! # Ok(()) }
//! ```
//!
//! ## Errors
//!
//! Every fallible entry point of the handle API — [`EngineBuilder::build`],
//! [`Engine::bind`], [`Bound::forward`], [`Trainer::step`], and friends —
//! returns [`Result`]`<_, `[`HectorError`]`>`. Caller misuse (an unbound
//! engine, a misshapen binding, an unknown backend, a zero-thread
//! configuration) is reported as a typed, matchable error rather than a
//! panic; panics are reserved for internal invariant violations.
//!
//! ## Low-level API
//!
//! The pieces the handles assemble remain public for callers that need
//! manual control — custom parameter initialisation, hand-built input
//! bindings, owned output stores:
//!
//! ```
//! use hector::prelude::*;
//!
//! let spec = hector::datasets::aifb().scaled(0.01);
//! let graph = GraphData::new(hector::generate(&spec));
//! let module = hector::compile_model_cached(ModelKind::Rgat, 32, 32, &CompileOptions::best());
//! let mut rng = seeded_rng(0);
//! let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
//! let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
//! let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
//! let (outputs, report) = session
//!     .forward(&module, &graph, &mut params, &bindings)
//!     .expect("fits in 24 GB");
//! assert!(report.elapsed_us > 0.0);
//! let h_out = outputs.tensor(module.forward.outputs[0]);
//! assert_eq!(h_out.rows(), graph.graph().num_nodes());
//! ```

#![warn(missing_docs)]

use std::sync::Arc;

pub mod autotune;

pub use autotune::{autotune, autotune_threads, ThreadTuneResult, TuneResult};
pub use hector_baselines as baselines;
pub use hector_compiler::{
    compile, compile_cached, source_fingerprint, CompileOptions, CompiledModule, GeneratedCode,
    ModuleCache,
};
pub use hector_device::{
    BackendStats, Device, DeviceConfig, ModuleCacheStats, SamplerStats, ScratchStats,
};
pub use hector_graph::{
    datasets, generate, DatasetSpec, GraphStats, HeteroGraph, HeteroGraphBuilder, NeighborSampler,
    SampledBatch, SamplerConfig, Subgraph,
};
pub use hector_ir::{builder::ModelSource, ModelBuilder};
pub use hector_models::{source as model_source, stacked, ModelKind};
pub use hector_runtime::{
    chunk_ranges, trace, Backend, BackendCaps, BackendKind, Batch, Bindings, Bound, Engine,
    EngineBuilder, EpochReport, ExecPlan, GraphData, HectorError, Minibatches, Mode,
    ParallelConfig, ParamStore, ProfileReport, RunReport, Session, TraceConfig, Trainer,
};
pub use hector_serve as serve;
pub use hector_shard as shard;
pub use hector_shard::{
    BindSharded, DeltaBatch, DeltaOutcome, GreedyEdgeCut, HashPartitioner, Partitioner,
    RangePartitioner, ShardConfig, ShardedEngine, ShardedGraph,
};

/// Compiles one of the built-in models (RGCN / RGAT / HGT).
///
/// **Low-level shim**: delegates to the process-wide [`ModuleCache`] and
/// clones the cached module out (the historical owned-module signature).
/// Prefer [`compile_model_cached`] for a shared handle, or
/// [`EngineBuilder`] for the full lifecycle. Note the cache retains one
/// entry per distinct `(kind, dims, options)` key for the life of the
/// process (that is the point — sweeps recompile nothing);
/// [`ModuleCache::clear`] releases them.
#[deprecated(
    since = "0.1.0",
    note = "use compile_model_cached for a shared handle, or EngineBuilder for the full lifecycle"
)]
#[must_use]
pub fn compile_model(
    kind: ModelKind,
    in_dim: usize,
    out_dim: usize,
    options: &CompileOptions,
) -> CompiledModule {
    (*compile_model_cached(kind, in_dim, out_dim, options)).clone()
}

/// Compiles one of the built-in models through the process-wide
/// [`ModuleCache`], returning the shared handle: repeated calls with
/// the same `(kind, dims, options)` compile once per process.
#[must_use]
pub fn compile_model_cached(
    kind: ModelKind,
    in_dim: usize,
    out_dim: usize,
    options: &CompileOptions,
) -> Arc<CompiledModule> {
    compile_cached(&hector_models::source(kind, in_dim, out_dim), options)
}

/// Convenience prelude with the types most applications need.
pub mod prelude {
    pub use hector_compiler::{CompileOptions, CompiledModule, ModuleCache};
    pub use hector_device::DeviceConfig;
    pub use hector_graph::{DatasetSpec, GraphStats, HeteroGraphBuilder, SamplerConfig};
    pub use hector_ir::ModelBuilder;
    pub use hector_models::ModelKind;
    pub use hector_runtime::{
        Adam, BackendKind, Batch, Bindings, Bound, Engine, EngineBuilder, EpochReport, GraphData,
        HectorError, Minibatches, Mode, Optimizer, ParallelConfig, ParamStore, ProfileReport,
        Session, Sgd, TraceConfig, Trainer,
    };
    pub use hector_tensor::{seeded_rng, Tensor};
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim's behaviour stays pinned until removal

    use super::*;

    #[test]
    fn compile_model_produces_kernels_for_all_models() {
        for kind in ModelKind::all() {
            let m = compile_model(kind, 16, 16, &CompileOptions::best());
            assert!(!m.fw_kernels.is_empty(), "{kind:?} produced no kernels");
        }
    }

    #[test]
    fn compile_model_shim_matches_cached_module() {
        let owned = compile_model(ModelKind::Rgcn, 12, 12, &CompileOptions::unopt());
        let shared = compile_model_cached(ModelKind::Rgcn, 12, 12, &CompileOptions::unopt());
        assert_eq!(owned.forward, shared.forward);
        assert_eq!(owned.code.kernels, shared.code.kernels);
    }
}
