//! # Hector
//!
//! A programming and compilation framework for relational graph neural
//! networks (RGNNs) — a Rust reproduction of *"Hector: An Efficient
//! Programming and Compilation Framework for Implementing Relational
//! Graph Neural Networks in GPU Architectures"* (Wu et al., ASPLOS 2024).
//!
//! Hector compiles concise RGNN model definitions (RGCN, RGAT, HGT, or
//! your own, written in a small builder DSL) through a two-level IR into
//! kernel specifications derived from two templates — a **GEMM template**
//! with flexible gather/scatter access schemes and a **node/edge
//! traversal template** — plus CUDA-like source text. Kernels execute on
//! a simulated GPU: functionally on the CPU for exact numerics, or in a
//! cost-model-only mode that reproduces the paper's timing, memory, and
//! out-of-memory behaviour at full dataset scale.
//!
//! Two optimizations from the paper are implemented as IR passes:
//! **compact materialization** (§3.2.2) and **linear operator
//! reordering** (§3.2.3), toggled via [`CompileOptions`].
//!
//! ## Quickstart
//!
//! ```
//! use hector::prelude::*;
//!
//! // 1. A heterogeneous graph (here: a scaled-down AIFB).
//! let spec = hector::datasets::aifb().scaled(0.01);
//! let graph = GraphData::new(hector::generate(&spec));
//!
//! // 2. Compile RGAT with both optimizations.
//! let module = hector::compile_model(ModelKind::Rgat, 32, 32, &CompileOptions::best());
//!
//! // 3. Run inference on the simulated RTX 3090.
//! let mut rng = seeded_rng(0);
//! let mut params = ParamStore::init(&module.forward, &graph, &mut rng);
//! let bindings = Bindings::standard(&module.forward, &graph, &mut rng);
//! let mut session = Session::new(DeviceConfig::rtx3090(), Mode::Real);
//! let (outputs, report) = session
//!     .run_inference(&module, &graph, &mut params, &bindings)
//!     .expect("fits in 24 GB");
//! assert!(report.elapsed_us > 0.0);
//! let h_out = outputs.tensor(module.forward.outputs[0]);
//! assert_eq!(h_out.rows(), graph.graph().num_nodes());
//! ```

#![warn(missing_docs)]

pub mod autotune;

pub use autotune::{autotune, autotune_threads, ThreadTuneResult, TuneResult};
pub use hector_baselines as baselines;
pub use hector_compiler::{compile, CompileOptions, CompiledModule, GeneratedCode};
pub use hector_device::{Device, DeviceConfig, ScratchStats};
pub use hector_graph::{
    datasets, generate, DatasetSpec, GraphStats, HeteroGraph, HeteroGraphBuilder,
};
pub use hector_ir::{builder::ModelSource, ModelBuilder};
pub use hector_models::{source as model_source, ModelKind};
pub use hector_runtime::{
    Bindings, GraphData, Mode, ParallelConfig, ParamStore, RunReport, Session,
};

/// Compiles one of the built-in models (RGCN / RGAT / HGT).
#[must_use]
pub fn compile_model(
    kind: ModelKind,
    in_dim: usize,
    out_dim: usize,
    options: &CompileOptions,
) -> CompiledModule {
    compile(&hector_models::source(kind, in_dim, out_dim), options)
}

/// Convenience prelude with the types most applications need.
pub mod prelude {
    pub use hector_compiler::{CompileOptions, CompiledModule};
    pub use hector_device::DeviceConfig;
    pub use hector_graph::{DatasetSpec, GraphStats, HeteroGraphBuilder};
    pub use hector_ir::ModelBuilder;
    pub use hector_models::ModelKind;
    pub use hector_runtime::{
        Adam, Bindings, GraphData, Mode, Optimizer, ParallelConfig, ParamStore, Session, Sgd,
    };
    pub use hector_tensor::{seeded_rng, Tensor};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_model_produces_kernels_for_all_models() {
        for kind in ModelKind::all() {
            let m = compile_model(kind, 16, 16, &CompileOptions::best());
            assert!(!m.fw_kernels.is_empty(), "{kind:?} produced no kernels");
        }
    }
}
