//! Minimal vendored HTTP/1.1 front end over `std::net::TcpListener`.
//!
//! The serving core is the in-process [`ServeHandle`]
//! API; this module adds just enough wire protocol for out-of-process
//! callers and smoke tools — one acceptor thread handing connections to
//! a small worker pool, GET-only routing, hand-rolled JSON. No async
//! runtime, no external dependencies.
//!
//! Routes:
//!
//! * `GET /healthz` — liveness probe, `200 ok`.
//! * `GET /stats` — per-deployment serving counters as JSON.
//! * `GET /infer/<deployment>/<node>` — single-node inference; the
//!   response carries the output row, serving engine version, and the
//!   coalescing factor of the traversal that served it.
//!
//! Serving-policy outcomes map onto status codes: shed load is `503`
//! with a `Retry-After` header, queue expiry is `504`, an unknown
//! deployment is `404`, malformed requests are `400`, and engine errors
//! are `500` with the [`HectorError`](hector_runtime::HectorError)
//! rendered in the body.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::{ServeError, ServeHandle};

struct ConnQueue {
    conns: Mutex<Vec<TcpStream>>,
    cv: Condvar,
}

/// A running HTTP front end bound to a local address.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and
    /// serves requests against `handle` with one acceptor plus
    /// `workers` request threads.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(handle: ServeHandle, addr: &str, workers: usize) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue {
            conns: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        });

        let mut threads = Vec::new();
        {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            threads.push(
                std::thread::Builder::new()
                    .name("hector-serve-accept".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            match listener.accept() {
                                Ok((conn, _)) => {
                                    queue.conns.lock().expect("conn lock").push(conn);
                                    queue.cv.notify_one();
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                    std::thread::sleep(Duration::from_millis(2));
                                }
                                Err(_) => break,
                            }
                        }
                        queue.cv.notify_all();
                    })
                    .expect("spawn acceptor"),
            );
        }
        for i in 0..workers.max(1) {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            let handle = handle.clone();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("hector-serve-http-{i}"))
                    .spawn(move || loop {
                        let conn = {
                            let mut g = queue.conns.lock().expect("conn lock");
                            loop {
                                if let Some(c) = g.pop() {
                                    break c;
                                }
                                if stop.load(Ordering::SeqCst) {
                                    return;
                                }
                                let (guard, _) = queue
                                    .cv
                                    .wait_timeout(g, Duration::from_millis(20))
                                    .expect("conn lock");
                                g = guard;
                            }
                        };
                        let _ = serve_connection(conn, &handle);
                    })
                    .expect("spawn http worker"),
            );
        }
        Ok(HttpServer {
            addr,
            stop,
            threads,
        })
    }

    /// The bound local address (resolved port for `:0` binds).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and workers; in-progress responses finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn serve_connection(conn: TcpStream, handle: &ServeHandle) -> std::io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(conn.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers; the API is GET-only so bodies are ignored.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, headers, body) = if method != "GET" {
        (405, Vec::new(), "{\"error\":\"GET only\"}\n".to_string())
    } else {
        route(path, handle)
    };
    respond(conn, status, &headers, &body)
}

fn route(path: &str, handle: &ServeHandle) -> (u16, Vec<String>, String) {
    match path {
        "/healthz" => (200, Vec::new(), "ok\n".to_string()),
        "/stats" => (200, Vec::new(), stats_json(handle)),
        _ => {
            let Some(rest) = path.strip_prefix("/infer/") else {
                return (404, Vec::new(), "{\"error\":\"no such route\"}\n".into());
            };
            let Some((dep, node)) = rest.rsplit_once('/') else {
                return (
                    400,
                    Vec::new(),
                    "{\"error\":\"use /infer/<deployment>/<node>\"}\n".into(),
                );
            };
            let Ok(node) = node.parse::<usize>() else {
                return (
                    400,
                    Vec::new(),
                    "{\"error\":\"node must be an integer\"}\n".into(),
                );
            };
            match handle.submit(dep, node).map(crate::Ticket::wait) {
                Ok(Ok(resp)) => {
                    let row: Vec<String> = resp.rows[0].iter().map(|v| format!("{v}")).collect();
                    (
                        200,
                        Vec::new(),
                        format!(
                            "{{\"deployment\":\"{dep}\",\"node\":{node},\"version\":{},\"coalesced\":{},\"row\":[{}]}}\n",
                            resp.version,
                            resp.coalesced,
                            row.join(",")
                        ),
                    )
                }
                Ok(Err(e)) | Err(e) => error_response(&e),
            }
        }
    }
}

fn error_response(e: &ServeError) -> (u16, Vec<String>, String) {
    let (status, headers) = match e {
        ServeError::UnknownDeployment(_) => (404, Vec::new()),
        ServeError::BadRequest(_) => (400, Vec::new()),
        ServeError::Overloaded { retry_after } => {
            let secs = retry_after.as_secs_f64().ceil().max(1.0) as u64;
            (503, vec![format!("Retry-After: {secs}")])
        }
        ServeError::Timeout => (504, Vec::new()),
        ServeError::ShuttingDown => (503, vec!["Retry-After: 1".to_string()]),
        ServeError::Hector(_) => (500, Vec::new()),
    };
    (status, headers, format!("{{\"error\":\"{e}\"}}\n"))
}

fn stats_json(handle: &ServeHandle) -> String {
    let mut out = String::from("{");
    for (i, name) in handle.deployments().iter().enumerate() {
        let Some(s) = handle.stats(name) else {
            continue;
        };
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"submitted\":{},\"completed\":{},\"shed\":{},\"timed_out\":{},\"failed\":{},\"forwards\":{},\"coalesced_requests\":{},\"coalescing_factor\":{:.3},\"swaps\":{},\"version\":{}}}",
            s.submitted,
            s.completed,
            s.shed,
            s.timed_out,
            s.failed,
            s.forwards,
            s.coalesced_requests,
            s.coalescing_factor(),
            s.swaps,
            s.version
        ));
    }
    out.push_str("}\n");
    out
}

fn respond(
    mut conn: TcpStream,
    status: u16,
    headers: &[String],
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len()
    );
    for h in headers {
        head.push_str(h);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    conn.write_all(head.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use hector_graph::{generate, DatasetSpec};
    use hector_models::ModelKind;
    use hector_runtime::{EngineBuilder, GraphData, Mode};

    fn get(addr: SocketAddr, path: &str) -> (u16, String, String) {
        let mut conn = TcpStream::connect(addr).expect("connect");
        write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reader = BufReader::new(conn);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap()
            .parse()
            .unwrap();
        let mut headers = String::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 || line == "\r\n" {
                break;
            }
            headers.push_str(&line);
        }
        let mut body = String::new();
        std::io::Read::read_to_string(&mut reader, &mut body).unwrap();
        (status, headers, body)
    }

    fn server() -> (ServeHandle, HttpServer) {
        let srv = ServeHandle::start(ServeConfig::default().with_workers(1));
        let g = GraphData::new(generate(&DatasetSpec {
            name: "http_unit".into(),
            num_nodes: 40,
            num_node_types: 2,
            num_edges: 160,
            num_edge_types: 3,
            compaction_ratio: 0.5,
            type_skew: 1.0,
            seed: 5,
        }));
        let b = EngineBuilder::new(ModelKind::Rgcn)
            .dims(4, 4)
            .mode(Mode::Real)
            .seed(3);
        srv.deploy("m", b, &g).unwrap();
        let http = HttpServer::start(srv.clone(), "127.0.0.1:0", 2).expect("bind");
        (srv, http)
    }

    #[test]
    fn healthz_stats_and_infer_roundtrip() {
        let (srv, http) = server();
        let (status, _, body) = get(http.addr(), "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        let (status, _, body) = get(http.addr(), "/infer/m/7");
        assert_eq!(status, 200);
        assert!(body.contains("\"version\":1"), "{body}");
        assert!(body.contains("\"row\":["), "{body}");
        let (status, _, body) = get(http.addr(), "/stats");
        assert_eq!(status, 200);
        assert!(body.contains("\"completed\":1"), "{body}");
        http.shutdown();
        srv.shutdown();
    }

    #[test]
    fn error_statuses_map_onto_serving_outcomes() {
        let (srv, http) = server();
        let (status, _, _) = get(http.addr(), "/infer/ghost/0");
        assert_eq!(status, 404);
        let (status, _, _) = get(http.addr(), "/infer/m/99999");
        assert_eq!(status, 400);
        let (status, _, _) = get(http.addr(), "/infer/m/not_a_number");
        assert_eq!(status, 400);
        let (status, _, _) = get(http.addr(), "/nope");
        assert_eq!(status, 404);
        http.shutdown();
        srv.shutdown();
    }

    #[test]
    fn overload_maps_to_503_with_retry_after() {
        let srv = ServeHandle::start(
            ServeConfig::default()
                .with_queue_capacity(1)
                .with_workers(1),
        );
        let g = GraphData::new(generate(&DatasetSpec {
            name: "http_unit_503".into(),
            num_nodes: 16,
            num_node_types: 2,
            num_edges: 64,
            num_edge_types: 2,
            compaction_ratio: 0.5,
            type_skew: 1.0,
            seed: 6,
        }));
        let b = EngineBuilder::new(ModelKind::Rgcn)
            .dims(4, 4)
            .mode(Mode::Real)
            .seed(3);
        srv.deploy("m", b, &g).unwrap();
        srv.pause();
        let _fill = srv.submit("m", 0).unwrap();
        let http = HttpServer::start(srv.clone(), "127.0.0.1:0", 1).expect("bind");
        let (status, headers, _) = get(http.addr(), "/infer/m/1");
        assert_eq!(status, 503);
        assert!(headers.contains("Retry-After:"), "{headers}");
        srv.resume();
        http.shutdown();
        srv.shutdown();
    }
}
