//! # hector-serve
//!
//! A long-lived, multi-tenant inference server on the
//! [`Engine`] substrate: N models × M graphs
//! stay resident as bound engine handles (compilation deduplicated by
//! the process-wide `ModuleCache`), concurrent callers submit
//! single-node or multi-node inference requests through a bounded
//! queue, and a dispatcher **coalesces** every pending request for the
//! same deployment into one batched graph traversal per tick — k
//! requests cost one `Engine::forward`, not k.
//!
//! ```text
//!   submit()──►[ bounded queue ]──►dispatcher──►┌─────────────────┐
//!   submit()──►   (load-shed /       (tick)     │ coalesce by     │
//!   submit()──►    timeout)                     │ deployment      │
//!                                               └──┬───────┬──────┘
//!                                          hector-par scope (groups
//!                                          execute concurrently)
//!                                               ┌──▼───┐ ┌──▼───┐
//!                                               │engine│ │engine│ ...
//!                                               └──┬───┘ └──┬───┘
//!                                    one forward per group; rows are
//!                                    scattered back to each ticket
//! ```
//!
//! Design points, in paper terms: the engines' kernels and run plans
//! are exactly the ones the compiler produced — serving adds *no* new
//! numeric path, so a coalesced response is bit-identical to a
//! standalone `Engine::forward` of the same deployment (the
//! `tests/serve.rs` suite pins this against a sequential oracle at
//! every thread count). Hot model/graph swap builds the replacement
//! engine off to the side and replaces the resident one atomically
//! under the deployment lock, so in-flight requests either run on the
//! old engine or the new one — never on neither.
//!
//! The crate is deliberately std-only (no async runtime): the public
//! in-process API is [`ServeHandle::submit`] / [`ServeHandle::submit_batch`],
//! and [`http`] adds a minimal vendored HTTP/1.1 front end over
//! `std::net::TcpListener` for out-of-process callers.

#![warn(missing_docs)]

pub mod http;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use hector_par::ThreadPool;
use hector_runtime::{Engine, EngineBuilder, GraphData, HectorError};
use hector_shard::{DeltaBatch, ShardedGraph};
use hector_trace::{self as trace, SpanCat};

// The dispatcher moves engines across threads inside deployment locks.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Engine>();
};

/// Errors surfaced by the serving layer.
///
/// Engine-level misuse or exhaustion arrives wrapped in
/// [`ServeError::Hector`]; everything else is a serving-policy outcome
/// (shed load, expiry, lifecycle).
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// No deployment with this name is registered.
    UnknownDeployment(String),
    /// The request queue is full; retry after the embedded hint.
    Overloaded {
        /// Suggested client backoff before retrying.
        retry_after: Duration,
    },
    /// The request expired in the queue before a dispatch tick served it.
    Timeout,
    /// The server is shutting down; the request was not executed.
    ShuttingDown,
    /// Malformed request (out-of-range node id, duplicate deployment, …).
    BadRequest(String),
    /// The underlying engine reported an error.
    Hector(HectorError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownDeployment(name) => write!(f, "unknown deployment '{name}'"),
            ServeError::Overloaded { retry_after } => write!(
                f,
                "request queue is full; retry after {} ms",
                retry_after.as_millis()
            ),
            ServeError::Timeout => write!(f, "request timed out in the queue"),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::BadRequest(detail) => write!(f, "bad request: {detail}"),
            ServeError::Hector(e) => write!(f, "engine error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Hector(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HectorError> for ServeError {
    fn from(e: HectorError) -> ServeError {
        ServeError::Hector(e)
    }
}

/// Server configuration. All knobs have serving-sane defaults; override
/// with the `with_*` builders.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Maximum queued requests before [`ServeHandle::submit`] sheds load.
    pub queue_capacity: usize,
    /// Maximum requests folded into one traversal per deployment per
    /// tick. `1` disables coalescing (the naive baseline the
    /// `serve_throughput` bench compares against).
    pub max_coalesce: usize,
    /// Queue-residency budget per request; exceeded ⇒ [`ServeError::Timeout`].
    pub default_timeout: Duration,
    /// Backoff hint embedded in [`ServeError::Overloaded`] rejections.
    pub retry_after: Duration,
    /// Dispatcher-side worker threads executing deployment groups
    /// concurrently (1 ⇒ groups run inline on the dispatcher thread).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 1024,
            max_coalesce: 64,
            default_timeout: Duration::from_secs(5),
            retry_after: Duration::from_millis(25),
            workers: hector_par::ParallelConfig::from_env().num_threads,
        }
    }
}

impl ServeConfig {
    /// Sets the bounded queue capacity (clamped to ≥ 1).
    #[must_use]
    pub fn with_queue_capacity(mut self, n: usize) -> ServeConfig {
        self.queue_capacity = n.max(1);
        self
    }

    /// Sets the per-tick coalescing cap (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_coalesce(mut self, n: usize) -> ServeConfig {
        self.max_coalesce = n.max(1);
        self
    }

    /// Sets the queue-residency timeout.
    #[must_use]
    pub fn with_timeout(mut self, d: Duration) -> ServeConfig {
        self.default_timeout = d;
        self
    }

    /// Sets the number of group-execution workers (clamped to ≥ 1).
    #[must_use]
    pub fn with_workers(mut self, n: usize) -> ServeConfig {
        self.workers = n.max(1);
        self
    }
}

/// One fulfilled inference: the output rows for the requested nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Output row per requested node, in request order.
    pub rows: Vec<Vec<f32>>,
    /// Engine version (bumped by hot swap) that served the request.
    pub version: u64,
    /// Requests folded into the traversal that served this one (≥ 1).
    pub coalesced: usize,
}

/// Per-deployment serving counters (monotonic since deploy).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeploymentStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests fulfilled with a response.
    pub completed: u64,
    /// Requests rejected at submit because the queue was full.
    pub shed: u64,
    /// Requests expired in the queue.
    pub timed_out: u64,
    /// Requests failed by an engine error.
    pub failed: u64,
    /// Batched traversals executed (`Engine::forward` calls).
    pub forwards: u64,
    /// Requests served by those traversals (≥ `forwards` when coalescing).
    pub coalesced_requests: u64,
    /// Hot swaps applied.
    pub swaps: u64,
    /// Current engine version.
    pub version: u64,
    /// Graph version of the resident graph: the [`ShardedGraph`] delta
    /// generation installed by [`ServeHandle::apply_delta`] /
    /// [`ServeHandle::swap_versioned`] (0 until either runs).
    pub graph_version: u64,
}

impl DeploymentStats {
    /// Requests served per traversal: the coalescing factor (1.0 = naive).
    #[must_use]
    pub fn coalescing_factor(&self) -> f64 {
        if self.forwards == 0 {
            1.0
        } else {
            self.coalesced_requests as f64 / self.forwards as f64
        }
    }
}

#[derive(Default)]
struct StatCells {
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    timed_out: AtomicU64,
    failed: AtomicU64,
    forwards: AtomicU64,
    coalesced_requests: AtomicU64,
    swaps: AtomicU64,
}

/// A resident (model × graph) pair: the bound engine plus its serving
/// metadata. The engine lives behind a mutex — a dispatch group or a
/// hot swap holds it for the duration of one forward / one replacement.
struct Deployment {
    name: String,
    slot: Mutex<Engine>,
    stats: StatCells,
    version: AtomicU64,
    graph_version: AtomicU64,
    num_nodes: AtomicUsize,
    out_width: AtomicUsize,
}

impl Deployment {
    fn snapshot(&self) -> DeploymentStats {
        DeploymentStats {
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            completed: self.stats.completed.load(Ordering::Relaxed),
            shed: self.stats.shed.load(Ordering::Relaxed),
            timed_out: self.stats.timed_out.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            forwards: self.stats.forwards.load(Ordering::Relaxed),
            coalesced_requests: self.stats.coalesced_requests.load(Ordering::Relaxed),
            swaps: self.stats.swaps.load(Ordering::Relaxed),
            version: self.version.load(Ordering::Relaxed),
            graph_version: self.graph_version.load(Ordering::Relaxed),
        }
    }
}

struct TicketInner {
    state: Mutex<Option<Result<Response, ServeError>>>,
    cv: Condvar,
}

impl TicketInner {
    fn fulfill(&self, r: Result<Response, ServeError>) {
        let mut g = self.state.lock().expect("ticket lock");
        if g.is_none() {
            *g = Some(r);
            self.cv.notify_all();
        }
    }
}

/// A pending inference. Obtained from [`ServeHandle::submit`]; redeem
/// with [`Ticket::wait`].
pub struct Ticket {
    inner: Arc<TicketInner>,
}

impl Ticket {
    /// Blocks until the dispatcher fulfills or fails the request.
    pub fn wait(self) -> Result<Response, ServeError> {
        let mut g = self.inner.state.lock().expect("ticket lock");
        loop {
            if let Some(r) = g.take() {
                return r;
            }
            g = self.inner.cv.wait(g).expect("ticket lock");
        }
    }

    /// Non-blocking poll; `None` while the request is still queued or
    /// executing.
    #[must_use]
    pub fn try_wait(&self) -> Option<Result<Response, ServeError>> {
        self.inner.state.lock().expect("ticket lock").take()
    }
}

struct Request {
    deployment: Arc<Deployment>,
    nodes: Vec<usize>,
    deadline: Instant,
    ticket: Arc<TicketInner>,
}

#[derive(Default)]
struct Queue {
    requests: std::collections::VecDeque<Request>,
    shutdown: bool,
    paused: bool,
}

struct ServerInner {
    config: ServeConfig,
    deployments: RwLock<HashMap<String, Arc<Deployment>>>,
    queue: Mutex<Queue>,
    queue_cv: Condvar,
    idle_cv: Condvar,
    dispatcher: Mutex<Option<std::thread::JoinHandle<()>>>,
    in_flight: AtomicUsize,
}

/// Handle to a running server. Cheap to clone; every clone talks to the
/// same queue, dispatcher, and deployments.
#[derive(Clone)]
pub struct ServeHandle {
    inner: Arc<ServerInner>,
}

impl ServeHandle {
    /// Starts a server (one dispatcher thread, `config.workers`
    /// execution threads) with no deployments.
    #[must_use]
    pub fn start(config: ServeConfig) -> ServeHandle {
        let inner = Arc::new(ServerInner {
            config,
            deployments: RwLock::new(HashMap::new()),
            queue: Mutex::new(Queue::default()),
            queue_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            dispatcher: Mutex::new(None),
            in_flight: AtomicUsize::new(0),
        });
        let run = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("hector-serve-dispatch".into())
            .spawn(move || dispatch_loop(&run))
            .expect("spawn dispatcher");
        *inner.dispatcher.lock().expect("dispatcher lock") = Some(handle);
        ServeHandle { inner }
    }

    /// Builds and binds an engine for `(builder, graph)` and makes it
    /// resident under `name`. Compilation goes through the process-wide
    /// `ModuleCache`, so tenants sharing a model architecture share one
    /// compiled module.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] if `name` is already deployed (use
    /// [`ServeHandle::swap`]); [`ServeError::Hector`] if the engine
    /// fails to build or bind.
    pub fn deploy(
        &self,
        name: &str,
        builder: EngineBuilder,
        graph: &GraphData,
    ) -> Result<(), ServeError> {
        let engine = prepare_engine(builder, graph)?;
        let num_nodes = graph.graph().num_nodes();
        let out_width = engine
            .module()
            .forward
            .outputs
            .first()
            .map_or(0, |&v| engine.module().forward.var(v).width);
        let mut map = self.inner.deployments.write().expect("deployments lock");
        if map.contains_key(name) {
            return Err(ServeError::BadRequest(format!(
                "deployment '{name}' already exists; use swap to replace it"
            )));
        }
        map.insert(
            name.to_string(),
            Arc::new(Deployment {
                name: name.to_string(),
                slot: Mutex::new(engine),
                stats: StatCells::default(),
                version: AtomicU64::new(1),
                graph_version: AtomicU64::new(0),
                num_nodes: AtomicUsize::new(num_nodes),
                out_width: AtomicUsize::new(out_width),
            }),
        );
        trace::record_instant("serve.deploy", SpanCat::Pipeline, || {
            format!("{name}: {num_nodes} nodes")
        });
        Ok(())
    }

    /// Hot-swaps the model and/or graph behind `name`: the replacement
    /// engine is fully built and bound **off to the side** (the old
    /// engine keeps serving), then substituted atomically under the
    /// deployment lock. No in-flight request is dropped — each one runs
    /// on whichever engine holds the slot when its group dispatches,
    /// and the response's [`Response::version`] says which.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownDeployment`] if `name` was never deployed;
    /// [`ServeError::Hector`] if the replacement fails to build or bind
    /// (the old engine keeps serving untouched).
    pub fn swap(
        &self,
        name: &str,
        builder: EngineBuilder,
        graph: &GraphData,
    ) -> Result<u64, ServeError> {
        self.swap_inner(name, builder, graph, None)
    }

    /// [`ServeHandle::swap`] that additionally records the **graph
    /// version** the replacement graph corresponds to (a
    /// [`ShardedGraph::version`] delta generation), surfaced as
    /// [`DeploymentStats::graph_version`]. Same atomic-substitution and
    /// no-drop guarantees as `swap`.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::swap`].
    pub fn swap_versioned(
        &self,
        name: &str,
        builder: EngineBuilder,
        graph: &GraphData,
        graph_version: u64,
    ) -> Result<u64, ServeError> {
        self.swap_inner(name, builder, graph, Some(graph_version))
    }

    fn swap_inner(
        &self,
        name: &str,
        builder: EngineBuilder,
        graph: &GraphData,
        graph_version: Option<u64>,
    ) -> Result<u64, ServeError> {
        let dep = self
            .deployment(name)
            .ok_or_else(|| ServeError::UnknownDeployment(name.to_string()))?;
        // Build and bind outside the slot lock: the expensive part of a
        // swap must not stall serving.
        let engine = prepare_engine(builder, graph)?;
        let out_width = engine
            .module()
            .forward
            .outputs
            .first()
            .map_or(0, |&v| engine.module().forward.var(v).width);
        let num_nodes = graph.graph().num_nodes();
        let version = {
            let mut slot = dep.slot.lock().expect("deployment lock");
            *slot = engine;
            dep.num_nodes.store(num_nodes, Ordering::SeqCst);
            dep.out_width.store(out_width, Ordering::SeqCst);
            if let Some(gv) = graph_version {
                dep.graph_version.store(gv, Ordering::SeqCst);
            }
            dep.stats.swaps.fetch_add(1, Ordering::Relaxed);
            dep.version.fetch_add(1, Ordering::SeqCst) + 1
        };
        trace::record_instant("serve.swap", SpanCat::Pipeline, || {
            format!("{name}: v{version}, {num_nodes} nodes")
        });
        Ok(version)
    }

    /// Applies one streaming [`DeltaBatch`] to a [`ShardedGraph`] and
    /// hot-swaps the deployment onto the post-delta graph, tagging it
    /// with the sharded graph's new delta generation. The swap inherits
    /// `swap`'s guarantees: the replacement engine binds off to the
    /// side, in-flight requests run on whichever engine holds the slot
    /// when their group dispatches, and none are dropped. Returns the
    /// new graph version ([`ShardedGraph::version`]), readable back via
    /// [`DeploymentStats::graph_version`].
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::swap`]. On error the sharded graph HAS already
    /// advanced (the delta applies first); retry the swap with
    /// [`ServeHandle::swap_versioned`] rather than re-applying the batch.
    ///
    /// # Panics
    ///
    /// Panics on a malformed batch (see [`ShardedGraph::apply`]), before
    /// any serving state changes.
    pub fn apply_delta(
        &self,
        name: &str,
        builder: EngineBuilder,
        sharded: &mut ShardedGraph,
        batch: &DeltaBatch,
    ) -> Result<u64, ServeError> {
        let outcome = sharded.apply(batch);
        let graph = GraphData::new(sharded.full().clone());
        self.swap_versioned(name, builder, &graph, outcome.version)?;
        Ok(outcome.version)
    }

    /// Submits a single-node inference with the default timeout.
    ///
    /// # Errors
    ///
    /// Rejects immediately with [`ServeError::UnknownDeployment`],
    /// [`ServeError::BadRequest`] (node out of range),
    /// [`ServeError::Overloaded`] (queue full), or
    /// [`ServeError::ShuttingDown`].
    pub fn submit(&self, deployment: &str, node: usize) -> Result<Ticket, ServeError> {
        self.submit_with_timeout(deployment, &[node], self.inner.config.default_timeout)
    }

    /// Submits one request covering several nodes of one deployment
    /// (they travel, coalesce, and complete together).
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::submit`]; additionally rejects an empty node
    /// list as [`ServeError::BadRequest`].
    pub fn submit_batch(&self, deployment: &str, nodes: &[usize]) -> Result<Ticket, ServeError> {
        self.submit_with_timeout(deployment, nodes, self.inner.config.default_timeout)
    }

    /// [`ServeHandle::submit_batch`] with an explicit queue-residency
    /// timeout.
    ///
    /// # Errors
    ///
    /// As [`ServeHandle::submit_batch`].
    pub fn submit_with_timeout(
        &self,
        deployment: &str,
        nodes: &[usize],
        timeout: Duration,
    ) -> Result<Ticket, ServeError> {
        if nodes.is_empty() {
            return Err(ServeError::BadRequest("empty node list".into()));
        }
        let dep = self
            .deployment(deployment)
            .ok_or_else(|| ServeError::UnknownDeployment(deployment.to_string()))?;
        let num_nodes = dep.num_nodes.load(Ordering::SeqCst);
        if let Some(&bad) = nodes.iter().find(|&&n| n >= num_nodes) {
            return Err(ServeError::BadRequest(format!(
                "node {bad} out of range for '{deployment}' ({num_nodes} nodes)"
            )));
        }
        let ticket = Arc::new(TicketInner {
            state: Mutex::new(None),
            cv: Condvar::new(),
        });
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            if q.shutdown {
                return Err(ServeError::ShuttingDown);
            }
            if q.requests.len() >= self.inner.config.queue_capacity {
                dep.stats.shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded {
                    retry_after: self.inner.config.retry_after,
                });
            }
            q.requests.push_back(Request {
                deployment: Arc::clone(&dep),
                nodes: nodes.to_vec(),
                deadline: Instant::now() + timeout,
                ticket: Arc::clone(&ticket),
            });
        }
        dep.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.queue_cv.notify_all();
        Ok(Ticket { inner: ticket })
    }

    /// Names of all resident deployments, sorted.
    #[must_use]
    pub fn deployments(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .inner
            .deployments
            .read()
            .expect("deployments lock")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Serving counters for one deployment.
    #[must_use]
    pub fn stats(&self, deployment: &str) -> Option<DeploymentStats> {
        self.deployment(deployment).map(|d| d.snapshot())
    }

    /// Requests currently queued (excludes in-flight groups).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().expect("queue lock").requests.len()
    }

    /// Pauses dispatch: requests keep queueing (and can shed or expire)
    /// but no tick runs until [`ServeHandle::resume`]. Test hook for
    /// exercising the queue policies deterministically.
    pub fn pause(&self) {
        self.inner.queue.lock().expect("queue lock").paused = true;
        self.inner.queue_cv.notify_all();
    }

    /// Resumes dispatch after [`ServeHandle::pause`].
    pub fn resume(&self) {
        self.inner.queue.lock().expect("queue lock").paused = false;
        self.inner.queue_cv.notify_all();
    }

    /// Blocks until the queue is empty and no group is executing.
    pub fn drain(&self) {
        let mut q = self.inner.queue.lock().expect("queue lock");
        while !q.requests.is_empty() || self.inner.in_flight.load(Ordering::SeqCst) > 0 {
            let (guard, _) = self
                .inner
                .idle_cv
                .wait_timeout(q, Duration::from_millis(10))
                .expect("queue lock");
            q = guard;
        }
    }

    /// Stops the dispatcher. Queued-but-unserved requests fail with
    /// [`ServeError::ShuttingDown`]; engines stay resident until the
    /// last handle drops. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut q = self.inner.queue.lock().expect("queue lock");
            q.shutdown = true;
        }
        self.inner.queue_cv.notify_all();
        let handle = self
            .inner
            .dispatcher
            .lock()
            .expect("dispatcher lock")
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    fn deployment(&self, name: &str) -> Option<Arc<Deployment>> {
        self.inner
            .deployments
            .read()
            .expect("deployments lock")
            .get(name)
            .cloned()
    }
}

fn prepare_engine(builder: EngineBuilder, graph: &GraphData) -> Result<Engine, ServeError> {
    let mut engine = builder.build()?;
    engine.bind(graph)?;
    Ok(engine)
}

/// The dispatcher: waits for work, drains the queue, expires stale
/// requests, groups the rest by deployment (respecting `max_coalesce`),
/// and executes the groups — concurrently over the worker pool when one
/// is configured.
fn dispatch_loop(inner: &Arc<ServerInner>) {
    let pool = if inner.config.workers > 1 {
        Some(ThreadPool::new(inner.config.workers))
    } else {
        None
    };
    loop {
        let drained: Vec<Request> = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if q.shutdown {
                    break;
                }
                if !q.paused && !q.requests.is_empty() {
                    break;
                }
                let (guard, _) = inner
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .expect("queue lock");
                q = guard;
            }
            if q.shutdown {
                // Fail everything still queued, then exit.
                for r in q.requests.drain(..) {
                    r.ticket.fulfill(Err(ServeError::ShuttingDown));
                }
                return;
            }
            let n = q.requests.len();
            inner.in_flight.store(n, Ordering::SeqCst);
            q.requests.drain(..).collect()
        };

        let tick_start = trace::span_start();
        let drained_count = drained.len();

        // Expire stale requests, group the rest by deployment in FIFO
        // first-seen order.
        let now = Instant::now();
        let mut order: Vec<Arc<Deployment>> = Vec::new();
        let mut groups: HashMap<String, Vec<Request>> = HashMap::new();
        let mut served = 0usize;
        for r in drained {
            if now > r.deadline {
                r.deployment.stats.timed_out.fetch_add(1, Ordering::Relaxed);
                r.ticket.fulfill(Err(ServeError::Timeout));
                served += 1;
                continue;
            }
            if !groups.contains_key(&r.deployment.name) {
                order.push(Arc::clone(&r.deployment));
            }
            groups.entry(r.deployment.name.clone()).or_default().push(r);
        }
        inner.in_flight.fetch_sub(served, Ordering::SeqCst);

        // Split each deployment's backlog into coalesced chunks and run
        // them. Chunks of distinct deployments execute concurrently;
        // chunks of one deployment serialize on its slot lock (the
        // engine is stateful), preserving bit-identical outputs.
        let max = inner.config.max_coalesce.max(1);
        let mut work: Vec<(Arc<Deployment>, Vec<Request>)> = Vec::new();
        for dep in order {
            let mut reqs = groups.remove(&dep.name).unwrap_or_default();
            while reqs.len() > max {
                let rest = reqs.split_off(max);
                work.push((Arc::clone(&dep), reqs));
                reqs = rest;
            }
            if !reqs.is_empty() {
                work.push((Arc::clone(&dep), reqs));
            }
        }
        match (&pool, work.len()) {
            (Some(pool), 2..) => {
                pool.scope(|s| {
                    for (dep, reqs) in work.drain(..) {
                        let inner = Arc::clone(inner);
                        s.spawn(move || {
                            let n = reqs.len();
                            run_group(&dep, reqs);
                            inner.in_flight.fetch_sub(n, Ordering::SeqCst);
                        });
                    }
                });
            }
            _ => {
                for (dep, reqs) in work.drain(..) {
                    let n = reqs.len();
                    run_group(&dep, reqs);
                    inner.in_flight.fetch_sub(n, Ordering::SeqCst);
                }
            }
        }
        inner.idle_cv.notify_all();

        if let Some(t0) = tick_start {
            trace::record_span(
                "serve.tick",
                SpanCat::Pipeline,
                t0,
                drained_count as u64,
                0,
                0.0,
            );
        }
    }
}

/// Executes one coalesced group: a single `Engine::forward`, then the
/// requested output rows are scattered back to every ticket.
fn run_group(dep: &Deployment, reqs: Vec<Request>) {
    let coalesced = reqs.len();
    let span = trace::span_start();
    let mut slot = dep.slot.lock().expect("deployment lock");
    let version = dep.version.load(Ordering::SeqCst);
    // Counters are bumped BEFORE tickets are fulfilled: a client that
    // observes its response must also observe the stats that produced
    // it (tests and dashboards read stats right after wait()).
    match slot.forward() {
        Ok(_) => {
            dep.stats.forwards.fetch_add(1, Ordering::Relaxed);
            dep.stats
                .coalesced_requests
                .fetch_add(coalesced as u64, Ordering::Relaxed);
            dep.stats
                .completed
                .fetch_add(coalesced as u64, Ordering::Relaxed);
            let out = slot.output();
            for r in &reqs {
                let rows: Vec<Vec<f32>> = r.nodes.iter().map(|&n| out.row(n).to_vec()).collect();
                r.ticket.fulfill(Ok(Response {
                    rows,
                    version,
                    coalesced,
                }));
            }
        }
        Err(e) => {
            dep.stats
                .failed
                .fetch_add(coalesced as u64, Ordering::Relaxed);
            for r in &reqs {
                r.ticket.fulfill(Err(ServeError::Hector(e.clone())));
            }
        }
    }
    drop(slot);
    if let Some(t0) = span {
        trace::record_span(
            "serve.forward",
            SpanCat::Pipeline,
            t0,
            coalesced as u64,
            0,
            0.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hector_graph::{generate, DatasetSpec};
    use hector_models::ModelKind;
    use hector_runtime::Mode;

    fn graph(seed: u64, nodes: usize) -> GraphData {
        GraphData::new(generate(&DatasetSpec {
            name: "serve_unit".into(),
            num_nodes: nodes,
            num_node_types: 2,
            num_edges: nodes * 4,
            num_edge_types: 3,
            compaction_ratio: 0.5,
            type_skew: 1.0,
            seed,
        }))
    }

    fn builder() -> EngineBuilder {
        EngineBuilder::new(ModelKind::Rgcn)
            .dims(8, 8)
            .mode(Mode::Real)
            .seed(7)
    }

    #[test]
    fn submit_and_wait_roundtrip() {
        let srv = ServeHandle::start(ServeConfig::default());
        let g = graph(3, 48);
        srv.deploy("m", builder(), &g).unwrap();
        let row = srv.submit("m", 5).unwrap().wait().unwrap();
        assert_eq!(row.rows.len(), 1);
        assert_eq!(row.rows[0].len(), 8);
        assert_eq!(row.version, 1);
        srv.shutdown();
    }

    #[test]
    fn unknown_deployment_and_bad_node_reject_at_submit() {
        let srv = ServeHandle::start(ServeConfig::default());
        let g = graph(4, 32);
        srv.deploy("m", builder(), &g).unwrap();
        assert_eq!(
            srv.submit("nope", 0).err(),
            Some(ServeError::UnknownDeployment("nope".into()))
        );
        assert!(matches!(
            srv.submit("m", 999).err(),
            Some(ServeError::BadRequest(_))
        ));
        assert!(matches!(
            srv.submit_batch("m", &[]).err(),
            Some(ServeError::BadRequest(_))
        ));
        srv.shutdown();
    }

    #[test]
    fn duplicate_deploy_is_rejected() {
        let srv = ServeHandle::start(ServeConfig::default());
        let g = graph(5, 32);
        srv.deploy("m", builder(), &g).unwrap();
        assert!(matches!(
            srv.deploy("m", builder(), &g).err(),
            Some(ServeError::BadRequest(_))
        ));
        srv.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_with_retry_after() {
        let srv = ServeHandle::start(
            ServeConfig::default()
                .with_queue_capacity(2)
                .with_workers(1),
        );
        let g = graph(6, 32);
        srv.deploy("m", builder(), &g).unwrap();
        srv.pause();
        let _t1 = srv.submit("m", 0).unwrap();
        let _t2 = srv.submit("m", 1).unwrap();
        let shed = srv.submit("m", 2);
        assert!(matches!(shed, Err(ServeError::Overloaded { .. })));
        let stats = srv.stats("m").unwrap();
        assert_eq!(stats.shed, 1);
        srv.resume();
        srv.shutdown();
    }

    #[test]
    fn paused_requests_expire_as_timeouts() {
        let srv = ServeHandle::start(ServeConfig::default().with_workers(1));
        let g = graph(7, 32);
        srv.deploy("m", builder(), &g).unwrap();
        srv.pause();
        let t = srv
            .submit_with_timeout("m", &[1], Duration::from_millis(1))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        srv.resume();
        assert_eq!(t.wait(), Err(ServeError::Timeout));
        assert_eq!(srv.stats("m").unwrap().timed_out, 1);
        srv.shutdown();
    }

    #[test]
    fn shutdown_fails_queued_requests_and_rejects_new_ones() {
        let srv = ServeHandle::start(ServeConfig::default().with_workers(1));
        let g = graph(8, 32);
        srv.deploy("m", builder(), &g).unwrap();
        srv.pause();
        let t = srv.submit("m", 0).unwrap();
        srv.shutdown();
        assert_eq!(t.wait(), Err(ServeError::ShuttingDown));
        assert_eq!(srv.submit("m", 0).err(), Some(ServeError::ShuttingDown));
    }

    #[test]
    fn coalescing_serves_many_requests_with_one_forward() {
        let srv = ServeHandle::start(ServeConfig::default().with_workers(1));
        let g = graph(9, 64);
        srv.deploy("m", builder(), &g).unwrap();
        srv.pause();
        let tickets: Vec<Ticket> = (0..10).map(|n| srv.submit("m", n).unwrap()).collect();
        srv.resume();
        for t in tickets {
            let r = t.wait().unwrap();
            assert_eq!(r.coalesced, 10);
        }
        let stats = srv.stats("m").unwrap();
        assert_eq!(stats.forwards, 1, "10 requests must cost one traversal");
        assert_eq!(stats.coalesced_requests, 10);
        assert!((stats.coalescing_factor() - 10.0).abs() < 1e-9);
        srv.shutdown();
    }

    #[test]
    fn swap_bumps_version_and_keeps_serving() {
        let srv = ServeHandle::start(ServeConfig::default());
        let g1 = graph(10, 48);
        let g2 = graph(11, 96);
        srv.deploy("m", builder(), &g1).unwrap();
        let r1 = srv.submit("m", 40).unwrap().wait().unwrap();
        assert_eq!(r1.version, 1);
        let v = srv.swap("m", builder(), &g2).unwrap();
        assert_eq!(v, 2);
        // Node 90 only exists in the new graph.
        let r2 = srv.submit("m", 90).unwrap().wait().unwrap();
        assert_eq!(r2.version, 2);
        assert_eq!(srv.stats("m").unwrap().swaps, 1);
        assert!(matches!(
            srv.swap("ghost", builder(), &g2).err(),
            Some(ServeError::UnknownDeployment(_))
        ));
        srv.shutdown();
    }

    #[test]
    fn failed_swap_leaves_the_old_engine_serving() {
        let srv = ServeHandle::start(ServeConfig::default());
        let g = graph(12, 48);
        srv.deploy("m", builder(), &g).unwrap();
        let bad = EngineBuilder::new(ModelKind::Rgcn).dims(8, 8).layers(0);
        assert!(matches!(
            srv.swap("m", bad, &g).err(),
            Some(ServeError::Hector(HectorError::InvalidConfig { .. }))
        ));
        // Old engine still answers.
        let r = srv.submit("m", 3).unwrap().wait().unwrap();
        assert_eq!(r.version, 1);
        assert_eq!(srv.stats("m").unwrap().swaps, 0);
        srv.shutdown();
    }

    #[test]
    fn serve_error_display_and_source() {
        let e = ServeError::Hector(HectorError::InvalidConfig { detail: "x".into() });
        assert!(e.to_string().contains("engine error"));
        assert!(std::error::Error::source(&e).is_some());
        let o = ServeError::Overloaded {
            retry_after: Duration::from_millis(25),
        };
        assert!(o.to_string().contains("25 ms"));
        assert!(std::error::Error::source(&o).is_none());
    }
}
