//! Seeded synthetic heterogeneous graph generation.
//!
//! The paper evaluates on eight DGL/OGB datasets (Table 3). Those exact
//! graphs are not redistributable here, so this module generates synthetic
//! graphs that match the statistics every Hector experiment actually
//! depends on: node/edge counts, node/edge type counts, type-size skew,
//! and — critically for compact materialization — the *entity compaction
//! ratio* (unique `(src, etype)` pairs / edges, §4.3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{HeteroGraph, HeteroGraphBuilder};

/// Specification of a synthetic heterogeneous graph.
///
/// Presets matching the paper's Table 3 live in [`crate::datasets`]; the
/// [`DatasetSpec::scaled`] method shrinks a spec proportionally for
/// CPU-feasible functional runs while preserving its character.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name (used in reports).
    pub name: String,
    /// Total node count.
    pub num_nodes: usize,
    /// Number of node types.
    pub num_node_types: usize,
    /// Total edge count.
    pub num_edges: usize,
    /// Number of edge types (relations).
    pub num_edge_types: usize,
    /// Target entity compaction ratio in `(0, 1]`: unique `(src, etype)`
    /// pairs divided by edges. 1.0 means no edge shares its source+type
    /// with another.
    pub compaction_ratio: f64,
    /// Zipf-like skew of node-type and edge-type sizes; 0 = uniform,
    /// larger = a few types dominate (real heterogeneous graphs are
    /// heavily skewed).
    pub type_skew: f64,
    /// RNG seed; the same spec always generates the same graph.
    pub seed: u64,
}

impl DatasetSpec {
    /// Returns a copy scaled to `factor` of the node and edge counts
    /// (type counts are preserved but capped so every type can be
    /// non-empty).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        let num_nodes = ((self.num_nodes as f64 * factor).round() as usize).max(4);
        let num_edges = ((self.num_edges as f64 * factor).round() as usize).max(4);
        DatasetSpec {
            name: self.name.clone(),
            num_nodes,
            num_node_types: self.num_node_types.min(num_nodes),
            num_edges,
            num_edge_types: self.num_edge_types.min(num_edges),
            compaction_ratio: self.compaction_ratio,
            type_skew: self.type_skew,
            seed: self.seed,
        }
    }
}

/// Splits `total` into `parts` sizes following a Zipf-like distribution
/// with exponent `skew`, guaranteeing every part is at least 1 (when
/// `total >= parts`).
fn zipf_partition(total: usize, parts: usize, skew: f64) -> Vec<usize> {
    assert!(parts > 0);
    if total < parts {
        // Degenerate: give everything to the first types.
        let mut out = vec![0usize; parts];
        for (i, slot) in out.iter_mut().enumerate().take(total) {
            let _ = i;
            *slot = 1;
        }
        return out;
    }
    let weights: Vec<f64> = (1..=parts).map(|r| (r as f64).powf(-skew)).collect();
    let wsum: f64 = weights.iter().sum();
    let mut out: Vec<usize> = weights
        .iter()
        .map(|w| (((total - parts) as f64) * w / wsum).floor() as usize + 1)
        .collect();
    // Distribute the rounding remainder to the largest parts.
    let mut assigned: usize = out.iter().sum();
    let mut i = 0;
    while assigned < total {
        out[i % parts] += 1;
        assigned += 1;
        i += 1;
    }
    while assigned > total {
        let j = out
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(j, _)| j)
            .unwrap();
        out[j] -= 1;
        assigned -= 1;
    }
    out
}

/// Generates a graph matching `spec`.
///
/// The generator works per edge type: it computes the number of *unique*
/// source nodes the type should have from the target compaction ratio,
/// samples that many distinct sources, then draws every edge's source from
/// the pool (first covering each pool entry once so the realised unique
/// count is exact, then reusing skewed picks). Destinations are uniform
/// within the type's destination node-type range.
///
/// # Panics
///
/// Panics if the spec is degenerate (zero types with nonzero counts).
#[must_use]
pub fn generate(spec: &DatasetSpec) -> HeteroGraph {
    assert!(spec.num_node_types > 0, "need at least one node type");
    assert!(spec.num_edge_types > 0, "need at least one edge type");
    assert!(
        spec.compaction_ratio > 0.0 && spec.compaction_ratio <= 1.0,
        "compaction ratio must be in (0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let node_counts = zipf_partition(spec.num_nodes, spec.num_node_types, spec.type_skew);
    let edge_counts = zipf_partition(spec.num_edges, spec.num_edge_types, spec.type_skew);

    let mut builder = HeteroGraphBuilder::new();
    let mut ranges = Vec::with_capacity(spec.num_node_types);
    for &c in &node_counts {
        ranges.push(builder.add_node_type(c));
    }
    // Assign each edge type a (src ntype, dst ntype) pair; prefer non-empty
    // node types.
    let nonempty: Vec<usize> = (0..spec.num_node_types)
        .filter(|&t| node_counts[t] > 0)
        .collect();
    assert!(!nonempty.is_empty(), "no non-empty node types");

    for (t, &ecount) in edge_counts.iter().enumerate() {
        if ecount == 0 {
            continue;
        }
        // Unique sources for this type, bounded by the available nodes.
        let want_unique =
            ((ecount as f64 * spec.compaction_ratio).round() as usize).clamp(1, ecount);
        // Pick a source node type that can host the wanted unique count so
        // the realised compaction ratio stays on target; fall back to the
        // largest type when none is big enough.
        let fitting: Vec<usize> = nonempty
            .iter()
            .copied()
            .filter(|&nt| node_counts[nt] >= want_unique)
            .collect();
        // When no single node type can host the wanted unique-source count,
        // draw sources from the whole node space instead (edge types in
        // synthetic graphs may span node types; nodewise typed operators
        // still read each endpoint's own node type).
        let (slo, src_span) = if fitting.is_empty() {
            (0u32, spec.num_nodes)
        } else {
            let src_nt = fitting[rng.gen_range(0..fitting.len())];
            let (lo, hi) = ranges[src_nt];
            (lo, (hi - lo) as usize)
        };
        let dst_nt = nonempty[rng.gen_range(0..nonempty.len())];
        let (dlo, dhi) = ranges[dst_nt];
        let pool = sample_distinct(&mut rng, src_span, want_unique.min(src_span));
        for i in 0..ecount {
            let s = if i < pool.len() {
                // Cover the pool first so the realised unique count is exact.
                slo + pool[i]
            } else {
                // Reuse: skew toward the front of the pool (power-law reuse).
                let u: f64 = rng.gen();
                let idx = ((u * u) * pool.len() as f64) as usize;
                slo + pool[idx.min(pool.len() - 1)]
            };
            let d = dlo + rng.gen_range(0..(dhi - dlo).max(1));
            builder.add_edge(s, d, t as u32);
        }
    }
    builder.build()
}

/// Samples `count` distinct values in `0..span` deterministically.
fn sample_distinct(rng: &mut StdRng, span: usize, count: usize) -> Vec<u32> {
    debug_assert!(count <= span);
    if count * 3 >= span {
        // Dense: shuffle a full range prefix.
        let mut all: Vec<u32> = (0..span as u32).collect();
        for i in 0..count {
            let j = rng.gen_range(i..span);
            all.swap(i, j);
        }
        all.truncate(count);
        all
    } else {
        // Sparse: rejection sample.
        let mut seen = std::collections::HashSet::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let v = rng.gen_range(0..span as u32);
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(nodes: usize, nt: usize, edges: usize, et: usize, ratio: f64) -> DatasetSpec {
        DatasetSpec {
            name: "test".into(),
            num_nodes: nodes,
            num_node_types: nt,
            num_edges: edges,
            num_edge_types: et,
            compaction_ratio: ratio,
            type_skew: 1.0,
            seed: 99,
        }
    }

    #[test]
    fn zipf_partition_sums_and_covers() {
        let p = zipf_partition(100, 7, 1.2);
        assert_eq!(p.iter().sum::<usize>(), 100);
        assert!(p.iter().all(|&x| x >= 1));
        assert!(p[0] >= p[6], "skew favours early parts");
    }

    #[test]
    fn zipf_partition_uniform_when_zero_skew() {
        let p = zipf_partition(90, 3, 0.0);
        assert_eq!(p, vec![30, 30, 30]);
    }

    #[test]
    fn generate_matches_counts() {
        let g = generate(&spec(500, 4, 2000, 10, 0.6));
        assert_eq!(g.num_nodes(), 500);
        assert_eq!(g.num_edges(), 2000);
        assert_eq!(g.num_node_types(), 4);
        assert_eq!(g.num_edge_types(), 10);
        g.validate();
    }

    #[test]
    fn generate_is_deterministic() {
        let a = generate(&spec(200, 3, 800, 5, 0.5));
        let b = generate(&spec(200, 3, 800, 5, 0.5));
        assert_eq!(a.src(), b.src());
        assert_eq!(a.dst(), b.dst());
        assert_eq!(a.etype(), b.etype());
    }

    #[test]
    fn compaction_ratio_is_close_to_target() {
        for &target in &[0.25f64, 0.5, 0.75, 1.0] {
            let g = generate(&spec(12_000, 3, 8000, 8, target));
            let realised = g.compaction_map().ratio();
            assert!(
                (realised - target).abs() < 0.08,
                "target {target} realised {realised}"
            );
        }
    }

    #[test]
    fn scaled_preserves_character() {
        let s = spec(10000, 5, 50000, 20, 0.4).scaled(0.01);
        assert_eq!(s.num_nodes, 100);
        assert_eq!(s.num_edges, 500);
        assert_eq!(s.num_node_types, 5);
        let g = generate(&s);
        g.validate();
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn tiny_scale_never_panics() {
        let s = spec(1000, 7, 5000, 104, 0.9).scaled(0.001);
        let g = generate(&s);
        g.validate();
        assert!(g.num_edges() >= 4);
    }

    #[test]
    fn compaction_map_valid_on_generated() {
        let g = generate(&spec(300, 2, 1500, 6, 0.3));
        g.compaction_map().validate(&g);
    }
}
