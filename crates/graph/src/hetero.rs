//! The [`HeteroGraph`] type and its adjacency views.

use crate::CompactionMap;

/// A heterogeneous graph in the storage layout Hector's kernels consume.
///
/// Invariants maintained by [`HeteroGraphBuilder`]:
///
/// * nodes are numbered `0..num_nodes` and **sorted by node type**, with
///   `ntype_ptr` delimiting each type's contiguous id range (this is the
///   "nodes are presorted to enable segment MM" convention of paper §4.1);
/// * edges are **sorted by edge type**, with `etype_ptr[t]..etype_ptr[t+1]`
///   delimiting the edges of type `t` (Fig. 5's "Layout choices");
/// * `src`, `dst`, `etype` are parallel arrays (COO encoding).
#[derive(Clone, Debug)]
pub struct HeteroGraph {
    num_node_types: usize,
    num_edge_types: usize,
    node_type: Vec<u32>,
    ntype_ptr: Vec<usize>,
    src: Vec<u32>,
    dst: Vec<u32>,
    etype: Vec<u32>,
    etype_ptr: Vec<usize>,
}

impl HeteroGraph {
    /// Total number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.node_type.len()
    }

    /// Total number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Number of node types.
    #[must_use]
    pub fn num_node_types(&self) -> usize {
        self.num_node_types
    }

    /// Number of edge types (relations).
    #[must_use]
    pub fn num_edge_types(&self) -> usize {
        self.num_edge_types
    }

    /// Per-node type array (non-decreasing by construction).
    #[must_use]
    pub fn node_type(&self) -> &[u32] {
        &self.node_type
    }

    /// Node-type segment offsets: nodes of type `t` occupy ids
    /// `ntype_ptr[t]..ntype_ptr[t+1]`.
    #[must_use]
    pub fn ntype_ptr(&self) -> &[usize] {
        &self.ntype_ptr
    }

    /// Source node of each edge (COO, sorted by edge type).
    #[must_use]
    pub fn src(&self) -> &[u32] {
        &self.src
    }

    /// Destination node of each edge (COO, sorted by edge type).
    #[must_use]
    pub fn dst(&self) -> &[u32] {
        &self.dst
    }

    /// Edge type of each edge (non-decreasing by construction).
    #[must_use]
    pub fn etype(&self) -> &[u32] {
        &self.etype
    }

    /// Edge-type segment offsets: edges of type `t` occupy indices
    /// `etype_ptr[t]..etype_ptr[t+1]` (the paper's `etype_ptr`).
    #[must_use]
    pub fn etype_ptr(&self) -> &[usize] {
        &self.etype_ptr
    }

    /// Number of edges of type `t`.
    #[must_use]
    pub fn edges_of_type(&self, t: usize) -> usize {
        self.etype_ptr[t + 1] - self.etype_ptr[t]
    }

    /// Number of nodes of type `t`.
    #[must_use]
    pub fn nodes_of_type(&self, t: usize) -> usize {
        self.ntype_ptr[t + 1] - self.ntype_ptr[t]
    }

    /// Average in-degree (`num_edges / num_nodes`).
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_nodes() as f64
        }
    }

    /// Builds the compaction map of unique `(source node, edge type)`
    /// pairs (paper §3.2.2). O(E log E).
    #[must_use]
    pub fn compaction_map(&self) -> CompactionMap {
        CompactionMap::build(self)
    }

    /// Builds the CSR view (outgoing edges grouped by source node).
    #[must_use]
    pub fn csr(&self) -> Csr {
        Csr::build(self.num_nodes(), &self.src)
    }

    /// Builds the CSC view (incoming edges grouped by destination node),
    /// which node-aggregation traversal kernels iterate.
    #[must_use]
    pub fn csc(&self) -> Csc {
        let csr = Csr::build(self.num_nodes(), &self.dst);
        Csc {
            ptr: csr.ptr,
            edge_idx: csr.edge_idx,
        }
    }

    /// In-degree of each node per relation, as a flat `[node][etype]`
    /// lookup used for RGCN's `1/c_{v,r}` normalisation. Returned as a
    /// closure-friendly dense vector only when small; callers with large
    /// graphs should use [`HeteroGraph::in_degree`] instead.
    #[must_use]
    pub fn in_degree_per_rel(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes() * self.num_edge_types];
        for e in 0..self.num_edges() {
            deg[self.dst[e] as usize * self.num_edge_types + self.etype[e] as usize] += 1;
        }
        deg
    }

    /// In-degree of each node (all relations).
    #[must_use]
    pub fn in_degree(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.num_nodes()];
        for &d in &self.dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Checks every structural invariant; used by tests and the generator.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        assert_eq!(self.ntype_ptr.len(), self.num_node_types + 1);
        assert_eq!(self.etype_ptr.len(), self.num_edge_types + 1);
        assert_eq!(*self.ntype_ptr.last().unwrap(), self.num_nodes());
        assert_eq!(*self.etype_ptr.last().unwrap(), self.num_edges());
        assert_eq!(self.src.len(), self.dst.len());
        assert_eq!(self.src.len(), self.etype.len());
        for w in self.node_type.windows(2) {
            assert!(w[0] <= w[1], "node types must be sorted");
        }
        for w in self.etype.windows(2) {
            assert!(w[0] <= w[1], "edge types must be sorted");
        }
        for t in 0..self.num_edge_types {
            for e in self.etype_ptr[t]..self.etype_ptr[t + 1] {
                assert_eq!(
                    self.etype[e] as usize, t,
                    "etype_ptr inconsistent at edge {e}"
                );
            }
        }
        for (t, &p) in self.ntype_ptr.iter().enumerate().take(self.num_node_types) {
            for n in p..self.ntype_ptr[t + 1] {
                assert_eq!(
                    self.node_type[n] as usize, t,
                    "ntype_ptr inconsistent at node {n}"
                );
            }
        }
        let nn = self.num_nodes() as u32;
        assert!(self.src.iter().all(|&s| s < nn), "src out of range");
        assert!(self.dst.iter().all(|&d| d < nn), "dst out of range");
    }
}

/// Compressed sparse row view: edges grouped by a key node (source for
/// CSR proper). `edge_idx[ptr[v]..ptr[v+1]]` are indices into the COO
/// arrays of the owning [`HeteroGraph`].
#[derive(Clone, Debug)]
pub struct Csr {
    /// Row offsets, length `num_nodes + 1`.
    pub ptr: Vec<usize>,
    /// Edge indices into the parallel COO arrays.
    pub edge_idx: Vec<u32>,
}

impl Csr {
    fn build(num_nodes: usize, key: &[u32]) -> Csr {
        let mut ptr = vec![0usize; num_nodes + 1];
        for &k in key {
            ptr[k as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            ptr[i + 1] += ptr[i];
        }
        let mut cursor = ptr.clone();
        let mut edge_idx = vec![0u32; key.len()];
        for (e, &k) in key.iter().enumerate() {
            edge_idx[cursor[k as usize]] = e as u32;
            cursor[k as usize] += 1;
        }
        Csr { ptr, edge_idx }
    }

    /// Edge indices incident to node `v`.
    #[must_use]
    pub fn edges(&self, v: usize) -> &[u32] {
        &self.edge_idx[self.ptr[v]..self.ptr[v + 1]]
    }
}

/// Compressed sparse column view (incoming edges by destination node).
#[derive(Clone, Debug)]
pub struct Csc {
    /// Column offsets, length `num_nodes + 1`.
    pub ptr: Vec<usize>,
    /// Edge indices into the parallel COO arrays.
    pub edge_idx: Vec<u32>,
}

impl Csc {
    /// Edge indices whose destination is node `v`.
    #[must_use]
    pub fn in_edges(&self, v: usize) -> &[u32] {
        &self.edge_idx[self.ptr[v]..self.ptr[v + 1]]
    }
}

/// Incremental builder for [`HeteroGraph`].
///
/// Edges may be added in any order; [`HeteroGraphBuilder::build`] sorts by
/// edge type (stable, preserving insertion order within a type) and
/// produces the segment pointers.
#[derive(Clone, Debug, Default)]
pub struct HeteroGraphBuilder {
    node_type_counts: Vec<usize>,
    edges: Vec<(u32, u32, u32)>,
    min_edge_types: usize,
}

impl HeteroGraphBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `count` nodes of a new node type; returns the id range of
    /// the declared nodes as `(first, last_exclusive)`.
    pub fn add_node_type(&mut self, count: usize) -> (u32, u32) {
        let first: usize = self.node_type_counts.iter().sum();
        self.node_type_counts.push(count);
        (first as u32, (first + count) as u32)
    }

    /// Adds an edge `src --etype--> dst`.
    pub fn add_edge(&mut self, src: u32, dst: u32, etype: u32) {
        self.edges.push((src, dst, etype));
    }

    /// Forces the built graph to declare at least `n` edge types, even if
    /// some of them end up with zero edges (their `etype_ptr` segments are
    /// empty). Subgraph extraction relies on this: a sampled minibatch
    /// must keep the full graph's relation count so per-relation weight
    /// stacks keep their shapes across batches.
    pub fn reserve_edge_types(&mut self, n: usize) {
        self.min_edge_types = self.min_edge_types.max(n);
    }

    /// Finalises the graph.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    #[must_use]
    pub fn build(mut self) -> HeteroGraph {
        let num_nodes: usize = self.node_type_counts.iter().sum();
        let num_node_types = self.node_type_counts.len();
        let mut ntype_ptr = vec![0usize; num_node_types + 1];
        for (t, &c) in self.node_type_counts.iter().enumerate() {
            ntype_ptr[t + 1] = ntype_ptr[t] + c;
        }
        let mut node_type = vec![0u32; num_nodes];
        for t in 0..num_node_types {
            node_type[ntype_ptr[t]..ntype_ptr[t + 1]].fill(t as u32);
        }
        self.edges.sort_by_key(|&(_, _, t)| t);
        let num_edge_types = self
            .edges
            .iter()
            .map(|&(_, _, t)| t as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_edge_types);
        let mut etype_ptr = vec![0usize; num_edge_types + 1];
        for &(_, _, t) in &self.edges {
            etype_ptr[t as usize + 1] += 1;
        }
        for t in 0..num_edge_types {
            etype_ptr[t + 1] += etype_ptr[t];
        }
        let (mut src, mut dst, mut etype) = (
            Vec::with_capacity(self.edges.len()),
            Vec::with_capacity(self.edges.len()),
            Vec::with_capacity(self.edges.len()),
        );
        for (s, d, t) in self.edges {
            assert!((s as usize) < num_nodes, "src {s} out of range");
            assert!((d as usize) < num_nodes, "dst {d} out of range");
            src.push(s);
            dst.push(d);
            etype.push(t);
        }
        let g = HeteroGraph {
            num_node_types,
            num_edge_types,
            node_type,
            ntype_ptr,
            src,
            dst,
            etype,
            etype_ptr,
        };
        g.validate();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of paper Fig. 6(a): a citation graph with paper
    /// nodes {0,1,2,a,b} and author node {α}; relations writes/cites/employs.
    pub(crate) fn figure6_graph() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new();
        let (_p0, _) = b.add_node_type(5); // papers: ids 0..5 (0,1,2,a=3,b=4)
        let (alpha, _) = b.add_node_type(1); // author: id 5 (α)
                                             // writes: α→a, α→b ; cites: 1→0, 2→0, a→0, b→1, b→2 ; employs: none
        b.add_edge(alpha, 3, 0); // writes
        b.add_edge(alpha, 4, 0); // writes
        b.add_edge(1, 0, 1); // cites
        b.add_edge(2, 0, 1);
        b.add_edge(3, 0, 1);
        b.add_edge(4, 1, 1);
        b.add_edge(4, 2, 1);
        b.build()
    }

    #[test]
    fn builder_sorts_by_etype_and_sets_ptrs() {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(4);
        b.add_edge(0, 1, 2);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 3, 1);
        b.add_edge(3, 0, 0);
        let g = b.build();
        assert_eq!(g.etype(), &[0, 0, 1, 2]);
        assert_eq!(g.etype_ptr(), &[0, 2, 3, 4]);
        assert_eq!(g.edges_of_type(0), 2);
        g.validate();
    }

    #[test]
    fn node_types_are_contiguous() {
        let mut b = HeteroGraphBuilder::new();
        let (a0, a1) = b.add_node_type(3);
        let (b0, b1) = b.add_node_type(2);
        assert_eq!((a0, a1), (0, 3));
        assert_eq!((b0, b1), (3, 5));
        let g = b.build();
        assert_eq!(g.node_type(), &[0, 0, 0, 1, 1]);
        assert_eq!(g.ntype_ptr(), &[0, 3, 5]);
        assert_eq!(g.nodes_of_type(0), 3);
    }

    #[test]
    fn figure6_shape() {
        let g = figure6_graph();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 7);
        assert_eq!(g.num_edge_types(), 2);
        assert_eq!(g.edges_of_type(0), 2); // writes
        assert_eq!(g.edges_of_type(1), 5); // cites
    }

    #[test]
    fn csc_groups_incoming_edges() {
        let g = figure6_graph();
        let csc = g.csc();
        // Node 0 has incoming cites from 1, 2, a(3).
        let incoming: Vec<u32> = csc
            .in_edges(0)
            .iter()
            .map(|&e| g.src()[e as usize])
            .collect();
        let mut sorted = incoming.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3]);
        // α (node 5) has no incoming edges.
        assert!(csc.in_edges(5).is_empty());
    }

    #[test]
    fn csr_groups_outgoing_edges() {
        let g = figure6_graph();
        let csr = g.csr();
        // α (node 5) writes to a and b.
        let outgoing: Vec<u32> = csr.edges(5).iter().map(|&e| g.dst()[e as usize]).collect();
        let mut sorted = outgoing.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![3, 4]);
    }

    #[test]
    fn degrees() {
        let g = figure6_graph();
        let deg = g.in_degree();
        assert_eq!(deg[0], 3);
        assert_eq!(deg[1], 1);
        assert_eq!(deg[5], 0);
        let dpr = g.in_degree_per_rel();
        // node 0 (row base 0 * 2), relation "cites" (1) has 3 incoming.
        assert_eq!(dpr[1], 3);
        assert_eq!(dpr[0], 0);
        assert!((g.avg_degree() - 7.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_valid() {
        let g = HeteroGraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        g.validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_dangling_edge() {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(2);
        b.add_edge(0, 9, 0);
        let _ = b.build();
    }
}
