//! Preset dataset specifications matching the paper's Table 3.
//!
//! Node/edge counts and type counts are taken directly from Table 3 (which
//! reflects DGL/OGB default preprocessing, e.g. inverse edges). Entity
//! compaction ratios for AM (0.57) and FB15k (0.26) are stated in §4.3;
//! the remaining ratios are chosen to be consistent with the compaction
//! speedups of Table 5 and the memory ratios of Fig. 10 (documented in
//! `EXPERIMENTS.md`).

use crate::DatasetSpec;

fn preset(
    name: &str,
    num_nodes: usize,
    num_node_types: usize,
    num_edges: usize,
    num_edge_types: usize,
    compaction_ratio: f64,
) -> DatasetSpec {
    DatasetSpec {
        name: name.to_string(),
        num_nodes,
        num_node_types,
        num_edges,
        num_edge_types,
        compaction_ratio,
        type_skew: 1.1,
        seed: fnv_seed(name),
    }
}

/// Stable per-dataset seed derived from the name, so every preset is
/// deterministic yet distinct.
fn fnv_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// AIFB: 7.3K nodes (7 types), 49K edges (104 types).
#[must_use]
pub fn aifb() -> DatasetSpec {
    preset("aifb", 7_300, 7, 49_000, 104, 0.92)
}

/// AM (Amsterdam Museum): 1.9M nodes (7), 5.7M edges (108).
/// Entity compaction ratio 57% (paper §4.3).
#[must_use]
pub fn am() -> DatasetSpec {
    preset("am", 1_900_000, 7, 5_700_000, 108, 0.57)
}

/// BGS: 95K nodes (27), 673K edges (122).
#[must_use]
pub fn bgs() -> DatasetSpec {
    preset("bgs", 95_000, 27, 673_000, 122, 0.75)
}

/// OGBN-BioKG: 94K nodes (5), 4.8M edges (51).
#[must_use]
pub fn biokg() -> DatasetSpec {
    preset("biokg", 94_000, 5, 4_800_000, 51, 0.18)
}

/// FB15k: 15K nodes (1), 620K edges (474).
/// Entity compaction ratio 26% (paper §4.3).
#[must_use]
pub fn fb15k() -> DatasetSpec {
    preset("fb15k", 15_000, 1, 620_000, 474, 0.26)
}

/// OGBN-MAG: 1.9M nodes (4), 21M edges (4).
#[must_use]
pub fn mag() -> DatasetSpec {
    preset("mag", 1_900_000, 4, 21_000_000, 4, 0.43)
}

/// MUTAG: 27K nodes (5), 148K edges (50).
#[must_use]
pub fn mutag() -> DatasetSpec {
    preset("mutag", 27_000, 5, 148_000, 50, 0.72)
}

/// OGBL-WikiKG2: 2.5M nodes (1), 16M edges (535).
#[must_use]
pub fn wikikg2() -> DatasetSpec {
    preset("wikikg2", 2_500_000, 1, 16_000_000, 535, 0.78)
}

/// All eight presets in the order the paper's figures list them
/// (wikikg2, mutag, mag, fb15k, biokg, bgs, am, aifb).
#[must_use]
pub fn all() -> Vec<DatasetSpec> {
    vec![
        wikikg2(),
        mutag(),
        mag(),
        fb15k(),
        biokg(),
        bgs(),
        am(),
        aifb(),
    ]
}

/// All eight presets in alphabetical order (Table 3 order).
#[must_use]
pub fn all_alphabetical() -> Vec<DatasetSpec> {
    vec![
        aifb(),
        am(),
        bgs(),
        biokg(),
        fb15k(),
        mag(),
        mutag(),
        wikikg2(),
    ]
}

/// Looks up a preset by name.
#[must_use]
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    all_alphabetical().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_counts() {
        let a = aifb();
        assert_eq!(a.num_nodes, 7_300);
        assert_eq!(a.num_edge_types, 104);
        let f = fb15k();
        assert_eq!(f.num_nodes, 15_000);
        assert_eq!(f.num_node_types, 1);
        assert_eq!(f.num_edges, 620_000);
        let m = mag();
        assert_eq!(m.num_edges, 21_000_000);
        assert_eq!(m.num_edge_types, 4);
    }

    #[test]
    fn paper_stated_compaction_ratios() {
        assert!((am().compaction_ratio - 0.57).abs() < 1e-12);
        assert!((fb15k().compaction_ratio - 0.26).abs() < 1e-12);
    }

    #[test]
    fn all_has_eight_unique_names() {
        let names: Vec<String> = all().into_iter().map(|s| s.name).collect();
        assert_eq!(names.len(), 8);
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 8);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("biokg").is_some());
        assert!(by_name("cora").is_none());
    }

    #[test]
    fn seeds_differ_across_datasets() {
        assert_ne!(aifb().seed, am().seed);
    }

    #[test]
    fn scaled_presets_generate_quickly() {
        // All presets at 1/1000 scale should generate and validate.
        for spec in all() {
            let g = crate::generate(&spec.scaled(0.001));
            g.validate();
        }
    }
}
