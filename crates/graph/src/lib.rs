//! Heterogeneous graph substrate for the Hector RGNN compiler.
//!
//! Relational GNNs run on *heterogeneous* graphs: nodes and edges carry
//! types, and every typed operator (typed linear layers, per-relation
//! aggregation) is driven by the type structure. This crate provides:
//!
//! * [`HeteroGraph`] — typed nodes and edges with the storage layout the
//!   paper's kernels expect: edges sorted by edge type with an
//!   `etype_ptr` segment array (enabling segment matrix multiply), plus
//!   COO arrays and on-demand CSR/CSC views for traversal kernels;
//! * [`CompactionMap`] — the unique `(source node, edge type)` index used
//!   by *compact materialization* (paper §3.2.2), including the
//!   `unique_row_idx` / `unique_etype_ptr` arrays of Fig. 7(b);
//! * [`DatasetSpec`] and [`generate`] — seeded synthetic generators with
//!   presets matching the eight heterogeneous datasets of the paper's
//!   Table 3 (aifb, am, bgs, biokg, fb15k, mag, mutag, wikikg2),
//!   including their entity-compaction ratios;
//! * [`GraphStats`] — the per-dataset statistics reported in Table 3 and
//!   Fig. 10;
//! * [`NeighborSampler`] / [`Subgraph`] — seeded per-relation fanout
//!   sampling and batch subgraph extraction for mini-batch training
//!   (the PIGEON direction); batch content is a pure function of
//!   `(seed, epoch, batch index)`, independent of thread count and
//!   prefetch pipelining.
//!
//! # Example
//!
//! ```
//! use hector_graph::datasets;
//!
//! // A laptop-scale copy of the FB15k preset (1% of paper scale).
//! let spec = datasets::fb15k().scaled(0.01);
//! let graph = hector_graph::generate(&spec);
//! assert!(graph.num_edges() > 0);
//! let compact = graph.compaction_map();
//! assert!(compact.num_unique() <= graph.num_edges());
//! ```

#![warn(missing_docs)]

mod compact;
pub mod datasets;
mod generate;
mod hetero;
pub mod remap;
mod sample;
mod stats;
mod subgraph;

pub use compact::CompactionMap;
pub use generate::{generate, DatasetSpec};
pub use hetero::{Csc, Csr, HeteroGraph, HeteroGraphBuilder};
pub use remap::{extract_mapped, Extraction};
pub use sample::{batch_stream_seed, NeighborSampler, SampledBatch, SamplerConfig};
pub use stats::GraphStats;
pub use subgraph::Subgraph;
