//! Seeded neighbor sampling for mini-batch training.
//!
//! Full-graph training stops scaling once the graph outgrows the cache;
//! the mini-batch literature (PIGEON, "Accelerating Mini-batch HGNN
//! Training by Reducing CUDA Kernels") moves the cost to *sampled
//! subgraphs*: pick a batch of seed nodes, walk their incoming edges a
//! fixed number of hops with a per-relation fanout cap, and train on the
//! induced subgraph. This module provides the sampling half;
//! [`crate::Subgraph`] provides the extraction half.
//!
//! # Determinism contract
//!
//! Every stochastic choice flows through RNG streams derived from
//! `(trainer seed, epoch, batch index)` via [`batch_stream_seed`] — the
//! same discipline as the runtime's `Bindings::standard` input streams.
//! Batch `k`'s content is a pure function of the sampler's construction
//! inputs and `k`: independent of `HECTOR_THREADS`, of whether a
//! prefetch pipeline produced it ahead of time, and of how many batches
//! were drawn before it. A fixed seed therefore yields a bitwise
//! identical batch sequence under every execution configuration (pinned
//! by `tests/minibatch.rs`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Csc, HeteroGraph};

/// Configuration of the mini-batch sampler and pipeline.
///
/// `batch_size` seed nodes per batch; `fanouts[h]` caps the number of
/// in-edges sampled **per (node, relation)** at hop `h` (so a 2-relation
/// node can contribute up to `2 * fanouts[h]` edges); `pipeline` enables
/// the producer/consumer prefetch (sampling batch `k+1` on a background
/// worker while batch `k` trains — contents are bit-identical either
/// way); `epoch` selects an independent shuffle/sample stream so
/// successive epochs see different batches from the same trainer seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Seed nodes per batch (the last batch of an epoch may be smaller).
    pub batch_size: usize,
    /// Per-hop, per-relation in-edge fanout caps; `len()` is the number
    /// of hops.
    pub fanouts: Vec<usize>,
    /// Sample batch `k+1` on a background worker while batch `k` trains.
    pub pipeline: bool,
    /// Epoch index mixed into every RNG stream.
    pub epoch: u64,
}

impl SamplerConfig {
    /// A config with the given batch size, 2-hop `[10, 5]` fanouts, and
    /// the pipeline enabled.
    #[must_use]
    pub fn new(batch_size: usize) -> SamplerConfig {
        SamplerConfig {
            batch_size: batch_size.max(1),
            fanouts: vec![10, 5],
            pipeline: true,
            epoch: 0,
        }
    }

    /// Replaces the per-hop fanout caps.
    ///
    /// # Panics
    ///
    /// Panics if `fanouts` is empty (at least one hop is required).
    #[must_use]
    pub fn fanouts(mut self, fanouts: &[usize]) -> SamplerConfig {
        assert!(!fanouts.is_empty(), "at least one hop is required");
        self.fanouts = fanouts.to_vec();
        self
    }

    /// Enables or disables the prefetch pipeline.
    #[must_use]
    pub fn pipeline(mut self, on: bool) -> SamplerConfig {
        self.pipeline = on;
        self
    }

    /// Selects the epoch stream.
    #[must_use]
    pub fn epoch(mut self, epoch: u64) -> SamplerConfig {
        self.epoch = epoch;
        self
    }
}

/// One sampled batch: seed nodes, every node reached within the fanout
/// walk (seeds first, then discovery order), and the sampled original
/// edge indices (hop by hop, in walk order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SampledBatch {
    /// Batch index within the epoch.
    pub index: usize,
    /// Seed (output) nodes, original ids, in epoch-shuffle order.
    pub seeds: Vec<u32>,
    /// All sampled nodes, original ids: `seeds` first, then newly
    /// discovered sources in discovery order.
    pub nodes: Vec<u32>,
    /// Sampled edges as indices into the full graph's COO arrays.
    pub edges: Vec<u32>,
}

/// Derives the RNG stream seed for `(trainer seed, epoch, stream)`.
///
/// SplitMix64-style finalizer over a linear combination: distinct
/// `(seed, epoch, stream)` triples map to decorrelated streams, and the
/// mapping is pure — the reproducibility anchor of the whole sampler.
#[must_use]
pub fn batch_stream_seed(seed: u64, epoch: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(epoch.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(stream.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stream id of the epoch's seed-node shuffle (batch streams use the
/// batch index, so the shuffle stream sits far outside that range).
const SHUFFLE_STREAM: u64 = u64::MAX;

/// A seeded per-relation fanout sampler over a heterogeneous graph's
/// incoming edges (the CSC view — seed nodes are *destinations*, as in
/// message-passing training where seeds are the nodes whose outputs the
/// loss reads).
///
/// Construction shuffles all nodes into an epoch order and owns a CSC
/// view; [`NeighborSampler::sample`] is `&self` and pure per batch
/// index, so batches can be drawn concurrently or out of order without
/// changing any batch's content.
#[derive(Clone, Debug)]
pub struct NeighborSampler {
    csc: Csc,
    order: Vec<u32>,
    batch_size: usize,
    fanouts: Vec<usize>,
    seed: u64,
    epoch: u64,
}

impl NeighborSampler {
    /// Builds a sampler for `graph` from the given config and trainer
    /// seed (see the module-level determinism contract).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.fanouts` is empty.
    #[must_use]
    pub fn new(graph: &HeteroGraph, cfg: &SamplerConfig, seed: u64) -> NeighborSampler {
        assert!(!cfg.fanouts.is_empty(), "at least one hop is required");
        let n = graph.num_nodes();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut rng = StdRng::seed_from_u64(batch_stream_seed(seed, cfg.epoch, SHUFFLE_STREAM));
        // Fisher–Yates from the epoch shuffle stream.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        NeighborSampler {
            csc: graph.csc(),
            order,
            batch_size: cfg.batch_size.max(1),
            fanouts: cfg.fanouts.clone(),
            seed,
            epoch: cfg.epoch,
        }
    }

    /// Number of batches in one epoch (`ceil(num_nodes / batch_size)`).
    #[must_use]
    pub fn num_batches(&self) -> usize {
        self.order.len().div_ceil(self.batch_size)
    }

    /// Seed nodes of batch `k` (original ids, epoch-shuffle order).
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_batches()`.
    #[must_use]
    pub fn batch_seeds(&self, k: usize) -> &[u32] {
        let lo = k * self.batch_size;
        let hi = (lo + self.batch_size).min(self.order.len());
        &self.order[lo..hi]
    }

    /// Samples batch `k`: expands the seed frontier hop by hop, capping
    /// sampled in-edges per `(node, relation)` at the hop's fanout.
    /// Pure in `k` — see the module-level determinism contract.
    ///
    /// # Panics
    ///
    /// Panics if `k >= num_batches()`.
    #[must_use]
    pub fn sample(&self, graph: &HeteroGraph, k: usize) -> SampledBatch {
        let mut rng = StdRng::seed_from_u64(batch_stream_seed(self.seed, self.epoch, k as u64));
        let seeds: Vec<u32> = self.batch_seeds(k).to_vec();
        let mut visited = vec![false; graph.num_nodes()];
        let mut nodes = seeds.clone();
        for &s in &seeds {
            visited[s as usize] = true;
        }
        let mut edges: Vec<u32> = Vec::new();
        let mut frontier_lo = 0usize;
        let mut pick: Vec<u32> = Vec::new();
        for &fanout in &self.fanouts {
            let frontier_hi = nodes.len();
            for &node in &nodes[frontier_lo..frontier_hi] {
                let v = node as usize;
                let in_edges = self.csc.in_edges(v);
                // In-edges of one node are ascending edge indices, and
                // edges are globally sorted by relation — so the slice is
                // grouped by relation; walk each contiguous group.
                let mut g = 0usize;
                while g < in_edges.len() {
                    let ty = graph.etype()[in_edges[g] as usize];
                    let mut g_end = g + 1;
                    while g_end < in_edges.len() && graph.etype()[in_edges[g_end] as usize] == ty {
                        g_end += 1;
                    }
                    let group = &in_edges[g..g_end];
                    if group.len() <= fanout {
                        pick.extend_from_slice(group);
                    } else {
                        // Partial Fisher–Yates: the first `fanout`
                        // positions of a shuffle, in shuffle order.
                        pick.extend_from_slice(group);
                        let base = pick.len() - group.len();
                        for i in 0..fanout {
                            let j = rng.gen_range(i..group.len());
                            pick.swap(base + i, base + j);
                        }
                        pick.truncate(base + fanout);
                    }
                    g = g_end;
                }
            }
            for &e in &pick {
                let s = graph.src()[e as usize];
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    nodes.push(s);
                }
            }
            edges.append(&mut pick);
            frontier_lo = frontier_hi;
            if frontier_lo == nodes.len() {
                break; // no new nodes — further hops sample nothing new
            }
        }
        SampledBatch {
            index: k,
            seeds,
            nodes,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetSpec};

    fn graph() -> HeteroGraph {
        generate(&DatasetSpec {
            name: "sample".into(),
            num_nodes: 120,
            num_node_types: 3,
            num_edges: 900,
            num_edge_types: 4,
            compaction_ratio: 0.5,
            type_skew: 1.0,
            seed: 5,
        })
    }

    #[test]
    fn batches_cover_all_nodes_once_per_epoch() {
        let g = graph();
        let cfg = SamplerConfig::new(32);
        let s = NeighborSampler::new(&g, &cfg, 7);
        assert_eq!(s.num_batches(), 4);
        let mut seen = vec![0usize; g.num_nodes()];
        for k in 0..s.num_batches() {
            for &n in s.batch_seeds(k) {
                seen[n as usize] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each node seeds exactly once");
    }

    #[test]
    fn sample_is_pure_per_batch_index() {
        let g = graph();
        let cfg = SamplerConfig::new(16).fanouts(&[3, 2]);
        let s = NeighborSampler::new(&g, &cfg, 11);
        let a = s.sample(&g, 2);
        // Drawing other batches first (or again) cannot perturb batch 2.
        let _ = s.sample(&g, 0);
        let _ = s.sample(&g, 3);
        let b = s.sample(&g, 2);
        assert_eq!(a, b);
        // And a rebuilt sampler reproduces it bitwise.
        let s2 = NeighborSampler::new(&g, &cfg, 11);
        assert_eq!(s2.sample(&g, 2), a);
    }

    #[test]
    fn distinct_seeds_epochs_diverge() {
        let g = graph();
        let cfg = SamplerConfig::new(16).fanouts(&[3]);
        let a = NeighborSampler::new(&g, &cfg, 1).sample(&g, 0);
        let b = NeighborSampler::new(&g, &cfg, 2).sample(&g, 0);
        let c = NeighborSampler::new(&g, &cfg.clone().epoch(1), 1).sample(&g, 0);
        assert_ne!(a, b, "different trainer seeds must differ");
        assert_ne!(a, c, "different epochs must differ");
    }

    #[test]
    fn fanout_caps_per_node_relation() {
        let g = graph();
        let fanout = 2usize;
        let cfg = SamplerConfig::new(24).fanouts(&[fanout]);
        let s = NeighborSampler::new(&g, &cfg, 3);
        let batch = s.sample(&g, 0);
        let mut count = std::collections::HashMap::new();
        for &e in &batch.edges {
            let key = (g.dst()[e as usize], g.etype()[e as usize]);
            *count.entry(key).or_insert(0usize) += 1;
        }
        assert!(count.values().all(|&c| c <= fanout));
        // Sampled edges are unique.
        let mut uniq = batch.edges.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), batch.edges.len());
    }

    #[test]
    fn nodes_start_with_seeds_and_cover_endpoints() {
        let g = graph();
        let cfg = SamplerConfig::new(16).fanouts(&[4, 4]);
        let s = NeighborSampler::new(&g, &cfg, 9);
        let batch = s.sample(&g, 1);
        assert_eq!(&batch.nodes[..batch.seeds.len()], &batch.seeds[..]);
        let set: std::collections::HashSet<u32> = batch.nodes.iter().copied().collect();
        assert_eq!(set.len(), batch.nodes.len(), "nodes are unique");
        for &e in &batch.edges {
            assert!(set.contains(&g.src()[e as usize]));
            assert!(set.contains(&g.dst()[e as usize]));
        }
    }
}
