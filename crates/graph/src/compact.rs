//! Compact materialization index: unique `(source node, edge type)` pairs.
//!
//! Paper §3.2.2: certain edgewise tensors (e.g. HGT/RGAT edge messages)
//! depend only on the source node and the edge type. Rather than storing
//! one row per *edge*, compact materialization stores one row per unique
//! `(source node, edge type)` pair and indirects edge accesses through a
//! precomputed CSR-like mapping. This both eliminates repeated identical
//! GEMM rows and shrinks the materialised tensor, which is what removes
//! the paper's out-of-memory failures (Table 4, Fig. 10).

use crate::HeteroGraph;

/// Precomputed mapping between edges and unique `(src, etype)` pairs.
///
/// Mirrors the arrays of paper Fig. 7(b):
/// * `unique_row_idx` — for each unique pair, the source node whose
///   features feed the GEMM gather stage;
/// * `unique_etype_ptr` — offsets of each edge type's unique pairs, so the
///   per-type weight can be applied segment-wise;
/// * `edge_to_unique` — for each edge, the row of the compact tensor that
///   holds its data (used by downstream edgewise consumers).
#[derive(Clone, Debug)]
pub struct CompactionMap {
    unique_row_idx: Vec<u32>,
    unique_etype_ptr: Vec<usize>,
    edge_to_unique: Vec<u32>,
}

impl CompactionMap {
    /// Builds the map for `graph` in `O(E log E)`.
    ///
    /// Edges are already sorted by edge type, so unique pairs are found by
    /// sorting each type's source list and de-duplicating.
    #[must_use]
    pub fn build(graph: &HeteroGraph) -> CompactionMap {
        let num_et = graph.num_edge_types();
        let mut unique_row_idx = Vec::new();
        let mut unique_etype_ptr = vec![0usize; num_et + 1];
        let mut edge_to_unique = vec![0u32; graph.num_edges()];
        for t in 0..num_et {
            let lo = graph.etype_ptr()[t];
            let hi = graph.etype_ptr()[t + 1];
            // Sort this type's edge indices by source node.
            let mut order: Vec<usize> = (lo..hi).collect();
            order.sort_by_key(|&e| graph.src()[e]);
            let mut last_src = u32::MAX;
            for &e in &order {
                let s = graph.src()[e];
                if s != last_src {
                    unique_row_idx.push(s);
                    last_src = s;
                }
                edge_to_unique[e] = (unique_row_idx.len() - 1) as u32;
            }
            unique_etype_ptr[t + 1] = unique_row_idx.len();
        }
        CompactionMap {
            unique_row_idx,
            unique_etype_ptr,
            edge_to_unique,
        }
    }

    /// Number of unique `(src, etype)` pairs — the row count of a
    /// compact-materialised tensor.
    #[must_use]
    pub fn num_unique(&self) -> usize {
        self.unique_row_idx.len()
    }

    /// Source node of each unique pair (the paper's `unique_row_idx`
    /// gather list).
    #[must_use]
    pub fn unique_row_idx(&self) -> &[u32] {
        &self.unique_row_idx
    }

    /// Edge type of each unique pair, recoverable from the segment
    /// pointers; materialised on demand for kernels that need it.
    #[must_use]
    pub fn unique_etype(&self) -> Vec<u32> {
        let mut out = vec![0u32; self.num_unique()];
        for t in 0..self.unique_etype_ptr.len() - 1 {
            out[self.unique_etype_ptr[t]..self.unique_etype_ptr[t + 1]].fill(t as u32);
        }
        out
    }

    /// Offsets of each edge type's unique pairs (the paper's
    /// `unique_etype_ptr` scatter base).
    #[must_use]
    pub fn unique_etype_ptr(&self) -> &[usize] {
        &self.unique_etype_ptr
    }

    /// For each edge, the compact row holding its `(src, etype)` data.
    #[must_use]
    pub fn edge_to_unique(&self) -> &[u32] {
        &self.edge_to_unique
    }

    /// The *entity compaction ratio* of paper §4.3: unique pairs divided
    /// by edges. Lower means more redundancy eliminated.
    #[must_use]
    pub fn ratio(&self) -> f64 {
        if self.edge_to_unique.is_empty() {
            1.0
        } else {
            self.num_unique() as f64 / self.edge_to_unique.len() as f64
        }
    }

    /// Checks internal consistency against the owning graph.
    ///
    /// # Panics
    ///
    /// Panics if any edge maps to a unique pair with a different source or
    /// edge type, or if segment pointers are inconsistent.
    pub fn validate(&self, graph: &HeteroGraph) {
        assert_eq!(self.edge_to_unique.len(), graph.num_edges());
        assert_eq!(self.unique_etype_ptr.len(), graph.num_edge_types() + 1);
        assert_eq!(*self.unique_etype_ptr.last().unwrap(), self.num_unique());
        let ety = self.unique_etype();
        for e in 0..graph.num_edges() {
            let u = self.edge_to_unique[e] as usize;
            assert_eq!(
                self.unique_row_idx[u],
                graph.src()[e],
                "edge {e} src mismatch"
            );
            assert_eq!(ety[u], graph.etype()[e], "edge {e} etype mismatch");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeteroGraphBuilder;

    /// Fig. 6(a)/Fig. 7 example: 7 edges but only 5 unique (src,etype)
    /// pairs, because b writes... rather α writes twice and b cites twice.
    fn figure7_graph() -> HeteroGraph {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(6); // 0,1,2,a=3,b=4,α=5
        b.add_edge(5, 3, 0); // α writes a
        b.add_edge(5, 4, 0); // α writes b
        b.add_edge(1, 0, 1); // cites
        b.add_edge(2, 0, 1);
        b.add_edge(3, 0, 1); // a cites 0
        b.add_edge(4, 1, 1); // b cites 1
        b.add_edge(4, 2, 1); // b cites 2
        b.build()
    }

    #[test]
    fn compaction_matches_paper_example() {
        let g = figure7_graph();
        let c = g.compaction_map();
        // Unique pairs: (α,writes), (1,cites), (2,cites), (a,cites), (b,cites) = 5.
        assert_eq!(c.num_unique(), 5);
        assert_eq!(g.num_edges(), 7);
        assert!((c.ratio() - 5.0 / 7.0).abs() < 1e-12);
        c.validate(&g);
    }

    #[test]
    fn duplicate_edges_share_compact_rows() {
        let g = figure7_graph();
        let c = g.compaction_map();
        // Edges 0 and 1 (α writes a / α writes b) share (α, writes).
        assert_eq!(c.edge_to_unique()[0], c.edge_to_unique()[1]);
        // Edges 5 and 6 (b cites 1 / b cites 2) share (b, cites).
        assert_eq!(c.edge_to_unique()[5], c.edge_to_unique()[6]);
        // Edges 2 and 3 (1 cites 0 / 2 cites 0) do NOT share.
        assert_ne!(c.edge_to_unique()[2], c.edge_to_unique()[3]);
    }

    #[test]
    fn unique_etype_segments() {
        let g = figure7_graph();
        let c = g.compaction_map();
        assert_eq!(c.unique_etype_ptr(), &[0, 1, 5]);
        assert_eq!(c.unique_etype(), vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn ratio_is_one_without_duplicates() {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(3);
        b.add_edge(0, 1, 0);
        b.add_edge(1, 2, 0);
        b.add_edge(2, 0, 1);
        let g = b.build();
        let c = g.compaction_map();
        assert_eq!(c.num_unique(), 3);
        assert!((c.ratio() - 1.0).abs() < 1e-12);
        c.validate(&g);
    }

    #[test]
    fn empty_graph_ratio_is_one() {
        let g = HeteroGraphBuilder::new().build();
        let c = g.compaction_map();
        assert_eq!(c.num_unique(), 0);
        assert!((c.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_src_different_etype_not_compacted() {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(2);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 1, 1);
        let g = b.build();
        let c = g.compaction_map();
        assert_eq!(c.num_unique(), 2, "pairs differ in etype");
    }
}
