//! Subgraph extraction for sampled mini-batches.
//!
//! A [`SampledBatch`](crate::SampledBatch) names nodes and edges of the
//! full graph; training needs them re-packed as a small, self-contained
//! [`HeteroGraph`] in the same kernel-ready layout (type-sorted nodes,
//! relation-sorted edges, segment pointers). [`Subgraph::extract`] does
//! that and records the remap tables (`node_map`, `edge_map`) that slice
//! full-graph features, labels, and edge data into batch order.
//!
//! Two layout properties make the extraction cheap and deterministic:
//!
//! * full-graph node ids are sorted by node type, so sorting the sampled
//!   node ids ascending automatically groups them by type — the local id
//!   order *is* the type-segmented order;
//! * full-graph edges are sorted by relation and the builder's sort is
//!   stable, so inserting sampled edges in ascending original order
//!   reproduces relation-sorted COO with local edge `i` ↔ `edge_map[i]`.
//!
//! The subgraph always declares the **full graph's type counts** —
//! relations or node types absent from the batch get empty segments (via
//! [`HeteroGraphBuilder::reserve_edge_types`](crate::HeteroGraphBuilder::reserve_edge_types)
//! and zero-count node-type declarations) — so per-relation and per-type
//! parameter stacks keep their shapes across every batch and one
//! parameter store serves the whole epoch.

use crate::remap::extract_mapped;
use crate::{HeteroGraph, SampledBatch};

/// A sampled batch re-packed as a self-contained [`HeteroGraph`], plus
/// the remap tables tying local ids back to the full graph.
#[derive(Clone, Debug)]
pub struct Subgraph {
    graph: HeteroGraph,
    node_map: Vec<u32>,
    edge_map: Vec<u32>,
    seed_local: Vec<u32>,
}

impl Subgraph {
    /// Extracts `batch` from `full` (see module docs for layout and
    /// type-count guarantees).
    ///
    /// # Panics
    ///
    /// Panics if the batch references ids outside `full`.
    #[must_use]
    pub fn extract(full: &HeteroGraph, batch: &SampledBatch) -> Subgraph {
        // Ascending original node ids == type-grouped local order;
        // ascending original edge ids == relation-grouped local order.
        // The re-pack itself is the audited shared helper (also used by
        // shard halo extraction).
        let mut node_map = batch.nodes.clone();
        node_map.sort_unstable();
        debug_assert!(node_map.windows(2).all(|w| w[0] < w[1]), "duplicate node");
        let mut edge_map = batch.edges.clone();
        edge_map.sort_unstable();

        let ex = extract_mapped(full, node_map, edge_map);
        let seed_local = batch.seeds.iter().map(|&s| ex.local_node(s)).collect();
        Subgraph {
            graph: ex.graph,
            node_map: ex.node_map,
            edge_map: ex.edge_map,
            seed_local,
        }
    }

    /// The extracted graph (local ids).
    #[must_use]
    pub fn graph(&self) -> &HeteroGraph {
        &self.graph
    }

    /// Original node id of each local node (`node_map[local] = original`;
    /// strictly ascending).
    #[must_use]
    pub fn node_map(&self) -> &[u32] {
        &self.node_map
    }

    /// Original edge index of each local edge (strictly ascending).
    #[must_use]
    pub fn edge_map(&self) -> &[u32] {
        &self.edge_map
    }

    /// Local ids of the batch's seed nodes, in the batch's seed order —
    /// the rows whose outputs the loss should read.
    #[must_use]
    pub fn seed_local(&self) -> &[u32] {
        &self.seed_local
    }

    /// Gathers per-node rows from a full-graph array into batch-local
    /// order: `out[local * width ..]` gets `src[node_map[local] * width ..]`.
    ///
    /// # Panics
    ///
    /// Panics if `src`/`out` are shorter than the implied row counts.
    pub fn gather_node_rows(&self, src: &[f32], out: &mut [f32], width: usize) {
        for (local, &orig) in self.node_map.iter().enumerate() {
            let o = orig as usize * width;
            out[local * width..(local + 1) * width].copy_from_slice(&src[o..o + width]);
        }
    }

    /// Gathers per-node values (e.g. labels) into batch-local order.
    #[must_use]
    pub fn gather_node_values<T: Copy>(&self, src: &[T]) -> Vec<T> {
        self.node_map.iter().map(|&o| src[o as usize]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetSpec, NeighborSampler, SamplerConfig};

    fn graph() -> HeteroGraph {
        generate(&DatasetSpec {
            name: "subgraph".into(),
            num_nodes: 150,
            num_node_types: 3,
            num_edges: 1100,
            num_edge_types: 5,
            compaction_ratio: 0.6,
            type_skew: 1.2,
            seed: 21,
        })
    }

    #[test]
    fn extract_preserves_type_counts_and_structure() {
        let g = graph();
        let cfg = SamplerConfig::new(20).fanouts(&[4, 3]);
        let s = NeighborSampler::new(&g, &cfg, 13);
        for k in 0..s.num_batches().min(3) {
            let batch = s.sample(&g, k);
            let sub = Subgraph::extract(&g, &batch);
            sub.graph().validate();
            assert_eq!(sub.graph().num_edge_types(), g.num_edge_types());
            assert_eq!(sub.graph().num_node_types(), g.num_node_types());
            assert_eq!(sub.graph().num_nodes(), batch.nodes.len());
            assert_eq!(sub.graph().num_edges(), batch.edges.len());
        }
    }

    #[test]
    fn remap_is_edge_exact() {
        let g = graph();
        let cfg = SamplerConfig::new(16).fanouts(&[3, 2]);
        let s = NeighborSampler::new(&g, &cfg, 29);
        let batch = s.sample(&g, 1);
        let sub = Subgraph::extract(&g, &batch);
        for le in 0..sub.graph().num_edges() {
            let oe = sub.edge_map()[le] as usize;
            assert_eq!(
                sub.node_map()[sub.graph().src()[le] as usize],
                g.src()[oe],
                "src remap mismatch at local edge {le}"
            );
            assert_eq!(sub.node_map()[sub.graph().dst()[le] as usize], g.dst()[oe]);
            assert_eq!(sub.graph().etype()[le], g.etype()[oe]);
        }
        // Node types survive the remap.
        for (l, &o) in sub.node_map().iter().enumerate() {
            assert_eq!(
                sub.graph().node_type()[l],
                g.node_type()[o as usize],
                "node type remap mismatch at local node {l}"
            );
        }
    }

    #[test]
    fn seed_rows_resolve_and_gather_round_trips() {
        let g = graph();
        let cfg = SamplerConfig::new(16).fanouts(&[3]);
        let s = NeighborSampler::new(&g, &cfg, 31);
        let batch = s.sample(&g, 0);
        let sub = Subgraph::extract(&g, &batch);
        assert_eq!(sub.seed_local().len(), batch.seeds.len());
        for (i, &l) in sub.seed_local().iter().enumerate() {
            assert_eq!(sub.node_map()[l as usize], batch.seeds[i]);
        }
        // gather_node_rows: row v of the full array is v broadcast.
        let width = 3;
        let full: Vec<f32> = (0..g.num_nodes())
            .flat_map(|v| std::iter::repeat_n(v as f32, width))
            .collect();
        let mut out = vec![0.0f32; sub.graph().num_nodes() * width];
        sub.gather_node_rows(&full, &mut out, width);
        for (l, &o) in sub.node_map().iter().enumerate() {
            assert!(out[l * width..(l + 1) * width]
                .iter()
                .all(|&x| x == o as f32));
        }
        // gather_node_values round-trips labels.
        let labels: Vec<usize> = (0..g.num_nodes()).map(|v| v % 7).collect();
        let got = sub.gather_node_values(&labels);
        for (l, &o) in sub.node_map().iter().enumerate() {
            assert_eq!(got[l], labels[o as usize]);
        }
    }

    #[test]
    fn empty_relations_keep_segment_pointers() {
        // A batch that samples zero edges still yields a graph with the
        // full relation count and all-empty segments.
        let g = graph();
        let batch = SampledBatch {
            index: 0,
            seeds: vec![0, 1],
            nodes: vec![0, 1],
            edges: vec![],
        };
        let sub = Subgraph::extract(&g, &batch);
        assert_eq!(sub.graph().num_edge_types(), g.num_edge_types());
        assert_eq!(sub.graph().num_edges(), 0);
        assert_eq!(sub.graph().etype_ptr().len(), g.num_edge_types() + 1);
    }
}
