//! The shared remap-table extraction underneath every "take these nodes
//! and edges of the full graph and re-pack them as a self-contained
//! [`HeteroGraph`]" operation in the workspace.
//!
//! Two consumers exist today — mini-batch [`Subgraph`](crate::Subgraph)
//! extraction and shard halo extraction (`hector-shard`) — and both rely
//! on the same two layout properties of the full graph:
//!
//! * full-graph node ids are sorted by node type, so an **ascending**
//!   original-id order automatically groups local nodes by type — the
//!   local id order *is* the type-segmented order;
//! * full-graph edges are sorted by relation and the builder's sort is
//!   stable, so inserting edges in ascending original order reproduces
//!   relation-sorted COO with local edge `i` ↔ `edge_map[i]`, preserving
//!   the **relative original edge order within every relation**. That
//!   last property is what makes extraction-based execution bit-exact:
//!   per-destination aggregation visits the same contributions in the
//!   same order as a full-graph run.
//!
//! The extracted graph always declares the **full graph's type counts**
//! (empty segments included), so per-relation and per-type parameter
//! stacks keep their shapes across every extraction and one parameter
//! store serves them all.

use crate::{HeteroGraph, HeteroGraphBuilder};

/// A re-packed induced graph plus the remap tables tying local ids back
/// to the full graph. Produced by [`extract_mapped`].
#[derive(Clone, Debug)]
pub struct Extraction {
    /// The extracted graph (local ids; full type counts declared).
    pub graph: HeteroGraph,
    /// Original node id of each local node (`node_map[local] = original`;
    /// strictly ascending).
    pub node_map: Vec<u32>,
    /// Original edge index of each local edge (strictly ascending).
    pub edge_map: Vec<u32>,
}

impl Extraction {
    /// Local id of an original node.
    ///
    /// # Panics
    ///
    /// Panics if `orig` is not in the extraction's node set.
    #[must_use]
    pub fn local_node(&self, orig: u32) -> u32 {
        self.node_map
            .binary_search(&orig)
            .expect("node not extracted") as u32
    }

    /// Whether an original node is in the extraction's node set.
    #[must_use]
    pub fn contains_node(&self, orig: u32) -> bool {
        self.node_map.binary_search(&orig).is_ok()
    }
}

/// Extracts the given node and edge id sets of `full` as a
/// self-contained [`HeteroGraph`] (see module docs for the layout and
/// type-count guarantees).
///
/// `node_map` must be strictly ascending (sorted, deduplicated) original
/// node ids; `edge_map` must be strictly ascending original edge
/// indices, and every extracted edge's endpoints must be in `node_map`.
///
/// # Panics
///
/// Panics if the maps reference ids outside `full`, if an edge endpoint
/// is missing from `node_map`, or if `node_map` contains duplicates.
#[must_use]
pub fn extract_mapped(full: &HeteroGraph, node_map: Vec<u32>, edge_map: Vec<u32>) -> Extraction {
    debug_assert!(
        node_map.windows(2).all(|w| w[0] < w[1]),
        "node_map must be strictly ascending"
    );
    debug_assert!(
        edge_map.windows(2).all(|w| w[0] < w[1]),
        "edge_map must be strictly ascending"
    );
    let local =
        |orig: u32| -> u32 { node_map.binary_search(&orig).expect("node not extracted") as u32 };

    let mut b = HeteroGraphBuilder::new();
    // Declare every full-graph node type, empty segments included. The
    // ascending node_map is type-grouped, so each type's local count is
    // one partition_point window over the original type boundaries.
    let ntype_ptr = full.ntype_ptr();
    for t in 0..full.num_node_types() {
        let lo = node_map.partition_point(|&n| (n as usize) < ntype_ptr[t]);
        let hi = node_map.partition_point(|&n| (n as usize) < ntype_ptr[t + 1]);
        b.add_node_type(hi - lo);
    }
    b.reserve_edge_types(full.num_edge_types());
    for &e in &edge_map {
        let e = e as usize;
        b.add_edge(local(full.src()[e]), local(full.dst()[e]), full.etype()[e]);
    }
    let graph = b.build();
    debug_assert_eq!(graph.num_edge_types(), full.num_edge_types());
    debug_assert_eq!(graph.num_node_types(), full.num_node_types());

    Extraction {
        graph,
        node_map,
        edge_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetSpec};

    fn graph() -> HeteroGraph {
        generate(&DatasetSpec {
            name: "remap".into(),
            num_nodes: 120,
            num_node_types: 3,
            num_edges: 900,
            num_edge_types: 4,
            compaction_ratio: 0.5,
            type_skew: 1.3,
            seed: 33,
        })
    }

    #[test]
    fn extraction_is_edge_exact_and_type_preserving() {
        let g = graph();
        // Every third node, plus all edges fully inside that set.
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).filter(|n| n % 3 != 1).collect();
        let inside = |n: u32| nodes.binary_search(&n).is_ok();
        let edges: Vec<u32> = (0..g.num_edges() as u32)
            .filter(|&e| inside(g.src()[e as usize]) && inside(g.dst()[e as usize]))
            .collect();
        let ex = extract_mapped(&g, nodes.clone(), edges.clone());
        ex.graph.validate();
        assert_eq!(ex.graph.num_nodes(), nodes.len());
        assert_eq!(ex.graph.num_edges(), edges.len());
        assert_eq!(ex.graph.num_node_types(), g.num_node_types());
        assert_eq!(ex.graph.num_edge_types(), g.num_edge_types());
        for le in 0..ex.graph.num_edges() {
            let oe = ex.edge_map[le] as usize;
            assert_eq!(ex.node_map[ex.graph.src()[le] as usize], g.src()[oe]);
            assert_eq!(ex.node_map[ex.graph.dst()[le] as usize], g.dst()[oe]);
            assert_eq!(ex.graph.etype()[le], g.etype()[oe]);
        }
        for (l, &o) in ex.node_map.iter().enumerate() {
            assert_eq!(ex.graph.node_type()[l], g.node_type()[o as usize]);
            assert_eq!(ex.local_node(o), l as u32);
        }
    }

    #[test]
    fn relative_edge_order_within_relations_is_preserved() {
        let g = graph();
        let nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        let edges: Vec<u32> = (0..g.num_edges() as u32).filter(|e| e % 2 == 0).collect();
        let ex = extract_mapped(&g, nodes, edges);
        // Local edges ascend in original index within each relation
        // segment (the bit-exactness precondition).
        for t in 0..ex.graph.num_edge_types() {
            let (lo, hi) = (ex.graph.etype_ptr()[t], ex.graph.etype_ptr()[t + 1]);
            assert!(ex.edge_map[lo..hi].windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_sets_keep_full_type_counts() {
        let g = graph();
        let ex = extract_mapped(&g, vec![0, 1], Vec::new());
        assert_eq!(ex.graph.num_edges(), 0);
        assert_eq!(ex.graph.num_node_types(), g.num_node_types());
        assert_eq!(ex.graph.etype_ptr().len(), g.num_edge_types() + 1);
        assert!(!ex.contains_node(5));
    }
}
