//! Graph statistics reporting (paper Table 3 and the scatter series of
//! Fig. 10).

use crate::HeteroGraph;

/// Summary statistics of a heterogeneous graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Dataset name (empty when computed from an anonymous graph).
    pub name: String,
    /// Total nodes.
    pub num_nodes: usize,
    /// Node type count.
    pub num_node_types: usize,
    /// Total edges.
    pub num_edges: usize,
    /// Edge type count.
    pub num_edge_types: usize,
    /// Average degree (`edges / nodes`).
    pub avg_degree: f64,
    /// Entity compaction ratio: unique `(src, etype)` pairs / edges.
    pub compaction_ratio: f64,
}

impl GraphStats {
    /// Computes statistics for `graph`, labelling them with `name`.
    #[must_use]
    pub fn of(name: &str, graph: &HeteroGraph) -> GraphStats {
        GraphStats {
            name: name.to_string(),
            num_nodes: graph.num_nodes(),
            num_node_types: graph.num_node_types(),
            num_edges: graph.num_edges(),
            num_edge_types: graph.num_edge_types(),
            avg_degree: graph.avg_degree(),
            compaction_ratio: graph.compaction_map().ratio(),
        }
    }

    /// Formats counts with K/M suffixes like the paper's Table 3
    /// ("7.3K", "5.7M").
    #[must_use]
    pub fn humanize(n: usize) -> String {
        if n >= 1_000_000 {
            format!("{:.1}M", n as f64 / 1e6)
        } else if n >= 1_000 {
            format!("{:.1}K", n as f64 / 1e3)
        } else {
            n.to_string()
        }
    }

    /// One table row in the style of Table 3:
    /// `name  #nodes (#types)  #edges (#types)`.
    #[must_use]
    pub fn table_row(&self) -> String {
        format!(
            "{:<10} {:>8} ({:>3}) {:>8} ({:>3})  deg={:>6.1}  compact={:.2}",
            self.name,
            Self::humanize(self.num_nodes),
            self.num_node_types,
            Self::humanize(self.num_edges),
            self.num_edge_types,
            self.avg_degree,
            self.compaction_ratio,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeteroGraphBuilder;

    #[test]
    fn humanize_suffixes() {
        assert_eq!(GraphStats::humanize(950), "950");
        assert_eq!(GraphStats::humanize(7_300), "7.3K");
        assert_eq!(GraphStats::humanize(5_700_000), "5.7M");
    }

    #[test]
    fn stats_of_small_graph() {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(2);
        b.add_node_type(2);
        b.add_edge(0, 1, 0);
        b.add_edge(0, 2, 0);
        b.add_edge(3, 2, 1);
        let g = b.build();
        let s = GraphStats::of("toy", &g);
        assert_eq!(s.num_nodes, 4);
        assert_eq!(s.num_edges, 3);
        assert_eq!(s.num_node_types, 2);
        assert_eq!(s.num_edge_types, 2);
        assert!((s.avg_degree - 0.75).abs() < 1e-12);
        assert!(s.table_row().contains("toy"));
    }
}
