//! Property-based tests for the graph substrate.

use hector_graph::{generate, DatasetSpec, HeteroGraphBuilder};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = DatasetSpec> {
    (
        8usize..200,  // nodes
        1usize..5,    // node types
        4usize..400,  // edges
        1usize..12,   // edge types
        0.1f64..=1.0, // compaction ratio
        0.0f64..2.0,  // skew
        any::<u64>(), // seed
    )
        .prop_map(|(n, nt, e, et, cr, skew, seed)| DatasetSpec {
            name: "prop".into(),
            num_nodes: n,
            num_node_types: nt.min(n),
            num_edges: e,
            num_edge_types: et.min(e),
            compaction_ratio: cr,
            type_skew: skew,
            seed,
        })
}

proptest! {
    #[test]
    fn generated_graphs_satisfy_invariants(spec in arb_spec()) {
        let g = generate(&spec);
        g.validate();
        prop_assert_eq!(g.num_nodes(), spec.num_nodes);
        prop_assert_eq!(g.num_edges(), spec.num_edges);
    }

    #[test]
    fn compaction_map_is_consistent(spec in arb_spec()) {
        let g = generate(&spec);
        let c = g.compaction_map();
        c.validate(&g);
        // Ratio is bounded by construction.
        prop_assert!(c.ratio() > 0.0 && c.ratio() <= 1.0 + 1e-12);
        // Unique pairs never exceed edges, and cover all edges.
        prop_assert!(c.num_unique() <= g.num_edges());
        if g.num_edges() > 0 {
            let max = c.edge_to_unique().iter().copied().max().unwrap() as usize;
            prop_assert_eq!(max + 1, c.num_unique(), "compact rows must be dense");
        }
    }

    #[test]
    fn csc_covers_every_edge_exactly_once(spec in arb_spec()) {
        let g = generate(&spec);
        let csc = g.csc();
        let mut seen = vec![false; g.num_edges()];
        for v in 0..g.num_nodes() {
            for &e in csc.in_edges(v) {
                prop_assert_eq!(g.dst()[e as usize] as usize, v);
                prop_assert!(!seen[e as usize], "edge listed twice");
                seen[e as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn csr_degrees_match_in_degree_counts(spec in arb_spec()) {
        let g = generate(&spec);
        let csr = g.csr();
        let mut out_deg = vec![0usize; g.num_nodes()];
        for &s in g.src() {
            out_deg[s as usize] += 1;
        }
        for (v, &deg) in out_deg.iter().enumerate() {
            prop_assert_eq!(csr.edges(v).len(), deg);
        }
    }

    #[test]
    fn in_degree_per_rel_sums_to_in_degree(spec in arb_spec()) {
        let g = generate(&spec);
        let per_rel = g.in_degree_per_rel();
        let total = g.in_degree();
        for v in 0..g.num_nodes() {
            let s: u32 = per_rel[v * g.num_edge_types()..(v + 1) * g.num_edge_types()]
                .iter()
                .sum();
            prop_assert_eq!(s, total[v]);
        }
    }

    #[test]
    fn builder_accepts_any_insertion_order(
        edges in proptest::collection::vec((0u32..10, 0u32..10, 0u32..4), 0..60)
    ) {
        let mut b = HeteroGraphBuilder::new();
        b.add_node_type(10);
        for &(s, d, t) in &edges {
            b.add_edge(s, d, t);
        }
        let g = b.build();
        g.validate();
        prop_assert_eq!(g.num_edges(), edges.len());
    }
}
