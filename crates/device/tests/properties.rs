//! Property-based tests for the simulated device.

use hector_device::{DeviceConfig, KernelCategory, KernelCost, MemoryPool, Phase};
use proptest::prelude::*;

fn arb_cost() -> impl Strategy<Value = KernelCost> {
    (
        0.0f64..1e12,
        0.0f64..1e10,
        0.0f64..1e10,
        0.0f64..1e8,
        1.0f64..1e7,
        any::<bool>(),
    )
        .prop_map(|(flops, br, bw, atomics, items, backward)| {
            let mut c = KernelCost::new(
                KernelCategory::Gemm,
                if backward {
                    Phase::Backward
                } else {
                    Phase::Forward
                },
            );
            c.flops = flops;
            c.bytes_read = br;
            c.bytes_written = bw;
            c.atomic_ops = atomics;
            c.items = items;
            c
        })
}

proptest! {
    #[test]
    fn duration_is_positive_and_at_least_launch_overhead(c in arb_cost()) {
        let cfg = DeviceConfig::rtx3090();
        let d = c.duration_us(&cfg);
        prop_assert!(d.is_finite());
        prop_assert!(d >= cfg.kernel_launch_us);
    }

    #[test]
    fn duration_monotone_in_every_resource(c in arb_cost()) {
        let cfg = DeviceConfig::rtx3090();
        let base = c.duration_us(&cfg);
        let mut more_flops = c.clone();
        more_flops.flops *= 2.0;
        prop_assert!(more_flops.duration_us(&cfg) >= base - 1e-9);
        let mut more_bytes = c.clone();
        more_bytes.bytes_read *= 2.0;
        prop_assert!(more_bytes.duration_us(&cfg) >= base - 1e-9);
        let mut more_atomics = c.clone();
        more_atomics.atomic_ops = more_atomics.atomic_ops * 2.0 + 1.0;
        prop_assert!(more_atomics.duration_us(&cfg) >= base - 1e-9);
    }

    #[test]
    fn ipc_bounded_by_ideal(c in arb_cost()) {
        let cfg = DeviceConfig::rtx3090();
        let ipc = c.ipc(&cfg);
        prop_assert!((0.0..=cfg.ideal_ipc() + 1e-9).contains(&ipc));
    }

    #[test]
    fn achieved_throughput_never_exceeds_peak(c in arb_cost()) {
        let cfg = DeviceConfig::rtx3090();
        let busy = c.busy_us(&cfg);
        if busy > 0.0 && c.flops > 0.0 {
            let gflops = c.flops / (busy * 1e-6) / 1e9;
            prop_assert!(gflops <= cfg.fp32_tflops * 1e3 * (1.0 + 1e-9));
        }
    }

    #[test]
    fn memory_pool_never_leaks_or_overflows(
        ops in proptest::collection::vec((1usize..1000, any::<bool>()), 0..100)
    ) {
        let mut pool = MemoryPool::new(16 * 1024);
        let mut live = Vec::new();
        let mut expected: usize = 0;
        for (bytes, free_one) in ops {
            if free_one && !live.is_empty() {
                let (id, sz) = live.pop().unwrap();
                pool.free(id);
                expected -= sz;
            } else if let Ok(id) = pool.alloc(bytes, "x") {
                live.push((id, bytes));
                expected += bytes;
            }
            prop_assert_eq!(pool.in_use(), expected);
            prop_assert!(pool.in_use() <= pool.capacity());
            prop_assert!(pool.peak() >= pool.in_use());
        }
        for (id, _) in live {
            pool.free(id);
        }
        prop_assert_eq!(pool.in_use(), 0);
    }
}
