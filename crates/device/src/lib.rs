//! Simulated GPU device for the Hector RGNN compiler reproduction.
//!
//! The original Hector system generates CUDA kernels and measures them on
//! an Nvidia RTX 3090. This environment has no GPU, so Hector's generated
//! kernels are executed *functionally* on the CPU while this crate
//! accounts what the GPU would have done:
//!
//! * [`DeviceConfig`] — the hardware parameters of the modeled card
//!   (default: RTX 3090, the paper's testbed);
//! * [`MemoryPool`] — device-memory accounting with genuine out-of-memory
//!   failures at the configured capacity, reproducing the OOM behaviour
//!   in the paper's Fig. 8 and Table 4;
//! * [`KernelCost`] + [`Device::launch`] — an analytical roofline-style
//!   cost model: each kernel's duration is the launch overhead plus the
//!   maximum of its compute time (with an occupancy/size efficiency
//!   curve), its memory time, and a latency floor inflated by atomic
//!   operations. This reproduces the paper's key architectural findings:
//!   small kernels underutilize the GPU, throughput rises with input
//!   size (Fig. 11/12), and atomic-heavy backward passes are
//!   latency-bound (§4.4);
//! * [`Counters`] — per kernel-category architectural metrics (achieved
//!   GFLOP/s, DRAM throughput %, an IPC proxy) matching Fig. 12's
//!   reporting.
//!
//! Nothing in this crate performs numerics; it is pure bookkeeping driven
//! by the kernel specifications the compiler emits.

#![warn(missing_docs)]

mod config;
mod cost;
mod counters;
mod device;
mod memory;

pub use config::DeviceConfig;
pub use cost::{KernelCategory, KernelCost, Phase};
pub use counters::{
    module_cache_probe, shard_probe, BackendStats, CategoryMetrics, Counters, ModuleCacheStats,
    ParallelStats, SamplerStats, ScratchStats, ShardStats, TraceStats,
};
pub use device::Device;
pub use memory::{AllocId, MemoryPool, OomError};
