//! Architectural counters aggregated per kernel category and phase,
//! backing the Fig. 12-style reports.

use std::collections::HashMap;

use crate::{DeviceConfig, KernelCategory, KernelCost, Phase};

pub use hector_trace::TraceStats;

/// Aggregated metrics for one `(category, phase)` bucket.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CategoryMetrics {
    /// Number of kernel launches.
    pub launches: usize,
    /// Total simulated duration, microseconds (including launch overhead).
    pub duration_us: f64,
    /// Total in-flight (busy) time, microseconds.
    pub busy_us: f64,
    /// Total floating-point operations.
    pub flops: f64,
    /// Total DRAM traffic in bytes.
    pub bytes: f64,
    /// Total atomic operations.
    pub atomics: f64,
    /// Sum of per-kernel IPC weighted by busy time (divide by `busy_us`
    /// for the average IPC).
    ipc_weighted: f64,
}

impl CategoryMetrics {
    /// Average achieved GFLOP/s over the bucket's busy time.
    #[must_use]
    pub fn achieved_gflops(&self) -> f64 {
        if self.busy_us <= 0.0 {
            0.0
        } else {
            self.flops / (self.busy_us * 1e-6) / 1e9
        }
    }

    /// Average DRAM throughput as a percentage of peak.
    #[must_use]
    pub fn dram_throughput_pct(&self, cfg: &DeviceConfig) -> f64 {
        if self.busy_us <= 0.0 {
            0.0
        } else {
            let gbps = self.bytes / (self.busy_us * 1e-6) / 1e9;
            gbps / cfg.dram_bw_gbps * 100.0
        }
    }

    /// Busy-time-weighted average IPC proxy.
    #[must_use]
    pub fn avg_ipc(&self) -> f64 {
        if self.busy_us <= 0.0 {
            0.0
        } else {
            self.ipc_weighted / self.busy_us
        }
    }
}

/// Host-side parallel-execution statistics for one run (real mode only:
/// modeled runs never execute kernels, so they never record here). These
/// measure *wall-clock host time* of the functional interpreter, unlike
/// every other counter in this module, which measures *simulated device
/// time* — the two must never be summed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ParallelStats {
    /// Kernel executions that went through the `hector-par` pool.
    pub parallel_launches: usize,
    /// Kernel executions that took the exact sequential code path
    /// (`num_threads = 1`, unsplittable domains, or safety fallbacks).
    pub sequential_launches: usize,
    /// Total row chunks executed across all parallel kernels.
    pub chunks: usize,
    /// Pool work-steal events attributed to these kernels.
    pub steals: u64,
    /// Host wall-clock time in GEMM-template kernel execution, µs.
    pub gemm_wall_us: f64,
    /// Host wall-clock time in traversal-template kernel execution, µs.
    pub traversal_wall_us: f64,
}

impl ParallelStats {
    /// Total host wall-clock execution time recorded, µs.
    #[must_use]
    pub fn total_wall_us(&self) -> f64 {
        self.gemm_wall_us + self.traversal_wall_us
    }

    /// Fraction of real-mode kernel executions that ran parallel.
    #[must_use]
    pub fn parallel_fraction(&self) -> f64 {
        let total = self.parallel_launches + self.sequential_launches;
        if total == 0 {
            0.0
        } else {
            self.parallel_launches as f64 / total as f64
        }
    }
}

/// Scratch-arena statistics of the real-mode interpreter hot path (host
/// side, like [`ParallelStats`]). The interpreter computes every operand
/// read, op result, and GEMM row in reusable executor-owned buffers;
/// these counters make the steady state observable: a warm
/// forward/training pass records zero growth events — zero per-row heap
/// allocations (pinned by `tests/run_alloc.rs`). The parallel executor's
/// per-chunk worker arenas are pooled on the session, so threaded runs
/// reach the same zero once every slot has grown to its high-water mark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Arena buffer-growth (heap allocation) events, including the
    /// pooled per-chunk worker arenas of the parallel executor.
    pub grows: usize,
    /// High-water arena footprint observed, bytes (session arena only —
    /// the pooled worker slots are not included).
    pub bytes: usize,
    /// Kernel executions that completed without growing any arena — the
    /// zero-allocation steady state.
    pub steady_kernels: usize,
    /// Total real-mode kernel executions recorded.
    pub kernels: usize,
    /// Run-plan buffer (re)materialisation events across plan-reusing
    /// runs (`Session::forward` / `Session::train_step`): output and
    /// gradient tensors are keyed by variable and shape and grown
    /// monotonically, so a warm run records zero.
    pub plan_grows: usize,
    /// High-water footprint of the run plan's persistent buffers, bytes.
    pub plan_bytes: usize,
}

impl ScratchStats {
    /// Fraction of kernel executions that ran entirely from warm scratch.
    #[must_use]
    pub fn steady_fraction(&self) -> f64 {
        if self.kernels == 0 {
            0.0
        } else {
            self.steady_kernels as f64 / self.kernels as f64
        }
    }
}

/// Mini-batch sampler statistics (host side, like [`ParallelStats`]):
/// one record per consumed batch, covering both halves of the
/// producer/consumer pipeline. `sample_wall_us` is time spent *producing*
/// batches (sampling + subgraph extraction + binding slicing, measured on
/// whichever thread ran it); `wait_wall_us` is time the *consumer*
/// spent blocked waiting for a batch to arrive. With the prefetch
/// pipeline on, sampling overlaps training and the wait collapses —
/// [`SamplerStats::overlap_fraction`] is the observable for that.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SamplerStats {
    /// Batches consumed.
    pub batches: usize,
    /// Total sampled nodes across batches (seeds + neighbors).
    pub nodes: usize,
    /// Total sampled edges across batches.
    pub edges: usize,
    /// Host wall-clock time producing batches, µs.
    pub sample_wall_us: f64,
    /// Host wall-clock time the consumer spent blocked on batch
    /// arrival, µs.
    pub wait_wall_us: f64,
}

impl SamplerStats {
    /// Fraction of batch-production time hidden behind training compute:
    /// `1 - wait / sample`, clamped to `[0, 1]`. Without a pipeline the
    /// consumer waits for every batch to be produced (≈ 0); with the
    /// prefetch pipeline saturated it approaches 1.
    #[must_use]
    pub fn overlap_fraction(&self) -> f64 {
        if self.sample_wall_us <= 0.0 {
            0.0
        } else {
            (1.0 - self.wait_wall_us / self.sample_wall_us).clamp(0.0, 1.0)
        }
    }

    /// Sampled nodes per second of production time.
    #[must_use]
    pub fn nodes_per_sec(&self) -> f64 {
        if self.sample_wall_us <= 0.0 {
            0.0
        } else {
            self.nodes as f64 / (self.sample_wall_us * 1e-6)
        }
    }
}

/// Snapshot of the process-wide compiled-module cache
/// (`hector_compiler::ModuleCache`). Unlike every other counter in this
/// module, which is scoped to one device, the module cache is shared by
/// the whole process — constructing ten engines over the same
/// `(model source, dims, options)` key compiles once and reads back nine
/// hits — so this snapshot reads the same numbers regardless of which
/// device's [`Counters`] it is taken from.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModuleCacheStats {
    /// Compilations avoided: lookups that found a cached module.
    pub hits: u64,
    /// Lookups that had to run the compiler pipeline.
    pub misses: u64,
    /// Entries dropped by the byte-bounded LRU policy.
    pub evictions: u64,
    /// Modules currently cached.
    pub entries: usize,
    /// Estimated footprint of the cached modules, bytes.
    pub bytes: usize,
}

impl ModuleCacheStats {
    /// Fraction of lookups served from the cache.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Process-global probe the compiler's module cache reports into. The
/// device crate hosts the storage (it is the observability leaf of the
/// workspace DAG) so [`Counters::module_cache`] can surface cache
/// activity without a dependency on the compiler.
pub mod module_cache_probe {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    use super::ModuleCacheStats;

    static HITS: AtomicU64 = AtomicU64::new(0);
    static MISSES: AtomicU64 = AtomicU64::new(0);
    static EVICTIONS: AtomicU64 = AtomicU64::new(0);
    static ENTRIES: AtomicUsize = AtomicUsize::new(0);
    static BYTES: AtomicUsize = AtomicUsize::new(0);

    /// Records one cache hit.
    pub fn record_hit() {
        HITS.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one cache miss (a compilation).
    pub fn record_miss() {
        MISSES.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one LRU eviction.
    pub fn record_eviction() {
        EVICTIONS.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the cache's current entry count and byte estimate.
    pub fn set_footprint(entries: usize, bytes: usize) {
        ENTRIES.store(entries, Ordering::Relaxed);
        BYTES.store(bytes, Ordering::Relaxed);
    }

    /// Clears all probe state (used by `ModuleCache::clear` in tests).
    pub fn reset() {
        HITS.store(0, Ordering::Relaxed);
        MISSES.store(0, Ordering::Relaxed);
        EVICTIONS.store(0, Ordering::Relaxed);
        ENTRIES.store(0, Ordering::Relaxed);
        BYTES.store(0, Ordering::Relaxed);
    }

    /// Reads the current counters.
    #[must_use]
    pub fn snapshot() -> ModuleCacheStats {
        ModuleCacheStats {
            hits: HITS.load(Ordering::Relaxed),
            misses: MISSES.load(Ordering::Relaxed),
            evictions: EVICTIONS.load(Ordering::Relaxed),
            entries: ENTRIES.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }
}

/// Sharded-execution statistics: partition quality and the dynamic-graph
/// activity of `hector-shard`. Process-global like [`ModuleCacheStats`] —
/// sharded execution spans many per-shard devices, so the numbers live in
/// a shared probe ([`shard_probe`]) rather than any single device's
/// counter store, and [`Counters::reset`] / [`Counters::reset_all`] do
/// not touch them (clear with [`shard_probe::reset`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Partitioning passes performed (initial + delta-forced repartitions).
    pub partitions: u64,
    /// Shards produced by the most recent partitioning.
    pub shards: usize,
    /// Edges in the full graph at the most recent partitioning.
    pub edges_total: u64,
    /// Edges whose source and destination owners differ (cut edges) at
    /// the most recent partitioning.
    pub edges_cut: u64,
    /// Halo rows (replicated non-owned nodes) across all shards at the
    /// most recent partitioning.
    pub halo_rows: u64,
    /// Boundary-exchange steps performed (one per sharded forward).
    pub exchanges: u64,
    /// Owned output rows gathered across all exchanges.
    pub rows_exchanged: u64,
    /// Per-shard run plans invalidated by delta application.
    pub plan_invalidations: u64,
    /// Delta batches applied.
    pub delta_batches: u64,
    /// Individual delta operations (edge/node inserts + deletes) applied.
    pub delta_ops: u64,
}

impl ShardStats {
    /// Fraction of full-graph edges cut by the current partitioning.
    #[must_use]
    pub fn edge_cut_fraction(&self) -> f64 {
        if self.edges_total == 0 {
            0.0
        } else {
            self.edges_cut as f64 / self.edges_total as f64
        }
    }
}

/// Process-global probe `hector-shard` reports into. The device crate
/// hosts the storage (it is the observability leaf of the workspace DAG)
/// so [`Counters::shard`] can surface sharding activity without a
/// dependency on the shard crate.
pub mod shard_probe {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    use super::ShardStats;

    static PARTITIONS: AtomicU64 = AtomicU64::new(0);
    static SHARDS: AtomicUsize = AtomicUsize::new(0);
    static EDGES_TOTAL: AtomicU64 = AtomicU64::new(0);
    static EDGES_CUT: AtomicU64 = AtomicU64::new(0);
    static HALO_ROWS: AtomicU64 = AtomicU64::new(0);
    static EXCHANGES: AtomicU64 = AtomicU64::new(0);
    static ROWS_EXCHANGED: AtomicU64 = AtomicU64::new(0);
    static PLAN_INVALIDATIONS: AtomicU64 = AtomicU64::new(0);
    static DELTA_BATCHES: AtomicU64 = AtomicU64::new(0);
    static DELTA_OPS: AtomicU64 = AtomicU64::new(0);

    /// Records one partitioning pass and publishes its quality numbers
    /// (shard count, total/cut edges, total halo rows).
    pub fn record_partition(shards: usize, edges_total: u64, edges_cut: u64, halo_rows: u64) {
        PARTITIONS.fetch_add(1, Ordering::Relaxed);
        SHARDS.store(shards, Ordering::Relaxed);
        EDGES_TOTAL.store(edges_total, Ordering::Relaxed);
        EDGES_CUT.store(edges_cut, Ordering::Relaxed);
        HALO_ROWS.store(halo_rows, Ordering::Relaxed);
    }

    /// Records one boundary-exchange step gathering `rows` owned rows.
    pub fn record_exchange(rows: u64) {
        EXCHANGES.fetch_add(1, Ordering::Relaxed);
        ROWS_EXCHANGED.fetch_add(rows, Ordering::Relaxed);
    }

    /// Records `n` per-shard plan invalidations.
    pub fn record_invalidations(n: u64) {
        PLAN_INVALIDATIONS.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one applied delta batch comprising `ops` operations.
    pub fn record_delta(ops: u64) {
        DELTA_BATCHES.fetch_add(1, Ordering::Relaxed);
        DELTA_OPS.fetch_add(ops, Ordering::Relaxed);
    }

    /// Clears all probe state (tests pin deltas against a clean slate).
    pub fn reset() {
        PARTITIONS.store(0, Ordering::Relaxed);
        SHARDS.store(0, Ordering::Relaxed);
        EDGES_TOTAL.store(0, Ordering::Relaxed);
        EDGES_CUT.store(0, Ordering::Relaxed);
        HALO_ROWS.store(0, Ordering::Relaxed);
        EXCHANGES.store(0, Ordering::Relaxed);
        ROWS_EXCHANGED.store(0, Ordering::Relaxed);
        PLAN_INVALIDATIONS.store(0, Ordering::Relaxed);
        DELTA_BATCHES.store(0, Ordering::Relaxed);
        DELTA_OPS.store(0, Ordering::Relaxed);
    }

    /// Reads the current counters.
    #[must_use]
    pub fn snapshot() -> ShardStats {
        ShardStats {
            partitions: PARTITIONS.load(Ordering::Relaxed),
            shards: SHARDS.load(Ordering::Relaxed),
            edges_total: EDGES_TOTAL.load(Ordering::Relaxed),
            edges_cut: EDGES_CUT.load(Ordering::Relaxed),
            halo_rows: HALO_ROWS.load(Ordering::Relaxed),
            exchanges: EXCHANGES.load(Ordering::Relaxed),
            rows_exchanged: ROWS_EXCHANGED.load(Ordering::Relaxed),
            plan_invalidations: PLAN_INVALIDATIONS.load(Ordering::Relaxed),
            delta_batches: DELTA_BATCHES.load(Ordering::Relaxed),
            delta_ops: DELTA_OPS.load(Ordering::Relaxed),
        }
    }
}

/// Execution-backend statistics for one run (real mode only). Identifies
/// *which* backend (`hector_runtime::BackendKind`) ran the kernels and
/// whether its prepared execution plan was reused from the session cache
/// or rebuilt — a warm run reports `plan_reuses = 1`, `prepares = 0`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Stable backend name ("interp", "specialized"); `""` until a
    /// real-mode run records.
    pub name: &'static str,
    /// Backend `prepare` invocations (plan builds) this run: 1 on the
    /// first run of a module, 0 once the session plan cache is warm.
    pub prepares: u64,
    /// Runs that reused the session's cached execution plan.
    pub plan_reuses: u64,
    /// Kernel launches routed through the backend this run.
    pub kernels: u64,
}

/// Per-`(category, phase)` counter store for one run.
///
/// # Reset contract
///
/// Counters fall into three scopes with distinct lifetimes:
///
/// * **Run-scoped** (kernel buckets, [`ParallelStats`],
///   [`ScratchStats`], [`BackendStats`]) — cleared by [`Counters::reset`]
///   at the start of every `Session::forward` / `Session::train_step`.
/// * **Epoch-scoped** ([`SamplerStats`]) — survives [`Counters::reset`]
///   because mini-batch records land *between* runs; cleared only by
///   [`Counters::reset_sampler`] (or [`Counters::reset_all`]).
/// * **Process-global probes** ([`ModuleCacheStats`] via
///   [`Counters::module_cache`], [`ShardStats`] via [`Counters::shard`],
///   [`TraceStats`] via [`Counters::trace`]) — snapshots of shared state
///   that no `Counters` method clears; use `ModuleCache::clear` /
///   [`shard_probe::reset`] / `hector_trace::clear` respectively.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    buckets: HashMap<(KernelCategory, Phase), CategoryMetrics>,
    parallel: ParallelStats,
    scratch: ScratchStats,
    backend: BackendStats,
    sampler: SamplerStats,
}

impl Counters {
    /// Creates an empty counter store.
    #[must_use]
    pub fn new() -> Counters {
        Counters::default()
    }

    /// Records one kernel launch.
    pub fn record(&mut self, cost: &KernelCost, cfg: &DeviceConfig) {
        let m = self.buckets.entry((cost.category, cost.phase)).or_default();
        let busy = cost.busy_us(cfg);
        m.launches += 1;
        m.duration_us += cost.duration_us(cfg);
        m.busy_us += busy;
        m.flops += cost.flops;
        m.bytes += cost.bytes();
        m.atomics += cost.atomic_ops;
        m.ipc_weighted += cost.ipc(cfg) * busy;
    }

    /// Metrics for one bucket (zero-default if nothing was recorded).
    #[must_use]
    pub fn get(&self, category: KernelCategory, phase: Phase) -> CategoryMetrics {
        self.buckets
            .get(&(category, phase))
            .cloned()
            .unwrap_or_default()
    }

    /// Total simulated time across all buckets, microseconds.
    #[must_use]
    pub fn total_duration_us(&self) -> f64 {
        self.buckets.values().map(|m| m.duration_us).sum()
    }

    /// Total launches across all buckets.
    #[must_use]
    pub fn total_launches(&self) -> usize {
        self.buckets.values().map(|m| m.launches).sum()
    }

    /// Duration spent in a category (both phases), microseconds.
    #[must_use]
    pub fn category_duration_us(&self, category: KernelCategory) -> f64 {
        self.buckets
            .iter()
            .filter(|((c, _), _)| *c == category)
            .map(|(_, m)| m.duration_us)
            .sum()
    }

    /// Duration spent in a phase (all categories), microseconds.
    #[must_use]
    pub fn phase_duration_us(&self, phase: Phase) -> f64 {
        self.buckets
            .iter()
            .filter(|((_, p), _)| *p == phase)
            .map(|(_, m)| m.duration_us)
            .sum()
    }

    /// Records one real-mode host kernel execution (parallel or
    /// sequential) for the per-stage wall-clock/steal report.
    pub fn record_host_exec(
        &mut self,
        category: KernelCategory,
        parallel: bool,
        wall_us: f64,
        chunks: usize,
        steals: u64,
    ) {
        let p = &mut self.parallel;
        if parallel {
            p.parallel_launches += 1;
        } else {
            p.sequential_launches += 1;
        }
        p.chunks += chunks;
        p.steals += steals;
        match category {
            KernelCategory::Gemm => p.gemm_wall_us += wall_us,
            KernelCategory::Traversal => p.traversal_wall_us += wall_us,
            // Copy/fallback kernels are not row-parallelised; fold their
            // (rare) host time into the traversal bucket rather than
            // inventing a third stage.
            _ => p.traversal_wall_us += wall_us,
        }
    }

    /// Host-side parallel-execution statistics.
    #[must_use]
    pub fn parallel(&self) -> &ParallelStats {
        &self.parallel
    }

    /// Records one real-mode kernel execution's scratch-arena activity.
    pub fn record_scratch(&mut self, grows: usize, bytes: usize) {
        let s = &mut self.scratch;
        s.grows += grows;
        s.bytes = s.bytes.max(bytes);
        s.kernels += 1;
        if grows == 0 {
            s.steady_kernels += 1;
        }
    }

    /// Records one plan-reusing run's buffer activity
    /// (`Session::forward` / `Session::train_step`).
    pub fn record_plan(&mut self, grows: usize, bytes: usize) {
        let s = &mut self.scratch;
        s.plan_grows += grows;
        s.plan_bytes = s.plan_bytes.max(bytes);
    }

    /// Interpreter scratch-arena statistics.
    #[must_use]
    pub fn scratch(&self) -> &ScratchStats {
        &self.scratch
    }

    /// Records which execution backend this run launches kernels on and
    /// whether its prepared plan came from the session cache. Called
    /// once per real-mode run, right after the per-run reset.
    pub fn record_backend(&mut self, name: &'static str, plan_reused: bool) {
        let b = &mut self.backend;
        b.name = name;
        if plan_reused {
            b.plan_reuses += 1;
        } else {
            b.prepares += 1;
        }
    }

    /// Adds `n` kernel launches to the backend accounting.
    pub fn record_backend_kernels(&mut self, n: u64) {
        self.backend.kernels += n;
    }

    /// Execution-backend statistics for the current run.
    #[must_use]
    pub fn backend(&self) -> &BackendStats {
        &self.backend
    }

    /// Records one consumed mini-batch: its size, the host time spent
    /// producing it, and the time the consumer spent blocked on its
    /// arrival (see [`SamplerStats`]).
    pub fn record_sampler_batch(
        &mut self,
        nodes: usize,
        edges: usize,
        sample_wall_us: f64,
        wait_wall_us: f64,
    ) {
        let s = &mut self.sampler;
        s.batches += 1;
        s.nodes += nodes;
        s.edges += edges;
        s.sample_wall_us += sample_wall_us;
        s.wait_wall_us += wait_wall_us;
    }

    /// Mini-batch sampler statistics.
    #[must_use]
    pub fn sampler(&self) -> &SamplerStats {
        &self.sampler
    }

    /// Snapshot of the process-wide compiled-module cache. The cache is
    /// shared across sessions and devices (see [`ModuleCacheStats`]);
    /// this accessor lives on `Counters` so every observability surface
    /// hangs off `session.device().counters()`.
    #[must_use]
    pub fn module_cache(&self) -> ModuleCacheStats {
        module_cache_probe::snapshot()
    }

    /// Snapshot of the process-wide sharded-execution probe
    /// (`hector-shard`). Like [`Counters::module_cache`], this reads
    /// shared process state and is unaffected by [`Counters::reset`] /
    /// [`Counters::reset_all`]; clear with
    /// [`shard_probe::reset`](crate::counters::shard_probe::reset).
    #[must_use]
    pub fn shard(&self) -> ShardStats {
        shard_probe::snapshot()
    }

    /// Snapshot of the process-wide trace recorder (`hector_trace`):
    /// whether tracing is enabled and how many events have been
    /// recorded/dropped across all threads. Like
    /// [`Counters::module_cache`], this reads shared process state and is
    /// unaffected by [`Counters::reset`] / [`Counters::reset_all`].
    #[must_use]
    pub fn trace(&self) -> TraceStats {
        hector_trace::stats()
    }

    /// Clears the per-run counters (kernel buckets, parallel, scratch,
    /// backend). Sampler statistics survive: they describe a mini-batch
    /// *epoch* spanning many runs — the per-run reset at the start of
    /// each training step must not wipe the batches recorded between
    /// runs. Clear them explicitly with [`Counters::reset_sampler`].
    pub fn reset(&mut self) {
        self.buckets.clear();
        self.parallel = ParallelStats::default();
        self.scratch = ScratchStats::default();
        self.backend = BackendStats::default();
    }

    /// Clears the epoch-scoped sampler statistics.
    pub fn reset_sampler(&mut self) {
        self.sampler = SamplerStats::default();
    }

    /// Clears everything this store owns: the per-run counters *and* the
    /// epoch-scoped sampler statistics ([`Counters::reset`] +
    /// [`Counters::reset_sampler`]). Process-global probes
    /// ([`Counters::module_cache`], [`Counters::trace`]) are snapshots of
    /// shared state and remain untouched.
    pub fn reset_all(&mut self) {
        self.reset();
        self.reset_sampler();
    }

    /// Merges another counter store into this one.
    pub fn merge(&mut self, other: &Counters) {
        let p = &mut self.parallel;
        p.parallel_launches += other.parallel.parallel_launches;
        p.sequential_launches += other.parallel.sequential_launches;
        p.chunks += other.parallel.chunks;
        p.steals += other.parallel.steals;
        p.gemm_wall_us += other.parallel.gemm_wall_us;
        p.traversal_wall_us += other.parallel.traversal_wall_us;
        let s = &mut self.scratch;
        s.grows += other.scratch.grows;
        s.bytes = s.bytes.max(other.scratch.bytes);
        s.steady_kernels += other.scratch.steady_kernels;
        s.kernels += other.scratch.kernels;
        s.plan_grows += other.scratch.plan_grows;
        s.plan_bytes = s.plan_bytes.max(other.scratch.plan_bytes);
        let b = &mut self.backend;
        if b.name.is_empty() {
            b.name = other.backend.name;
        }
        b.prepares += other.backend.prepares;
        b.plan_reuses += other.backend.plan_reuses;
        b.kernels += other.backend.kernels;
        let sa = &mut self.sampler;
        sa.batches += other.sampler.batches;
        sa.nodes += other.sampler.nodes;
        sa.edges += other.sampler.edges;
        sa.sample_wall_us += other.sampler.sample_wall_us;
        sa.wait_wall_us += other.sampler.wait_wall_us;
        for (k, m) in &other.buckets {
            let e = self.buckets.entry(*k).or_default();
            e.launches += m.launches;
            e.duration_us += m.duration_us;
            e.busy_us += m.busy_us;
            e.flops += m.flops;
            e.bytes += m.bytes;
            e.atomics += m.atomics;
            e.ipc_weighted += m.ipc_weighted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(cat: KernelCategory, phase: Phase, flops: f64) -> KernelCost {
        let mut c = KernelCost::new(cat, phase);
        c.flops = flops;
        c.bytes_read = flops / 4.0;
        c.items = 1e4;
        c
    }

    #[test]
    fn record_accumulates() {
        let cfg = DeviceConfig::rtx3090();
        let mut c = Counters::new();
        c.record(&cost(KernelCategory::Gemm, Phase::Forward, 1e9), &cfg);
        c.record(&cost(KernelCategory::Gemm, Phase::Forward, 1e9), &cfg);
        let m = c.get(KernelCategory::Gemm, Phase::Forward);
        assert_eq!(m.launches, 2);
        assert!((m.flops - 2e9).abs() < 1.0);
        assert!(m.duration_us > 0.0);
    }

    #[test]
    fn buckets_are_separate() {
        let cfg = DeviceConfig::rtx3090();
        let mut c = Counters::new();
        c.record(&cost(KernelCategory::Gemm, Phase::Forward, 1e9), &cfg);
        c.record(&cost(KernelCategory::Traversal, Phase::Backward, 1e6), &cfg);
        assert_eq!(c.get(KernelCategory::Gemm, Phase::Forward).launches, 1);
        assert_eq!(
            c.get(KernelCategory::Traversal, Phase::Backward).launches,
            1
        );
        assert_eq!(c.get(KernelCategory::Copy, Phase::Forward).launches, 0);
        assert_eq!(c.total_launches(), 2);
    }

    #[test]
    fn derived_metrics_positive() {
        let cfg = DeviceConfig::rtx3090();
        let mut c = Counters::new();
        c.record(&cost(KernelCategory::Gemm, Phase::Forward, 1e10), &cfg);
        let m = c.get(KernelCategory::Gemm, Phase::Forward);
        assert!(m.achieved_gflops() > 0.0);
        assert!(m.dram_throughput_pct(&cfg) > 0.0);
        assert!(m.avg_ipc() > 0.0);
    }

    #[test]
    fn merge_and_reset() {
        let cfg = DeviceConfig::rtx3090();
        let mut a = Counters::new();
        let mut b = Counters::new();
        a.record(&cost(KernelCategory::Gemm, Phase::Forward, 1e9), &cfg);
        b.record(&cost(KernelCategory::Gemm, Phase::Forward, 1e9), &cfg);
        a.merge(&b);
        assert_eq!(a.get(KernelCategory::Gemm, Phase::Forward).launches, 2);
        a.reset();
        assert_eq!(a.total_launches(), 0);
    }

    #[test]
    fn parallel_stats_record_merge_reset() {
        let mut c = Counters::new();
        c.record_host_exec(KernelCategory::Gemm, true, 120.0, 8, 3);
        c.record_host_exec(KernelCategory::Traversal, true, 80.0, 4, 1);
        c.record_host_exec(KernelCategory::Traversal, false, 5.0, 0, 0);
        let p = c.parallel();
        assert_eq!(p.parallel_launches, 2);
        assert_eq!(p.sequential_launches, 1);
        assert_eq!(p.chunks, 12);
        assert_eq!(p.steals, 4);
        assert!((p.gemm_wall_us - 120.0).abs() < 1e-12);
        assert!((p.traversal_wall_us - 85.0).abs() < 1e-12);
        assert!((p.total_wall_us() - 205.0).abs() < 1e-12);
        assert!((p.parallel_fraction() - 2.0 / 3.0).abs() < 1e-12);

        let mut other = Counters::new();
        other.record_host_exec(KernelCategory::Gemm, false, 1.0, 0, 0);
        c.merge(&other);
        assert_eq!(c.parallel().sequential_launches, 2);

        c.reset();
        assert_eq!(*c.parallel(), ParallelStats::default());
        assert!((c.parallel().parallel_fraction()).abs() < 1e-12);
    }

    #[test]
    fn phase_and_category_rollups() {
        let cfg = DeviceConfig::rtx3090();
        let mut c = Counters::new();
        c.record(&cost(KernelCategory::Gemm, Phase::Forward, 1e9), &cfg);
        c.record(&cost(KernelCategory::Traversal, Phase::Forward, 1e6), &cfg);
        c.record(&cost(KernelCategory::Gemm, Phase::Backward, 1e9), &cfg);
        let fw = c.phase_duration_us(Phase::Forward);
        let bw = c.phase_duration_us(Phase::Backward);
        let gemm = c.category_duration_us(KernelCategory::Gemm);
        assert!(fw > 0.0 && bw > 0.0 && gemm > 0.0);
        assert!((fw + bw - c.total_duration_us()).abs() < 1e-9);
    }

    /// Every rate helper must return 0.0 — never NaN or a panic — on an
    /// empty (freshly reset) store. Report code divides these into
    /// percentages and formats them; a NaN would poison every downstream
    /// aggregate silently.
    #[test]
    fn empty_rate_helpers_are_zero_not_nan() {
        let cfg = DeviceConfig::rtx3090();
        let c = Counters::new();
        let m = c.get(KernelCategory::Gemm, Phase::Forward);
        assert_eq!(m.achieved_gflops(), 0.0);
        assert_eq!(m.dram_throughput_pct(&cfg), 0.0);
        assert_eq!(m.avg_ipc(), 0.0);
        assert_eq!(c.parallel().parallel_fraction(), 0.0);
        assert_eq!(c.scratch().steady_fraction(), 0.0);
        assert_eq!(c.sampler().overlap_fraction(), 0.0);
        assert_eq!(c.sampler().nodes_per_sec(), 0.0);
        assert_eq!(ModuleCacheStats::default().hit_rate(), 0.0);
        // Zero-duration but non-zero work: still finite, still zero.
        let z = SamplerStats {
            batches: 1,
            nodes: 100,
            edges: 50,
            sample_wall_us: 0.0,
            wait_wall_us: 0.0,
        };
        assert_eq!(z.overlap_fraction(), 0.0);
        assert_eq!(z.nodes_per_sec(), 0.0);
    }

    /// The shard probe accumulates across records, derives the edge-cut
    /// fraction safely, and clears only via its own `reset` — never via
    /// the run-scoped `Counters::reset`.
    #[test]
    fn shard_probe_records_and_resets() {
        shard_probe::reset();
        assert_eq!(ShardStats::default().edge_cut_fraction(), 0.0);
        shard_probe::record_partition(4, 1000, 250, 80);
        shard_probe::record_exchange(500);
        shard_probe::record_exchange(500);
        shard_probe::record_invalidations(2);
        shard_probe::record_delta(3);
        let mut c = Counters::new();
        c.reset_all();
        let s = c.shard();
        assert_eq!(s.partitions, 1);
        assert_eq!(s.shards, 4);
        assert!((s.edge_cut_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(s.halo_rows, 80);
        assert_eq!(s.exchanges, 2);
        assert_eq!(s.rows_exchanged, 1000);
        assert_eq!(s.plan_invalidations, 2);
        assert_eq!(s.delta_batches, 1);
        assert_eq!(s.delta_ops, 3);
        shard_probe::reset();
        assert_eq!(c.shard(), ShardStats::default());
    }

    /// `reset()` is run-scoped: sampler stats survive it. `reset_all()`
    /// clears both. Process-global probes are unaffected by either.
    #[test]
    fn reset_scopes() {
        let cfg = DeviceConfig::rtx3090();
        let mut c = Counters::new();
        c.record(&cost(KernelCategory::Gemm, Phase::Forward, 1e9), &cfg);
        c.record_host_exec(KernelCategory::Gemm, true, 10.0, 2, 0);
        c.record_scratch(1, 64);
        c.record_sampler_batch(100, 50, 20.0, 5.0);

        c.reset();
        assert_eq!(c.total_launches(), 0);
        assert_eq!(*c.parallel(), ParallelStats::default());
        assert_eq!(*c.scratch(), ScratchStats::default());
        assert_eq!(c.sampler().batches, 1, "sampler is epoch-scoped");
        assert_eq!(c.sampler().nodes, 100);

        c.record_sampler_batch(10, 5, 2.0, 1.0);
        c.reset_all();
        assert_eq!(c.total_launches(), 0);
        assert_eq!(*c.sampler(), SamplerStats::default());

        // Probe snapshots read process state, not this store.
        let _ = c.module_cache();
        let _ = c.trace();
    }
}
