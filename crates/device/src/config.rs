//! Hardware parameter sets for the simulated device.

/// Parameters of the modeled GPU.
///
/// All throughput-style fields are peak values; the cost model in
/// [`crate::KernelCost`] derates them by occupancy/size efficiency curves.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceConfig {
    /// Marketing name, used in reports.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Warp schedulers per SM; the ideal instructions-per-cycle figure the
    /// paper quotes for Fig. 12 ("on RTX 3090, IPC is ideally 4").
    pub schedulers_per_sm: usize,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Peak fp32 throughput in TFLOP/s.
    pub fp32_tflops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub dram_bw_gbps: f64,
    /// Peak L2 bandwidth in GB/s (used only for the Fig. 12 L2 metric).
    pub l2_bw_gbps: f64,
    /// Device memory capacity in bytes. Allocations beyond this fail with
    /// [`crate::OomError`].
    pub memory_capacity: usize,
    /// Fixed cost of one kernel launch in microseconds (driver + grid
    /// setup). The paper measured CUDA API overhead at 22% of Graphiler's
    /// critical path (§2.3); many small launches is the main cost the DGL
    /// HeteroConv-style per-relation loops pay.
    pub kernel_launch_us: f64,
    /// Additional host API overhead per framework-level operator call in
    /// microseconds (tensor bookkeeping, dispatch). Charged by fallback
    /// operators and eager frameworks.
    pub api_call_us: f64,
    /// Minimum in-flight duration of any kernel in microseconds
    /// (pipeline/memory latency floor even for tiny grids).
    pub kernel_latency_floor_us: f64,
    /// Sustained global-memory atomic update throughput in Gops/s. Atomic
    /// scatter updates in backward traversal kernels are bounded by this
    /// (the paper's §4.4 latency-bound finding).
    pub atomic_gops: f64,
    /// GEMM work (in FLOPs) at which the compute pipeline reaches half of
    /// peak efficiency; the knee of the occupancy curve.
    pub gemm_half_sat_flops: f64,
    /// Memory traffic (in bytes) at which streaming kernels reach half of
    /// peak DRAM bandwidth.
    pub mem_half_sat_bytes: f64,
}

impl DeviceConfig {
    /// The paper's testbed: Nvidia GeForce RTX 3090, 24 GB.
    #[must_use]
    pub fn rtx3090() -> DeviceConfig {
        DeviceConfig {
            name: "RTX 3090".to_string(),
            sm_count: 82,
            schedulers_per_sm: 4,
            clock_ghz: 1.695,
            fp32_tflops: 35.6,
            dram_bw_gbps: 936.0,
            l2_bw_gbps: 2000.0,
            memory_capacity: 24 * (1usize << 30),
            kernel_launch_us: 6.0,
            api_call_us: 4.0,
            kernel_latency_floor_us: 3.0,
            atomic_gops: 32.0,
            gemm_half_sat_flops: 2.5e8,
            mem_half_sat_bytes: 4.0e6,
        }
    }

    /// Nvidia A100 (SXM, 80 GB): the datacenter part. Higher memory
    /// bandwidth and capacity but a lower fp32 (non-tensor-core) rate
    /// than the 3090 — shifting the roofline exactly the way §6's
    /// "specific microarchitecture of each GPU model makes a difference"
    /// anticipates.
    #[must_use]
    pub fn a100_80gb() -> DeviceConfig {
        DeviceConfig {
            name: "A100 80GB".to_string(),
            sm_count: 108,
            schedulers_per_sm: 4,
            clock_ghz: 1.41,
            fp32_tflops: 19.5,
            dram_bw_gbps: 2039.0,
            l2_bw_gbps: 4000.0,
            memory_capacity: 80 * (1usize << 30),
            kernel_launch_us: 6.0,
            api_call_us: 4.0,
            kernel_latency_floor_us: 3.0,
            atomic_gops: 64.0,
            gemm_half_sat_flops: 4.0e8,
            mem_half_sat_bytes: 8.0e6,
        }
    }

    /// A smaller laptop-class part, useful for exercising OOM paths and
    /// architecture-sensitivity tests without full-size graphs.
    #[must_use]
    pub fn laptop_4gb() -> DeviceConfig {
        DeviceConfig {
            name: "Laptop 4GB".to_string(),
            sm_count: 20,
            schedulers_per_sm: 4,
            clock_ghz: 1.2,
            fp32_tflops: 6.0,
            dram_bw_gbps: 200.0,
            l2_bw_gbps: 500.0,
            memory_capacity: 4 * (1usize << 30),
            kernel_launch_us: 6.0,
            api_call_us: 4.0,
            kernel_latency_floor_us: 3.0,
            atomic_gops: 10.0,
            gemm_half_sat_flops: 1.0e8,
            mem_half_sat_bytes: 2.0e6,
        }
    }

    /// Returns a copy with a different memory capacity, for OOM tests.
    #[must_use]
    pub fn with_capacity(mut self, bytes: usize) -> DeviceConfig {
        self.memory_capacity = bytes;
        self
    }

    /// Ideal aggregate IPC across the device (`schedulers_per_sm`), the
    /// reference point of Fig. 12's IPC chart.
    #[must_use]
    pub fn ideal_ipc(&self) -> f64 {
        self.schedulers_per_sm as f64
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::rtx3090()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx3090_matches_paper_testbed() {
        let c = DeviceConfig::rtx3090();
        assert_eq!(c.memory_capacity, 24 * (1 << 30));
        assert_eq!(c.sm_count, 82);
        assert_eq!(c.ideal_ipc(), 4.0);
    }

    #[test]
    fn with_capacity_overrides() {
        let c = DeviceConfig::rtx3090().with_capacity(1024);
        assert_eq!(c.memory_capacity, 1024);
        assert_eq!(c.name, "RTX 3090");
    }

    #[test]
    fn default_is_rtx3090() {
        assert_eq!(DeviceConfig::default(), DeviceConfig::rtx3090());
    }

    #[test]
    fn a100_tradeoff_vs_3090() {
        let a = DeviceConfig::a100_80gb();
        let r = DeviceConfig::rtx3090();
        assert!(a.dram_bw_gbps > r.dram_bw_gbps, "A100 has more bandwidth");
        assert!(a.fp32_tflops < r.fp32_tflops, "but less plain-fp32 compute");
        assert!(a.memory_capacity > r.memory_capacity);
    }
}
