//! Device-memory accounting with out-of-memory failures.

use std::fmt;

/// Handle to a live device allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AllocId(usize);

/// Error returned when an allocation would exceed device capacity.
///
/// These are the OOM events of the paper's Fig. 8 / Table 4; they are not
/// panics because systems under test (baselines, unoptimized Hector)
/// legitimately hit them and the harness records the event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OomError {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes already in use.
    pub in_use: usize,
    /// Device capacity.
    pub capacity: usize,
    /// Label of the failing allocation (tensor name).
    pub label: String,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory allocating '{}': requested {} B with {} B in use of {} B capacity",
            self.label, self.requested, self.in_use, self.capacity
        )
    }
}

impl std::error::Error for OomError {}

/// A simple counting allocator over the simulated device memory.
///
/// Tracks current and peak usage; does not model fragmentation (real
/// allocators like PyTorch's caching allocator would only make OOM happen
/// *earlier*, so this is a conservative reproduction of the paper's OOM
/// events).
/// Live allocations store only their byte size: labels exist solely for
/// OOM diagnostics, so they are borrowed at the failing call instead of
/// being owned per allocation — the success path performs no heap
/// allocation of its own, which is what lets a warm run charge device
/// memory without touching the host allocator (see `tests/run_alloc.rs`).
#[derive(Clone, Debug)]
pub struct MemoryPool {
    capacity: usize,
    in_use: usize,
    peak: usize,
    live: Vec<Option<usize>>,
}

impl MemoryPool {
    /// Creates a pool with the given capacity in bytes.
    #[must_use]
    pub fn new(capacity: usize) -> MemoryPool {
        MemoryPool {
            capacity,
            in_use: 0,
            peak: 0,
            live: Vec::new(),
        }
    }

    /// Attempts to allocate `bytes`, labelled for diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if the allocation would exceed capacity.
    pub fn alloc(&mut self, bytes: usize, label: &str) -> Result<AllocId, OomError> {
        if self.in_use + bytes > self.capacity {
            return Err(OomError {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
                label: label.to_string(),
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        self.live.push(Some(bytes));
        Ok(AllocId(self.live.len() - 1))
    }

    /// Frees a previous allocation. Freeing twice is a no-op.
    pub fn free(&mut self, id: AllocId) {
        if let Some(slot) = self.live.get_mut(id.0) {
            if let Some(bytes) = slot.take() {
                self.in_use -= bytes;
            }
        }
    }

    /// Bytes currently allocated.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// High-water mark of usage, the "memory footprint" of Fig. 10.
    #[must_use]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Pool capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live (unfreed) allocations.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.iter().filter(|s| s.is_some()).count()
    }

    /// Frees everything and resets the peak.
    pub fn reset(&mut self) {
        self.in_use = 0;
        self.peak = 0;
        self.live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut p = MemoryPool::new(100);
        let a = p.alloc(60, "a").unwrap();
        assert_eq!(p.in_use(), 60);
        let b = p.alloc(40, "b").unwrap();
        assert_eq!(p.in_use(), 100);
        assert_eq!(p.peak(), 100);
        p.free(a);
        assert_eq!(p.in_use(), 40);
        p.free(b);
        assert_eq!(p.in_use(), 0);
        assert_eq!(p.peak(), 100, "peak persists after frees");
    }

    #[test]
    fn oom_at_capacity() {
        let mut p = MemoryPool::new(100);
        let _a = p.alloc(80, "big").unwrap();
        let err = p.alloc(30, "overflow").unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("overflow"));
    }

    #[test]
    fn double_free_is_noop() {
        let mut p = MemoryPool::new(100);
        let a = p.alloc(50, "a").unwrap();
        p.free(a);
        p.free(a);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn live_count_and_reset() {
        let mut p = MemoryPool::new(100);
        let _a = p.alloc(10, "a").unwrap();
        let b = p.alloc(10, "b").unwrap();
        p.free(b);
        assert_eq!(p.live_count(), 1);
        p.reset();
        assert_eq!(p.live_count(), 0);
        assert_eq!(p.peak(), 0);
    }

    #[test]
    fn zero_byte_alloc_always_succeeds() {
        let mut p = MemoryPool::new(0);
        assert!(p.alloc(0, "empty").is_ok());
    }
}
