//! The [`Device`] façade combining memory, timing, and counters.

use crate::{AllocId, Counters, DeviceConfig, KernelCost, MemoryPool, OomError};

/// One simulated GPU: configuration, memory pool, clock, and counters.
///
/// The runtime drives a `Device` by allocating/freeing tensor storage and
/// launching [`KernelCost`]s; the device accumulates simulated time and
/// per-category metrics. Functional numerics happen elsewhere — the
/// device is pure accounting, which is what lets full-paper-scale
/// experiments run in milliseconds of host time.
#[derive(Clone, Debug)]
pub struct Device {
    config: DeviceConfig,
    memory: MemoryPool,
    counters: Counters,
    elapsed_us: f64,
    host_api_us: f64,
}

impl Device {
    /// Creates a device with the given configuration.
    #[must_use]
    pub fn new(config: DeviceConfig) -> Device {
        let memory = MemoryPool::new(config.memory_capacity);
        Device {
            config,
            memory,
            counters: Counters::new(),
            elapsed_us: 0.0,
            host_api_us: 0.0,
        }
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The memory pool (read access).
    #[must_use]
    pub fn memory(&self) -> &MemoryPool {
        &self.memory
    }

    /// Allocates `bytes` of device memory.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] when capacity is exceeded.
    pub fn alloc(&mut self, bytes: usize, label: &str) -> Result<AllocId, OomError> {
        self.memory.alloc(bytes, label)
    }

    /// Frees a device allocation.
    pub fn free(&mut self, id: AllocId) {
        self.memory.free(id);
    }

    /// Launches a kernel: advances the simulated clock and records
    /// counters.
    pub fn launch(&mut self, cost: &KernelCost) {
        self.elapsed_us += cost.duration_us(&self.config);
        self.counters.record(cost, &self.config);
    }

    /// Records one real-mode host kernel execution for the parallel
    /// executor's wall-clock/steal report (see
    /// [`crate::ParallelStats`]). Does not advance the simulated clock:
    /// host interpreter time and simulated device time are separate
    /// books.
    pub fn record_host_exec(
        &mut self,
        category: crate::KernelCategory,
        parallel: bool,
        wall_us: f64,
        chunks: usize,
        steals: u64,
    ) {
        self.counters
            .record_host_exec(category, parallel, wall_us, chunks, steals);
    }

    /// Records one real-mode kernel execution's scratch-arena activity
    /// (see [`crate::ScratchStats`]): how many times the interpreter's
    /// reusable buffers had to grow (heap allocations) and the arena's
    /// current footprint. Steady-state kernels record `grows == 0`.
    pub fn record_scratch(&mut self, grows: usize, bytes: usize) {
        self.counters.record_scratch(grows, bytes);
    }

    /// Records one plan-reusing run's persistent-buffer activity (see
    /// [`crate::ScratchStats::plan_grows`]): warm runs record zero
    /// growth — whole-run allocation freedom made observable.
    pub fn record_plan(&mut self, grows: usize, bytes: usize) {
        self.counters.record_plan(grows, bytes);
    }

    /// Records which execution backend this run launches kernels on and
    /// whether its prepared plan was reused (see [`crate::BackendStats`]).
    pub fn record_backend(&mut self, name: &'static str, plan_reused: bool) {
        self.counters.record_backend(name, plan_reused);
    }

    /// Adds `n` kernel launches to the backend accounting (see
    /// [`crate::BackendStats::kernels`]).
    pub fn record_backend_kernels(&mut self, n: u64) {
        self.counters.record_backend_kernels(n);
    }

    /// Records one consumed mini-batch's sampler activity (see
    /// [`crate::SamplerStats`]): batch size, host time spent producing
    /// it, and consumer time blocked on its arrival. Host-side books
    /// only — the simulated clock does not advance.
    pub fn record_sampler_batch(
        &mut self,
        nodes: usize,
        edges: usize,
        sample_wall_us: f64,
        wait_wall_us: f64,
    ) {
        self.counters
            .record_sampler_batch(nodes, edges, sample_wall_us, wait_wall_us);
    }

    /// Clears the epoch-scoped sampler statistics (they deliberately
    /// survive [`Device::reset`] — see [`crate::Counters::reset`]), so a
    /// caller can measure one epoch in isolation.
    pub fn reset_sampler(&mut self) {
        self.counters.reset_sampler();
    }

    /// Charges pure host-side API overhead (framework dispatch without a
    /// kernel), as eager per-relation Python loops do.
    pub fn charge_api_call(&mut self) {
        self.elapsed_us += self.config.api_call_us;
        self.host_api_us += self.config.api_call_us;
    }

    /// Total simulated time elapsed, microseconds.
    #[must_use]
    pub fn elapsed_us(&self) -> f64 {
        self.elapsed_us
    }

    /// Host API time included in [`Device::elapsed_us`], microseconds.
    #[must_use]
    pub fn host_api_us(&self) -> f64 {
        self.host_api_us
    }

    /// The architectural counters accumulated so far.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets clock and counters but keeps live allocations.
    pub fn reset_clock(&mut self) {
        self.elapsed_us = 0.0;
        self.host_api_us = 0.0;
        self.counters.reset();
    }

    /// Resets everything, including memory.
    pub fn reset(&mut self) {
        self.reset_clock();
        self.memory.reset();
    }
}

impl Default for Device {
    fn default() -> Self {
        Device::new(DeviceConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KernelCategory, Phase};

    #[test]
    fn launch_advances_clock() {
        let mut d = Device::default();
        let mut c = KernelCost::new(KernelCategory::Gemm, Phase::Forward);
        c.flops = 1e9;
        c.items = 1e5;
        d.launch(&c);
        assert!(d.elapsed_us() > 0.0);
        assert_eq!(d.counters().total_launches(), 1);
    }

    #[test]
    fn alloc_flows_through_pool() {
        let mut d = Device::new(DeviceConfig::rtx3090().with_capacity(1000));
        let id = d.alloc(800, "x").unwrap();
        assert!(d.alloc(500, "y").is_err());
        d.free(id);
        assert!(d.alloc(500, "y").is_ok());
    }

    #[test]
    fn api_call_charges_time() {
        let mut d = Device::default();
        d.charge_api_call();
        assert_eq!(d.elapsed_us(), d.config().api_call_us);
        assert_eq!(d.host_api_us(), d.config().api_call_us);
    }

    #[test]
    fn reset_clock_keeps_memory() {
        let mut d = Device::default();
        let _id = d.alloc(100, "x").unwrap();
        d.charge_api_call();
        d.reset_clock();
        assert_eq!(d.elapsed_us(), 0.0);
        assert_eq!(d.memory().in_use(), 100);
        d.reset();
        assert_eq!(d.memory().in_use(), 0);
    }
}
